#include "catalog/retailbank.h"

#include <algorithm>
#include <cmath>

namespace qpp::catalog {

Catalog MakeRetailBankCatalog(double scale) {
  const double sf = std::max(scale, 0.01);
  const auto lin = [&](double r) { return std::round(r * sf); };

  Catalog cat("retailbank");

  {
    Table t;
    t.name = "branches";
    t.row_count = 500;
    t.partitioning_column = "b_branch_id";
    t.columns = {
        MakeColumn("b_branch_id", ColumnType::kInt, 500, 1, 500, 4.0, true),
        MakeColumn("b_region_id", ColumnType::kInt, 12, 1, 12, 4.0),
        MakeColumn("b_state", ColumnType::kString, 50, 0, 50, 2.0),
        MakeColumn("b_opened_year", ColumnType::kInt, 60, 1950, 2009, 4.0),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "clients";
    t.row_count = lin(200000);
    t.partitioning_column = "cl_client_id";
    t.columns = {
        MakeColumn("cl_client_id", ColumnType::kInt, lin(200000), 1,
                   lin(200000), 4.0, true),
        MakeColumn("cl_home_branch_id", ColumnType::kInt, 500, 1, 500, 4.0),
        MakeColumn("cl_segment", ColumnType::kString, 5, 0, 5, 8.0),
        MakeColumn("cl_birth_year", ColumnType::kInt, 80, 1920, 1999, 4.0),
        MakeColumn("cl_risk_score", ColumnType::kInt, 800, 300, 850, 4.0),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "accounts";
    t.row_count = lin(400000);
    t.partitioning_column = "a_account_id";
    t.columns = {
        MakeColumn("a_account_id", ColumnType::kInt, lin(400000), 1,
                   lin(400000), 4.0, true),
        MakeColumn("a_client_id", ColumnType::kInt, lin(200000), 1,
                   lin(200000), 4.0),
        MakeColumn("a_branch_id", ColumnType::kInt, 500, 1, 500, 4.0),
        MakeColumn("a_type", ColumnType::kString, 6, 0, 6, 8.0),
        MakeColumn("a_status", ColumnType::kString, 4, 0, 4, 8.0),
        MakeColumn("a_opened_date", ColumnType::kDate, 7300, 2440000, 2447300,
                   4.0),
        MakeColumn("a_balance", ColumnType::kDouble, 1000000, -50000.0,
                   5000000.0, 8.0),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "cards";
    t.row_count = lin(450000);
    t.partitioning_column = "cd_card_id";
    t.columns = {
        MakeColumn("cd_card_id", ColumnType::kInt, lin(450000), 1,
                   lin(450000), 4.0, true),
        MakeColumn("cd_account_id", ColumnType::kInt, lin(400000), 1,
                   lin(400000), 4.0),
        MakeColumn("cd_network", ColumnType::kString, 4, 0, 4, 8.0),
        MakeColumn("cd_expiry_year", ColumnType::kInt, 8, 2008, 2015, 4.0),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "merchants";
    t.row_count = lin(20000);
    t.partitioning_column = "m_merchant_id";
    t.columns = {
        MakeColumn("m_merchant_id", ColumnType::kInt, lin(20000), 1,
                   lin(20000), 4.0, true),
        MakeColumn("m_category", ColumnType::kString, 300, 0, 300, 12.0),
        MakeColumn("m_state", ColumnType::kString, 50, 0, 50, 2.0),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "transactions";
    t.row_count = lin(5000000);
    t.partitioning_column = "tx_account_id";
    t.columns = {
        MakeColumn("tx_id", ColumnType::kInt, lin(5000000), 1, lin(5000000),
                   8.0, true),
        MakeColumn("tx_account_id", ColumnType::kInt, lin(400000), 1,
                   lin(400000), 4.0),
        MakeColumn("tx_merchant_id", ColumnType::kInt, lin(20000), 1,
                   lin(20000), 4.0),
        MakeColumn("tx_date", ColumnType::kDate, 1095, 2454100, 2455194, 4.0),
        MakeColumn("tx_amount", ColumnType::kDouble, 500000, -20000.0,
                   20000.0, 8.0),
        MakeColumn("tx_channel", ColumnType::kString, 5, 0, 5, 8.0),
        MakeColumn("tx_status", ColumnType::kString, 3, 0, 3, 8.0),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "card_swipes";
    t.row_count = lin(3000000);
    t.partitioning_column = "sw_card_id";
    t.columns = {
        MakeColumn("sw_swipe_id", ColumnType::kInt, lin(3000000), 1,
                   lin(3000000), 8.0, true),
        MakeColumn("sw_card_id", ColumnType::kInt, lin(450000), 1,
                   lin(450000), 4.0),
        MakeColumn("sw_merchant_id", ColumnType::kInt, lin(20000), 1,
                   lin(20000), 4.0),
        MakeColumn("sw_date", ColumnType::kDate, 1095, 2454100, 2455194, 4.0),
        MakeColumn("sw_amount", ColumnType::kDouble, 200000, 0.0, 5000.0,
                   8.0),
        MakeColumn("sw_approved", ColumnType::kString, 2, 0, 2, 1.0),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "loans";
    t.row_count = lin(100000);
    t.partitioning_column = "l_loan_id";
    t.columns = {
        MakeColumn("l_loan_id", ColumnType::kInt, lin(100000), 1, lin(100000),
                   4.0, true),
        MakeColumn("l_client_id", ColumnType::kInt, lin(200000), 1,
                   lin(200000), 4.0),
        MakeColumn("l_branch_id", ColumnType::kInt, 500, 1, 500, 4.0),
        MakeColumn("l_product", ColumnType::kString, 8, 0, 8, 10.0),
        MakeColumn("l_principal", ColumnType::kDouble, 90000, 1000.0,
                   2000000.0, 8.0),
        MakeColumn("l_rate_bps", ColumnType::kInt, 900, 100, 1000, 4.0),
        MakeColumn("l_origination_date", ColumnType::kDate, 5475, 2449718,
                   2455194, 4.0),
    };
    cat.AddTable(t);
  }

  return cat;
}

}  // namespace qpp::catalog
