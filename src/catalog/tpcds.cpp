#include "catalog/tpcds.h"

#include <algorithm>
#include <cmath>

namespace qpp::catalog {

namespace {

constexpr double kDateSkMin = 2415022;  // 1900-01-02, per TPC-DS spec
constexpr double kDateSkMax = 2488070;  // 2100-01-01
// Sales in TPC-DS span ~5 years of date_dim; FK NDV reflects that.
constexpr double kSalesDateNdv = 1823;
constexpr double kSalesDateMin = 2450815;
constexpr double kSalesDateMax = 2452654;

Column Fk(const std::string& name, double dim_rows, double dim_min,
          double dim_max) {
  return MakeColumn(name, ColumnType::kInt, dim_rows, dim_min, dim_max, 4.0);
}

Column DateFk(const std::string& name) {
  return MakeColumn(name, ColumnType::kDate, kSalesDateNdv, kSalesDateMin,
                    kSalesDateMax, 4.0);
}

Column Money(const std::string& name, double lo, double hi, double ndv) {
  return MakeColumn(name, ColumnType::kDouble, ndv, lo, hi, 8.0);
}

Column Str(const std::string& name, double ndv, double width) {
  return MakeColumn(name, ColumnType::kString, ndv, 0, ndv, width);
}

}  // namespace

Catalog MakeTpcdsCatalog(double scale_factor) {
  const double sf = std::max(scale_factor, 0.01);
  // Fact tables scale linearly; customer-related dimensions scale with a
  // sub-linear power (TPC-DS scales them stepwise; sqrt is a faithful
  // smooth stand-in); small dimensions and date/time are fixed.
  const auto lin = [&](double r) { return std::round(r * sf); };
  const auto sub = [&](double r) {
    return std::round(r * (sf <= 1.0 ? sf : std::sqrt(sf)));
  };

  const double n_customer = sub(100000);
  const double n_address = sub(50000);
  const double n_cdemo = 1920800;  // fixed cross-product table in TPC-DS
  const double n_hdemo = 7200;
  const double n_item = sub(18000);
  const double n_store = std::max(12.0, std::round(12 * std::log2(1 + sf)));
  const double n_warehouse = 5;
  const double n_promo = sub(300);
  const double n_web_site = 30;
  const double n_web_page = sub(60);
  const double n_call_center = 6;
  const double n_catalog_page = 11718;
  const double n_ship_mode = 20;
  const double n_reason = 35;
  const double n_income_band = 20;

  Catalog cat("tpcds");

  {
    Table t;
    t.name = "date_dim";
    t.row_count = 73049;
    t.partitioning_column = "d_date_sk";
    t.columns = {
        MakeColumn("d_date_sk", ColumnType::kInt, 73049, kDateSkMin,
                   kDateSkMax, 4.0, true),
        MakeColumn("d_year", ColumnType::kInt, 201, 1900, 2100, 4.0),
        MakeColumn("d_moy", ColumnType::kInt, 12, 1, 12, 4.0),
        MakeColumn("d_dom", ColumnType::kInt, 31, 1, 31, 4.0),
        MakeColumn("d_qoy", ColumnType::kInt, 4, 1, 4, 4.0),
        MakeColumn("d_dow", ColumnType::kInt, 7, 0, 6, 4.0),
        MakeColumn("d_month_seq", ColumnType::kInt, 2412, 0, 2411, 4.0),
        Str("d_day_name", 7, 9),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "time_dim";
    t.row_count = 86400;
    t.partitioning_column = "t_time_sk";
    t.columns = {
        MakeColumn("t_time_sk", ColumnType::kInt, 86400, 0, 86399, 4.0, true),
        MakeColumn("t_hour", ColumnType::kInt, 24, 0, 23, 4.0),
        MakeColumn("t_minute", ColumnType::kInt, 60, 0, 59, 4.0),
        Str("t_am_pm", 2, 2),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "item";
    t.row_count = n_item;
    t.partitioning_column = "i_item_sk";
    t.columns = {
        MakeColumn("i_item_sk", ColumnType::kInt, n_item, 1, n_item, 4.0,
                   true),
        MakeColumn("i_brand_id", ColumnType::kInt, 951, 1001001, 10016017,
                   4.0),
        Str("i_brand", 713, 22),
        Str("i_class", 99, 15),
        MakeColumn("i_class_id", ColumnType::kInt, 16, 1, 16, 4.0),
        Str("i_category", 10, 12),
        MakeColumn("i_category_id", ColumnType::kInt, 10, 1, 10, 4.0),
        MakeColumn("i_manufact_id", ColumnType::kInt, 1000, 1, 1000, 4.0),
        MakeColumn("i_manager_id", ColumnType::kInt, 100, 1, 100, 4.0),
        Money("i_current_price", 0.09, 99.99, 9000),
        Money("i_wholesale_cost", 0.02, 88.0, 7000),
        Str("i_color", 92, 11),
        Str("i_size", 7, 11),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "customer";
    t.row_count = n_customer;
    t.partitioning_column = "c_customer_sk";
    t.columns = {
        MakeColumn("c_customer_sk", ColumnType::kInt, n_customer, 1,
                   n_customer, 4.0, true),
        Fk("c_current_cdemo_sk", n_cdemo, 1, n_cdemo),
        Fk("c_current_hdemo_sk", n_hdemo, 1, n_hdemo),
        Fk("c_current_addr_sk", n_address, 1, n_address),
        MakeColumn("c_birth_year", ColumnType::kInt, 69, 1924, 1992, 4.0),
        MakeColumn("c_birth_month", ColumnType::kInt, 12, 1, 12, 4.0),
        Str("c_birth_country", 211, 13),
        Str("c_preferred_cust_flag", 2, 1),
        MakeColumn("c_first_shipto_date_sk", ColumnType::kDate, 3585, 2449028,
                   2452678, 4.0),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "customer_address";
    t.row_count = n_address;
    t.partitioning_column = "ca_address_sk";
    t.columns = {
        MakeColumn("ca_address_sk", ColumnType::kInt, n_address, 1, n_address,
                   4.0, true),
        Str("ca_city", 693, 14),
        Str("ca_county", 1850, 15),
        Str("ca_state", 51, 2),
        Str("ca_zip", 7733, 5),
        Str("ca_country", 1, 13),
        Money("ca_gmt_offset", -10.0, -5.0, 6),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "customer_demographics";
    t.row_count = n_cdemo;
    t.partitioning_column = "cd_demo_sk";
    t.columns = {
        MakeColumn("cd_demo_sk", ColumnType::kInt, n_cdemo, 1, n_cdemo, 4.0,
                   true),
        Str("cd_gender", 2, 1),
        Str("cd_marital_status", 5, 1),
        Str("cd_education_status", 7, 15),
        MakeColumn("cd_purchase_estimate", ColumnType::kInt, 20, 500, 10000,
                   4.0),
        Str("cd_credit_rating", 4, 10),
        MakeColumn("cd_dep_count", ColumnType::kInt, 7, 0, 6, 4.0),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "household_demographics";
    t.row_count = n_hdemo;
    t.partitioning_column = "hd_demo_sk";
    t.columns = {
        MakeColumn("hd_demo_sk", ColumnType::kInt, n_hdemo, 1, n_hdemo, 4.0,
                   true),
        Fk("hd_income_band_sk", n_income_band, 1, n_income_band),
        Str("hd_buy_potential", 6, 10),
        MakeColumn("hd_dep_count", ColumnType::kInt, 10, 0, 9, 4.0),
        MakeColumn("hd_vehicle_count", ColumnType::kInt, 6, -1, 4, 4.0),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "store";
    t.row_count = n_store;
    t.partitioning_column = "s_store_sk";
    t.columns = {
        MakeColumn("s_store_sk", ColumnType::kInt, n_store, 1, n_store, 4.0,
                   true),
        Str("s_state", 9, 2),
        Str("s_county", 9, 15),
        Str("s_city", 12, 12),
        MakeColumn("s_market_id", ColumnType::kInt, 10, 1, 10, 4.0),
        MakeColumn("s_number_employees", ColumnType::kInt, 97, 200, 300, 4.0),
        Money("s_gmt_offset", -10.0, -5.0, 2),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "warehouse";
    t.row_count = n_warehouse;
    t.partitioning_column = "w_warehouse_sk";
    t.columns = {
        MakeColumn("w_warehouse_sk", ColumnType::kInt, n_warehouse, 1,
                   n_warehouse, 4.0, true),
        Str("w_state", 5, 2),
        MakeColumn("w_warehouse_sq_ft", ColumnType::kInt, 5, 50000, 1000000,
                   4.0),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "promotion";
    t.row_count = n_promo;
    t.partitioning_column = "p_promo_sk";
    t.columns = {
        MakeColumn("p_promo_sk", ColumnType::kInt, n_promo, 1, n_promo, 4.0,
                   true),
        Str("p_channel_email", 2, 1),
        Str("p_channel_tv", 2, 1),
        Str("p_channel_event", 2, 1),
        MakeColumn("p_response_target", ColumnType::kInt, 1, 1, 1, 4.0),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "web_site";
    t.row_count = n_web_site;
    t.partitioning_column = "web_site_sk";
    t.columns = {
        MakeColumn("web_site_sk", ColumnType::kInt, n_web_site, 1, n_web_site,
                   4.0, true),
        Str("web_class", 5, 10),
        Str("web_state", 9, 2),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "web_page";
    t.row_count = n_web_page;
    t.partitioning_column = "wp_web_page_sk";
    t.columns = {
        MakeColumn("wp_web_page_sk", ColumnType::kInt, n_web_page, 1,
                   n_web_page, 4.0, true),
        Str("wp_type", 7, 9),
        MakeColumn("wp_char_count", ColumnType::kInt, 1363, 303, 8523, 4.0),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "call_center";
    t.row_count = n_call_center;
    t.partitioning_column = "cc_call_center_sk";
    t.columns = {
        MakeColumn("cc_call_center_sk", ColumnType::kInt, n_call_center, 1,
                   n_call_center, 4.0, true),
        Str("cc_class", 3, 6),
        MakeColumn("cc_employees", ColumnType::kInt, 6, 100, 7000, 4.0),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "catalog_page";
    t.row_count = n_catalog_page;
    t.partitioning_column = "cp_catalog_page_sk";
    t.columns = {
        MakeColumn("cp_catalog_page_sk", ColumnType::kInt, n_catalog_page, 1,
                   n_catalog_page, 4.0, true),
        MakeColumn("cp_catalog_number", ColumnType::kInt, 109, 1, 109, 4.0),
        MakeColumn("cp_catalog_page_number", ColumnType::kInt, 108, 1, 108,
                   4.0),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "ship_mode";
    t.row_count = n_ship_mode;
    t.partitioning_column = "sm_ship_mode_sk";
    t.columns = {
        MakeColumn("sm_ship_mode_sk", ColumnType::kInt, n_ship_mode, 1,
                   n_ship_mode, 4.0, true),
        Str("sm_type", 6, 9),
        Str("sm_carrier", 20, 10),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "reason";
    t.row_count = n_reason;
    t.partitioning_column = "r_reason_sk";
    t.columns = {
        MakeColumn("r_reason_sk", ColumnType::kInt, n_reason, 1, n_reason,
                   4.0, true),
        Str("r_reason_desc", 35, 13),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "income_band";
    t.row_count = n_income_band;
    t.partitioning_column = "ib_income_band_sk";
    t.columns = {
        MakeColumn("ib_income_band_sk", ColumnType::kInt, n_income_band, 1,
                   n_income_band, 4.0, true),
        MakeColumn("ib_lower_bound", ColumnType::kInt, 20, 0, 190001, 4.0),
        MakeColumn("ib_upper_bound", ColumnType::kInt, 20, 10000, 200000, 4.0),
    };
    cat.AddTable(t);
  }

  // --- Fact tables -------------------------------------------------------
  {
    Table t;
    t.name = "store_sales";
    t.row_count = lin(2880404);
    t.partitioning_column = "ss_item_sk";
    t.columns = {
        DateFk("ss_sold_date_sk"),
        Fk("ss_sold_time_sk", 46800, 28800, 75599),
        Fk("ss_item_sk", n_item, 1, n_item),
        Fk("ss_customer_sk", n_customer, 1, n_customer),
        Fk("ss_cdemo_sk", n_cdemo, 1, n_cdemo),
        Fk("ss_hdemo_sk", n_hdemo, 1, n_hdemo),
        Fk("ss_addr_sk", n_address, 1, n_address),
        Fk("ss_store_sk", n_store, 1, n_store),
        Fk("ss_promo_sk", n_promo, 1, n_promo),
        MakeColumn("ss_ticket_number", ColumnType::kInt, lin(240000), 1,
                   lin(240000), 8.0),
        MakeColumn("ss_quantity", ColumnType::kInt, 100, 1, 100, 4.0),
        Money("ss_wholesale_cost", 1.0, 100.0, 9900),
        Money("ss_list_price", 1.0, 200.0, 19900),
        Money("ss_sales_price", 0.0, 200.0, 19900),
        Money("ss_ext_sales_price", 0.0, 20000.0, 700000),
        Money("ss_ext_discount_amt", 0.0, 19000.0, 600000),
        Money("ss_net_paid", 0.0, 20000.0, 700000),
        Money("ss_net_profit", -10000.0, 10000.0, 900000),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "catalog_sales";
    t.row_count = lin(1441548);
    t.partitioning_column = "cs_item_sk";
    t.columns = {
        DateFk("cs_sold_date_sk"),
        DateFk("cs_ship_date_sk"),
        Fk("cs_bill_customer_sk", n_customer, 1, n_customer),
        Fk("cs_ship_customer_sk", n_customer, 1, n_customer),
        Fk("cs_bill_cdemo_sk", n_cdemo, 1, n_cdemo),
        Fk("cs_bill_hdemo_sk", n_hdemo, 1, n_hdemo),
        Fk("cs_item_sk", n_item, 1, n_item),
        Fk("cs_call_center_sk", n_call_center, 1, n_call_center),
        Fk("cs_catalog_page_sk", n_catalog_page, 1, n_catalog_page),
        Fk("cs_ship_mode_sk", n_ship_mode, 1, n_ship_mode),
        Fk("cs_warehouse_sk", n_warehouse, 1, n_warehouse),
        Fk("cs_promo_sk", n_promo, 1, n_promo),
        MakeColumn("cs_order_number", ColumnType::kInt, lin(160000), 1,
                   lin(160000), 8.0),
        MakeColumn("cs_quantity", ColumnType::kInt, 100, 1, 100, 4.0),
        Money("cs_list_price", 1.0, 300.0, 29900),
        Money("cs_sales_price", 0.0, 300.0, 29900),
        Money("cs_ext_sales_price", 0.0, 30000.0, 1000000),
        Money("cs_net_profit", -10000.0, 20000.0, 1500000),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "web_sales";
    t.row_count = lin(719384);
    t.partitioning_column = "ws_item_sk";
    t.columns = {
        DateFk("ws_sold_date_sk"),
        DateFk("ws_ship_date_sk"),
        Fk("ws_item_sk", n_item, 1, n_item),
        Fk("ws_bill_customer_sk", n_customer, 1, n_customer),
        Fk("ws_web_site_sk", n_web_site, 1, n_web_site),
        Fk("ws_web_page_sk", n_web_page, 1, n_web_page),
        Fk("ws_warehouse_sk", n_warehouse, 1, n_warehouse),
        Fk("ws_ship_mode_sk", n_ship_mode, 1, n_ship_mode),
        Fk("ws_promo_sk", n_promo, 1, n_promo),
        MakeColumn("ws_order_number", ColumnType::kInt, lin(60000), 1,
                   lin(60000), 8.0),
        MakeColumn("ws_quantity", ColumnType::kInt, 100, 1, 100, 4.0),
        Money("ws_sales_price", 0.0, 300.0, 29900),
        Money("ws_ext_sales_price", 0.0, 30000.0, 1000000),
        Money("ws_net_profit", -10000.0, 20000.0, 1500000),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "store_returns";
    t.row_count = lin(287514);
    t.partitioning_column = "sr_item_sk";
    t.columns = {
        MakeColumn("sr_returned_date_sk", ColumnType::kDate, 2010, kSalesDateMin,
                   kSalesDateMax + 120, 4.0),
        Fk("sr_item_sk", n_item, 1, n_item),
        Fk("sr_customer_sk", n_customer, 1, n_customer),
        Fk("sr_store_sk", n_store, 1, n_store),
        Fk("sr_reason_sk", n_reason, 1, n_reason),
        MakeColumn("sr_ticket_number", ColumnType::kInt, lin(240000), 1,
                   lin(240000), 8.0),
        MakeColumn("sr_return_quantity", ColumnType::kInt, 100, 1, 100, 4.0),
        Money("sr_return_amt", 0.0, 20000.0, 500000),
        Money("sr_net_loss", 0.0, 10000.0, 400000),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "catalog_returns";
    t.row_count = lin(144067);
    t.partitioning_column = "cr_item_sk";
    t.columns = {
        MakeColumn("cr_returned_date_sk", ColumnType::kDate, 2100, kSalesDateMin,
                   kSalesDateMax + 120, 4.0),
        Fk("cr_item_sk", n_item, 1, n_item),
        Fk("cr_refunded_customer_sk", n_customer, 1, n_customer),
        Fk("cr_call_center_sk", n_call_center, 1, n_call_center),
        Fk("cr_reason_sk", n_reason, 1, n_reason),
        MakeColumn("cr_order_number", ColumnType::kInt, lin(160000), 1,
                   lin(160000), 8.0),
        MakeColumn("cr_return_quantity", ColumnType::kInt, 100, 1, 100, 4.0),
        Money("cr_return_amount", 0.0, 30000.0, 500000),
        Money("cr_net_loss", 0.0, 16000.0, 400000),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "web_returns";
    t.row_count = lin(71763);
    t.partitioning_column = "wr_item_sk";
    t.columns = {
        MakeColumn("wr_returned_date_sk", ColumnType::kDate, 2190, kSalesDateMin,
                   kSalesDateMax + 120, 4.0),
        Fk("wr_item_sk", n_item, 1, n_item),
        Fk("wr_refunded_customer_sk", n_customer, 1, n_customer),
        Fk("wr_web_page_sk", n_web_page, 1, n_web_page),
        Fk("wr_reason_sk", n_reason, 1, n_reason),
        MakeColumn("wr_order_number", ColumnType::kInt, lin(60000), 1,
                   lin(60000), 8.0),
        MakeColumn("wr_return_quantity", ColumnType::kInt, 100, 1, 100, 4.0),
        Money("wr_return_amt", 0.0, 30000.0, 400000),
        Money("wr_net_loss", 0.0, 16000.0, 300000),
    };
    cat.AddTable(t);
  }
  {
    Table t;
    t.name = "inventory";
    t.row_count = lin(11745000);
    t.partitioning_column = "inv_item_sk";
    t.columns = {
        MakeColumn("inv_date_sk", ColumnType::kDate, 261, kSalesDateMin,
                   kSalesDateMax, 4.0),
        Fk("inv_item_sk", n_item, 1, n_item),
        Fk("inv_warehouse_sk", n_warehouse, 1, n_warehouse),
        MakeColumn("inv_quantity_on_hand", ColumnType::kInt, 1000, 0, 1000,
                   4.0),
    };
    cat.AddTable(t);
  }

  return cat;
}

}  // namespace qpp::catalog
