#include "catalog/catalog.h"

#include "common/check.h"
#include "common/str_util.h"

namespace qpp::catalog {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt: return "INT";
    case ColumnType::kDouble: return "DOUBLE";
    case ColumnType::kString: return "STRING";
    case ColumnType::kDate: return "DATE";
  }
  return "?";
}

double Table::RowWidthBytes() const {
  double w = 0.0;
  for (const Column& c : columns) w += c.avg_width_bytes;
  return w;
}

const Column* Table::FindColumn(const std::string& name) const {
  const std::string want = ToLowerAscii(name);
  for (const Column& c : columns) {
    if (ToLowerAscii(c.name) == want) return &c;
  }
  return nullptr;
}

void Catalog::AddTable(Table table) {
  const std::string key = ToLowerAscii(table.name);
  auto it = index_.find(key);
  if (it != index_.end()) {
    tables_[it->second] = std::move(table);
    return;
  }
  index_[key] = tables_.size();
  tables_.push_back(std::move(table));
}

const Table* Catalog::FindTable(const std::string& name) const {
  auto it = index_.find(ToLowerAscii(name));
  if (it == index_.end()) return nullptr;
  return &tables_[it->second];
}

const Table& Catalog::GetTable(const std::string& name) const {
  const Table* t = FindTable(name);
  QPP_CHECK_MSG(t != nullptr, "unknown table: " << name);
  return *t;
}

double Catalog::TotalBytes() const {
  double total = 0.0;
  for (const Table& t : tables_) total += t.row_count * t.RowWidthBytes();
  return total;
}

Column MakeColumn(std::string name, ColumnType type, double ndv,
                  double min_value, double max_value, double width_bytes,
                  bool is_primary_key) {
  Column c;
  c.name = std::move(name);
  c.type = type;
  c.ndv = ndv;
  c.min_value = min_value;
  c.max_value = max_value;
  c.avg_width_bytes = width_bytes;
  c.is_primary_key = is_primary_key;
  return c;
}

}  // namespace qpp::catalog
