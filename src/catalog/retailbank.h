// The "retailbank" customer schema.
//
// Experiment 4 of the paper tests a model trained on TPC-DS queries against
// queries over an unrelated customer production database (different schema,
// different data). We stand in a retail-banking schema whose workload is
// dominated by very short ("mini-feather") queries, matching the paper's
// description of the customer traces it had access to.
#pragma once

#include "catalog/catalog.h"

namespace qpp::catalog {

/// Builds the retailbank catalog. `scale` linearly scales the fact-like
/// tables (transactions, card_swipes); 1.0 is the default deployment size.
Catalog MakeRetailBankCatalog(double scale = 1.0);

}  // namespace qpp::catalog
