// Schema and table statistics metadata.
//
// The optimizer estimates cardinalities from these statistics (row counts,
// NDVs, min/max) exactly the way a System-R-style optimizer would; the
// execution simulator consumes the same metadata plus hidden true
// selectivities to produce "actual" run-time cardinalities. Two concrete
// catalogs ship with the library: the TPC-DS schema at a configurable scale
// factor (tpcds.h) and an unrelated "retailbank" customer schema used for
// the paper's Experiment 4 (retailbank.h).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace qpp::catalog {

/// Supported column value domains. The simulator never materializes values;
/// types matter only for statistics and predicate selectivity modeling.
enum class ColumnType { kInt, kDouble, kString, kDate };

const char* ColumnTypeName(ColumnType t);

/// Per-column statistics, the optimizer's only knowledge about data.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt;
  /// Number of distinct values.
  double ndv = 1.0;
  /// Value range for range-predicate selectivity (keys/dates/numerics).
  double min_value = 0.0;
  double max_value = 0.0;
  /// Average encoded width in bytes (drives message/disk volumes).
  double avg_width_bytes = 8.0;
  /// True if this is (part of) the table's primary key.
  bool is_primary_key = false;
};

/// A base table with row count, columns, and physical layout hints.
struct Table {
  std::string name;
  double row_count = 0.0;
  std::vector<Column> columns;
  /// Column used for hash-partitioning across disks (usually the PK).
  std::string partitioning_column;

  /// Sum of column widths: bytes per row as stored/shipped.
  double RowWidthBytes() const;

  /// Looks up a column by name (case-insensitive); nullptr if absent.
  const Column* FindColumn(const std::string& name) const;
};

/// A named collection of tables. Lookups are case-insensitive.
class Catalog {
 public:
  explicit Catalog(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Registers a table; replaces an existing table with the same name.
  void AddTable(Table table);

  /// Table lookup; nullptr when absent.
  const Table* FindTable(const std::string& name) const;

  /// Table lookup that throws CheckFailure when absent (internal callers
  /// that have already validated names).
  const Table& GetTable(const std::string& name) const;

  /// All tables in registration order.
  const std::vector<Table>& tables() const { return tables_; }

  /// Total data volume in bytes across all tables.
  double TotalBytes() const;

 private:
  std::string name_;
  std::vector<Table> tables_;
  std::map<std::string, size_t> index_;  // lower-cased name -> position
};

/// Helper to build a column with one call (keeps catalog definitions terse).
Column MakeColumn(std::string name, ColumnType type, double ndv,
                  double min_value, double max_value, double width_bytes,
                  bool is_primary_key = false);

}  // namespace qpp::catalog
