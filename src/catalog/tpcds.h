// The TPC-DS schema with SF-1 table cardinalities.
//
// The reproduced paper trains and tests on queries generated from TPC-DS
// templates (plus extended "problem query" templates) at scale factor 1.
// Row counts below are the official SF-1 numbers; other scale factors scale
// fact tables linearly and the customer-related dimensions sub-linearly,
// mirroring the spirit of the benchmark's scaling rules.
#pragma once

#include "catalog/catalog.h"

namespace qpp::catalog {

/// Builds the TPC-DS catalog at the given scale factor (1.0 = SF 1).
Catalog MakeTpcdsCatalog(double scale_factor = 1.0);

}  // namespace qpp::catalog
