#include "common/str_util.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace qpp {

std::string ToUpperAscii(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLowerAscii(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string FormatDuration(double seconds) {
  if (seconds < 0) return "-" + FormatDuration(-seconds);
  const int64_t total_ms = static_cast<int64_t>(std::llround(seconds * 1000.0));
  const int64_t ms = total_ms % 1000;
  const int64_t total_s = total_ms / 1000;
  const int64_t s = total_s % 60;
  const int64_t m = (total_s / 60) % 60;
  const int64_t h = total_s / 3600;
  return StrFormat("%02lld:%02lld:%02lld.%03lld", static_cast<long long>(h),
                   static_cast<long long>(m), static_cast<long long>(s),
                   static_cast<long long>(ms));
}

std::string FormatG(double v, int significant) {
  return StrFormat("%.*g", significant, v);
}

}  // namespace qpp
