// Deterministic pseudo-random number generation for the whole library.
//
// Every stochastic component (workload generation, selectivity assignment,
// simulator noise) draws from a qpp::Rng seeded explicitly, so every
// experiment in the paper reproduction is bit-for-bit repeatable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qpp {

/// xoshiro256** PRNG with splitmix64 seeding.
///
/// Not cryptographic; chosen for speed, quality, and a trivially portable
/// implementation (no libc dependence, identical streams on all platforms).
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (no cached spare; stateless per call
  /// pair, costs two uniforms per normal).
  double Gaussian();

  /// Gaussian with given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma)). Useful for multiplicative error models.
  double LogNormal(double mu, double sigma);

  /// Zipf-distributed integer in [1, n] with exponent `s` (s > 0).
  /// Implemented by inverse-CDF over precomputed weights for small n and
  /// rejection-inversion for large n.
  int64_t Zipf(int64_t n, double s);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Returns an Rng derived from this one's stream plus a label; used to give
  /// independent substreams to subsystems without coupling their draw counts.
  Rng Fork(const std::string& label);

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Picks one element index from [0, weights.size()) with probability
  /// proportional to weights[i]. Requires at least one positive weight.
  size_t WeightedPick(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
};

/// 64-bit FNV-1a hash of a string; used for stable label-derived seeds.
uint64_t HashString64(const std::string& s);

/// splitmix64 step, exposed for hashing small integer tuples into seeds.
uint64_t SplitMix64(uint64_t x);

}  // namespace qpp
