#include "common/serde.h"

#include <cstring>

#include "common/check.h"

namespace qpp {

void BinaryWriter::WriteRaw(const void* p, size_t n) {
  os_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  QPP_CHECK_MSG(os_.good(), "write failed");
}

void BinaryWriter::WriteU32(uint32_t v) { WriteRaw(&v, sizeof v); }
void BinaryWriter::WriteU64(uint64_t v) { WriteRaw(&v, sizeof v); }
void BinaryWriter::WriteI64(int64_t v) { WriteRaw(&v, sizeof v); }
void BinaryWriter::WriteDouble(double v) { WriteRaw(&v, sizeof v); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  if (!s.empty()) WriteRaw(s.data(), s.size());
}

void BinaryWriter::WriteDoubles(const std::vector<double>& v) {
  WriteU64(v.size());
  if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(double));
}

void BinaryWriter::WriteSizes(const std::vector<size_t>& v) {
  WriteU64(v.size());
  for (size_t x : v) WriteU64(static_cast<uint64_t>(x));
}

void BinaryReader::ReadRaw(void* p, size_t n) {
  is_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  QPP_CHECK_MSG(is_.gcount() == static_cast<std::streamsize>(n),
                "truncated model file");
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v;
  ReadRaw(&v, sizeof v);
  return v;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v;
  ReadRaw(&v, sizeof v);
  return v;
}

int64_t BinaryReader::ReadI64() {
  int64_t v;
  ReadRaw(&v, sizeof v);
  return v;
}

double BinaryReader::ReadDouble() {
  double v;
  ReadRaw(&v, sizeof v);
  return v;
}

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  QPP_CHECK_MSG(n < (1ull << 32), "implausible string length");
  std::string s(n, '\0');
  if (n > 0) ReadRaw(s.data(), n);
  return s;
}

std::vector<double> BinaryReader::ReadDoubles() {
  const uint64_t n = ReadU64();
  QPP_CHECK_MSG(n < (1ull << 32), "implausible vector length");
  std::vector<double> v(n);
  if (n > 0) ReadRaw(v.data(), n * sizeof(double));
  return v;
}

std::vector<size_t> BinaryReader::ReadSizes() {
  const uint64_t n = ReadU64();
  QPP_CHECK_MSG(n < (1ull << 32), "implausible vector length");
  std::vector<size_t> v(n);
  for (uint64_t i = 0; i < n; ++i) v[i] = static_cast<size_t>(ReadU64());
  return v;
}

}  // namespace qpp
