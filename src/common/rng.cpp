#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace qpp {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t HashString64(const std::string& s) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // splitmix64 seeding, as recommended by the xoshiro authors.
  uint64_t z = seed;
  for (auto& lane : s_) {
    z += 0x9E3779B97F4A7C15ull;
    uint64_t t = z;
    t = (t ^ (t >> 30)) * 0xBF58476D1CE4E5B9ull;
    t = (t ^ (t >> 27)) * 0x94D049BB133111EBull;
    lane = t ^ (t >> 31);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  QPP_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  QPP_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % span);
}

double Rng::Gaussian() {
  // Box-Muller; guard against log(0).
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Gaussian(mu, sigma));
}

int64_t Rng::Zipf(int64_t n, double s) {
  QPP_CHECK(n >= 1);
  QPP_CHECK(s > 0.0);
  // Rejection-inversion (Hörmann & Derflinger) is overkill here: the
  // simulator only needs modest n for skew choices, so use the classic
  // inverse-transform on the harmonic CDF with on-the-fly accumulation for
  // n <= 4096 and an approximate continuous inversion beyond that.
  if (n <= 4096) {
    double h = 0.0;
    for (int64_t i = 1; i <= n; ++i) h += std::pow(static_cast<double>(i), -s);
    double u = NextDouble() * h;
    double acc = 0.0;
    for (int64_t i = 1; i <= n; ++i) {
      acc += std::pow(static_cast<double>(i), -s);
      if (acc >= u) return i;
    }
    return n;
  }
  // Continuous approximation: integral of x^-s from 1 to n.
  if (std::abs(s - 1.0) < 1e-9) {
    const double h = std::log(static_cast<double>(n));
    const double u = NextDouble() * h;
    const int64_t v = static_cast<int64_t>(std::exp(u));
    return std::min<int64_t>(std::max<int64_t>(v, 1), n);
  }
  const double a = 1.0 - s;
  const double h = (std::pow(static_cast<double>(n), a) - 1.0) / a;
  const double u = NextDouble() * h;
  const int64_t v = static_cast<int64_t>(std::pow(u * a + 1.0, 1.0 / a));
  return std::min<int64_t>(std::max<int64_t>(v, 1), n);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork(const std::string& label) {
  return Rng(SplitMix64(NextU64() ^ HashString64(label)));
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j =
        static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

size_t Rng::WeightedPick(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    QPP_CHECK(w >= 0.0);
    total += w;
  }
  QPP_CHECK(total > 0.0);
  double u = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace qpp
