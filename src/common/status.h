// Error propagation for user-facing input (SQL text, model files, API
// arguments). Internal invariants use QPP_CHECK instead (see check.h).
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace qpp {

/// A success-or-message status. Cheap to copy on success.
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return !message_.has_value(); }
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

 private:
  std::optional<std::string> message_;
};

/// A value-or-error result. `value()` asserts success.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {   // NOLINT(runtime/explicit)
    QPP_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    QPP_CHECK_MSG(ok(), "value() on error Result: " << status_.message());
    return *value_;
  }
  T& value() & {
    QPP_CHECK_MSG(ok(), "value() on error Result: " << status_.message());
    return *value_;
  }
  T&& value() && {
    QPP_CHECK_MSG(ok(), "value() on error Result: " << status_.message());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace qpp
