// Lightweight invariant-checking macros used across the qpp library.
//
// QPP_CHECK fires in all build types: these guard conditions that indicate a
// programming error (malformed plan, dimension mismatch) rather than bad user
// input; user-facing input errors are reported through qpp::Status instead
// (see sql/parser.h).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qpp {

/// Exception thrown when a QPP_CHECK-style invariant fails.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& extra) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!extra.empty()) os << " — " << extra;
  throw CheckFailure(os.str());
}

}  // namespace internal
}  // namespace qpp

#define QPP_CHECK(cond)                                             \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::qpp::internal::CheckFailed(#cond, __FILE__, __LINE__, ""); \
    }                                                               \
  } while (0)

#define QPP_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream qpp_check_os_;                              \
      qpp_check_os_ << msg;                                          \
      ::qpp::internal::CheckFailed(#cond, __FILE__, __LINE__,        \
                                   qpp_check_os_.str());             \
    }                                                                \
  } while (0)
