// Small string helpers shared by the SQL front end and report printers.
#pragma once

#include <string>
#include <vector>

namespace qpp {

/// Uppercases ASCII letters (SQL keywords are case-insensitive).
std::string ToUpperAscii(const std::string& s);

/// Lowercases ASCII letters.
std::string ToLowerAscii(const std::string& s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders seconds as hh:mm:ss.mmm (paper-style elapsed-time formatting).
std::string FormatDuration(double seconds);

/// Renders a double with engineering-friendly precision (used in reports).
std::string FormatG(double v, int significant = 4);

}  // namespace qpp
