// Minimal binary serialization for trained models.
//
// The paper's deployment story ships a trained model from the vendor site to
// customer sites (Fig. 1); BinaryWriter/BinaryReader implement the on-disk
// format used by core::Predictor::Save/Load. The format is little-endian,
// versioned by the caller, and intentionally simple: fixed-width scalars,
// length-prefixed strings and vectors.
#pragma once

#include <cstdint>
#include <ostream>
#include <istream>
#include <string>
#include <vector>

namespace qpp {

/// Streams plain-old-data values to an ostream in little-endian order.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(os) {}

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteDoubles(const std::vector<double>& v);
  void WriteSizes(const std::vector<size_t>& v);

 private:
  void WriteRaw(const void* p, size_t n);
  std::ostream& os_;
};

/// Mirror image of BinaryWriter. Throws qpp::CheckFailure on truncated or
/// corrupt input (model files are trusted local artifacts; we fail loudly).
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is) : is_(is) {}

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  double ReadDouble();
  std::string ReadString();
  std::vector<double> ReadDoubles();
  std::vector<size_t> ReadSizes();

 private:
  void ReadRaw(void* p, size_t n);
  std::istream& is_;
};

}  // namespace qpp
