// Token stream definitions for the SQL subset.
#pragma once

#include <cstdint>
#include <string>

namespace qpp::sql {

enum class TokenType {
  kIdentifier,   // table / column / alias names
  kKeyword,      // normalized upper-case SQL keyword
  kInteger,      // integer literal
  kNumber,       // floating-point literal
  kString,       // 'quoted string' (quotes stripped)
  kSymbol,       // punctuation / operators: ( ) , . * = <> <= >= < > + - /
  kEnd,          // end of input
};

const char* TokenTypeName(TokenType t);

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;       // keyword (upper-cased), identifier, symbol, or raw literal
  double number = 0.0;    // numeric value for kInteger/kNumber
  size_t position = 0;    // byte offset in the source, for error messages

  bool IsKeyword(const char* kw) const;
  bool IsSymbol(const char* sym) const;
  std::string ToString() const;
};

/// True if `word` (upper-cased) is a reserved keyword of the subset grammar.
bool IsReservedKeyword(const std::string& upper);

}  // namespace qpp::sql
