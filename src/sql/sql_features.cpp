#include "sql/sql_features.h"

namespace qpp::sql {

namespace {

bool IsColumn(const Expr* e) {
  return e != nullptr && e->kind == ExprKind::kColumnRef;
}

bool IsLiteralish(const Expr* e) {
  if (e == nullptr) return false;
  if (e->kind == ExprKind::kLiteral) return true;
  if (e->kind == ExprKind::kArith) {
    return IsLiteralish(e->left.get()) && IsLiteralish(e->right.get());
  }
  return false;
}

/// True when both sides reference columns of *different* relations — the
/// textual definition of a join predicate. Same-relation column comparisons
/// count as selections (rare but possible, e.g. l_commitdate < l_receiptdate).
bool IsJoinPredicate(const Expr& cmp) {
  if (!IsColumn(cmp.left.get()) || !IsColumn(cmp.right.get())) return false;
  return cmp.left->table != cmp.right->table || cmp.left->table.empty();
}

void CountAggColumns(const Expr& e, SqlFeatures* f) {
  if (e.kind == ExprKind::kAgg) {
    f->aggregation_columns += 1;
    return;  // nested aggregates are not legal SQL; don't recurse
  }
  if (e.left) CountAggColumns(*e.left, f);
  if (e.right) CountAggColumns(*e.right, f);
}

void WalkPredicate(const Expr& e, SqlFeatures* f);
void WalkStmt(const SelectStmt& stmt, SqlFeatures* f, bool is_subquery);

void WalkPredicate(const Expr& e, SqlFeatures* f) {
  switch (e.kind) {
    case ExprKind::kLogical:
    case ExprKind::kNot:
      if (e.left) WalkPredicate(*e.left, f);
      if (e.right) WalkPredicate(*e.right, f);
      break;
    case ExprKind::kCompare: {
      const bool equality = e.cmp == CompareOp::kEq;
      if (IsJoinPredicate(e)) {
        f->join_predicates += 1;
        if (equality) {
          f->equijoin_predicates += 1;
        } else {
          f->nonequijoin_predicates += 1;
        }
      } else if ((IsColumn(e.left.get()) && IsLiteralish(e.right.get())) ||
                 (IsLiteralish(e.left.get()) && IsColumn(e.right.get()))) {
        f->selection_predicates += 1;
        if (equality) {
          f->equality_selections += 1;
        } else {
          f->nonequality_selections += 1;
        }
      }
      break;
    }
    case ExprKind::kBetween:
      f->selection_predicates += 1;
      f->nonequality_selections += 1;
      break;
    case ExprKind::kInList:
      f->selection_predicates += 1;
      f->equality_selections += 1;
      break;
    case ExprKind::kInSubquery:
      // The membership test itself acts like an equijoin with the subquery.
      f->join_predicates += 1;
      f->equijoin_predicates += 1;
      WalkStmt(*e.subquery, f, /*is_subquery=*/true);
      break;
    case ExprKind::kExists:
      WalkStmt(*e.subquery, f, /*is_subquery=*/true);
      break;
    default:
      break;
  }
}

void WalkStmt(const SelectStmt& stmt, SqlFeatures* f, bool is_subquery) {
  if (is_subquery) f->nested_subqueries += 1;
  if (stmt.where) WalkPredicate(*stmt.where, f);
  if (stmt.having) WalkPredicate(*stmt.having, f);
  for (const SelectItem& item : stmt.items) CountAggColumns(item.expr, f);
  if (stmt.having) CountAggColumns(*stmt.having, f);
  f->sort_columns += static_cast<double>(stmt.order_by.size());
}

}  // namespace

std::array<double, 9> SqlFeatures::ToVector() const {
  return {nested_subqueries,      selection_predicates,
          equality_selections,    nonequality_selections,
          join_predicates,        equijoin_predicates,
          nonequijoin_predicates, sort_columns,
          aggregation_columns};
}

std::array<std::string, 9> SqlFeatures::DimensionNames() {
  return {"nested_subqueries",      "selection_predicates",
          "equality_selections",    "nonequality_selections",
          "join_predicates",        "equijoin_predicates",
          "nonequijoin_predicates", "sort_columns",
          "aggregation_columns"};
}

SqlFeatures ExtractSqlFeatures(const SelectStmt& stmt) {
  SqlFeatures f;
  WalkStmt(stmt, &f, /*is_subquery=*/false);
  return f;
}

}  // namespace qpp::sql
