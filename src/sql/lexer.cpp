#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/str_util.h"

namespace qpp::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && text[i + 1] == '-') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentCont(text[j])) ++j;
      const std::string word = text.substr(i, j - i);
      const std::string upper = ToUpperAscii(word);
      if (IsReservedKeyword(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = ToLowerAscii(word);
      }
      out.push_back(tok);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      if (j < n && text[j] == '.') {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      }
      if (j < n && (text[j] == 'e' || text[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (text[k] == '+' || text[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(text[k]))) {
          is_float = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(text[j])))
            ++j;
        }
      }
      tok.type = is_float ? TokenType::kNumber : TokenType::kInteger;
      tok.text = text.substr(i, j - i);
      tok.number = std::strtod(tok.text.c_str(), nullptr);
      out.push_back(tok);
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      std::string value;
      bool closed = false;
      while (j < n) {
        if (text[j] == '\'') {
          if (j + 1 < n && text[j + 1] == '\'') {  // escaped quote
            value.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        value.push_back(text[j]);
        ++j;
      }
      if (!closed) {
        return Status::Error(StrFormat(
            "unterminated string literal at offset %zu", i));
      }
      tok.type = TokenType::kString;
      tok.text = value;
      out.push_back(tok);
      i = j;
      continue;
    }
    // Multi-char operators first.
    if (c == '<' && i + 1 < n && (text[i + 1] == '=' || text[i + 1] == '>')) {
      tok.type = TokenType::kSymbol;
      tok.text = text.substr(i, 2);
      out.push_back(tok);
      i += 2;
      continue;
    }
    if (c == '>' && i + 1 < n && text[i + 1] == '=') {
      tok.type = TokenType::kSymbol;
      tok.text = ">=";
      out.push_back(tok);
      i += 2;
      continue;
    }
    if (c == '!' && i + 1 < n && text[i + 1] == '=') {
      tok.type = TokenType::kSymbol;
      tok.text = "<>";  // normalize != to <>
      out.push_back(tok);
      i += 2;
      continue;
    }
    static const std::string kSingles = "(),.*=<>+-/;";
    if (kSingles.find(c) != std::string::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      out.push_back(tok);
      ++i;
      continue;
    }
    return Status::Error(
        StrFormat("unexpected character '%c' at offset %zu", c, i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  out.push_back(end);
  return out;
}

}  // namespace qpp::sql
