// Recursive-descent parser for the SQL subset (see ast.h for coverage).
#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace qpp::sql {

/// Parses a single SELECT statement. An optional trailing semicolon is
/// accepted; any other trailing content is an error.
Result<std::shared_ptr<SelectStmt>> Parse(const std::string& text);

}  // namespace qpp::sql
