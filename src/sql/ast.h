// Abstract syntax tree for the decision-support SQL subset.
//
// The subset covers what the paper's workloads need: multi-way joins
// (comma-style and JOIN..ON), conjunctive/disjunctive predicates, equality /
// inequality / BETWEEN / IN-list comparisons, IN/EXISTS nested subqueries,
// the five standard aggregates, GROUP BY / HAVING / ORDER BY / LIMIT.
//
// Expressions use a single tagged struct rather than a class hierarchy: the
// consumer set is small (feature extraction, logical plan building,
// selectivity modeling) and a flat representation keeps those walks simple.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace qpp::sql {

struct SelectStmt;

enum class ExprKind {
  kColumnRef,   ///< [table.]column
  kLiteral,     ///< number or 'string'
  kStar,        ///< * (only inside COUNT(*) or SELECT *)
  kCompare,     ///< left <op> right
  kLogical,     ///< left AND/OR right
  kNot,         ///< NOT left
  kArith,       ///< left +|-|*|/ right
  kBetween,     ///< left BETWEEN lo AND hi
  kInList,      ///< left IN (literal, ...)
  kInSubquery,  ///< left [NOT] IN (SELECT ...)
  kExists,      ///< [NOT] EXISTS (SELECT ...)
  kAgg,         ///< SUM/COUNT/AVG/MIN/MAX([DISTINCT] arg | *)
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };
enum class AggFunc { kSum, kCount, kAvg, kMin, kMax };

const char* CompareOpName(CompareOp op);
const char* ArithOpName(ArithOp op);
const char* AggFuncName(AggFunc f);

struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kColumnRef
  std::string table;   ///< alias or table name; empty when unqualified
  std::string column;

  // kLiteral
  double num = 0.0;
  std::string str;
  bool is_string = false;
  bool is_integer = false;

  // kCompare / kLogical / kArith / kNot / kBetween / kInList / kAgg operand
  CompareOp cmp = CompareOp::kEq;
  ArithOp arith = ArithOp::kAdd;
  bool is_and = true;  ///< for kLogical: AND vs OR
  std::unique_ptr<Expr> left;
  std::unique_ptr<Expr> right;

  // kBetween
  std::unique_ptr<Expr> lo;
  std::unique_ptr<Expr> hi;

  // kInList: literal members
  std::vector<Expr> list;

  // kInSubquery / kExists
  std::shared_ptr<SelectStmt> subquery;
  bool negated = false;

  // kAgg
  AggFunc agg = AggFunc::kCount;
  bool distinct = false;

  Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;
  Expr(Expr&&) = default;
  Expr& operator=(Expr&&) = default;

  /// Deep copy.
  Expr Clone() const;

  /// Unparses to SQL text (round-trips through the parser).
  std::string ToString() const;
};

/// Convenience constructors used by templates and tests.
Expr MakeColumnRef(std::string table, std::string column);
Expr MakeNumberLiteral(double value, bool is_integer = false);
Expr MakeStringLiteral(std::string value);
Expr MakeCompare(CompareOp op, Expr left, Expr right);
Expr MakeLogical(bool is_and, Expr left, Expr right);

struct SelectItem {
  Expr expr;
  std::string alias;  ///< empty when none
};

struct TableRef {
  std::string table;
  std::string alias;  ///< empty when none; lookups fall back to table name

  /// The name predicates use to reference this table.
  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
};

struct OrderItem {
  Expr expr;
  bool ascending = true;
};

/// A parsed SELECT statement.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::unique_ptr<Expr> where;   ///< null when absent
  std::vector<Expr> group_by;
  std::unique_ptr<Expr> having;  ///< null when absent
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  SelectStmt() = default;
  SelectStmt(const SelectStmt&) = delete;
  SelectStmt& operator=(const SelectStmt&) = delete;
  SelectStmt(SelectStmt&&) = default;
  SelectStmt& operator=(SelectStmt&&) = default;

  /// Unparses to SQL text.
  std::string ToString() const;
};

/// Splits a predicate tree into its top-level AND conjuncts (clones them).
std::vector<Expr> SplitConjuncts(const Expr& predicate);

}  // namespace qpp::sql
