// The paper's SQL-text feature vector (Section VI-D.1).
//
// Nine statistics computed from the SQL text alone:
//   1. number of nested subqueries
//   2. total number of selection predicates
//   3. number of equality selection predicates
//   4. number of non-equality selection predicates
//   5. total number of join predicates
//   6. number of equijoin predicates
//   7. number of non-equijoin predicates
//   8. number of sort columns
//   9. number of aggregation columns
//
// The paper finds this vector a *poor* basis for prediction because two
// queries with identical SQL statistics but different constants can have
// wildly different performance; we reproduce that negative result in
// bench_fig08_sql_features.
#pragma once

#include <array>
#include <string>

#include "sql/ast.h"

namespace qpp::sql {

struct SqlFeatures {
  double nested_subqueries = 0;
  double selection_predicates = 0;
  double equality_selections = 0;
  double nonequality_selections = 0;
  double join_predicates = 0;
  double equijoin_predicates = 0;
  double nonequijoin_predicates = 0;
  double sort_columns = 0;
  double aggregation_columns = 0;

  /// Fixed-order 9-element vector (order matches the list above).
  std::array<double, 9> ToVector() const;

  /// Human-readable dimension names matching ToVector() order.
  static std::array<std::string, 9> DimensionNames();
};

/// Extracts the nine SQL-text features from a parsed statement, recursing
/// into subqueries. A predicate comparing a column with a literal counts as
/// a selection; one comparing columns of two different relations counts as a
/// join predicate. BETWEEN and IN-lists count as one non-equality / one
/// equality selection respectively.
SqlFeatures ExtractSqlFeatures(const SelectStmt& stmt);

}  // namespace qpp::sql
