#include "sql/ast.h"

#include <sstream>

#include "common/check.h"
#include "common/str_util.h"

namespace qpp::sql {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
  }
  return "?";
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum: return "SUM";
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "?";
}

namespace {

std::unique_ptr<Expr> ClonePtr(const std::unique_ptr<Expr>& p) {
  if (!p) return nullptr;
  return std::make_unique<Expr>(p->Clone());
}

}  // namespace

Expr Expr::Clone() const {
  Expr e;
  e.kind = kind;
  e.table = table;
  e.column = column;
  e.num = num;
  e.str = str;
  e.is_string = is_string;
  e.is_integer = is_integer;
  e.cmp = cmp;
  e.arith = arith;
  e.is_and = is_and;
  e.left = ClonePtr(left);
  e.right = ClonePtr(right);
  e.lo = ClonePtr(lo);
  e.hi = ClonePtr(hi);
  e.list.reserve(list.size());
  for (const Expr& x : list) e.list.push_back(x.Clone());
  e.subquery = subquery;  // subqueries are shared (immutable after parse)
  e.negated = negated;
  e.agg = agg;
  e.distinct = distinct;
  return e;
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case ExprKind::kColumnRef:
      if (!table.empty()) os << table << ".";
      os << column;
      break;
    case ExprKind::kLiteral:
      if (is_string) {
        std::string escaped;
        for (char c : str) {
          escaped.push_back(c);
          if (c == '\'') escaped.push_back('\'');
        }
        os << "'" << escaped << "'";
      } else if (is_integer) {
        os << static_cast<long long>(num);
      } else {
        os << FormatG(num, 12);
      }
      break;
    case ExprKind::kStar:
      os << "*";
      break;
    case ExprKind::kCompare:
      os << left->ToString() << " " << CompareOpName(cmp) << " "
         << right->ToString();
      break;
    case ExprKind::kLogical:
      os << "(" << left->ToString() << (is_and ? " AND " : " OR ")
         << right->ToString() << ")";
      break;
    case ExprKind::kNot:
      os << "NOT (" << left->ToString() << ")";
      break;
    case ExprKind::kArith:
      os << "(" << left->ToString() << " " << ArithOpName(arith) << " "
         << right->ToString() << ")";
      break;
    case ExprKind::kBetween:
      os << left->ToString() << " BETWEEN " << lo->ToString() << " AND "
         << hi->ToString();
      break;
    case ExprKind::kInList: {
      os << left->ToString() << " IN (";
      for (size_t i = 0; i < list.size(); ++i) {
        if (i > 0) os << ", ";
        os << list[i].ToString();
      }
      os << ")";
      break;
    }
    case ExprKind::kInSubquery:
      os << left->ToString() << (negated ? " NOT IN (" : " IN (")
         << subquery->ToString() << ")";
      break;
    case ExprKind::kExists:
      os << (negated ? "NOT EXISTS (" : "EXISTS (") << subquery->ToString()
         << ")";
      break;
    case ExprKind::kAgg:
      os << AggFuncName(agg) << "(";
      if (distinct) os << "DISTINCT ";
      os << (left ? left->ToString() : "*") << ")";
      break;
  }
  return os.str();
}

Expr MakeColumnRef(std::string table, std::string column) {
  Expr e;
  e.kind = ExprKind::kColumnRef;
  e.table = std::move(table);
  e.column = std::move(column);
  return e;
}

Expr MakeNumberLiteral(double value, bool is_integer) {
  Expr e;
  e.kind = ExprKind::kLiteral;
  e.num = value;
  e.is_integer = is_integer;
  return e;
}

Expr MakeStringLiteral(std::string value) {
  Expr e;
  e.kind = ExprKind::kLiteral;
  e.str = std::move(value);
  e.is_string = true;
  return e;
}

Expr MakeCompare(CompareOp op, Expr left, Expr right) {
  Expr e;
  e.kind = ExprKind::kCompare;
  e.cmp = op;
  e.left = std::make_unique<Expr>(std::move(left));
  e.right = std::make_unique<Expr>(std::move(right));
  return e;
}

Expr MakeLogical(bool is_and, Expr left, Expr right) {
  Expr e;
  e.kind = ExprKind::kLogical;
  e.is_and = is_and;
  e.left = std::make_unique<Expr>(std::move(left));
  e.right = std::make_unique<Expr>(std::move(right));
  return e;
}

std::string SelectStmt::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  if (distinct) os << "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) os << ", ";
    os << items[i].expr.ToString();
    if (!items[i].alias.empty()) os << " AS " << items[i].alias;
  }
  os << " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) os << ", ";
    os << from[i].table;
    if (!from[i].alias.empty()) os << " " << from[i].alias;
  }
  if (where) os << " WHERE " << where->ToString();
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << group_by[i].ToString();
    }
  }
  if (having) os << " HAVING " << having->ToString();
  if (!order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << order_by[i].expr.ToString();
      if (!order_by[i].ascending) os << " DESC";
    }
  }
  if (limit) os << " LIMIT " << *limit;
  return os.str();
}

std::vector<Expr> SplitConjuncts(const Expr& predicate) {
  std::vector<Expr> out;
  if (predicate.kind == ExprKind::kLogical && predicate.is_and) {
    QPP_CHECK(predicate.left && predicate.right);
    std::vector<Expr> l = SplitConjuncts(*predicate.left);
    std::vector<Expr> r = SplitConjuncts(*predicate.right);
    for (Expr& e : l) out.push_back(std::move(e));
    for (Expr& e : r) out.push_back(std::move(e));
    return out;
  }
  out.push_back(predicate.Clone());
  return out;
}

}  // namespace qpp::sql
