// Hand-rolled lexer for the SQL subset.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace qpp::sql {

/// Tokenizes `text` into a token vector terminated by a kEnd token.
/// Fails on unterminated strings and unrecognized characters.
Result<std::vector<Token>> Lex(const std::string& text);

}  // namespace qpp::sql
