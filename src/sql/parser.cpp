#include "sql/parser.h"

#include <utility>

#include "common/str_util.h"
#include "sql/lexer.h"

namespace qpp::sql {

namespace {

/// Parser state: a token cursor plus the first error encountered.
/// All Parse* methods return by value and set ok_=false on error; callers
/// must check ok() before trusting results (helpers bail out early).
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::shared_ptr<SelectStmt>> ParseStatement() {
    auto stmt = std::make_shared<SelectStmt>();
    *stmt = ParseSelect();
    if (!ok_) return Status::Error(error_);
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      Fail("unexpected trailing input: " + Peek().ToString());
      return Status::Error(error_);
    }
    return stmt;
  }

 private:
  SelectStmt ParseSelect() {
    SelectStmt stmt;
    if (!ExpectKeyword("SELECT")) return stmt;
    if (Peek().IsKeyword("DISTINCT")) {
      stmt.distinct = true;
      Advance();
    }
    // Select list.
    while (true) {
      SelectItem item;
      if (Peek().IsSymbol("*")) {
        Advance();
        item.expr.kind = ExprKind::kStar;
      } else {
        item.expr = ParseExpr();
        if (!ok_) return stmt;
        if (Peek().IsKeyword("AS")) {
          Advance();
          item.alias = ExpectIdentifier();
          if (!ok_) return stmt;
        } else if (Peek().type == TokenType::kIdentifier) {
          item.alias = Peek().text;
          Advance();
        }
      }
      stmt.items.push_back(std::move(item));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (!ExpectKeyword("FROM")) return stmt;
    // FROM list with comma joins and JOIN..ON.
    stmt.from.push_back(ParseTableRef());
    if (!ok_) return stmt;
    while (true) {
      if (Peek().IsSymbol(",")) {
        Advance();
        stmt.from.push_back(ParseTableRef());
        if (!ok_) return stmt;
        continue;
      }
      if (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER") ||
          Peek().IsKeyword("LEFT")) {
        if (Peek().IsKeyword("INNER") || Peek().IsKeyword("LEFT")) Advance();
        if (!ExpectKeyword("JOIN")) return stmt;
        stmt.from.push_back(ParseTableRef());
        if (!ok_) return stmt;
        if (!ExpectKeyword("ON")) return stmt;
        Expr cond = ParseExpr();
        if (!ok_) return stmt;
        AppendWhere(&stmt, std::move(cond));
        continue;
      }
      break;
    }
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      Expr cond = ParseExpr();
      if (!ok_) return stmt;
      AppendWhere(&stmt, std::move(cond));
    }
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      if (!ExpectKeyword("BY")) return stmt;
      while (true) {
        stmt.group_by.push_back(ParseExpr());
        if (!ok_) return stmt;
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (Peek().IsKeyword("HAVING")) {
      Advance();
      Expr cond = ParseExpr();
      if (!ok_) return stmt;
      stmt.having = std::make_unique<Expr>(std::move(cond));
    }
    if (Peek().IsKeyword("ORDER")) {
      Advance();
      if (!ExpectKeyword("BY")) return stmt;
      while (true) {
        OrderItem item;
        item.expr = ParseExpr();
        if (!ok_) return stmt;
        if (Peek().IsKeyword("ASC")) {
          Advance();
        } else if (Peek().IsKeyword("DESC")) {
          item.ascending = false;
          Advance();
        }
        stmt.order_by.push_back(std::move(item));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (Peek().IsKeyword("LIMIT")) {
      Advance();
      if (Peek().type != TokenType::kInteger) {
        Fail("expected integer after LIMIT, got " + Peek().ToString());
        return stmt;
      }
      stmt.limit = static_cast<int64_t>(Peek().number);
      Advance();
    }
    return stmt;
  }

  TableRef ParseTableRef() {
    TableRef ref;
    ref.table = ExpectIdentifier();
    if (!ok_) return ref;
    if (Peek().IsKeyword("AS")) {
      Advance();
      ref.alias = ExpectIdentifier();
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Peek().text;
      Advance();
    }
    return ref;
  }

  // expr := or_expr
  Expr ParseExpr() { return ParseOr(); }

  Expr ParseOr() {
    Expr left = ParseAnd();
    while (ok_ && Peek().IsKeyword("OR")) {
      Advance();
      Expr right = ParseAnd();
      if (!ok_) return left;
      left = MakeLogical(/*is_and=*/false, std::move(left), std::move(right));
    }
    return left;
  }

  Expr ParseAnd() {
    Expr left = ParseNot();
    while (ok_ && Peek().IsKeyword("AND")) {
      Advance();
      Expr right = ParseNot();
      if (!ok_) return left;
      left = MakeLogical(/*is_and=*/true, std::move(left), std::move(right));
    }
    return left;
  }

  Expr ParseNot() {
    if (Peek().IsKeyword("NOT") && !PeekAhead(1).IsKeyword("EXISTS")) {
      Advance();
      Expr inner = ParseNot();
      Expr e;
      e.kind = ExprKind::kNot;
      e.left = std::make_unique<Expr>(std::move(inner));
      return e;
    }
    return ParsePredicate();
  }

  Expr ParsePredicate() {
    if (Peek().IsKeyword("EXISTS") ||
        (Peek().IsKeyword("NOT") && PeekAhead(1).IsKeyword("EXISTS"))) {
      Expr e;
      e.kind = ExprKind::kExists;
      if (Peek().IsKeyword("NOT")) {
        e.negated = true;
        Advance();
      }
      Advance();  // EXISTS
      if (!ExpectSymbol("(")) return e;
      e.subquery = std::make_shared<SelectStmt>(ParseSelect());
      if (!ok_) return e;
      ExpectSymbol(")");
      return e;
    }

    Expr left = ParseAdditive();
    if (!ok_) return left;

    if (Peek().IsKeyword("BETWEEN")) {
      Advance();
      Expr lo = ParseAdditive();
      if (!ok_) return left;
      if (!ExpectKeyword("AND")) return left;
      Expr hi = ParseAdditive();
      if (!ok_) return left;
      Expr e;
      e.kind = ExprKind::kBetween;
      e.left = std::make_unique<Expr>(std::move(left));
      e.lo = std::make_unique<Expr>(std::move(lo));
      e.hi = std::make_unique<Expr>(std::move(hi));
      return e;
    }

    bool negated = false;
    if (Peek().IsKeyword("NOT") && PeekAhead(1).IsKeyword("IN")) {
      negated = true;
      Advance();
    }
    if (Peek().IsKeyword("IN")) {
      Advance();
      if (!ExpectSymbol("(")) return left;
      if (Peek().IsKeyword("SELECT")) {
        Expr e;
        e.kind = ExprKind::kInSubquery;
        e.negated = negated;
        e.left = std::make_unique<Expr>(std::move(left));
        e.subquery = std::make_shared<SelectStmt>(ParseSelect());
        if (!ok_) return e;
        ExpectSymbol(")");
        return e;
      }
      Expr e;
      e.kind = ExprKind::kInList;
      e.negated = negated;
      e.left = std::make_unique<Expr>(std::move(left));
      while (true) {
        Expr lit = ParseFactor();
        if (!ok_) return e;
        if (lit.kind != ExprKind::kLiteral) {
          Fail("IN list members must be literals");
          return e;
        }
        e.list.push_back(std::move(lit));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      ExpectSymbol(")");
      return e;
    }
    if (negated) {
      Fail("expected IN after NOT");
      return left;
    }

    // Optional comparison.
    CompareOp op;
    if (PeekCompareOp(&op)) {
      Advance();
      Expr right = ParseAdditive();
      if (!ok_) return left;
      return MakeCompare(op, std::move(left), std::move(right));
    }
    return left;
  }

  Expr ParseAdditive() {
    Expr left = ParseTerm();
    while (ok_ && (Peek().IsSymbol("+") || Peek().IsSymbol("-"))) {
      const ArithOp op =
          Peek().IsSymbol("+") ? ArithOp::kAdd : ArithOp::kSub;
      Advance();
      Expr right = ParseTerm();
      if (!ok_) return left;
      Expr e;
      e.kind = ExprKind::kArith;
      e.arith = op;
      e.left = std::make_unique<Expr>(std::move(left));
      e.right = std::make_unique<Expr>(std::move(right));
      left = std::move(e);
    }
    return left;
  }

  Expr ParseTerm() {
    Expr left = ParseFactor();
    while (ok_ && (Peek().IsSymbol("*") || Peek().IsSymbol("/"))) {
      const ArithOp op =
          Peek().IsSymbol("*") ? ArithOp::kMul : ArithOp::kDiv;
      Advance();
      Expr right = ParseFactor();
      if (!ok_) return left;
      Expr e;
      e.kind = ExprKind::kArith;
      e.arith = op;
      e.left = std::make_unique<Expr>(std::move(left));
      e.right = std::make_unique<Expr>(std::move(right));
      left = std::move(e);
    }
    return left;
  }

  Expr ParseFactor() {
    const Token& t = Peek();
    if (t.type == TokenType::kInteger || t.type == TokenType::kNumber) {
      Expr e = MakeNumberLiteral(t.number, t.type == TokenType::kInteger);
      Advance();
      return e;
    }
    if (t.type == TokenType::kString) {
      Expr e = MakeStringLiteral(t.text);
      Advance();
      return e;
    }
    if (t.IsSymbol("-")) {
      Advance();
      Expr inner = ParseFactor();
      if (!ok_) return inner;
      if (inner.kind == ExprKind::kLiteral && !inner.is_string) {
        inner.num = -inner.num;
        return inner;
      }
      Expr e;
      e.kind = ExprKind::kArith;
      e.arith = ArithOp::kSub;
      e.left = std::make_unique<Expr>(MakeNumberLiteral(0.0, true));
      e.right = std::make_unique<Expr>(std::move(inner));
      return e;
    }
    if (t.IsSymbol("(")) {
      Advance();
      Expr inner = ParseExpr();
      if (!ok_) return inner;
      ExpectSymbol(")");
      return inner;
    }
    if (t.type == TokenType::kKeyword &&
        (t.text == "SUM" || t.text == "COUNT" || t.text == "AVG" ||
         t.text == "MIN" || t.text == "MAX")) {
      Expr e;
      e.kind = ExprKind::kAgg;
      if (t.text == "SUM") e.agg = AggFunc::kSum;
      else if (t.text == "COUNT") e.agg = AggFunc::kCount;
      else if (t.text == "AVG") e.agg = AggFunc::kAvg;
      else if (t.text == "MIN") e.agg = AggFunc::kMin;
      else e.agg = AggFunc::kMax;
      Advance();
      if (!ExpectSymbol("(")) return e;
      if (Peek().IsKeyword("DISTINCT")) {
        e.distinct = true;
        Advance();
      }
      if (Peek().IsSymbol("*")) {
        Advance();  // COUNT(*): left stays null
      } else {
        Expr arg = ParseExpr();
        if (!ok_) return e;
        e.left = std::make_unique<Expr>(std::move(arg));
      }
      ExpectSymbol(")");
      return e;
    }
    if (t.type == TokenType::kIdentifier) {
      std::string first = t.text;
      Advance();
      if (Peek().IsSymbol(".")) {
        Advance();
        if (Peek().IsSymbol("*")) {
          Advance();
          Expr e;
          e.kind = ExprKind::kStar;
          e.table = first;
          return e;
        }
        std::string col = ExpectIdentifier();
        if (!ok_) return Expr();
        return MakeColumnRef(first, col);
      }
      return MakeColumnRef("", first);
    }
    Fail("unexpected token: " + t.ToString());
    return Expr();
  }

  bool PeekCompareOp(CompareOp* op) {
    const Token& t = Peek();
    if (t.type != TokenType::kSymbol) return false;
    if (t.text == "=") *op = CompareOp::kEq;
    else if (t.text == "<>") *op = CompareOp::kNe;
    else if (t.text == "<") *op = CompareOp::kLt;
    else if (t.text == "<=") *op = CompareOp::kLe;
    else if (t.text == ">") *op = CompareOp::kGt;
    else if (t.text == ">=") *op = CompareOp::kGe;
    else return false;
    return true;
  }

  static void AppendWhere(SelectStmt* stmt, Expr cond) {
    if (!stmt->where) {
      stmt->where = std::make_unique<Expr>(std::move(cond));
      return;
    }
    Expr combined = MakeLogical(/*is_and=*/true, std::move(*stmt->where),
                                std::move(cond));
    stmt->where = std::make_unique<Expr>(std::move(combined));
  }

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAhead(size_t n) const {
    const size_t i = std::min(pos_ + n, tokens_.size() - 1);
    return tokens_[i];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool ExpectKeyword(const char* kw) {
    if (!ok_) return false;
    if (!Peek().IsKeyword(kw)) {
      Fail(std::string("expected ") + kw + ", got " + Peek().ToString());
      return false;
    }
    Advance();
    return true;
  }

  bool ExpectSymbol(const char* sym) {
    if (!ok_) return false;
    if (!Peek().IsSymbol(sym)) {
      Fail(std::string("expected '") + sym + "', got " + Peek().ToString());
      return false;
    }
    Advance();
    return true;
  }

  std::string ExpectIdentifier() {
    if (!ok_) return "";
    if (Peek().type != TokenType::kIdentifier) {
      Fail("expected identifier, got " + Peek().ToString());
      return "";
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  void Fail(const std::string& message) {
    if (ok_) {
      ok_ = false;
      error_ = StrFormat("parse error at offset %zu: %s", Peek().position,
                         message.c_str());
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace

Result<std::shared_ptr<SelectStmt>> Parse(const std::string& text) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseStatement();
}

}  // namespace qpp::sql
