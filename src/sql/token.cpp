#include "sql/token.h"

#include <set>

#include "common/str_util.h"

namespace qpp::sql {

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kKeyword: return "keyword";
    case TokenType::kInteger: return "integer";
    case TokenType::kNumber: return "number";
    case TokenType::kString: return "string";
    case TokenType::kSymbol: return "symbol";
    case TokenType::kEnd: return "end-of-input";
  }
  return "?";
}

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && text == kw;
}

bool Token::IsSymbol(const char* sym) const {
  return type == TokenType::kSymbol && text == sym;
}

std::string Token::ToString() const {
  if (type == TokenType::kEnd) return "<end>";
  return text;
}

bool IsReservedKeyword(const std::string& upper) {
  static const std::set<std::string> kKeywords = {
      "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",     "HAVING", "ORDER",
      "LIMIT",  "AS",    "AND",    "OR",     "NOT",    "IN",     "EXISTS",
      "BETWEEN", "JOIN", "INNER",  "LEFT",   "ON",     "ASC",    "DESC",
      "SUM",    "COUNT", "AVG",    "MIN",    "MAX",    "DISTINCT",
  };
  return kKeywords.count(upper) > 0;
}

}  // namespace qpp::sql
