// Physical plan trees in the style of the paper's Fig. 9 Neoview plan:
// root / exchange / split / partitioning / file_scan / nested_join / ...
// Every node carries BOTH the optimizer's estimated cardinality (which
// feeds the query-plan feature vector) and the hidden true cardinality
// (which the execution simulator consumes).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace qpp::optimizer {

/// Physical operators. The feature vector has one (count, cardinality-sum)
/// pair per operator, so this enum is part of the model's public contract;
/// append new operators at the end.
enum class PhysOp {
  kRoot = 0,        ///< final result composition on the coordinator
  kExchange,        ///< repartition / merge rows across processors
  kSplit,           ///< broadcast rows to all processors
  kPartitionAccess, ///< partitioned access layer above a scan
  kFileScan,        ///< base table scan
  kNestedJoin,      ///< nested-loops join (broadcast inner)
  kHashJoin,        ///< grace hash join (repartitioned inputs)
  kMergeJoin,       ///< co-located merge join on partitioning keys
  kSort,            ///< per-node sort (ORDER BY or merge-join prep)
  kHashGroupBy,     ///< hash aggregation (partial or final)
  kSortGroupBy,     ///< sorted aggregation
  kScalarAgg,       ///< aggregation without GROUP BY (one output row)
  kTopN,            ///< ORDER BY + LIMIT
  kFilter,          ///< residual post-join filter
};

constexpr size_t kNumPhysOps = 14;

const char* PhysOpName(PhysOp op);

struct PhysicalNode {
  PhysOp op = PhysOp::kRoot;
  std::vector<std::unique_ptr<PhysicalNode>> children;

  /// Output cardinalities (rows).
  double est_rows = 0.0;
  double true_rows = 0.0;
  /// Input cardinalities; for kFileScan this is the table row count — the
  /// paper's "records accessed". For other ops it is the sum of child
  /// outputs.
  double est_input_rows = 0.0;
  double true_input_rows = 0.0;

  /// Bytes per output row.
  double row_width = 8.0;

  std::string table;   ///< kFileScan: catalog table name
  std::string detail;  ///< pretty-printing annotation

  bool semi = false;        ///< joins: semi-join (subquery) edge
  bool broadcast = false;   ///< kSplit: replicate to all processors
  size_t num_predicates = 0;  ///< kFileScan/kFilter: predicate count
  size_t num_group_cols = 0;
  size_t num_aggs = 0;

  PhysicalNode() = default;
  explicit PhysicalNode(PhysOp o) : op(o) {}

  /// Pre-order walk.
  void Visit(const std::function<void(const PhysicalNode&)>& fn) const;

  /// Indented tree rendering (est/true cardinalities inline).
  std::string ToString(int indent = 0) const;
};

struct PhysicalPlan {
  std::unique_ptr<PhysicalNode> root;
  /// The SQL text the plan came from (kept for reports; may be empty).
  std::string sql;
  /// Stable hash of the query text; seeds per-query simulator noise.
  uint64_t query_hash = 0;
  /// The optimizer's abstract cost estimate (dimensionless units, as in the
  /// paper's Fig. 17 — intentionally NOT a time unit).
  double optimizer_cost = 0.0;

  std::string ToString() const;
  /// Graphviz DOT rendering of the plan tree (operator, table, est/true
  /// cardinalities per node), for documentation and debugging.
  std::string ToDot(const std::string& graph_name = "plan") const;
  void Visit(const std::function<void(const PhysicalNode&)>& fn) const;

  /// Sum of file-scan input cardinalities — the paper's "records accessed".
  double TrueRecordsAccessed() const;
  /// Sum of file-scan output cardinalities — the paper's "records used".
  double TrueRecordsUsed() const;
};

}  // namespace qpp::optimizer
