#include "optimizer/logical_plan.h"

#include <map>
#include <set>

#include "common/str_util.h"

namespace qpp::optimizer {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::SelectStmt;

/// Resolution scope: effective relation name -> index; plus the catalog for
/// unqualified column lookups.
struct Scope {
  const catalog::Catalog* catalog = nullptr;
  const std::vector<LogicalRelation>* relations = nullptr;
  std::map<std::string, size_t> by_name;
  const Scope* outer = nullptr;  ///< enclosing query scope (for correlation)

  /// Resolves a column reference to (relation index, is_outer). Returns
  /// false when unresolvable.
  bool Resolve(const Expr& col, size_t* rel, bool* is_outer) const {
    *is_outer = false;
    if (!col.table.empty()) {
      auto it = by_name.find(col.table);
      if (it != by_name.end()) {
        *rel = it->second;
        return true;
      }
      if (outer != nullptr && outer->Resolve(col, rel, is_outer)) {
        *is_outer = true;
        return true;
      }
      return false;
    }
    // Unqualified: search base relations for a table owning this column.
    for (size_t i = 0; i < relations->size(); ++i) {
      const LogicalRelation& r = (*relations)[i];
      if (r.IsDerived()) continue;
      const catalog::Table* t = catalog->FindTable(r.table);
      if (t != nullptr && t->FindColumn(col.column) != nullptr) {
        *rel = i;
        return true;
      }
    }
    if (outer != nullptr && outer->Resolve(col, rel, is_outer)) {
      *is_outer = true;
      return true;
    }
    return false;
  }
};

/// Collects the relation indices referenced by an expression (this scope
/// only); `outer_refs` collects references that resolve in an enclosing
/// scope. Returns false on unresolvable column references.
bool CollectRelations(const Expr& e, const Scope& scope,
                      std::set<size_t>* rels, bool* has_outer_ref,
                      std::string* error) {
  switch (e.kind) {
    case ExprKind::kColumnRef: {
      size_t rel;
      bool is_outer;
      if (!scope.Resolve(e, &rel, &is_outer)) {
        *error = "unresolvable column: " + e.ToString();
        return false;
      }
      if (is_outer) {
        *has_outer_ref = true;
      } else {
        rels->insert(rel);
      }
      return true;
    }
    case ExprKind::kLiteral:
    case ExprKind::kStar:
      return true;
    case ExprKind::kInSubquery:
    case ExprKind::kExists:
      // Subqueries are classified separately before this is called.
      if (e.left != nullptr &&
          !CollectRelations(*e.left, scope, rels, has_outer_ref, error)) {
        return false;
      }
      return true;
    default:
      for (const Expr* child :
           {e.left.get(), e.right.get(), e.lo.get(), e.hi.get()}) {
        if (child != nullptr &&
            !CollectRelations(*child, scope, rels, has_outer_ref, error)) {
          return false;
        }
      }
      for (const Expr& member : e.list) {
        if (!CollectRelations(member, scope, rels, has_outer_ref, error)) {
          return false;
        }
      }
      return true;
  }
}

const Expr* FirstColumnRef(const Expr& e) {
  if (e.kind == ExprKind::kColumnRef) return &e;
  for (const Expr* child :
       {e.left.get(), e.right.get(), e.lo.get(), e.hi.get()}) {
    if (child != nullptr) {
      const Expr* c = FirstColumnRef(*child);
      if (c != nullptr) return c;
    }
  }
  return nullptr;
}

bool IsLiteralish(const Expr* e) {
  if (e == nullptr) return false;
  if (e->kind == ExprKind::kLiteral) return true;
  if (e->kind == ExprKind::kArith) {
    return IsLiteralish(e->left.get()) && IsLiteralish(e->right.get());
  }
  return false;
}

size_t CountAggregates(const Expr& e) {
  if (e.kind == ExprKind::kAgg) return 1;
  size_t n = 0;
  for (const Expr* child :
       {e.left.get(), e.right.get(), e.lo.get(), e.hi.get()}) {
    if (child != nullptr) n += CountAggregates(*child);
  }
  return n;
}

struct Binder {
  const catalog::Catalog* catalog;
  std::string error;

  Result<LogicalPlan> Bind(const SelectStmt& stmt, const Scope* outer) {
    LogicalPlan plan;
    plan.catalog = catalog;

    Scope scope;
    scope.catalog = catalog;
    scope.relations = &plan.relations;
    scope.outer = outer;

    // FROM list: base tables only at this level (derived relations are
    // introduced by subquery decorrelation below).
    for (const sql::TableRef& ref : stmt.from) {
      if (catalog->FindTable(ref.table) == nullptr) {
        return Status::Error("unknown table: " + ref.table);
      }
      LogicalRelation rel;
      rel.table = ref.table;
      rel.alias = ref.EffectiveName();
      if (scope.by_name.count(rel.alias) > 0) {
        return Status::Error("duplicate relation name: " + rel.alias);
      }
      scope.by_name[rel.alias] = plan.relations.size();
      plan.relations.push_back(std::move(rel));
    }

    // Classify WHERE conjuncts.
    if (stmt.where != nullptr) {
      for (Expr& conjunct : sql::SplitConjuncts(*stmt.where)) {
        Status s = ClassifyConjunct(std::move(conjunct), &plan, &scope);
        if (!s.ok()) return s;
      }
    }

    // Aggregation / sort / limit shape.
    plan.num_group_columns = stmt.group_by.size();
    for (const Expr& g : stmt.group_by) {
      const Expr* col = FirstColumnRef(g);
      if (col != nullptr) {
        size_t rel;
        bool is_outer;
        if (scope.Resolve(*col, &rel, &is_outer) && !is_outer) {
          plan.group_column_refs.emplace_back(rel, col->column);
        }
      }
    }
    for (const sql::SelectItem& item : stmt.items) {
      plan.num_aggregates += CountAggregates(item.expr);
    }
    if (stmt.having != nullptr) {
      plan.num_aggregates += CountAggregates(*stmt.having);
      plan.num_residual_predicates += 1;
    }
    plan.distinct = stmt.distinct;
    plan.num_sort_columns = stmt.order_by.size();
    plan.limit = stmt.limit;

    // Output width: 8 bytes per select item as a baseline, plus actual
    // column widths when resolvable.
    double width = 0.0;
    for (const sql::SelectItem& item : stmt.items) {
      const Expr* col =
          item.expr.kind == ExprKind::kColumnRef ? &item.expr : nullptr;
      double w = 8.0;
      if (col != nullptr) {
        size_t rel;
        bool is_outer;
        if (scope.Resolve(*col, &rel, &is_outer) && !is_outer &&
            !plan.relations[rel].IsDerived()) {
          const catalog::Table* t =
              catalog->FindTable(plan.relations[rel].table);
          const catalog::Column* c =
              t != nullptr ? t->FindColumn(col->column) : nullptr;
          if (c != nullptr) w = c->avg_width_bytes;
        }
      }
      width += w;
    }
    plan.output_width = std::max(width, 8.0);
    return plan;
  }

  Status ClassifyConjunct(Expr conjunct, LogicalPlan* plan, Scope* scope) {
    // Subquery predicates first.
    if (conjunct.kind == ExprKind::kInSubquery ||
        conjunct.kind == ExprKind::kExists) {
      return BindSubquery(std::move(conjunct), plan, scope);
    }

    std::set<size_t> rels;
    bool has_outer_ref = false;
    std::string err;
    if (!CollectRelations(conjunct, *scope, &rels, &has_outer_ref, &err)) {
      return Status::Error(err);
    }
    if (has_outer_ref) {
      // Correlated predicate inside a subquery: the caller (BindSubquery)
      // extracts these before binding; reaching here means correlation in
      // an unsupported position — treat as residual.
      plan->num_residual_predicates += 1;
      return Status::Ok();
    }
    if (rels.size() == 1) {
      const size_t rel = *rels.begin();
      BoundSelection sel;
      const Expr* col = FirstColumnRef(conjunct);
      sel.column = col != nullptr ? col->column : "";
      sel.semantic_key = plan->relations[rel].table + "|" + conjunct.ToString();
      sel.expr = std::move(conjunct);
      plan->relations[rel].selections.push_back(std::move(sel));
      return Status::Ok();
    }
    if (rels.size() == 2 && conjunct.kind == ExprKind::kCompare &&
        conjunct.left != nullptr &&
        conjunct.left->kind == ExprKind::kColumnRef &&
        conjunct.right != nullptr &&
        conjunct.right->kind == ExprKind::kColumnRef) {
      size_t lrel, rrel;
      bool louter, router;
      QPP_CHECK(scope->Resolve(*conjunct.left, &lrel, &louter));
      QPP_CHECK(scope->Resolve(*conjunct.right, &rrel, &router));
      BoundJoin join;
      join.left_rel = lrel;
      join.right_rel = rrel;
      join.left_column = conjunct.left->column;
      join.right_column = conjunct.right->column;
      join.equi = conjunct.cmp == sql::CompareOp::kEq;
      join.semantic_key = conjunct.ToString();
      plan->joins.push_back(std::move(join));
      return Status::Ok();
    }
    // Anything else (multi-relation OR trees, 3-relation arithmetic, NOT):
    // a residual post-join filter.
    plan->num_residual_predicates += 1;
    return Status::Ok();
  }

  Status BindSubquery(Expr pred, LogicalPlan* plan, Scope* scope) {
    QPP_CHECK(pred.subquery != nullptr);
    // Extract correlated conjuncts from the subquery's WHERE: predicates
    // that compare an inner column with an outer column become semi-join
    // edges; the rest stay inside the derived plan.
    SelectStmt inner;
    inner.distinct = pred.subquery->distinct;
    for (const sql::SelectItem& item : pred.subquery->items) {
      inner.items.push_back({item.expr.Clone(), item.alias});
    }
    for (const sql::TableRef& ref : pred.subquery->from) inner.from.push_back(ref);
    for (const Expr& g : pred.subquery->group_by) {
      inner.group_by.push_back(g.Clone());
    }
    inner.limit = pred.subquery->limit;

    // Inner scope for classifying correlation (relations not yet bound, so
    // build a throwaway binder scope from the FROM list).
    LogicalPlan probe_plan;
    probe_plan.catalog = catalog;
    Scope inner_scope;
    inner_scope.catalog = catalog;
    inner_scope.relations = &probe_plan.relations;
    inner_scope.outer = scope;
    for (const sql::TableRef& ref : inner.from) {
      if (catalog->FindTable(ref.table) == nullptr) {
        return Status::Error("unknown table in subquery: " + ref.table);
      }
      LogicalRelation rel;
      rel.table = ref.table;
      rel.alias = ref.EffectiveName();
      inner_scope.by_name[rel.alias] = probe_plan.relations.size();
      probe_plan.relations.push_back(std::move(rel));
    }

    struct CorrelatedEdge {
      size_t outer_rel;
      std::string outer_column;
      std::string inner_column;
      bool equi;
      std::string key;
    };
    std::vector<CorrelatedEdge> edges;
    std::vector<Expr> kept;
    if (pred.subquery->where != nullptr) {
      for (Expr& conjunct : sql::SplitConjuncts(*pred.subquery->where)) {
        bool correlated = false;
        if (conjunct.kind == ExprKind::kCompare &&
            conjunct.left != nullptr &&
            conjunct.left->kind == ExprKind::kColumnRef &&
            conjunct.right != nullptr &&
            conjunct.right->kind == ExprKind::kColumnRef) {
          size_t lrel = 0, rrel = 0;
          bool louter = false, router = false;
          const bool lok = inner_scope.Resolve(*conjunct.left, &lrel, &louter);
          const bool rok =
              inner_scope.Resolve(*conjunct.right, &rrel, &router);
          if (lok && rok && louter != router) {
            CorrelatedEdge edge;
            edge.equi = conjunct.cmp == sql::CompareOp::kEq;
            edge.key = conjunct.ToString();
            if (louter) {
              edge.outer_rel = lrel;
              edge.outer_column = conjunct.left->column;
              edge.inner_column = conjunct.right->column;
            } else {
              edge.outer_rel = rrel;
              edge.outer_column = conjunct.right->column;
              edge.inner_column = conjunct.left->column;
            }
            edges.push_back(std::move(edge));
            correlated = true;
          }
        }
        if (!correlated) kept.push_back(std::move(conjunct));
      }
    }
    // Rebuild inner WHERE from the kept conjuncts.
    for (Expr& k : kept) {
      if (!inner.where) {
        inner.where = std::make_unique<Expr>(std::move(k));
      } else {
        Expr combined = sql::MakeLogical(true, std::move(*inner.where),
                                         std::move(k));
        inner.where = std::make_unique<Expr>(std::move(combined));
      }
    }

    Result<LogicalPlan> sub = Bind(inner, scope);
    if (!sub.ok()) return sub.status();

    LogicalRelation derived;
    derived.alias = StrFormat("subquery_%zu", plan->relations.size());
    derived.derived = std::make_shared<LogicalPlan>(std::move(sub).value());
    const size_t derived_idx = plan->relations.size();
    plan->relations.push_back(std::move(derived));

    if (pred.kind == ExprKind::kInSubquery) {
      QPP_CHECK(pred.left != nullptr);
      if (pred.left->kind != ExprKind::kColumnRef) {
        return Status::Error("IN subquery requires a column on the left");
      }
      size_t rel;
      bool is_outer;
      if (!scope->Resolve(*pred.left, &rel, &is_outer) || is_outer) {
        return Status::Error("unresolvable IN column: " +
                             pred.left->ToString());
      }
      BoundJoin join;
      join.left_rel = rel;
      join.right_rel = derived_idx;
      join.left_column = pred.left->column;
      // Join against the subquery's first output column when nameable.
      const LogicalPlan& dp = *plan->relations[derived_idx].derived;
      join.right_column = "";
      if (!dp.relations.empty()) {
        // Best effort: reuse the IN column name for NDV lookup fallbacks.
        join.right_column = pred.left->column;
      }
      join.equi = true;
      join.semi = true;
      join.semantic_key = "IN|" + pred.left->ToString();
      plan->joins.push_back(std::move(join));
    }
    for (const CorrelatedEdge& edge : edges) {
      BoundJoin join;
      join.left_rel = edge.outer_rel;
      join.right_rel = derived_idx;
      join.left_column = edge.outer_column;
      join.right_column = edge.inner_column;
      join.equi = edge.equi;
      join.semi = true;
      join.semantic_key = "EXISTS|" + edge.key;
      plan->joins.push_back(std::move(join));
    }
    if (pred.kind == ExprKind::kExists && edges.empty()) {
      // Uncorrelated EXISTS: effectively a constant filter; model as
      // residual.
      plan->num_residual_predicates += 1;
    }
    return Status::Ok();
  }
};

}  // namespace

Result<LogicalPlan> BuildLogicalPlan(const sql::SelectStmt& stmt,
                                     const catalog::Catalog& catalog) {
  Binder binder;
  binder.catalog = &catalog;
  return binder.Bind(stmt, nullptr);
}

}  // namespace qpp::optimizer
