#include "optimizer/cost_model.h"

#include <cmath>

namespace qpp::optimizer {

double EstimatePlanCost(const PhysicalNode& root,
                        const CostModelWeights& w) {
  double cost = 0.0;
  root.Visit([&](const PhysicalNode& n) {
    const double rows = std::max(n.est_rows, 1.0);
    const double in_rows = std::max(n.est_input_rows, rows);
    switch (n.op) {
      case PhysOp::kFileScan:
        cost += w.scan * in_rows +
                0.15 * w.scan * in_rows *
                    static_cast<double>(n.num_predicates);
        break;
      case PhysOp::kPartitionAccess:
        cost += w.partition_access * rows;
        break;
      case PhysOp::kExchange:
        cost += w.exchange * in_rows;
        break;
      case PhysOp::kSplit:
        cost += w.split * in_rows;
        break;
      case PhysOp::kNestedJoin:
        // The optimizer believes the inner is indexed/cached: cost linear
        // in the larger input, not in the cross product. This optimism is a
        // classic source of the 100x cost-vs-time mismatches in Fig. 17.
        cost += w.nested_join * in_rows;
        break;
      case PhysOp::kHashJoin:
        cost += w.hash_join * in_rows;
        break;
      case PhysOp::kMergeJoin:
        cost += w.merge_join * in_rows;
        break;
      case PhysOp::kSort:
      case PhysOp::kTopN:
        cost += w.sort_log_factor * in_rows *
                std::log2(std::max(in_rows, 2.0));
        break;
      case PhysOp::kHashGroupBy:
      case PhysOp::kSortGroupBy:
      case PhysOp::kScalarAgg:
        cost += w.group_by * in_rows;
        break;
      case PhysOp::kFilter:
        cost += w.filter * in_rows;
        break;
      case PhysOp::kRoot:
        cost += w.root * rows;
        break;
    }
    cost += w.per_operator_overhead;
  });
  return cost * w.output_scale;
}

}  // namespace qpp::optimizer
