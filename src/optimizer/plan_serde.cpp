#include "optimizer/plan_serde.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/serde.h"

namespace qpp::optimizer {

namespace {

constexpr uint32_t kMagic = 0x4E4C5051;  // "QPLN"
constexpr uint32_t kVersion = 1;
constexpr uint64_t kMaxNodes = 1 << 20;  // sanity bound on corrupt input

void WriteNode(const PhysicalNode& node, BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(node.op));
  w->WriteDouble(node.est_rows);
  w->WriteDouble(node.true_rows);
  w->WriteDouble(node.est_input_rows);
  w->WriteDouble(node.true_input_rows);
  w->WriteDouble(node.row_width);
  w->WriteString(node.table);
  w->WriteString(node.detail);
  w->WriteU32((node.semi ? 1u : 0u) | (node.broadcast ? 2u : 0u));
  w->WriteU64(node.num_predicates);
  w->WriteU64(node.num_group_cols);
  w->WriteU64(node.num_aggs);
  w->WriteU64(node.children.size());
  for (const auto& child : node.children) WriteNode(*child, w);
}

std::unique_ptr<PhysicalNode> ReadNode(BinaryReader* r, size_t* budget) {
  QPP_CHECK_MSG(*budget > 0, "plan node count exceeds sanity bound");
  --*budget;
  auto node = std::make_unique<PhysicalNode>();
  const uint32_t op = r->ReadU32();
  QPP_CHECK_MSG(op < kNumPhysOps, "unknown operator id in plan file");
  node->op = static_cast<PhysOp>(op);
  node->est_rows = r->ReadDouble();
  node->true_rows = r->ReadDouble();
  node->est_input_rows = r->ReadDouble();
  node->true_input_rows = r->ReadDouble();
  node->row_width = r->ReadDouble();
  node->table = r->ReadString();
  node->detail = r->ReadString();
  const uint32_t flags = r->ReadU32();
  node->semi = (flags & 1u) != 0;
  node->broadcast = (flags & 2u) != 0;
  node->num_predicates = static_cast<size_t>(r->ReadU64());
  node->num_group_cols = static_cast<size_t>(r->ReadU64());
  node->num_aggs = static_cast<size_t>(r->ReadU64());
  const uint64_t n_children = r->ReadU64();
  QPP_CHECK_MSG(n_children <= kMaxNodes, "implausible child count");
  node->children.reserve(n_children);
  for (uint64_t i = 0; i < n_children; ++i) {
    node->children.push_back(ReadNode(r, budget));
  }
  return node;
}

}  // namespace

void WritePlan(const PhysicalPlan& plan, std::ostream* os) {
  QPP_CHECK(plan.root != nullptr);
  BinaryWriter w(*os);
  w.WriteU32(kMagic);
  w.WriteU32(kVersion);
  w.WriteString(plan.sql);
  w.WriteU64(plan.query_hash);
  w.WriteDouble(plan.optimizer_cost);
  WriteNode(*plan.root, &w);
}

Result<PhysicalPlan> ReadPlan(std::istream* is) {
  try {
    BinaryReader r(*is);
    if (r.ReadU32() != kMagic) return Status::Error("not a qpp plan file");
    if (r.ReadU32() != kVersion) {
      return Status::Error("unsupported plan file version");
    }
    PhysicalPlan plan;
    plan.sql = r.ReadString();
    plan.query_hash = r.ReadU64();
    plan.optimizer_cost = r.ReadDouble();
    size_t budget = kMaxNodes;
    plan.root = ReadNode(&r, &budget);
    return plan;
  } catch (const CheckFailure& e) {
    return Status::Error(std::string("plan read failed: ") + e.what());
  }
}

Status SavePlanFile(const PhysicalPlan& plan, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os.good()) return Status::Error("cannot open for write: " + path);
  WritePlan(plan, &os);
  os.flush();
  if (!os.good()) return Status::Error("write failed: " + path);
  return Status::Ok();
}

Result<PhysicalPlan> LoadPlanFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return Status::Error("cannot open for read: " + path);
  return ReadPlan(&is);
}

}  // namespace qpp::optimizer
