// Dual cardinality estimation: the optimizer's estimates and the hidden
// ground truth.
//
// The reproduced paper leans on the gap between what the optimizer *thinks*
// cardinalities are (which feeds the query-plan feature vector) and what the
// engine *actually* processes (which drives the measured metrics). We model
// both sides:
//
//  * kEstimate — a System-R style estimator: 1/NDV equality selectivity,
//    range interpolation against min/max, independence across predicates,
//    1/max(NDV) equi-join selectivity. This is what a real optimizer
//    computes from catalog statistics.
//  * kTrue — the estimate perturbed by a *deterministic* per-predicate error
//    factor seeded from the predicate's semantic key (column, operator,
//    constants) plus a world seed, with correlation damping across
//    conjuncts. Determinism matters twice: the same predicate behaves
//    identically wherever it appears (so nearest-neighbor learning has
//    signal), and every experiment is reproducible.
//
// Error magnitudes follow the folk wisdom the paper cites (skewed data and
// erroneous estimates): equality predicates on non-key columns err the most
// (value skew), range predicates less, key ranges least; join errors are
// small for FK->PK edges and large otherwise.
#pragma once

#include <cstdint>
#include <string>

#include "catalog/catalog.h"
#include "optimizer/logical_plan.h"

namespace qpp::optimizer {

enum class CardMode {
  kEstimate,  ///< what the optimizer believes (feature-vector input)
  kTrue,      ///< what the engine actually sees (metrics input)
};

class CardinalityModel {
 public:
  /// `world_seed` fixes the hidden data truth; two models with the same seed
  /// agree on every true selectivity.
  CardinalityModel(const catalog::Catalog* catalog, uint64_t world_seed);

  /// Selectivity of one bound selection predicate against its table.
  double SelectionSelectivity(const catalog::Table& table,
                              const BoundSelection& sel, CardMode mode) const;

  /// Combined selectivity of all selections on a base relation. In kTrue
  /// mode, multi-predicate conjunctions are damped (exponent < 1) to model
  /// correlated columns defeating the optimizer's independence assumption.
  double RelationSelectivity(const LogicalRelation& rel, CardMode mode) const;

  /// Rows surviving the relation's selections. Base relations only
  /// (derived relations are planned recursively by the optimizer).
  double RelationCardinality(const LogicalRelation& rel, CardMode mode) const;

  /// Per-edge join selectivity factor. `left_ndv`/`right_ndv` are the
  /// effective NDVs of the join columns (pass 0 for unknown).
  double JoinEdgeSelectivity(const BoundJoin& join, double left_ndv,
                             double right_ndv, CardMode mode) const;

  /// Output cardinality of joining two inputs across `edges`. Semi-join
  /// edges cap the output at the left input's cardinality.
  double JoinOutputCardinality(double left_card, double right_card,
                               const std::vector<const BoundJoin*>& edges,
                               const std::vector<double>& left_ndvs,
                               const std::vector<double>& right_ndvs,
                               CardMode mode) const;

  /// Group count for GROUP BY over `input_card` rows with the given group
  /// column NDVs.
  double GroupCardinality(double input_card,
                          const std::vector<double>& group_ndvs,
                          CardMode mode, const std::string& key) const;

  /// Selectivity applied per residual (unclassifiable) predicate.
  static constexpr double kResidualSelectivity = 1.0 / 3.0;

  /// NDV of `column` on base table `table_name`, 0 when unknown.
  double ColumnNdv(const std::string& table_name,
                   const std::string& column) const;

  uint64_t world_seed() const { return world_seed_; }

 private:
  /// Deterministic standard-normal draw keyed by the predicate semantics.
  double SeededGaussian(const std::string& key, const char* salt) const;

  const catalog::Catalog* catalog_;
  uint64_t world_seed_;
};

}  // namespace qpp::optimizer
