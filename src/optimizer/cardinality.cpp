#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace qpp::optimizer {

namespace {

using sql::Expr;
using sql::ExprKind;

constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;
constexpr double kDefaultNonEquiJoinSelectivity = 0.3;
constexpr double kMinSelectivity = 1e-9;

double Clamp01(double s) {
  return std::min(1.0, std::max(kMinSelectivity, s));
}

/// Estimated selectivity of an arbitrary predicate expression against one
/// table's statistics (System-R style, independence everywhere).
double EstimateExpr(const catalog::Table& table, const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLogical: {
      const double l = EstimateExpr(table, *e.left);
      const double r = EstimateExpr(table, *e.right);
      return e.is_and ? Clamp01(l * r) : Clamp01(l + r - l * r);
    }
    case ExprKind::kNot:
      return Clamp01(1.0 - EstimateExpr(table, *e.left));
    case ExprKind::kCompare: {
      // Identify the column side and the literal side.
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      if (e.left && e.left->kind == ExprKind::kColumnRef) col = e.left.get();
      if (e.right && e.right->kind == ExprKind::kColumnRef) {
        if (col == nullptr) {
          col = e.right.get();
        } else {
          // column-vs-column on the same table (e.g. returned after sold):
          // default comparison selectivity.
          return e.cmp == sql::CompareOp::kEq ? 0.1
                                              : kDefaultRangeSelectivity;
        }
      }
      if (e.left && e.left->kind == ExprKind::kLiteral) lit = e.left.get();
      if (e.right && e.right->kind == ExprKind::kLiteral) lit = e.right.get();
      if (col == nullptr) return kDefaultRangeSelectivity;
      const catalog::Column* stats = table.FindColumn(col->column);
      const double ndv = stats != nullptr ? std::max(stats->ndv, 1.0) : 100.0;
      switch (e.cmp) {
        case sql::CompareOp::kEq:
          return Clamp01(1.0 / ndv);
        case sql::CompareOp::kNe:
          return Clamp01(1.0 - 1.0 / ndv);
        default: {
          if (stats == nullptr || lit == nullptr || lit->is_string ||
              stats->max_value <= stats->min_value) {
            return kDefaultRangeSelectivity;
          }
          const double span = stats->max_value - stats->min_value;
          double frac = (lit->num - stats->min_value) / span;
          frac = std::min(1.0, std::max(0.0, frac));
          const bool less = e.cmp == sql::CompareOp::kLt ||
                            e.cmp == sql::CompareOp::kLe;
          // Account for operand order: "lit < col" means col > lit.
          const bool col_on_left = (e.left.get() == col);
          const double sel =
              (less == col_on_left) ? frac : (1.0 - frac);
          return Clamp01(sel);
        }
      }
    }
    case ExprKind::kBetween: {
      const Expr* col =
          e.left && e.left->kind == ExprKind::kColumnRef ? e.left.get()
                                                         : nullptr;
      const catalog::Column* stats =
          col != nullptr ? table.FindColumn(col->column) : nullptr;
      if (stats == nullptr || stats->max_value <= stats->min_value ||
          e.lo == nullptr || e.hi == nullptr ||
          e.lo->kind != ExprKind::kLiteral ||
          e.hi->kind != ExprKind::kLiteral || e.lo->is_string) {
        return 0.25;
      }
      const double span = stats->max_value - stats->min_value;
      const double width = std::max(0.0, e.hi->num - e.lo->num);
      return Clamp01(width / span);
    }
    case ExprKind::kInList: {
      const Expr* col =
          e.left && e.left->kind == ExprKind::kColumnRef ? e.left.get()
                                                         : nullptr;
      const catalog::Column* stats =
          col != nullptr ? table.FindColumn(col->column) : nullptr;
      const double ndv = stats != nullptr ? std::max(stats->ndv, 1.0) : 100.0;
      const double sel =
          static_cast<double>(e.list.size()) / ndv;
      return e.negated ? Clamp01(1.0 - sel) : Clamp01(sel);
    }
    default:
      return kDefaultRangeSelectivity;
  }
}

/// Error magnitude (log-normal sigma) for the hidden truth of a predicate.
double TrueErrorSigma(const catalog::Table& table, const Expr& e) {
  if (e.kind == ExprKind::kCompare && e.cmp == sql::CompareOp::kEq) {
    const Expr* col =
        e.left && e.left->kind == ExprKind::kColumnRef ? e.left.get()
        : e.right && e.right->kind == ExprKind::kColumnRef ? e.right.get()
                                                           : nullptr;
    const catalog::Column* stats =
        col != nullptr ? table.FindColumn(col->column) : nullptr;
    if (stats != nullptr && stats->is_primary_key) return 0.10;
    return 0.45;  // equality on a data column: value skew dominates
  }
  if (e.kind == ExprKind::kBetween) {
    return 0.12;  // date/numeric ranges: histograms estimate these well
  }
  if (e.kind == ExprKind::kCompare) {
    return 0.25;  // open ranges: mild distribution non-uniformity
  }
  if (e.kind == ExprKind::kInList) return 0.35;
  if (e.kind == ExprKind::kLogical || e.kind == ExprKind::kNot) return 0.30;
  return 0.25;
}

/// True when the optimizer's histograms capture this predicate's constant
/// exactly: equality / IN-list against a column whose domain fits in a
/// histogram (one bucket per value). For such predicates real optimizers
/// know the per-constant frequency, so their estimate tracks the truth.
bool HistogramCovers(const catalog::Table& table, const Expr& e) {
  constexpr double kHistogramNdvLimit = 2048.0;
  const Expr* col = nullptr;
  if (e.kind == ExprKind::kCompare && e.cmp == sql::CompareOp::kEq) {
    if (e.left && e.left->kind == ExprKind::kColumnRef) col = e.left.get();
    if (e.right && e.right->kind == ExprKind::kColumnRef) {
      if (col != nullptr) return false;  // column-vs-column
      col = e.right.get();
    }
  } else if ((e.kind == ExprKind::kInList || e.kind == ExprKind::kBetween) &&
             e.left && e.left->kind == ExprKind::kColumnRef) {
    // Range histograms (equi-depth) pin down numeric/date BETWEEN bounds
    // regardless of NDV.
    if (e.kind == ExprKind::kBetween) {
      const catalog::Column* stats = table.FindColumn(e.left->column);
      return stats != nullptr && stats->max_value > stats->min_value;
    }
    col = e.left.get();
  }
  if (col == nullptr) return false;
  const catalog::Column* stats = table.FindColumn(col->column);
  return stats != nullptr && stats->ndv <= kHistogramNdvLimit;
}

}  // namespace

CardinalityModel::CardinalityModel(const catalog::Catalog* catalog,
                                   uint64_t world_seed)
    : catalog_(catalog), world_seed_(world_seed) {
  QPP_CHECK(catalog != nullptr);
}

double CardinalityModel::SeededGaussian(const std::string& key,
                                        const char* salt) const {
  Rng rng(SplitMix64(world_seed_ ^ HashString64(key + "#" + salt)));
  return rng.Gaussian();
}

double CardinalityModel::SelectionSelectivity(const catalog::Table& table,
                                              const BoundSelection& sel,
                                              CardMode mode) const {
  const double uniform = EstimateExpr(table, sel.expr);
  const double sigma = TrueErrorSigma(table, sel.expr);
  const double z = SeededGaussian(sel.semantic_key, "sel");
  const double truth = Clamp01(uniform * std::exp(sigma * z));
  if (mode == CardMode::kTrue) return truth;
  if (HistogramCovers(table, sel.expr)) {
    // Histogram-backed estimate: tracks the per-constant truth with only a
    // small precision error.
    const double z2 = SeededGaussian(sel.semantic_key, "hist");
    return Clamp01(truth * std::exp(0.08 * z2));
  }
  return uniform;
}

double CardinalityModel::RelationSelectivity(const LogicalRelation& rel,
                                             CardMode mode) const {
  QPP_CHECK(!rel.IsDerived());
  const catalog::Table& table = catalog_->GetTable(rel.table);
  double product = 1.0;
  for (const BoundSelection& sel : rel.selections) {
    product *= SelectionSelectivity(table, sel, mode);
  }
  if (mode == CardMode::kTrue && rel.selections.size() >= 2) {
    // Correlated columns: the true conjunction is less selective than the
    // independence product. Damping exponent 0.85 per extra predicate,
    // floored at 0.6.
    const double gamma = std::max(
        0.75, std::pow(0.92, static_cast<double>(rel.selections.size() - 1)));
    product = std::pow(product, gamma);
  }
  return Clamp01(product);
}

double CardinalityModel::RelationCardinality(const LogicalRelation& rel,
                                             CardMode mode) const {
  QPP_CHECK(!rel.IsDerived());
  const catalog::Table& table = catalog_->GetTable(rel.table);
  const double card = table.row_count * RelationSelectivity(rel, mode);
  return std::max(card, mode == CardMode::kTrue ? 0.0 : 1.0);
}

double CardinalityModel::JoinEdgeSelectivity(const BoundJoin& join,
                                             double left_ndv,
                                             double right_ndv,
                                             CardMode mode) const {
  double est;
  bool key_join = false;
  if (join.equi) {
    const double ndv = std::max({left_ndv, right_ndv, 1.0});
    est = 1.0 / ndv;
    // FK->PK joins (one side's NDV equals the other's domain) have near-
    // exact estimates in practice; detect via matching NDVs.
    key_join = left_ndv > 0 && right_ndv > 0 &&
               std::abs(left_ndv - right_ndv) / std::max(left_ndv, right_ndv) <
                   0.05;
  } else {
    est = kDefaultNonEquiJoinSelectivity;
  }
  if (mode == CardMode::kEstimate) return Clamp01(est);
  const double sigma = join.equi ? (key_join ? 0.08 : 0.30) : 0.35;
  const double z = SeededGaussian(join.semantic_key, "join");
  return Clamp01(est * std::exp(sigma * z));
}

double CardinalityModel::JoinOutputCardinality(
    double left_card, double right_card,
    const std::vector<const BoundJoin*>& edges,
    const std::vector<double>& left_ndvs,
    const std::vector<double>& right_ndvs, CardMode mode) const {
  QPP_CHECK(edges.size() == left_ndvs.size() &&
            edges.size() == right_ndvs.size());
  double out = left_card * right_card;
  bool semi = false;
  for (size_t i = 0; i < edges.size(); ++i) {
    out *= JoinEdgeSelectivity(*edges[i], left_ndvs[i], right_ndvs[i], mode);
    semi = semi || edges[i]->semi;
  }
  if (semi) out = std::min(out, left_card);
  if (mode == CardMode::kEstimate) out = std::max(out, 1.0);
  return std::max(out, 0.0);
}

double CardinalityModel::GroupCardinality(
    double input_card, const std::vector<double>& group_ndvs, CardMode mode,
    const std::string& key) const {
  if (group_ndvs.empty()) return 1.0;  // scalar aggregate
  double domain = 1.0;
  for (double ndv : group_ndvs) domain *= std::max(ndv, 1.0);
  double groups = std::min(input_card, domain);
  if (mode == CardMode::kTrue) {
    const double z = SeededGaussian(key, "group");
    groups = std::min(input_card, groups * std::exp(0.4 * z));
  }
  return std::max(groups, 1.0);
}

double CardinalityModel::ColumnNdv(const std::string& table_name,
                                   const std::string& column) const {
  const catalog::Table* t = catalog_->FindTable(table_name);
  if (t == nullptr) return 0.0;
  const catalog::Column* c = t->FindColumn(column);
  return c != nullptr ? c->ndv : 0.0;
}

}  // namespace qpp::optimizer
