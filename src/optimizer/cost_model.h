// The optimizer's abstract cost model.
//
// Like the commercial optimizer the paper compares against (Fig. 17), this
// produces a dimensionless cost from ESTIMATED cardinalities only. It is
// intentionally not a time predictor: units do not map onto seconds, the
// model ignores memory pressure / caching / message latency, and it inherits
// every cardinality estimation error. The paper's point — and ours — is that
// this number correlates poorly with actual elapsed time, while the learned
// model does well.
#pragma once

#include "optimizer/physical_plan.h"

namespace qpp::optimizer {

/// Per-operator weights in "cost units per estimated row".
struct CostModelWeights {
  double scan = 1.0;
  double partition_access = 0.1;
  double exchange = 0.6;
  double split = 0.8;
  double nested_join = 2.5;
  double hash_join = 1.8;
  double merge_join = 1.2;
  double sort_log_factor = 0.4;   ///< multiplied by rows * log2(rows)
  double group_by = 1.5;
  double filter = 0.3;
  double root = 0.2;
  double per_operator_overhead = 50.0;
  double output_scale = 1e-4;     ///< final scaling into "cost units"
};

/// Computes the abstract optimizer cost of a plan from its estimated
/// cardinalities.
double EstimatePlanCost(const PhysicalNode& root,
                        const CostModelWeights& weights = {});

}  // namespace qpp::optimizer
