#include "optimizer/join_order.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace qpp::optimizer {

EdgeBundle CollectJoinEdges(
    const LogicalPlan& plan, size_t r,
    const std::function<bool(size_t)>& in_set,
    const std::function<double(size_t, const std::string&)>& column_ndv) {
  EdgeBundle out;
  for (const BoundJoin& j : plan.joins) {
    const bool left_in = in_set(j.left_rel);
    const bool right_in = in_set(j.right_rel);
    if (j.right_rel == r && left_in) {
      out.edges.push_back(&j);
      out.set_ndvs.push_back(column_ndv(j.left_rel, j.left_column));
      out.rel_ndvs.push_back(column_ndv(j.right_rel, j.right_column));
    } else if (j.left_rel == r && right_in) {
      out.edges.push_back(&j);
      out.set_ndvs.push_back(column_ndv(j.right_rel, j.right_column));
      out.rel_ndvs.push_back(column_ndv(j.left_rel, j.left_column));
    }
  }
  return out;
}

namespace {

/// Can relation r be appended after the set? Semi-joined (derived) relations
/// must come after the outer relation their edge filters, and an outer
/// relation must not be appended after its semi-joined partner.
bool CanAdd(const LogicalPlan& plan, size_t r,
            const std::function<bool(size_t)>& in_set) {
  for (const BoundJoin& j : plan.joins) {
    if (!j.semi) continue;
    if (j.right_rel == r && !in_set(j.left_rel)) return false;
    if (j.left_rel == r && in_set(j.right_rel)) return false;
  }
  return true;
}

bool CanSeed(const LogicalPlan& plan, size_t r) {
  for (const BoundJoin& j : plan.joins) {
    if (j.semi && j.right_rel == r) return false;
  }
  return true;
}

JoinOrder GreedyOrder(
    const LogicalPlan& plan, const CardinalityModel& model,
    const std::vector<double>& est_cards,
    const std::function<double(size_t, const std::string&)>& column_ndv) {
  const size_t n = plan.relations.size();
  std::vector<bool> used(n, false);
  const auto in_set = [&](size_t i) { return used[i]; };

  JoinOrder order;
  // Seed: smallest valid relation.
  size_t seed = n;
  for (size_t r = 0; r < n; ++r) {
    if (!CanSeed(plan, r)) continue;
    if (seed == n || est_cards[r] < est_cards[seed]) seed = r;
  }
  if (seed == n) seed = 0;  // pathological: all semi-targeted
  used[seed] = true;
  order.sequence.push_back(seed);
  double card = est_cards[seed];
  order.estimated_cost = card;

  while (order.sequence.size() < n) {
    size_t best = n;
    double best_card = std::numeric_limits<double>::infinity();
    bool best_connected = false;
    for (size_t r = 0; r < n; ++r) {
      if (used[r] || !CanAdd(plan, r, in_set)) continue;
      EdgeBundle bundle = CollectJoinEdges(plan, r, in_set, column_ndv);
      const bool connected = !bundle.edges.empty();
      const double next = model.JoinOutputCardinality(
          card, est_cards[r], bundle.edges, bundle.set_ndvs, bundle.rel_ndvs,
          CardMode::kEstimate);
      // Prefer connected relations; among equals, the smallest result.
      if ((connected && !best_connected) ||
          (connected == best_connected && next < best_card)) {
        best = r;
        best_card = next;
        best_connected = connected;
      }
    }
    QPP_CHECK_MSG(best != n, "join ordering wedged (semi-join cycle?)");
    used[best] = true;
    order.sequence.push_back(best);
    card = best_card;
    order.estimated_cost += best_card;
  }
  return order;
}

}  // namespace

JoinOrder OrderJoins(
    const LogicalPlan& plan, const CardinalityModel& model,
    const std::vector<double>& est_cards,
    const std::function<double(size_t, const std::string&)>& column_ndv) {
  const size_t n = plan.relations.size();
  QPP_CHECK(est_cards.size() == n);
  QPP_CHECK(n >= 1);
  if (n == 1) {
    JoinOrder order;
    order.sequence.push_back(0);
    return order;
  }
  if (n > kDpRelationLimit) {
    return GreedyOrder(plan, model, est_cards, column_ndv);
  }

  // Left-deep DP over subsets.
  struct State {
    double cost = std::numeric_limits<double>::infinity();
    double card = 0.0;
    size_t prev_mask = 0;
    size_t added = 0;
    bool valid = false;
  };
  const size_t full = (size_t{1} << n) - 1;
  std::vector<State> dp(full + 1);

  for (size_t r = 0; r < n; ++r) {
    if (!CanSeed(plan, r)) continue;
    State& s = dp[size_t{1} << r];
    // Seeding cost = the seed's own cardinality: breaks ties between
    // left-deep orders with identical intermediates in favor of starting
    // from the smallest relation (what real optimizers do).
    s.cost = est_cards[r];
    s.card = est_cards[r];
    s.added = r;
    s.prev_mask = 0;
    s.valid = true;
  }

  for (size_t mask = 1; mask <= full; ++mask) {
    const State& cur = dp[mask];
    if (!cur.valid) continue;
    const auto in_set = [&](size_t i) { return (mask >> i) & 1; };
    for (size_t r = 0; r < n; ++r) {
      if (in_set(r) || !CanAdd(plan, r, in_set)) continue;
      EdgeBundle bundle = CollectJoinEdges(plan, r, in_set, column_ndv);
      const double next_card = model.JoinOutputCardinality(
          cur.card, est_cards[r], bundle.edges, bundle.set_ndvs,
          bundle.rel_ndvs, CardMode::kEstimate);
      const double next_cost = cur.cost + next_card;
      State& nxt = dp[mask | (size_t{1} << r)];
      if (!nxt.valid || next_cost < nxt.cost) {
        nxt.valid = true;
        nxt.cost = next_cost;
        nxt.card = next_card;
        nxt.prev_mask = mask;
        nxt.added = r;
      }
    }
  }

  if (!dp[full].valid) {
    // Semi-join constraints can make some seeds invalid in odd graphs;
    // fall back to greedy which always produces an order.
    return GreedyOrder(plan, model, est_cards, column_ndv);
  }

  JoinOrder order;
  order.estimated_cost = dp[full].cost;
  std::vector<size_t> rev;
  size_t mask = full;
  while (mask != 0) {
    rev.push_back(dp[mask].added);
    mask = dp[mask].prev_mask;
  }
  order.sequence.assign(rev.rbegin(), rev.rend());
  return order;
}

}  // namespace qpp::optimizer
