#include "optimizer/physical_plan.h"

#include <sstream>

#include "common/str_util.h"

namespace qpp::optimizer {

const char* PhysOpName(PhysOp op) {
  switch (op) {
    case PhysOp::kRoot: return "root";
    case PhysOp::kExchange: return "exchange";
    case PhysOp::kSplit: return "split";
    case PhysOp::kPartitionAccess: return "partitioning";
    case PhysOp::kFileScan: return "file_scan";
    case PhysOp::kNestedJoin: return "nested_join";
    case PhysOp::kHashJoin: return "hash_join";
    case PhysOp::kMergeJoin: return "merge_join";
    case PhysOp::kSort: return "sort";
    case PhysOp::kHashGroupBy: return "hash_groupby";
    case PhysOp::kSortGroupBy: return "sort_groupby";
    case PhysOp::kScalarAgg: return "scalar_agg";
    case PhysOp::kTopN: return "top_n";
    case PhysOp::kFilter: return "filter";
  }
  return "?";
}

void PhysicalNode::Visit(
    const std::function<void(const PhysicalNode&)>& fn) const {
  fn(*this);
  for (const auto& child : children) child->Visit(fn);
}

std::string PhysicalNode::ToString(int indent) const {
  std::ostringstream os;
  for (int i = 0; i < indent; ++i) os << "  ";
  os << PhysOpName(op);
  if (!table.empty()) os << " [ " << table << " ]";
  if (semi) os << " (semi)";
  if (broadcast) os << " (broadcast)";
  if (!detail.empty()) os << " {" << detail << "}";
  os << StrFormat("  est=%s true=%s", FormatG(est_rows).c_str(),
                  FormatG(true_rows).c_str());
  os << "\n";
  for (const auto& child : children) os << child->ToString(indent + 1);
  return os.str();
}

std::string PhysicalPlan::ToString() const {
  return root != nullptr ? root->ToString() : std::string("<empty plan>\n");
}

void PhysicalPlan::Visit(
    const std::function<void(const PhysicalNode&)>& fn) const {
  if (root != nullptr) root->Visit(fn);
}

namespace {

size_t EmitDotNode(const PhysicalNode& node, size_t* next_id,
                   std::ostringstream* os) {
  const size_t id = (*next_id)++;
  std::string label = PhysOpName(node.op);
  if (!node.table.empty()) label += "\\n" + node.table;
  if (node.semi) label += " (semi)";
  if (node.broadcast) label += " (broadcast)";
  label += StrFormat("\\nest %s / true %s", FormatG(node.est_rows).c_str(),
                     FormatG(node.true_rows).c_str());
  *os << "  n" << id << " [shape=box, label=\"" << label << "\"];\n";
  for (const auto& child : node.children) {
    const size_t child_id = EmitDotNode(*child, next_id, os);
    *os << "  n" << id << " -> n" << child_id << ";\n";
  }
  return id;
}

}  // namespace

std::string PhysicalPlan::ToDot(const std::string& graph_name) const {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=TB;\n";
  if (root != nullptr) {
    size_t next_id = 0;
    EmitDotNode(*root, &next_id, &os);
  }
  os << "}\n";
  return os.str();
}

double PhysicalPlan::TrueRecordsAccessed() const {
  double total = 0.0;
  Visit([&](const PhysicalNode& n) {
    if (n.op == PhysOp::kFileScan) total += n.true_input_rows;
  });
  return total;
}

double PhysicalPlan::TrueRecordsUsed() const {
  double total = 0.0;
  Visit([&](const PhysicalNode& n) {
    if (n.op == PhysOp::kFileScan) total += n.true_rows;
  });
  return total;
}

}  // namespace qpp::optimizer
