// The query optimizer: SQL text -> parallel physical plan with estimated
// (and hidden true) cardinalities, plus an abstract cost estimate.
//
// Plan shape mirrors the Neoview plans shown in the paper's Fig. 9:
// partitioned scans under `partitioning` nodes, broadcast (`split`) inners
// for nested-loop joins, `exchange` repartitioning around hash joins and
// aggregation, and a final exchange+root pair composing the result on the
// coordinator. The degree of parallelism influences physical operator
// choice (broadcast becomes costlier with more nodes), so different system
// configurations genuinely produce different plans — an effect the paper
// observed when moving from the 4-node to the 32-node system.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "optimizer/cardinality.h"
#include "optimizer/logical_plan.h"
#include "optimizer/physical_plan.h"

namespace qpp::optimizer {

/// Default hidden-data-truth seed; experiments share it so that the same
/// predicate is "true" the same way everywhere.
constexpr uint64_t kDefaultWorldSeed = 0x5EEDF00DCAFEBEEFull;

struct OptimizerOptions {
  uint64_t world_seed = kDefaultWorldSeed;
  /// Number of processors the plan will run on (operator choice input).
  int nodes_used = 4;
  /// Base row budget for broadcasting a nested-join inner; divided by
  /// nodes_used, so bigger systems broadcast less eagerly.
  double broadcast_row_budget = 50000.0;
};

class Optimizer {
 public:
  Optimizer(const catalog::Catalog* catalog, OptimizerOptions options = {});

  /// Parses, binds, and plans a SQL statement.
  Result<PhysicalPlan> Plan(const std::string& sql_text) const;

  /// Plans an already-parsed statement. `sql_text` is kept on the plan for
  /// reporting and to seed per-query noise.
  Result<PhysicalPlan> Plan(const sql::SelectStmt& stmt,
                            const std::string& sql_text) const;

  const CardinalityModel& cardinality_model() const { return cards_; }
  const OptimizerOptions& options() const { return options_; }

 private:
  struct Fragment {
    std::unique_ptr<PhysicalNode> node;
    double est_rows = 0.0;
    double true_rows = 0.0;
    double width = 8.0;
  };

  /// Plans one logical (sub)query into a fragment (no root/final exchange).
  Fragment PlanLogical(const LogicalPlan& plan) const;

  Fragment PlanRelation(const LogicalPlan& plan, size_t rel_index) const;

  const catalog::Catalog* catalog_;
  OptimizerOptions options_;
  CardinalityModel cards_;
};

}  // namespace qpp::optimizer
