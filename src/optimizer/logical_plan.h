// Logical query representation: base relations with pushed-down selections,
// a join graph, aggregation/sort/limit properties, and (decorrelated)
// subqueries as semi-joined derived relations.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "sql/ast.h"

namespace qpp::optimizer {

/// A selection predicate bound to one base relation.
struct BoundSelection {
  sql::Expr expr;          ///< the (cloned) predicate text
  std::string column;      ///< primary column referenced (for stats lookup)
  /// Stable key identifying this predicate's semantics (column + op +
  /// constants); hashing it seeds the hidden true-selectivity model so that
  /// identical predicates behave identically across queries.
  std::string semantic_key;
};

/// An edge of the join graph between two relations (by index).
struct BoundJoin {
  size_t left_rel = 0;
  size_t right_rel = 0;
  std::string left_column;
  std::string right_column;
  bool equi = true;
  /// Semi-join edges come from IN/EXISTS subqueries: the left side's rows
  /// are filtered, not multiplied.
  bool semi = false;
  std::string semantic_key;
};

struct LogicalPlan;

/// A relation in the FROM list: either a catalog base table or a derived
/// relation wrapping a subquery's own logical plan.
struct LogicalRelation {
  std::string table;            ///< catalog table name (base relations)
  std::string alias;            ///< effective name predicates use
  std::vector<BoundSelection> selections;
  std::shared_ptr<LogicalPlan> derived;  ///< non-null for subquery relations

  bool IsDerived() const { return derived != nullptr; }
};

/// The bound logical query.
struct LogicalPlan {
  const catalog::Catalog* catalog = nullptr;
  std::vector<LogicalRelation> relations;
  std::vector<BoundJoin> joins;

  size_t num_group_columns = 0;
  /// Resolved GROUP BY columns (relation index, column name) — used to
  /// estimate group counts from column NDVs.
  std::vector<std::pair<size_t, std::string>> group_column_refs;
  size_t num_aggregates = 0;
  bool distinct = false;
  size_t num_sort_columns = 0;
  std::optional<int64_t> limit;
  /// Residual predicates (e.g. OR trees spanning relations, HAVING): modeled
  /// as a post-join filter with a default selectivity per predicate.
  size_t num_residual_predicates = 0;

  /// Output width heuristic, bytes per result row.
  double output_width = 64.0;
};

/// Binds a parsed statement against a catalog: resolves table/column names,
/// pushes selections to their relations, builds the join graph, and
/// decorrelates IN/EXISTS subqueries into semi-joined derived relations.
/// Fails on unknown tables/columns or predicates it cannot classify.
Result<LogicalPlan> BuildLogicalPlan(const sql::SelectStmt& stmt,
                                     const catalog::Catalog& catalog);

}  // namespace qpp::optimizer
