// Binary (de)serialization of physical plans.
//
// The paper's deployment (Fig. 1) featurizes queries at the customer site
// from plans produced by a configuration-matched optimizer ("most
// commercial databases provide tools that can be configured to simulate a
// given system and obtain the same query plans as would be produced on the
// target system"). Serialized plans are the interchange format for that
// flow: the sizing tool dumps candidate-system plans, and the predictor
// featurizes them without re-planning.
#pragma once

#include <iosfwd>

#include "common/status.h"
#include "optimizer/physical_plan.h"

namespace qpp::optimizer {

/// Writes a plan (tree, cardinalities, annotations, cost) to a stream.
void WritePlan(const PhysicalPlan& plan, std::ostream* os);

/// Reads a plan written by WritePlan. Fails on malformed input.
Result<PhysicalPlan> ReadPlan(std::istream* is);

/// File-level convenience wrappers.
Status SavePlanFile(const PhysicalPlan& plan, const std::string& path);
Result<PhysicalPlan> LoadPlanFile(const std::string& path);

}  // namespace qpp::optimizer
