#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/str_util.h"
#include "optimizer/cost_model.h"
#include "optimizer/join_order.h"
#include "sql/parser.h"

namespace qpp::optimizer {

namespace {

std::unique_ptr<PhysicalNode> WrapExchange(std::unique_ptr<PhysicalNode> child,
                                           const std::string& detail) {
  auto ex = std::make_unique<PhysicalNode>(PhysOp::kExchange);
  ex->est_rows = child->est_rows;
  ex->true_rows = child->true_rows;
  ex->est_input_rows = child->est_rows;
  ex->true_input_rows = child->true_rows;
  ex->row_width = child->row_width;
  ex->detail = detail;
  ex->children.push_back(std::move(child));
  return ex;
}

std::unique_ptr<PhysicalNode> WrapSplit(std::unique_ptr<PhysicalNode> child) {
  auto split = std::make_unique<PhysicalNode>(PhysOp::kSplit);
  split->est_rows = child->est_rows;
  split->true_rows = child->true_rows;
  split->est_input_rows = child->est_rows;
  split->true_input_rows = child->true_rows;
  split->row_width = child->row_width;
  split->broadcast = true;
  split->detail = "broadcast";
  split->children.push_back(std::move(child));
  return split;
}

}  // namespace

Optimizer::Optimizer(const catalog::Catalog* catalog,
                     OptimizerOptions options)
    : catalog_(catalog),
      options_(options),
      cards_(catalog, options.world_seed) {
  QPP_CHECK(catalog != nullptr);
  QPP_CHECK(options_.nodes_used >= 1);
}

Result<PhysicalPlan> Optimizer::Plan(const std::string& sql_text) const {
  Result<std::shared_ptr<sql::SelectStmt>> stmt = sql::Parse(sql_text);
  if (!stmt.ok()) return stmt.status();
  return Plan(*stmt.value(), sql_text);
}

Result<PhysicalPlan> Optimizer::Plan(const sql::SelectStmt& stmt,
                                     const std::string& sql_text) const {
  Result<LogicalPlan> logical = BuildLogicalPlan(stmt, *catalog_);
  if (!logical.ok()) return logical.status();

  Fragment frag = PlanLogical(logical.value());

  // Plain LIMIT without ORDER BY caps the result directly.
  if (logical.value().limit && logical.value().num_sort_columns == 0) {
    const double cap = static_cast<double>(*logical.value().limit);
    frag.est_rows = std::min(frag.est_rows, cap);
    frag.true_rows = std::min(frag.true_rows, cap);
    frag.node->est_rows = std::min(frag.node->est_rows, cap);
    frag.node->true_rows = std::min(frag.node->true_rows, cap);
  }

  // Final exchange to the coordinator + root composition.
  auto exchange = WrapExchange(std::move(frag.node), "to coordinator");
  auto root = std::make_unique<PhysicalNode>(PhysOp::kRoot);
  root->est_rows = frag.est_rows;
  root->true_rows = frag.true_rows;
  root->est_input_rows = frag.est_rows;
  root->true_input_rows = frag.true_rows;
  root->row_width = frag.width;
  root->children.push_back(std::move(exchange));

  PhysicalPlan plan;
  plan.root = std::move(root);
  plan.sql = sql_text;
  plan.query_hash = HashString64(sql_text);
  plan.optimizer_cost = EstimatePlanCost(*plan.root);
  return plan;
}

Optimizer::Fragment Optimizer::PlanRelation(const LogicalPlan& plan,
                                            size_t rel_index) const {
  const LogicalRelation& rel = plan.relations[rel_index];
  if (rel.IsDerived()) {
    return PlanLogical(*rel.derived);
  }
  const catalog::Table& table = catalog_->GetTable(rel.table);

  Fragment frag;
  auto scan = std::make_unique<PhysicalNode>(PhysOp::kFileScan);
  scan->table = table.name;
  scan->est_input_rows = table.row_count;
  scan->true_input_rows = table.row_count;
  scan->est_rows = cards_.RelationCardinality(rel, CardMode::kEstimate);
  scan->true_rows = cards_.RelationCardinality(rel, CardMode::kTrue);
  // Scans project a subset of columns; 60% of the stored width is a
  // representative projection footprint.
  scan->row_width = std::max(8.0, table.RowWidthBytes() * 0.6);
  scan->num_predicates = rel.selections.size();
  if (rel.alias != rel.table) scan->detail = rel.alias;

  auto part = std::make_unique<PhysicalNode>(PhysOp::kPartitionAccess);
  part->est_rows = scan->est_rows;
  part->true_rows = scan->true_rows;
  part->est_input_rows = scan->est_rows;
  part->true_input_rows = scan->true_rows;
  part->row_width = scan->row_width;

  frag.est_rows = scan->est_rows;
  frag.true_rows = scan->true_rows;
  frag.width = scan->row_width;
  part->children.push_back(std::move(scan));
  frag.node = std::move(part);
  return frag;
}

Optimizer::Fragment Optimizer::PlanLogical(const LogicalPlan& plan) const {
  QPP_CHECK(!plan.relations.empty());

  // 1. Leaf fragments.
  std::vector<Fragment> leaves;
  leaves.reserve(plan.relations.size());
  std::vector<double> est_cards;
  std::vector<double> true_cards;
  for (size_t i = 0; i < plan.relations.size(); ++i) {
    leaves.push_back(PlanRelation(plan, i));
    est_cards.push_back(leaves.back().est_rows);
    true_cards.push_back(leaves.back().true_rows);
  }

  const auto column_ndv = [&](size_t rel, const std::string& column) {
    const LogicalRelation& r = plan.relations[rel];
    if (r.IsDerived()) {
      // Derived relations expose roughly-unique output rows.
      return std::max(1.0, leaves[rel].est_rows * 0.7);
    }
    const double ndv = cards_.ColumnNdv(r.table, column);
    return ndv > 0.0 ? ndv : 100.0;
  };

  // 2. Join order.
  const JoinOrder order = OrderJoins(plan, cards_, est_cards, column_ndv);

  // 3. Left-deep join tree.
  std::vector<bool> joined(plan.relations.size(), false);
  const auto in_set = [&](size_t i) { return joined[i]; };

  Fragment acc = std::move(leaves[order.sequence[0]]);
  joined[order.sequence[0]] = true;

  // Merge joins require co-located scans on partitioning keys; only the
  // first join in the pipeline can exploit that.
  bool acc_is_colocated_scan = !plan.relations[order.sequence[0]].IsDerived();

  for (size_t step = 1; step < order.sequence.size(); ++step) {
    const size_t r = order.sequence[step];
    Fragment inner = std::move(leaves[r]);
    const EdgeBundle bundle = CollectJoinEdges(plan, r, in_set, column_ndv);

    const double est_out = cards_.JoinOutputCardinality(
        acc.est_rows, inner.est_rows, bundle.edges, bundle.set_ndvs,
        bundle.rel_ndvs, CardMode::kEstimate);
    const double true_out = cards_.JoinOutputCardinality(
        acc.true_rows, inner.true_rows, bundle.edges, bundle.set_ndvs,
        bundle.rel_ndvs, CardMode::kTrue);

    bool all_equi = !bundle.edges.empty();
    bool any_semi = false;
    for (const BoundJoin* e : bundle.edges) {
      all_equi = all_equi && e->equi;
      any_semi = any_semi || e->semi;
    }

    // Physical join selection. The broadcast side of a nested-loop join is
    // whichever input is smaller; swapping is legal except for semi joins
    // (their filtered side must stay on the outer/left).
    PhysOp join_op;
    const double broadcast_limit =
        options_.broadcast_row_budget / options_.nodes_used;
    const bool can_swap = !any_semi;
    const double small_side =
        can_swap ? std::min(acc.est_rows, inner.est_rows) : inner.est_rows;
    bool use_merge = false;
    if (all_equi && acc_is_colocated_scan && step == 1 &&
        bundle.edges.size() == 1 && !plan.relations[r].IsDerived()) {
      const BoundJoin& e = *bundle.edges[0];
      const catalog::Table* lt = catalog_->FindTable(
          plan.relations[e.left_rel].IsDerived() ? ""
                                                 : plan.relations[e.left_rel].table);
      const catalog::Table* rt = catalog_->FindTable(
          plan.relations[e.right_rel].IsDerived()
              ? ""
              : plan.relations[e.right_rel].table);
      use_merge = lt != nullptr && rt != nullptr &&
                  ToLowerAscii(e.left_column) ==
                      ToLowerAscii(lt->partitioning_column) &&
                  ToLowerAscii(e.right_column) ==
                      ToLowerAscii(rt->partitioning_column);
    }
    if (!all_equi) {
      join_op = PhysOp::kNestedJoin;
    } else if (use_merge) {
      join_op = PhysOp::kMergeJoin;
    } else if (small_side <= broadcast_limit) {
      join_op = PhysOp::kNestedJoin;
    } else {
      join_op = PhysOp::kHashJoin;
    }
    // For nested joins, make the smaller input the broadcast inner.
    const bool swap_sides = join_op == PhysOp::kNestedJoin && can_swap &&
                            acc.est_rows < inner.est_rows;

    auto join = std::make_unique<PhysicalNode>(join_op);
    join->semi = any_semi;
    join->est_rows = est_out;
    join->true_rows = true_out;
    join->est_input_rows = acc.est_rows + inner.est_rows;
    join->true_input_rows = acc.true_rows + inner.true_rows;
    join->row_width =
        any_semi ? acc.width : std::min(acc.width + inner.width, 512.0);
    if (bundle.edges.empty()) join->detail = "cross";

    std::unique_ptr<PhysicalNode> left = std::move(acc.node);
    std::unique_ptr<PhysicalNode> right = std::move(inner.node);
    if (swap_sides) std::swap(left, right);
    if (join_op == PhysOp::kNestedJoin) {
      right = WrapSplit(std::move(right));
    } else if (join_op == PhysOp::kHashJoin) {
      left = WrapExchange(std::move(left), "repartition");
      right = WrapExchange(std::move(right), "repartition");
    }
    join->children.push_back(std::move(left));
    join->children.push_back(std::move(right));

    acc.node = std::move(join);
    acc.est_rows = est_out;
    acc.true_rows = true_out;
    acc.width = acc.node->row_width;
    acc_is_colocated_scan = false;
    joined[r] = true;
  }

  // 4. Residual post-join filters (multi-relation OR trees, HAVING, ...).
  if (plan.num_residual_predicates > 0) {
    const double sel = std::pow(CardinalityModel::kResidualSelectivity,
                                static_cast<double>(plan.num_residual_predicates));
    auto filter = std::make_unique<PhysicalNode>(PhysOp::kFilter);
    filter->num_predicates = plan.num_residual_predicates;
    filter->est_input_rows = acc.est_rows;
    filter->true_input_rows = acc.true_rows;
    filter->est_rows = std::max(1.0, acc.est_rows * sel);
    filter->true_rows = acc.true_rows * sel;
    filter->row_width = acc.width;
    filter->children.push_back(std::move(acc.node));
    acc.node = std::move(filter);
    acc.est_rows = acc.node->est_rows;
    acc.true_rows = acc.node->true_rows;
  }

  // 5. Aggregation.
  if (plan.num_group_columns > 0) {
    std::vector<double> group_ndvs;
    std::string key = "groupby";
    for (const auto& [rel, column] : plan.group_column_refs) {
      group_ndvs.push_back(column_ndv(rel, column));
      key += "|" + plan.relations[rel].alias + "." + column;
    }
    // Columns we failed to resolve still reduce cardinality; assume a
    // mid-sized domain for each.
    while (group_ndvs.size() < plan.num_group_columns) {
      group_ndvs.push_back(1000.0);
    }
    const double est_groups = cards_.GroupCardinality(
        acc.est_rows, group_ndvs, CardMode::kEstimate, key);
    const double true_groups = cards_.GroupCardinality(
        acc.true_rows, group_ndvs, CardMode::kTrue, key);
    const double agg_width =
        8.0 * static_cast<double>(plan.num_group_columns +
                                  std::max<size_t>(plan.num_aggregates, 1));

    // Partial (per-node) aggregation...
    auto partial = std::make_unique<PhysicalNode>(PhysOp::kHashGroupBy);
    partial->detail = "partial";
    partial->num_group_cols = plan.num_group_columns;
    partial->num_aggs = plan.num_aggregates;
    partial->est_input_rows = acc.est_rows;
    partial->true_input_rows = acc.true_rows;
    partial->est_rows =
        std::min(acc.est_rows, est_groups * options_.nodes_used);
    partial->true_rows =
        std::min(acc.true_rows, true_groups * options_.nodes_used);
    partial->row_width = agg_width;
    partial->children.push_back(std::move(acc.node));

    // ...repartitioned on the grouping keys...
    auto exchange = WrapExchange(std::move(partial), "hash on group keys");

    // ...then final aggregation.
    auto final_agg = std::make_unique<PhysicalNode>(PhysOp::kHashGroupBy);
    final_agg->detail = "final";
    final_agg->num_group_cols = plan.num_group_columns;
    final_agg->num_aggs = plan.num_aggregates;
    final_agg->est_input_rows = exchange->est_rows;
    final_agg->true_input_rows = exchange->true_rows;
    final_agg->est_rows = est_groups;
    final_agg->true_rows = std::min(true_groups, exchange->true_rows);
    final_agg->row_width = agg_width;
    final_agg->children.push_back(std::move(exchange));

    acc.est_rows = final_agg->est_rows;
    acc.true_rows = final_agg->true_rows;
    acc.width = agg_width;
    acc.node = std::move(final_agg);
  } else if (plan.num_aggregates > 0) {
    auto agg = std::make_unique<PhysicalNode>(PhysOp::kScalarAgg);
    agg->num_aggs = plan.num_aggregates;
    agg->est_input_rows = acc.est_rows;
    agg->true_input_rows = acc.true_rows;
    agg->est_rows = 1.0;
    agg->true_rows = 1.0;
    agg->row_width = 8.0 * static_cast<double>(plan.num_aggregates);
    agg->children.push_back(std::move(acc.node));
    acc.est_rows = 1.0;
    acc.true_rows = 1.0;
    acc.width = agg->row_width;
    acc.node = std::move(agg);
  } else if (plan.distinct) {
    auto dist = std::make_unique<PhysicalNode>(PhysOp::kHashGroupBy);
    dist->detail = "distinct";
    dist->num_group_cols = 1;
    dist->est_input_rows = acc.est_rows;
    dist->true_input_rows = acc.true_rows;
    dist->est_rows = std::max(1.0, std::pow(acc.est_rows, 0.85));
    dist->true_rows = std::max(0.0, std::pow(acc.true_rows, 0.85));
    dist->row_width = acc.width;
    dist->children.push_back(std::move(acc.node));
    acc.est_rows = dist->est_rows;
    acc.true_rows = dist->true_rows;
    acc.node = std::move(dist);
  }

  // 6. Ordering.
  if (plan.num_sort_columns > 0) {
    if (plan.limit) {
      const double cap = static_cast<double>(*plan.limit);
      auto topn = std::make_unique<PhysicalNode>(PhysOp::kTopN);
      topn->detail = StrFormat("limit %lld",
                               static_cast<long long>(*plan.limit));
      topn->est_input_rows = acc.est_rows;
      topn->true_input_rows = acc.true_rows;
      topn->est_rows = std::min(acc.est_rows, cap);
      topn->true_rows = std::min(acc.true_rows, cap);
      topn->row_width = acc.width;
      topn->children.push_back(std::move(acc.node));
      acc.est_rows = topn->est_rows;
      acc.true_rows = topn->true_rows;
      acc.node = std::move(topn);
    } else {
      auto sort = std::make_unique<PhysicalNode>(PhysOp::kSort);
      sort->detail =
          StrFormat("%zu sort columns", plan.num_sort_columns);
      sort->est_input_rows = acc.est_rows;
      sort->true_input_rows = acc.true_rows;
      sort->est_rows = acc.est_rows;
      sort->true_rows = acc.true_rows;
      sort->row_width = acc.width;
      sort->children.push_back(std::move(acc.node));
      acc.node = WrapExchange(std::move(sort), "merge sorted streams");
    }
  }
  return acc;
}

}  // namespace qpp::optimizer
