// Join-order search over the logical join graph.
//
// Left-deep enumeration: exact dynamic programming over connected subsets
// for up to kDpRelationLimit relations, greedy smallest-intermediate-first
// beyond. Cost is the classic sum of estimated intermediate cardinalities.
// Semi-joined (subquery) relations are constrained to join after the outer
// relation they filter.
#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "optimizer/cardinality.h"
#include "optimizer/logical_plan.h"

namespace qpp::optimizer {

/// Maximum relation count for exact DP (12 -> 4096 subsets).
constexpr size_t kDpRelationLimit = 12;

struct JoinOrderInput {
  /// Estimated post-selection cardinality per relation (index-aligned with
  /// LogicalPlan::relations).
  std::vector<double> est_cards;
  /// Effective NDV of a join column per relation; keyed lazily via callback
  /// to the planner, so this struct only carries cardinalities.
};

/// The chosen left-deep order: a permutation of relation indices. The
/// physical planner joins them left to right, applying every join edge whose
/// endpoints are both available.
struct JoinOrder {
  std::vector<size_t> sequence;
  double estimated_cost = 0.0;  ///< sum of intermediate estimated rows
};

/// The join edges applicable when relation `r` joins an already-joined set,
/// with NDVs oriented set-side ("set") vs joining-relation-side ("rel").
struct EdgeBundle {
  std::vector<const BoundJoin*> edges;
  std::vector<double> set_ndvs;
  std::vector<double> rel_ndvs;
};

/// Collects the edges between relation `r` and the set defined by `in_set`.
EdgeBundle CollectJoinEdges(
    const LogicalPlan& plan, size_t r,
    const std::function<bool(size_t)>& in_set,
    const std::function<double(size_t, const std::string&)>& column_ndv);

/// Computes a join order. `column_ndv(rel, column)` must return the
/// effective NDV used for join selectivity (0 when unknown).
JoinOrder OrderJoins(
    const LogicalPlan& plan, const CardinalityModel& model,
    const std::vector<double>& est_cards,
    const std::function<double(size_t, const std::string&)>& column_ndv);

}  // namespace qpp::optimizer
