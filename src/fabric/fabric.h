// Replicated per-pool serving: qpp::shard's expert shards grown into
// replica groups, with prediction-aware admission control at the front
// door.
//
//   client ──Submit()──▶ classify (step-1, cached)
//                          │ admission: shed / defer heavies on SLO breach
//                          ▼
//                        expert replica group ── power-of-two-choices ──▶
//                          │ no up replica / breaker open / refused?     │
//                          ▼                                             ▼
//                        catch-all replica group            one PredictionService
//                          │ refused?                       per replica (own
//                          ▼                                registry, queue,
//                        inline optimizer-cost fallback     workers, breaker)
//
// Each group is N independent serve::PredictionService instances behind
// one name ("feather#0", "feather#1", ...). Replicas of a group serve the
// same model bits, so replica choice never changes an answer — it only
// spreads load. The spread is power-of-two-choices: draw two candidate
// replicas from a keyed RNG stream (seeded by FabricConfig::p2c_seed and
// a per-group pick sequence number), dispatch to the one with the
// shallower queue, break ties with a keyed coin from the same draw. Under
// sequential driving the whole pick sequence — candidates, depths (all
// zero), tie-breaks — replays bit-for-bit; under concurrent traffic the
// draw sequence is still fixed, only which request consumes which draw
// varies (the same contract fault injection gives).
//
// Per-replica health (up / draining / dead) turns hot-swaps and chaos
// kills into rolling operations: a draining replica takes no new picks
// but finishes its queue, a dead one is routed around, and the group
// stays serving throughout. DrainSwapRevive() is the one-replica rolling
// publish; chaos's rolling-drain scenario walks it across a group under
// fire.
//
// Determinism contract: for a fixed set of published models, every
// response answered by an expert group is bit-identical to the offline
// core::TwoStepPredictor::Predict, and every response absorbed by the
// catch-all is bit-identical to its base model — regardless of replica
// count, worker threads, client threads, batching, caching, or which
// replica answered. Admission produces labeled degradations
// ("admission-shed"), never silently altered predictions; deferred
// requests are answered by the normal model path once dispatched. See
// docs/FABRIC.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/two_step.h"
#include "fabric/admission.h"
#include "fault/fault_injector.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "serve/lru_cache.h"
#include "serve/model_registry.h"
#include "serve/prediction_service.h"
#include "workload/pools.h"

namespace qpp::fabric {

enum class ReplicaHealth : int {
  kUp = 0,    ///< eligible for new picks
  kDraining,  ///< no new picks; finishes what it has queued
  kDead,      ///< routed around entirely
};

const char* ReplicaHealthName(ReplicaHealth h);

/// "group#index" — the replica's service shard_label, response stamp, and
/// fault-plan target key (ServeFaultSpec::target_replica_label).
std::string ReplicaLabel(const std::string& group, size_t replica);

struct ReplicaGroupSpec {
  std::string name;
  /// Pools this group's experts serve; empty marks the catch-all group
  /// (exactly one per fabric).
  std::vector<workload::QueryType> pools;
  /// Replicas in the group (independent services behind one name).
  size_t replicas = 2;
  /// Per-replica queue/batch/cache/breaker settings. `trace`, `faults`,
  /// `shard_label`, and `on_response` are stamped by the fabric; leave
  /// them unset.
  serve::ServiceConfig service;
};

struct FabricConfig {
  /// Must contain exactly one catch-all spec (empty `pools`).
  std::vector<ReplicaGroupSpec> groups;
  AdmissionConfig admission;
  /// Step-1 verdict memo, exactly as in shard::ShardRouterConfig.
  size_t route_cache_capacity = 4096;
  /// Recovery-probe cadence while a replica's breaker is open.
  size_t open_probe_every = 32;
  /// Key for the power-of-two-choices draw stream. Two fabrics with the
  /// same seed, groups, and (sequential) request sequence make identical
  /// picks.
  uint64_t p2c_seed = 0xFAB51Cull;
  /// Deterministic-harness mode: P2C skips the live queue-depth comparison
  /// (timing-dependent by nature — a just-dispatched request may or may
  /// not have been popped yet) and resolves every two-candidate choice
  /// with its keyed coin. The fabric soak sets this so per-replica pick
  /// counts replay byte-for-byte even while deferred dispatches overlap
  /// in-flight traffic; live serving leaves it off and gets real
  /// shallower-queue-wins spreading.
  bool p2c_ignore_depth = false;
  /// Key for the deterministic trace-id stream: request n of a fabric's
  /// life gets DeriveTraceId(trace_seed, n) stamped at Submit (unless the
  /// caller stamped its own). Same seed + same request sequence = same ids.
  uint64_t trace_seed = 0xFAB0B5ull;
  /// Ring capacity of the built-in flight recorder (see
  /// obs/flight_recorder.h); always on — the per-event cost is a few
  /// relaxed atomic stores.
  size_t flight_capacity = 4096;
  /// Optional sinks, shared by all replicas; must outlive the fabric.
  obs::TraceRecorder* trace = nullptr;
  fault::FaultInjector* faults = nullptr;
  /// Shadow lane shared by every replica service (serve/shadow_observer.h):
  /// a group spec's own `service.shadow` wins over this default.
  serve::ShadowObserver* shadow = nullptr;
};

/// The paper's pool layout as a fabric: one replica group per Fig. 2
/// category plus the "one-model" catch-all group, every group
/// `replicas_per_group` wide, all using `base` as their service config.
FabricConfig MakePerPoolFabricConfig(size_t replicas_per_group,
                                     serve::ServiceConfig base = {});

struct FabricStatsSnapshot {
  struct PerReplica {
    std::string label;
    ReplicaHealth health = ReplicaHealth::kUp;
    uint64_t generation = 0;
    uint64_t picks = 0;  ///< times the P2C spread dispatched here
    serve::ServiceStatsSnapshot service;
  };
  struct PerGroup {
    std::string name;
    bool catch_all = false;
    uint64_t routed = 0;    ///< requests dispatched here as first choice
    uint64_t absorbed = 0;  ///< requests escalated into this group
    std::vector<PerReplica> replicas;
  };
  std::vector<PerGroup> groups;
  uint64_t classified = 0;
  uint64_t route_cache_hits = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;            ///< admission-shed responses (all pools)
  uint64_t deferred = 0;        ///< parked at the front door
  uint64_t defer_drained = 0;   ///< parked requests later dispatched
  uint64_t defer_overflow = 0;  ///< defer buffer full: degraded to shed
  uint64_t slo_breaches = 0;    ///< decisions taken under a breached SLO
  uint64_t drains = 0;          ///< DrainSwapRevive operations completed
  uint64_t escalations_dead = 0;
  uint64_t escalations_open = 0;
  uint64_t escalations_overloaded = 0;
  uint64_t fallback_exhausted = 0;

  uint64_t escalations() const {
    return escalations_dead + escalations_open + escalations_overloaded;
  }
  std::string ToString() const;
};

class Fabric {
 public:
  /// The calibration backs the admission-shed response and the final
  /// fallback rung. If `config.faults` carries a replica-targeted plan
  /// naming one of our replicas, a default kill hook (mark it dead and
  /// unpublish its registry) is installed unless the harness set its own.
  explicit Fabric(FabricConfig config,
                  serve::CostCalibration calibration = {});
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Classify → admission → replica-group dispatch. Never blocks on a
  /// full replica queue and never returns a broken future; the worst case
  /// is the labeled inline fallback ("fabric-exhausted").
  std::future<serve::ServeResponse> Submit(serve::ServeRequest request);

  /// Dispatches any still-deferred requests, then stops every replica
  /// (each drains its queue first). Idempotent.
  void Shutdown();

  // Replica addressing: group name + index within the group.
  serve::ModelRegistry* registry(const std::string& group, size_t replica);
  serve::PredictionService* service(const std::string& group, size_t replica);
  ReplicaHealth health(const std::string& group, size_t replica) const;
  void SetReplicaHealth(const std::string& group, size_t replica,
                        ReplicaHealth health);

  /// The rolling hot-swap primitive: mark the replica draining, wait for
  /// its queue to empty (bounded), publish `model`, mark it up again.
  /// False when the replica does not exist or the drain timed out (the
  /// replica is then left draining and unpublished-to).
  bool DrainSwapRevive(const std::string& group, size_t replica,
                       std::shared_ptr<const core::Predictor> model);

  size_t num_groups() const { return groups_.size(); }
  const ReplicaGroupSpec& group_spec(size_t index) const {
    return groups_[index]->spec;
  }
  size_t replica_count(const std::string& group) const;
  const std::string& catch_all_name() const;

  /// Total requests currently queued across every replica — the admission
  /// controller's live queue-depth signal.
  size_t TotalQueueDepth() const;

  AdmissionController* admission() { return &admission_; }
  FabricStatsSnapshot stats() const;
  /// Fabric-level qpp_fabric_* metrics (per-replica serve metrics live in
  /// each replica's own service registry).
  obs::MetricsRegistry* metrics() { return &metrics_; }
  /// The always-on black box: every admission verdict, pick, escalation,
  /// swap, health change, breaker flip, SLO alert, and injected fault of
  /// this fabric's life, newest few thousand retained. Dump it on failure.
  obs::FlightRecorder* flight() { return &flight_; }
  const obs::FlightRecorder& flight() const { return flight_; }
  /// Trace ids stamped so far (the next request gets sequence number
  /// issued(); tests replay ids with DeriveTraceId(trace_seed, n)).
  uint64_t trace_ids_issued() const { return trace_ids_.issued(); }

 private:
  struct Replica {
    std::string label;
    // Registry declared before the service: workers acquire snapshots
    // until Shutdown, so destruction must tear the service down first.
    std::unique_ptr<serve::ModelRegistry> registry;
    std::unique_ptr<serve::PredictionService> service;
    std::atomic<ReplicaHealth> health{ReplicaHealth::kUp};
    obs::Counter* picks = nullptr;
    std::atomic<uint64_t> open_diversions{0};
  };

  struct Group {
    ReplicaGroupSpec spec;
    std::vector<std::unique_ptr<Replica>> replicas;
    std::atomic<uint64_t> pick_seq{0};  ///< consumes the P2C draw stream
    obs::Counter* routed = nullptr;
    obs::Counter* absorbed = nullptr;
    obs::Counter* escalated_dead = nullptr;
    obs::Counter* escalated_open = nullptr;
    obs::Counter* escalated_overloaded = nullptr;
  };

  struct RouteVerdict {
    workload::QueryType pool = workload::QueryType::kFeather;
    uint64_t classifier_generation = 0;
  };

  /// A request parked by a defer decision: the caller already holds the
  /// future; the promise travels with the request until dispatch.
  struct DeferredRequest {
    serve::ServeRequest request;
    std::promise<serve::ServeResponse> promise;
  };

  RouteVerdict Classify(const serve::ServeRequest& request);
  Group* GroupFor(workload::QueryType pool);
  /// P2C pick among eligible replicas; null (with `reason` = "dead" or
  /// "circuit-open") when none is eligible. `require_model` is false for
  /// the catch-all, whose replicas answer the labeled no-model fallback
  /// themselves.
  Replica* PickReplica(Group* group, bool require_model, const char** reason);
  /// Routes `request` down the group → catch-all → inline ladder and
  /// fulfills `promise` (moved from on dispatch or answered inline).
  void Dispatch(const serve::ServeRequest& request,
                std::promise<serve::ServeResponse>* promise,
                workload::QueryType pool);
  void RespondShed(const serve::ServeRequest& request,
                   std::promise<serve::ServeResponse>* promise,
                   workload::QueryType pool);
  void RespondExhausted(const serve::ServeRequest& request,
                        std::promise<serve::ServeResponse>* promise);
  void DrainDeferred();
  void TraceInstant(const char* name, const std::string& detail_key,
                    const std::string& detail);

  const AdmissionConfig admission_config_;
  const size_t open_probe_every_;
  const uint64_t p2c_seed_;
  const bool p2c_ignore_depth_;
  const serve::CostCalibration calibration_;
  obs::TraceRecorder* const trace_;
  fault::FaultInjector* const faults_;
  // Declared before admission_: the controller's SLO engine publishes into
  // the fabric registry and flight recorder, so both must outlive it.
  obs::MetricsRegistry metrics_;
  obs::FlightRecorder flight_;
  obs::TraceIdGenerator trace_ids_;
  std::vector<std::unique_ptr<Group>> groups_;
  std::vector<Group*> experts_;  ///< groups_ minus the catch-all
  Group* catch_all_ = nullptr;
  AdmissionController admission_;
  obs::Counter* classified_ = nullptr;
  obs::Counter* route_cache_hits_ = nullptr;
  obs::Counter* admitted_ = nullptr;
  /// qpp_fabric_shed_total{pool=...}, indexed by workload::QueryType.
  obs::Counter* shed_by_pool_[4] = {nullptr, nullptr, nullptr, nullptr};
  obs::Counter* deferred_ = nullptr;
  obs::Counter* defer_drained_ = nullptr;
  obs::Counter* defer_overflow_ = nullptr;
  obs::Counter* slo_breaches_ = nullptr;
  obs::Counter* drains_ = nullptr;
  obs::Counter* fallback_exhausted_ = nullptr;
  obs::Gauge* deferred_pending_ = nullptr;
  std::mutex route_cache_mu_;
  serve::LruCache<linalg::Vector, RouteVerdict,
                  serve::PredictionService::FeatureHash>
      route_cache_;
  std::mutex deferred_mu_;
  std::deque<DeferredRequest> deferred_queue_;
  std::once_flag shutdown_once_;
};

/// Publishes a trained TwoStepPredictor across the fabric: the base model
/// into every catch-all replica (where it doubles as the step-1
/// classifier) and each per-category expert into every replica of every
/// group listing that pool. Pools whose category fell back to the base
/// model publish nothing — their groups stay dead and the fabric
/// escalates to the catch-all, exactly TwoStepPredictor's own fallback.
/// Returns the number of publishes performed.
size_t PublishTwoStep(const core::TwoStepPredictor& two_step, Fabric* fabric);

}  // namespace qpp::fabric
