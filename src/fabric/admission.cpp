#include "fabric/admission.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qpp::fabric {

namespace {
// Recompute the windowed p99 every this many records: the nth_element
// pass over a few hundred doubles is cheap, but not once-per-response
// cheap, and admission only needs a signal that tracks the window, not
// one that is exact on every sample.
constexpr size_t kRefreshEvery = 32;
}  // namespace

const char* AdmissionActionName(AdmissionAction a) {
  switch (a) {
    case AdmissionAction::kAdmit: return "admit";
    case AdmissionAction::kShed: return "shed";
    case AdmissionAction::kDefer: return "defer";
  }
  return "?";
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config), window_(std::max<size_t>(1, config.latency_window)) {
  QPP_CHECK(config_.p99_slo_seconds > 0.0);
}

void AdmissionController::RecordLatency(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  window_[window_next_] = seconds;
  window_next_ = (window_next_ + 1) % window_.size();
  window_filled_ = std::min(window_filled_ + 1, window_.size());
  if (++records_since_refresh_ < kRefreshEvery &&
      window_filled_ < window_.size()) {
    return;  // refresh eagerly only while the window is still filling
  }
  records_since_refresh_ = 0;
  std::vector<double> sorted(window_.begin(),
                             window_.begin() +
                                 static_cast<ptrdiff_t>(window_filled_));
  // Nearest-rank p99 over the window, same semantics as
  // obs::HistogramSnapshot::Quantile but over exact samples.
  const size_t rank = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(0.99 * static_cast<double>(window_filled_))));
  const size_t idx = std::min(rank, window_filled_) - 1;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<ptrdiff_t>(idx),
                   sorted.end());
  cached_p99_ = sorted[idx];
}

LoadSignal AdmissionController::Signal(size_t live_queue_depth) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (virtual_load_.has_value()) return *virtual_load_;
  return {live_queue_depth, cached_p99_};
}

bool AdmissionController::Breached(const LoadSignal& s) const {
  if (!config_.enabled) return false;
  if (config_.max_queue_depth > 0 && s.queue_depth > config_.max_queue_depth) {
    return true;
  }
  return s.windowed_p99_seconds > config_.p99_slo_seconds;
}

AdmissionAction AdmissionController::Decide(workload::QueryType pool,
                                            const LoadSignal& s) const {
  if (!Breached(s)) return AdmissionAction::kAdmit;
  switch (pool) {
    case workload::QueryType::kWreckingBall:
      return config_.shed_wrecking ? AdmissionAction::kShed
                                   : AdmissionAction::kAdmit;
    case workload::QueryType::kBowlingBall:
      return config_.defer_bowling ? AdmissionAction::kDefer
                                   : AdmissionAction::kAdmit;
    case workload::QueryType::kFeather:
    case workload::QueryType::kGolfBall:
      break;  // lights always flow — that is the point of shedding heavies
  }
  return AdmissionAction::kAdmit;
}

void AdmissionController::SetVirtualLoad(std::optional<LoadSignal> signal) {
  std::lock_guard<std::mutex> lock(mu_);
  virtual_load_ = signal;
}

}  // namespace qpp::fabric
