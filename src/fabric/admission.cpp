#include "fabric/admission.h"

#include <algorithm>

#include "common/check.h"
#include "obs/request_context.h"

namespace qpp::fabric {

namespace {
// The engine's eager-refresh cadence while a window is still open: the
// quantile pass over the bucket array is cheap, but not once-per-response
// cheap, and admission only needs a signal that tracks the window, not one
// that is exact on every sample. Same constant the retired hand-rolled
// ring used between nth_element refreshes.
constexpr uint64_t kEagerRefreshEvery = 32;

const std::string& P99RuleName() {
  static const std::string kName = "admission_p99";
  return kName;
}

obs::SloEngineOptions EngineOptions(const AdmissionConfig& config,
                                    obs::MetricsRegistry* registry,
                                    obs::FlightRecorder* flight,
                                    obs::TraceRecorder* trace) {
  obs::SloEngineOptions options;
  options.window_ticks = std::max<size_t>(1, config.latency_window);
  options.eager_refresh_every = kEagerRefreshEvery;
  options.registry = registry;
  options.flight = flight;
  options.trace = trace;
  return options;
}
}  // namespace

const char* AdmissionActionName(AdmissionAction a) {
  switch (a) {
    case AdmissionAction::kAdmit: return "admit";
    case AdmissionAction::kShed: return "shed";
    case AdmissionAction::kDefer: return "defer";
  }
  return "?";
}

AdmissionController::AdmissionController(AdmissionConfig config,
                                         obs::MetricsRegistry* registry,
                                         obs::FlightRecorder* flight,
                                         obs::TraceRecorder* trace)
    : config_(config),
      latency_([] {
        obs::HistogramOptions o;
        o.exemplars = true;  // a breaching window names the trace that did it
        return o;
      }()),
      slo_(EngineOptions(config, registry, flight, trace)) {
  QPP_CHECK(config_.p99_slo_seconds > 0.0);
  obs::SloRule rule;
  rule.name = P99RuleName();
  rule.kind = obs::SloRule::Kind::kHistogramQuantile;
  rule.threshold = config_.p99_slo_seconds;
  rule.histogram = &latency_;
  rule.quantile = 0.99;
  slo_.AddRule(std::move(rule));
}

void AdmissionController::RecordLatency(double seconds) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (virtual_load_.has_value()) {
      // Deterministic harness owns the signal: freeze the live pipeline so
      // replays stay bit-identical, alert counters and flight dump included.
      return;
    }
  }
  latency_.Record(seconds, obs::CurrentRequestContext().trace_id);
  slo_.Tick();
}

LoadSignal AdmissionController::Signal(size_t live_queue_depth) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (virtual_load_.has_value()) return *virtual_load_;
  }
  return {live_queue_depth, slo_.RuleValue(P99RuleName())};
}

bool AdmissionController::Breached(const LoadSignal& s) const {
  if (!config_.enabled) return false;
  if (config_.max_queue_depth > 0 && s.queue_depth > config_.max_queue_depth) {
    return true;
  }
  return s.windowed_p99_seconds > config_.p99_slo_seconds;
}

AdmissionAction AdmissionController::Decide(workload::QueryType pool,
                                            const LoadSignal& s) const {
  if (!Breached(s)) return AdmissionAction::kAdmit;
  switch (pool) {
    case workload::QueryType::kWreckingBall:
      return config_.shed_wrecking ? AdmissionAction::kShed
                                   : AdmissionAction::kAdmit;
    case workload::QueryType::kBowlingBall:
      return config_.defer_bowling ? AdmissionAction::kDefer
                                   : AdmissionAction::kAdmit;
    case workload::QueryType::kFeather:
    case workload::QueryType::kGolfBall:
      break;  // lights always flow — that is the point of shedding heavies
  }
  return AdmissionAction::kAdmit;
}

void AdmissionController::SetVirtualLoad(std::optional<LoadSignal> signal) {
  std::lock_guard<std::mutex> lock(mu_);
  virtual_load_ = signal;
}

}  // namespace qpp::fabric
