// Prediction-aware admission control: the paper's "better decisions"
// thesis applied to the serving fabric's own front door.
//
// The step-1 classifier already tells the router which pool a query
// belongs to (feather / golf ball / bowling ball / wrecking ball — Fig. 2).
// Under overload that verdict is exactly the information an admission
// controller needs: a wrecking ball occupies a worker for orders of
// magnitude longer than a feather, so shedding or deferring the few
// heavies keeps the many lights inside the latency SLO. This mirrors the
// production pattern in the LinkedIn QPP study (PAPERS.md): predictions
// gate work *before* it consumes capacity, not after.
//
// The controller watches two load signals — total queued requests across
// the fabric and a windowed p99 of recent response latencies — and, while
// either breaches its configured SLO, applies per-pool policy:
//
//   feather / golf ball   always admitted (they keep flowing)
//   bowling ball          deferred: parked at the front door, dispatched
//                         when the breach clears (bounded buffer;
//                         overflow degrades to shed)
//   wrecking ball         shed: answered immediately with the calibrated
//                         optimizer-cost baseline, labeled "admission-shed"
//
// The windowed-p99 signal is not computed here: the controller owns a
// latency histogram and an obs::SloEngine with one histogram-quantile rule
// ("admission_p99", threshold = p99_slo_seconds), tick-advanced once per
// observed response. Signal() reads the engine's latest rule value, so the
// same number steers admission, fires qpp_slo_alerts_total, lands in the
// flight recorder, and shows up in the trace — one SLO truth, several
// consumers (see obs/slo.h).
//
// Determinism: decisions are a pure function of (pool, LoadSignal). The
// live signal is timing-dependent by nature (that is the point), so
// deterministic harnesses — the fabric soak, the golden pins — inject a
// virtual LoadSignal keyed by request index via SetVirtualLoad(); while
// the override is set, RecordLatency is a no-op (the live pipeline stays
// frozen), so replay is bit-for-bit, counters and flight dump included.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "workload/pools.h"

namespace qpp::fabric {

struct AdmissionConfig {
  /// Master switch; disabled (the default) admits everything and costs
  /// one bool test per request.
  bool enabled = false;
  /// Windowed-p99 SLO: a breach marks the fabric overloaded.
  double p99_slo_seconds = 0.05;
  /// Queued-request SLO across all replica queues; 0 disables the
  /// depth trigger.
  size_t max_queue_depth = 256;
  /// Ring size for the windowed p99 (responses observed via the
  /// services' on_response hook).
  size_t latency_window = 512;
  /// Per-pool overload policy (see file comment). Turning a flag off
  /// admits that pool unconditionally.
  bool shed_wrecking = true;
  bool defer_bowling = true;
  /// Bound on front-door-parked deferred requests; overflow sheds.
  size_t max_deferred = 256;
  /// Deferred requests dispatched per admitted request once the breach
  /// clears (piggyback draining keeps the front door thread-free).
  size_t defer_drain_per_submit = 4;
};

/// The load evidence one admission decision is based on.
struct LoadSignal {
  size_t queue_depth = 0;
  double windowed_p99_seconds = 0.0;
};

enum class AdmissionAction { kAdmit, kShed, kDefer };
const char* AdmissionActionName(AdmissionAction a);

class AdmissionController {
 public:
  /// All sinks optional (must outlive the controller): `registry` receives
  /// the engine's qpp_slo_* self-metrics, `flight`/`trace` its alerts.
  explicit AdmissionController(AdmissionConfig config,
                               obs::MetricsRegistry* registry = nullptr,
                               obs::FlightRecorder* flight = nullptr,
                               obs::TraceRecorder* trace = nullptr);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  const AdmissionConfig& config() const { return config_; }

  /// Feeds the windowed-p99 signal; called from whichever worker thread
  /// answers a request (the fabric wires this into every replica's
  /// on_response hook). Records into the latency histogram and advances
  /// the SLO engine by one tick. No-op while a virtual load is set — the
  /// deterministic harnesses own the signal then. Thread-safe; the hot
  /// path is a histogram store plus a tick counter.
  void RecordLatency(double seconds);

  /// The signal the next decision will see: the virtual override when one
  /// is set (deterministic harnesses), else `live_queue_depth` plus the
  /// current windowed p99.
  LoadSignal Signal(size_t live_queue_depth) const;

  /// True when `s` breaches either configured SLO.
  bool Breached(const LoadSignal& s) const;

  /// Policy table: what to do with a `pool` query given signal `s`.
  /// Pure — counting happens at the fabric, where the final outcome
  /// (e.g. defer overflowing into shed) is known.
  AdmissionAction Decide(workload::QueryType pool, const LoadSignal& s) const;

  /// Deterministic-mode override: while set, Signal() returns exactly
  /// this regardless of live load (and RecordLatency is a no-op).
  /// nullopt restores live signals.
  void SetVirtualLoad(std::optional<LoadSignal> signal);

  /// The SLO engine behind the p99 signal (alert counts, rule values);
  /// read-only — the controller owns the ticking.
  const obs::SloEngine& slo() const { return slo_; }

 private:
  const AdmissionConfig config_;
  mutable std::mutex mu_;
  std::optional<LoadSignal> virtual_load_;
  // The latency evidence and its judge. The histogram is private (the
  // fabric's registry still sees the signal via qpp_slo_rule_value); the
  // engine tumbles a window every latency_window responses and eagerly
  // refreshes every 32 while a window is open, preserving the cadence of
  // the retired hand-rolled ring buffer.
  obs::Histogram latency_;
  obs::SloEngine slo_;
};

}  // namespace qpp::fabric
