#include "fabric/fabric.h"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "serve/cost_fallback.h"

namespace qpp::fabric {

namespace {

obs::TraceEvent InstantEvent(obs::TraceRecorder* trace, const char* name) {
  obs::TraceEvent e;
  e.phase = 'i';
  e.name = name;
  e.category = "fabric";
  e.pid = obs::TraceRecorder::kServicePid;
  e.tid = trace->CurrentThreadTid();
  e.ts_us = trace->NowMicros();
  return e;
}

size_t PoolIndex(workload::QueryType pool) {
  return static_cast<size_t>(pool);
}

}  // namespace

const char* ReplicaHealthName(ReplicaHealth h) {
  switch (h) {
    case ReplicaHealth::kUp: return "up";
    case ReplicaHealth::kDraining: return "draining";
    case ReplicaHealth::kDead: return "dead";
  }
  return "?";
}

std::string ReplicaLabel(const std::string& group, size_t replica) {
  return group + "#" + std::to_string(replica);
}

FabricConfig MakePerPoolFabricConfig(size_t replicas_per_group,
                                     serve::ServiceConfig base) {
  QPP_CHECK(replicas_per_group >= 1);
  FabricConfig config;
  for (const workload::QueryType type :
       {workload::QueryType::kFeather, workload::QueryType::kGolfBall,
        workload::QueryType::kBowlingBall,
        workload::QueryType::kWreckingBall}) {
    ReplicaGroupSpec spec;
    spec.name = workload::QueryTypeName(type);
    spec.pools = {type};
    spec.replicas = replicas_per_group;
    spec.service = base;
    config.groups.push_back(std::move(spec));
  }
  ReplicaGroupSpec catch_all;
  catch_all.name = "one-model";
  catch_all.replicas = replicas_per_group;
  catch_all.service = base;
  config.groups.push_back(std::move(catch_all));
  return config;
}

std::string FabricStatsSnapshot::ToString() const {
  std::string out = StrFormat(
      "fabric: classified %llu | route-cache hits %llu | admitted %llu "
      "shed %llu deferred %llu (drained %llu overflow %llu) | breaches "
      "%llu | drains %llu | escalations dead %llu open %llu overloaded "
      "%llu | exhausted-fallbacks %llu\n",
      static_cast<unsigned long long>(classified),
      static_cast<unsigned long long>(route_cache_hits),
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(deferred),
      static_cast<unsigned long long>(defer_drained),
      static_cast<unsigned long long>(defer_overflow),
      static_cast<unsigned long long>(slo_breaches),
      static_cast<unsigned long long>(drains),
      static_cast<unsigned long long>(escalations_dead),
      static_cast<unsigned long long>(escalations_open),
      static_cast<unsigned long long>(escalations_overloaded),
      static_cast<unsigned long long>(fallback_exhausted));
  for (const PerGroup& g : groups) {
    out += StrFormat("  %-14s routed %llu  absorbed %llu\n",
                     (g.name + (g.catch_all ? "*" : "")).c_str(),
                     static_cast<unsigned long long>(g.routed),
                     static_cast<unsigned long long>(g.absorbed));
    for (const PerReplica& r : g.replicas) {
      out += StrFormat(
          "    %-14s %-8s gen %llu  picks %llu  cache %llu  model %llu  "
          "fallbacks %llu\n",
          r.label.c_str(), ReplicaHealthName(r.health),
          static_cast<unsigned long long>(r.generation),
          static_cast<unsigned long long>(r.picks),
          static_cast<unsigned long long>(r.service.cache_hits),
          static_cast<unsigned long long>(r.service.model_predictions),
          static_cast<unsigned long long>(r.service.fallbacks()));
    }
  }
  return out;
}

Fabric::Fabric(FabricConfig config, serve::CostCalibration calibration)
    : admission_config_(config.admission),
      open_probe_every_(std::max<size_t>(1, config.open_probe_every)),
      p2c_seed_(config.p2c_seed),
      p2c_ignore_depth_(config.p2c_ignore_depth),
      calibration_(calibration),
      trace_(config.trace),
      faults_(config.faults),
      flight_(obs::FlightRecorderOptions{config.flight_capacity}),
      trace_ids_(config.trace_seed),
      admission_(config.admission, &metrics_, &flight_, config.trace),
      route_cache_(config.route_cache_capacity) {
  QPP_CHECK_MSG(!config.groups.empty(), "fabric needs at least one group");
  classified_ = metrics_.GetCounter("qpp_fabric_classified_total");
  route_cache_hits_ =
      metrics_.GetCounter("qpp_fabric_route_cache_hits_total");
  admitted_ = metrics_.GetCounter("qpp_fabric_admitted_total");
  for (const workload::QueryType type :
       {workload::QueryType::kFeather, workload::QueryType::kGolfBall,
        workload::QueryType::kBowlingBall,
        workload::QueryType::kWreckingBall}) {
    shed_by_pool_[PoolIndex(type)] = metrics_.GetCounter(
        "qpp_fabric_shed_total", {{"pool", workload::QueryTypeName(type)}});
  }
  deferred_ = metrics_.GetCounter("qpp_fabric_deferred_total");
  defer_drained_ = metrics_.GetCounter("qpp_fabric_defer_drained_total");
  defer_overflow_ = metrics_.GetCounter("qpp_fabric_defer_overflow_total");
  slo_breaches_ = metrics_.GetCounter("qpp_fabric_slo_breach_total");
  drains_ = metrics_.GetCounter("qpp_fabric_drains_total");
  fallback_exhausted_ =
      metrics_.GetCounter("qpp_fabric_fallback_exhausted_total");
  deferred_pending_ = metrics_.GetGauge("qpp_fabric_deferred_pending");

  for (ReplicaGroupSpec& spec : config.groups) {
    QPP_CHECK_MSG(spec.replicas >= 1,
                  "group " << spec.name << " needs at least one replica");
    auto group = std::make_unique<Group>();
    group->spec = std::move(spec);
    for (const auto& other : groups_) {
      QPP_CHECK_MSG(other->spec.name != group->spec.name,
                    "duplicate group name: " << group->spec.name);
    }
    const obs::Labels group_labels = {{"group", group->spec.name}};
    group->routed =
        metrics_.GetCounter("qpp_fabric_requests_total", group_labels);
    group->absorbed =
        metrics_.GetCounter("qpp_fabric_absorbed_total", group_labels);
    group->escalated_dead = metrics_.GetCounter(
        "qpp_fabric_escalations_total",
        {{"group", group->spec.name}, {"reason", "dead"}});
    group->escalated_open = metrics_.GetCounter(
        "qpp_fabric_escalations_total",
        {{"group", group->spec.name}, {"reason", "circuit-open"}});
    group->escalated_overloaded = metrics_.GetCounter(
        "qpp_fabric_escalations_total",
        {{"group", group->spec.name}, {"reason", "overloaded"}});
    for (size_t i = 0; i < group->spec.replicas; ++i) {
      auto replica = std::make_unique<Replica>();
      replica->label = ReplicaLabel(group->spec.name, i);
      replica->registry = std::make_unique<serve::ModelRegistry>();
      serve::ServiceConfig service_config = group->spec.service;
      service_config.shard_label = replica->label;
      if (service_config.trace == nullptr) service_config.trace = trace_;
      if (service_config.faults == nullptr) service_config.faults = faults_;
      if (service_config.shadow == nullptr) {
        service_config.shadow = config.shadow;
      }
      if (admission_config_.enabled && !service_config.on_response) {
        // Every replica feeds the front door's windowed-p99 signal.
        AdmissionController* admission = &admission_;
        service_config.on_response =
            [admission](const serve::ServeResponse& response) {
              admission->RecordLatency(response.latency_seconds);
            };
      }
      replica->service = std::make_unique<serve::PredictionService>(
          replica->registry.get(), service_config, calibration_);
      if (service_config.breaker.enabled) {
        // Every breaker flip of every replica lands in the black box.
        obs::FlightRecorder* flight = &flight_;
        const std::string label = replica->label;
        replica->service->mutable_breaker()->set_transition_hook(
            [flight, label](serve::CircuitBreaker::State from,
                            serve::CircuitBreaker::State to) {
              flight->Record(obs::FlightEventKind::kBreakerTransition,
                             /*trace_id=*/0, static_cast<int32_t>(to),
                             static_cast<double>(from), label);
            });
      }
      replica->picks = metrics_.GetCounter(
          "qpp_fabric_replica_picks_total",
          {{"group", group->spec.name}, {"replica", std::to_string(i)}});
      group->replicas.push_back(std::move(replica));
    }
    if (group->spec.pools.empty()) {
      QPP_CHECK_MSG(catch_all_ == nullptr,
                    "more than one catch-all group configured");
      catch_all_ = group.get();
    } else {
      experts_.push_back(group.get());
    }
    groups_.push_back(std::move(group));
  }
  QPP_CHECK_MSG(catch_all_ != nullptr,
                "fabric needs a catch-all group (one spec with empty pools)");

  if (faults_ != nullptr) {
    // Injected faults go into our black box too; detached in ~Fabric —
    // the injector outlives the fabric per the config contract.
    faults_->set_flight_recorder(&flight_);
  }
  if (faults_ != nullptr && faults_->plan().serve.replica_targeted()) {
    // Default kill semantics: the targeted replica drops dead and loses
    // its model — the rest of its group absorbs the traffic. The harness
    // may overwrite this hook with its own.
    const std::string& target = faults_->plan().serve.target_replica_label;
    for (auto& group : groups_) {
      for (size_t i = 0; i < group->replicas.size(); ++i) {
        if (group->replicas[i]->label != target) continue;
        Replica* replica = group->replicas[i].get();
        faults_->set_replica_kill_hook([replica] {
          replica->health.store(ReplicaHealth::kDead,
                                std::memory_order_relaxed);
          replica->registry->Unpublish();
        });
      }
    }
  }
}

Fabric::~Fabric() {
  Shutdown();
  if (faults_ != nullptr) faults_->set_flight_recorder(nullptr);
}

void Fabric::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    // Deferred requests were accepted (their futures are out there):
    // dispatch them now, before the replicas stop. Any the replicas
    // refuse fall through to the inline fallback as usual.
    std::vector<DeferredRequest> leftovers;
    {
      std::lock_guard<std::mutex> lock(deferred_mu_);
      while (!deferred_queue_.empty()) {
        leftovers.push_back(std::move(deferred_queue_.front()));
        deferred_queue_.pop_front();
      }
      deferred_pending_->Set(0.0);
    }
    for (DeferredRequest& d : leftovers) {
      defer_drained_->Inc();
      obs::ScopedRequestContext scope(d.request.ctx);
      flight_.Record(obs::FlightEventKind::kDeferDrained,
                     d.request.ctx.trace_id);
      const RouteVerdict verdict = Classify(d.request);
      Dispatch(d.request, &d.promise, verdict.pool);
    }
    for (auto& group : groups_) {
      for (auto& replica : group->replicas) replica->service->Shutdown();
    }
  });
}

serve::ModelRegistry* Fabric::registry(const std::string& group,
                                       size_t replica) {
  for (auto& g : groups_) {
    if (g->spec.name != group) continue;
    if (replica >= g->replicas.size()) return nullptr;
    return g->replicas[replica]->registry.get();
  }
  return nullptr;
}

serve::PredictionService* Fabric::service(const std::string& group,
                                          size_t replica) {
  for (auto& g : groups_) {
    if (g->spec.name != group) continue;
    if (replica >= g->replicas.size()) return nullptr;
    return g->replicas[replica]->service.get();
  }
  return nullptr;
}

ReplicaHealth Fabric::health(const std::string& group, size_t replica) const {
  for (const auto& g : groups_) {
    if (g->spec.name != group) continue;
    QPP_CHECK(replica < g->replicas.size());
    return g->replicas[replica]->health.load(std::memory_order_relaxed);
  }
  QPP_CHECK_MSG(false, "unknown group: " << group);
  return ReplicaHealth::kDead;
}

void Fabric::SetReplicaHealth(const std::string& group, size_t replica,
                              ReplicaHealth health) {
  for (auto& g : groups_) {
    if (g->spec.name != group) continue;
    QPP_CHECK(replica < g->replicas.size());
    g->replicas[replica]->health.store(health, std::memory_order_relaxed);
    flight_.Record(obs::FlightEventKind::kHealthChange, /*trace_id=*/0,
                   static_cast<int32_t>(health), 0.0,
                   g->replicas[replica]->label);
    TraceInstant("health", "replica",
                 g->replicas[replica]->label + "=" +
                     ReplicaHealthName(health));
    return;
  }
  QPP_CHECK_MSG(false, "unknown group: " << group);
}

bool Fabric::DrainSwapRevive(const std::string& group, size_t replica,
                             std::shared_ptr<const core::Predictor> model) {
  serve::PredictionService* svc = service(group, replica);
  serve::ModelRegistry* reg = registry(group, replica);
  if (svc == nullptr || reg == nullptr) return false;
  SetReplicaHealth(group, replica, ReplicaHealth::kDraining);
  // The replica takes no new picks now; wait (bounded) for what it
  // already queued. Sequential harnesses see an empty queue immediately.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (svc->queue_depth() > 0) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  reg->Publish(std::move(model));
  SetReplicaHealth(group, replica, ReplicaHealth::kUp);
  drains_->Inc();
  flight_.Record(obs::FlightEventKind::kSwap, /*trace_id=*/0, /*code=*/0,
                 0.0, ReplicaLabel(group, replica));
  TraceInstant("drain-swap-revive", "replica", ReplicaLabel(group, replica));
  return true;
}

size_t Fabric::replica_count(const std::string& group) const {
  for (const auto& g : groups_) {
    if (g->spec.name == group) return g->replicas.size();
  }
  return 0;
}

const std::string& Fabric::catch_all_name() const {
  return catch_all_->spec.name;
}

size_t Fabric::TotalQueueDepth() const {
  size_t depth = 0;
  for (const auto& group : groups_) {
    for (const auto& replica : group->replicas) {
      depth += replica->service->queue_depth();
    }
  }
  return depth;
}

Fabric::RouteVerdict Fabric::Classify(const serve::ServeRequest& request) {
  RouteVerdict verdict;
  // The classifier is the catch-all group's model; replicas serve the same
  // bits, so any up replica with a model will do (falling back to any
  // replica with one — a draining classifier still classifies).
  serve::ModelRegistry::Snapshot snap;
  for (const auto& replica : catch_all_->replicas) {
    if (replica->health.load(std::memory_order_relaxed) ==
        ReplicaHealth::kDead) {
      continue;
    }
    snap = replica->registry->Acquire();
    if (snap.valid()) break;
  }
  if (!snap.valid()) {
    for (const auto& replica : catch_all_->replicas) {
      snap = replica->registry->Acquire();
      if (snap.valid()) break;
    }
  }
  if (!snap.valid()) return verdict;  // no classifier anywhere: feather/0
  bool cached = false;
  if (route_cache_.capacity() > 0) {
    std::lock_guard<std::mutex> lock(route_cache_mu_);
    cached = route_cache_.Get(request.features, &verdict) &&
             verdict.classifier_generation == snap.generation;
  }
  if (cached) {
    route_cache_hits_->Inc();
    return verdict;
  }
  {
    obs::Span span(trace_, "classify", "fabric");
    verdict.pool = snap.model->Predict(request.features).predicted_type;
  }
  verdict.classifier_generation = snap.generation;
  classified_->Inc();
  if (route_cache_.capacity() > 0) {
    std::lock_guard<std::mutex> lock(route_cache_mu_);
    route_cache_.Put(request.features, verdict);
  }
  return verdict;
}

Fabric::Group* Fabric::GroupFor(workload::QueryType pool) {
  for (Group* expert : experts_) {
    for (const workload::QueryType p : expert->spec.pools) {
      if (p == pool) return expert;
    }
  }
  return nullptr;
}

Fabric::Replica* Fabric::PickReplica(Group* group, bool require_model,
                                     const char** reason) {
  // Eligible = up, serving a model (experts only), breaker not open — but
  // every open_probe_every-th pick of an open-breaker replica goes
  // through anyway as a recovery probe, exactly like the shard router.
  std::vector<Replica*> ups;
  ups.reserve(group->replicas.size());
  size_t open_excluded = 0;
  for (auto& replica : group->replicas) {
    if (replica->health.load(std::memory_order_relaxed) !=
        ReplicaHealth::kUp) {
      continue;
    }
    if (require_model && !replica->registry->has_model()) continue;
    if (group->spec.service.breaker.enabled &&
        replica->service->breaker().state() ==
            serve::CircuitBreaker::State::kOpen &&
        replica->open_diversions.fetch_add(1, std::memory_order_relaxed) %
                open_probe_every_ !=
            open_probe_every_ - 1) {
      ++open_excluded;
      continue;
    }
    ups.push_back(replica.get());
  }
  if (ups.empty()) {
    *reason = open_excluded > 0 ? "circuit-open" : "dead";
    return nullptr;
  }
  if (ups.size() == 1) return ups[0];
  // Power of two choices with a keyed draw: candidates and the tie-break
  // come from one SplitMix64 stream consumed per pick, so a sequentially
  // driven fabric replays its pick sequence bit-for-bit.
  const uint64_t seq = group->pick_seq.fetch_add(1, std::memory_order_relaxed);
  const uint64_t draw_a = SplitMix64(p2c_seed_ ^ SplitMix64(seq));
  const uint64_t draw_b = SplitMix64(draw_a);
  Replica* a = ups[draw_a % ups.size()];
  Replica* b = ups[draw_b % ups.size()];
  if (a == b) return a;
  if (!p2c_ignore_depth_) {
    const size_t depth_a = a->service->queue_depth();
    const size_t depth_b = b->service->queue_depth();
    if (depth_a != depth_b) return depth_a < depth_b ? a : b;
  }
  return (draw_b >> 63) != 0 ? b : a;
}

void Fabric::TraceInstant(const char* name, const std::string& detail_key,
                          const std::string& detail) {
  if (trace_ == nullptr) return;
  obs::TraceEvent e = InstantEvent(trace_, name);
  e.args.emplace_back(detail_key, std::string("\"") + detail + "\"");
  const obs::RequestContext& ctx = obs::CurrentRequestContext();
  if (ctx.valid()) {
    e.args.emplace_back("trace_id",
                        "\"" + obs::TraceIdHex(ctx.trace_id) + "\"");
  }
  trace_->Add(std::move(e));
}

void Fabric::RespondShed(const serve::ServeRequest& request,
                         std::promise<serve::ServeResponse>* promise,
                         workload::QueryType pool) {
  shed_by_pool_[PoolIndex(pool)]->Inc();
  TraceInstant("admission-shed", "pool", workload::QueryTypeName(pool));
  flight_.Record(obs::FlightEventKind::kFallback, request.ctx.trace_id,
                 static_cast<int32_t>(pool), 0.0, "admission-shed");
  serve::ServeResponse response;
  response.prediction = serve::FallbackPrediction(
      calibration_, request.optimizer_cost, /*anomalous=*/false);
  response.source = serve::ResponseSource::kOptimizerFallback;
  response.degraded_reason = "admission-shed";
  response.trace_id = request.ctx.trace_id;
  promise->set_value(std::move(response));
}

void Fabric::RespondExhausted(const serve::ServeRequest& request,
                              std::promise<serve::ServeResponse>* promise) {
  fallback_exhausted_->Inc();
  if (trace_ != nullptr) {
    obs::TraceEvent e = InstantEvent(trace_, "exhausted");
    if (request.ctx.valid()) {
      e.args.emplace_back(
          "trace_id", "\"" + obs::TraceIdHex(request.ctx.trace_id) + "\"");
    }
    trace_->Add(std::move(e));
  }
  flight_.Record(obs::FlightEventKind::kFallback, request.ctx.trace_id,
                 /*code=*/0, 0.0, "fabric-exhausted");
  serve::ServeResponse response;
  response.prediction = serve::FallbackPrediction(
      calibration_, request.optimizer_cost, /*anomalous=*/false);
  response.source = serve::ResponseSource::kOptimizerFallback;
  response.degraded_reason = "fabric-exhausted";
  response.trace_id = request.ctx.trace_id;
  promise->set_value(std::move(response));
}

void Fabric::Dispatch(const serve::ServeRequest& request,
                      std::promise<serve::ServeResponse>* promise,
                      workload::QueryType pool) {
  // Deferred-drain and shutdown dispatches arrive outside Submit's scope;
  // reinstall the request's identity for picks, escalations, and faults.
  obs::ScopedRequestContext scope(request.ctx);
  Group* expert = GroupFor(pool);
  if (expert != nullptr) {
    const char* escalation = nullptr;
    Replica* replica = PickReplica(expert, /*require_model=*/true,
                                   &escalation);
    if (replica != nullptr) {
      replica->picks->Inc();
      flight_.Record(obs::FlightEventKind::kPick, request.ctx.trace_id,
                     /*code=*/0, 0.0, replica->label);
      if (faults_ != nullptr && faults_->serve_enabled() &&
          faults_->NextReplicaKill(replica->label)) {
        // Fires before the dispatch below so the Nth pick is also the
        // first one the dead replica forces to re-route.
        faults_->FireReplicaKill();
      }
      if (replica->health.load(std::memory_order_relaxed) ==
              ReplicaHealth::kUp &&
          replica->registry->has_model() &&
          replica->service->TrySubmitWithPromise(request, promise)) {
        expert->routed->Inc();
        return;
      }
      // The pick went stale under us (killed mid-flight) or its queue
      // refused: either way the group could not take it.
      escalation = replica->registry->has_model() ? "overloaded" : "dead";
    }
    if (escalation == nullptr) escalation = "dead";
    if (std::string_view(escalation) == "dead") {
      expert->escalated_dead->Inc();
    } else if (std::string_view(escalation) == "circuit-open") {
      expert->escalated_open->Inc();
    } else {
      expert->escalated_overloaded->Inc();
    }
    TraceInstant("escalate", "group",
                 expert->spec.name + ":" + escalation);
    flight_.Record(obs::FlightEventKind::kEscalation, request.ctx.trace_id,
                   /*code=*/0, 0.0, expert->spec.name + "/" + escalation);
    catch_all_->absorbed->Inc();
  } else {
    catch_all_->routed->Inc();
  }
  const char* unused = nullptr;
  Replica* replica = PickReplica(catch_all_, /*require_model=*/false,
                                 &unused);
  if (replica != nullptr) {
    replica->picks->Inc();
    flight_.Record(obs::FlightEventKind::kPick, request.ctx.trace_id,
                   /*code=*/0, 0.0, replica->label);
    if (faults_ != nullptr && faults_->serve_enabled() &&
        faults_->NextReplicaKill(replica->label)) {
      faults_->FireReplicaKill();
    }
    if (replica->health.load(std::memory_order_relaxed) !=
            ReplicaHealth::kDead &&
        replica->service->TrySubmitWithPromise(request, promise)) {
      return;
    }
  }
  // Bottom of the ladder: no catch-all replica could take it.
  RespondExhausted(request, promise);
}

void Fabric::DrainDeferred() {
  // Piggyback draining: dispatch a few parked requests whenever the
  // signal is clear. Runs on the submitting client's thread.
  const size_t budget = std::max<size_t>(
      1, admission_config_.defer_drain_per_submit);
  for (size_t i = 0; i < budget; ++i) {
    DeferredRequest d;
    {
      std::lock_guard<std::mutex> lock(deferred_mu_);
      if (deferred_queue_.empty()) return;
      d = std::move(deferred_queue_.front());
      deferred_queue_.pop_front();
      deferred_pending_->Set(static_cast<double>(deferred_queue_.size()));
    }
    defer_drained_->Inc();
    obs::ScopedRequestContext scope(d.request.ctx);
    flight_.Record(obs::FlightEventKind::kDeferDrained,
                   d.request.ctx.trace_id);
    const RouteVerdict verdict = Classify(d.request);
    Dispatch(d.request, &d.promise, verdict.pool);
  }
}

std::future<serve::ServeResponse> Fabric::Submit(serve::ServeRequest request) {
  // The front door stamps the correlation id (unless the caller already
  // did) and installs it for everything this thread does on the request's
  // behalf: classification, the admission verdict, dispatch, fault draws.
  if (!request.ctx.valid()) request.ctx = trace_ids_.Next();
  obs::ScopedRequestContext scope(request.ctx);
  std::promise<serve::ServeResponse> promise;
  std::future<serve::ServeResponse> future = promise.get_future();
  const RouteVerdict verdict = Classify(request);
  if (admission_config_.enabled) {
    const LoadSignal signal = admission_.Signal(TotalQueueDepth());
    const bool breached = admission_.Breached(signal);
    if (breached) {
      slo_breaches_->Inc();
      flight_.Record(obs::FlightEventKind::kSloBreach, request.ctx.trace_id,
                     static_cast<int32_t>(verdict.pool),
                     signal.windowed_p99_seconds);
    }
    switch (admission_.Decide(verdict.pool, signal)) {
      case AdmissionAction::kShed:
        flight_.Record(obs::FlightEventKind::kAdmissionShed,
                       request.ctx.trace_id,
                       static_cast<int32_t>(verdict.pool),
                       static_cast<double>(signal.queue_depth));
        RespondShed(request, &promise, verdict.pool);
        return future;
      case AdmissionAction::kDefer: {
        bool parked = false;
        {
          std::lock_guard<std::mutex> lock(deferred_mu_);
          if (deferred_queue_.size() < admission_config_.max_deferred) {
            DeferredRequest d;
            d.request = std::move(request);
            d.promise = std::move(promise);
            deferred_queue_.push_back(std::move(d));
            deferred_pending_->Set(
                static_cast<double>(deferred_queue_.size()));
            parked = true;
          }
        }
        if (parked) {
          deferred_->Inc();
          flight_.Record(obs::FlightEventKind::kAdmissionDefer,
                         obs::CurrentRequestContext().trace_id,
                         static_cast<int32_t>(verdict.pool),
                         static_cast<double>(signal.queue_depth));
          TraceInstant("defer", "pool",
                       workload::QueryTypeName(verdict.pool));
          return future;
        }
        // Defer buffer full: degrade to a shed rather than block.
        defer_overflow_->Inc();
        flight_.Record(obs::FlightEventKind::kDeferOverflow,
                       request.ctx.trace_id,
                       static_cast<int32_t>(verdict.pool),
                       static_cast<double>(signal.queue_depth));
        RespondShed(request, &promise, verdict.pool);
        return future;
      }
      case AdmissionAction::kAdmit:
        break;
    }
    admitted_->Inc();
    flight_.Record(obs::FlightEventKind::kAdmissionAdmit,
                   request.ctx.trace_id,
                   static_cast<int32_t>(verdict.pool));
    if (!breached) DrainDeferred();
  } else {
    admitted_->Inc();
  }
  Dispatch(request, &promise, verdict.pool);
  return future;
}

FabricStatsSnapshot Fabric::stats() const {
  FabricStatsSnapshot out;
  out.classified = classified_->value();
  out.route_cache_hits = route_cache_hits_->value();
  out.admitted = admitted_->value();
  for (const obs::Counter* c : shed_by_pool_) out.shed += c->value();
  out.deferred = deferred_->value();
  out.defer_drained = defer_drained_->value();
  out.defer_overflow = defer_overflow_->value();
  out.slo_breaches = slo_breaches_->value();
  out.drains = drains_->value();
  out.fallback_exhausted = fallback_exhausted_->value();
  for (const auto& group : groups_) {
    FabricStatsSnapshot::PerGroup g;
    g.name = group->spec.name;
    g.catch_all = group.get() == catch_all_;
    g.routed = group->routed->value();
    g.absorbed = group->absorbed->value();
    for (const auto& replica : group->replicas) {
      FabricStatsSnapshot::PerReplica r;
      r.label = replica->label;
      r.health = replica->health.load(std::memory_order_relaxed);
      r.generation = replica->registry->generation();
      r.picks = replica->picks->value();
      r.service = replica->service->stats();
      g.replicas.push_back(std::move(r));
    }
    out.groups.push_back(std::move(g));
    out.escalations_dead += group->escalated_dead->value();
    out.escalations_open += group->escalated_open->value();
    out.escalations_overloaded += group->escalated_overloaded->value();
  }
  return out;
}

size_t PublishTwoStep(const core::TwoStepPredictor& two_step,
                      Fabric* fabric) {
  QPP_CHECK(fabric != nullptr && two_step.trained());
  size_t published = 0;
  const auto base = std::make_shared<const core::Predictor>(two_step.base());
  const std::string catch_all = fabric->catch_all_name();
  for (size_t i = 0; i < fabric->replica_count(catch_all); ++i) {
    fabric->registry(catch_all, i)->Publish(base);
    ++published;
  }
  for (const workload::QueryType type :
       {workload::QueryType::kFeather, workload::QueryType::kGolfBall,
        workload::QueryType::kBowlingBall,
        workload::QueryType::kWreckingBall}) {
    const core::Predictor* expert = two_step.CategoryModel(type);
    if (expert == nullptr) continue;
    const auto model = std::make_shared<const core::Predictor>(*expert);
    for (size_t g = 0; g < fabric->num_groups(); ++g) {
      const ReplicaGroupSpec& spec = fabric->group_spec(g);
      if (std::find(spec.pools.begin(), spec.pools.end(), type) ==
          spec.pools.end()) {
        continue;
      }
      for (size_t i = 0; i < spec.replicas; ++i) {
        fabric->registry(spec.name, i)->Publish(model);
        ++published;
      }
    }
  }
  return published;
}

}  // namespace qpp::fabric
