#include "fault/chaos.h"

#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/tpcds.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/predictor.h"
#include "engine/simulator.h"
#include "fault/fault_injector.h"
#include "obs/drift_monitor.h"
#include "obs/registry.h"
#include "optimizer/optimizer.h"
#include "core/two_step.h"
#include "serve/prediction_service.h"
#include "shard/shard_router.h"
#include "workload/generator.h"
#include "workload/tpcds_templates.h"

namespace qpp::fault {
namespace {

// ------------------------------------------------------------ utilities --

/// Violation collector with printf ergonomics.
class Violations {
 public:
  explicit Violations(ScenarioResult* result) : result_(result) {}

  void Check(bool ok, const std::string& message) {
    if (!ok) result_->violations.push_back(message);
  }

 private:
  ScenarioResult* result_;
};

/// All fault kinds, for the report's fault digest.
const char* kAllKinds[] = {
    "disk_stall",      "message_loss",  "node_slowdown", "node_failure",
    "buffer_pressure", "submit_reject", "worker_stall",  "registry_swap",
    "shard_kill",      "shard_stall",
};

std::string FaultDigest(const FaultInjector& injector) {
  std::string out = "injected faults:\n";
  for (const char* kind : kAllKinds) {
    out += StrFormat("  %-16s %llu\n", kind,
                     static_cast<unsigned long long>(injector.injected(kind)));
  }
  return out;
}

/// The deterministic subset of the serve counters (everything except
/// wall-clock latency, which can never be replay-stable).
std::string ServeCounters(const serve::ServiceStatsSnapshot& s) {
  return StrFormat(
      "serve counters:\n"
      "  requests          %llu\n"
      "  cache_hits        %llu\n"
      "  model_predictions %llu\n"
      "  fb_no_model       %llu\n"
      "  fb_anomalous      %llu\n"
      "  fb_deadline       %llu\n"
      "  fb_shutdown       %llu\n"
      "  fb_overload       %llu\n"
      "  fb_circuit_open   %llu\n"
      "  rejected          %llu\n",
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.model_predictions),
      static_cast<unsigned long long>(s.fallback_no_model),
      static_cast<unsigned long long>(s.fallback_anomalous),
      static_cast<unsigned long long>(s.fallback_deadline),
      static_cast<unsigned long long>(s.fallback_shutdown),
      static_cast<unsigned long long>(s.fallback_overload),
      static_cast<unsigned long long>(s.fallback_circuit_open),
      static_cast<unsigned long long>(s.rejected));
}

/// The serving accounting identity: every delivered response was answered
/// by exactly one of cache / model / fallback.
void CheckAccounting(const serve::ServiceStatsSnapshot& s, Violations* v) {
  v->Check(s.cache_hits + s.model_predictions + s.fallbacks() == s.requests,
           StrFormat("accounting identity broken: cache %llu + model %llu + "
                     "fallbacks %llu != requests %llu",
                     static_cast<unsigned long long>(s.cache_hits),
                     static_cast<unsigned long long>(s.model_predictions),
                     static_cast<unsigned long long>(s.fallbacks()),
                     static_cast<unsigned long long>(s.requests)));
}

// --------------------------------------------------- serve scenario rig --

/// Small synthetic workload with nonlinear metric structure; the same
/// shape the serve tests train on (milliseconds to fit).
std::vector<ml::TrainingExample> SyntheticExamples(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ml::TrainingExample> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ml::TrainingExample ex;
    const double a = rng.Uniform(1.0, 10.0);
    const double b = rng.Uniform(1.0, 10.0);
    const double c = rng.Uniform(0.0, 5.0);
    ex.query_features = {a, b, c, a * b, rng.Uniform(0.0, 1.0)};
    ex.metrics.elapsed_seconds = 0.5 * a * b + c;
    ex.metrics.records_accessed = 1000.0 * a + 50.0 * c;
    ex.metrics.records_used = 100.0 * a;
    ex.metrics.message_count = 10.0 * b;
    ex.metrics.message_bytes = 1000.0 * b + 10.0 * a;
    out.push_back(std::move(ex));
  }
  return out;
}

std::shared_ptr<const core::Predictor> TrainModel(uint64_t seed) {
  core::PredictorConfig cfg;
  cfg.kcca.solver = ml::KccaSolver::kExact;
  auto pred = std::make_shared<core::Predictor>(cfg);
  pred->Train(SyntheticExamples(64, seed));
  return pred;
}

/// In-distribution probe vectors (anomaly policy must not fire on them).
std::vector<linalg::Vector> MakeProbes(size_t n, uint64_t seed) {
  std::vector<linalg::Vector> out;
  out.reserve(n);
  for (const auto& ex : SyntheticExamples(n, seed)) {
    out.push_back(ex.query_features);
  }
  return out;
}

/// Three Fig. 2 pools (feather / golf ball / bowling ball) with
/// well-separated features AND elapsed times, so the step-1 classifier's
/// neighbor vote lands in the right pool and every pool trains an expert.
/// Pool-major order: [0, per_pool) feathers, then golf, then bowling.
std::vector<ml::TrainingExample> MultiPoolExamples(size_t per_pool,
                                                   uint64_t seed) {
  static const double kElapsedBase[3] = {10.0, 400.0, 2500.0};
  Rng rng(seed);
  std::vector<ml::TrainingExample> out;
  out.reserve(3 * per_pool);
  for (size_t pool = 0; pool < 3; ++pool) {
    const double off = static_cast<double>(pool);
    for (size_t i = 0; i < per_pool; ++i) {
      ml::TrainingExample ex;
      const double a = rng.Uniform(1.0, 10.0);
      const double b = rng.Uniform(1.0, 10.0);
      const double c = rng.Uniform(0.0, 5.0);
      ex.query_features = {a + 40.0 * off, b + 10.0 * off, c,
                           a * b + 25.0 * off, rng.Uniform(0.0, 1.0)};
      // 0.5ab + c <= 55, so every example stays inside its pool's band.
      ex.metrics.elapsed_seconds = kElapsedBase[pool] + 0.5 * a * b + c;
      ex.metrics.records_accessed = 1000.0 * a + 50.0 * c + 10000.0 * off;
      ex.metrics.records_used = 100.0 * a + 1000.0 * off;
      ex.metrics.message_count = 10.0 * b + 100.0 * off;
      ex.metrics.message_bytes = 1000.0 * b + 10.0 * a;
      out.push_back(std::move(ex));
    }
  }
  return out;
}

serve::CostCalibration ChaosCalibration() {
  serve::CostCalibration cal;
  cal.slope = 1.0;
  cal.intercept = -2.0;
  cal.fitted = true;
  return cal;
}

bool BitIdentical(const core::Prediction& a, const core::Prediction& b) {
  return a.metrics.ToVector() == b.metrics.ToVector() &&
         a.mean_neighbor_distance == b.mean_neighbor_distance &&
         a.confidence == b.confidence && a.anomalous == b.anomalous &&
         a.neighbor_indices == b.neighbor_indices;
}

// -------------------------------------------------------- engine: plans --

engine::QueryMetrics ScaleMetrics(const engine::QueryMetrics& m,
                                  double factor) {
  return engine::QueryMetrics::FromVector(
      linalg::ScaleVec(m.ToVector(), factor));
}

// ----------------------------------------------------------- scenarios --

/// node-death: engine faults under the simulator. Determinism (two
/// injectors with the same plan produce bit-identical metrics), clean-run
/// bit-identity (a disabled injector changes nothing), and the
/// faults-only-slow-queries contract on elapsed time.
ScenarioResult RunNodeDeath(const FaultPlan& plan, const ChaosOptions& opts) {
  ScenarioResult result;
  result.name = "node-death";
  Violations v(&result);

  const catalog::Catalog catalog = catalog::MakeTpcdsCatalog(1.0);
  optimizer::OptimizerOptions oopts;
  oopts.nodes_used = 8;
  const optimizer::Optimizer opt(&catalog, oopts);
  const engine::ExecutionSimulator sim(&catalog,
                                       engine::SystemConfig::Neoview32(8));

  const FaultInjector faulted_a(plan);
  const FaultInjector faulted_b(plan);   // same plan, fresh injector
  const FaultInjector disabled({});      // enabled() == false

  const auto queries = workload::GenerateWorkload(
      workload::TpcdsTemplates(), opts.queries, opts.seed);
  double clean_sum = 0.0, faulted_sum = 0.0;
  linalg::Vector metric_sums(engine::QueryMetrics::kNumMetrics, 0.0);
  size_t simulated = 0;
  for (const auto& q : queries) {
    const auto planned = opt.Plan(q.sql);
    if (!planned.ok()) continue;  // template bugs are other tests' business
    const optimizer::PhysicalPlan& p = planned.value();
    ++simulated;

    const engine::QueryMetrics clean = sim.Execute(p);
    const engine::QueryMetrics off = sim.Execute(p, nullptr, &disabled);
    const engine::QueryMetrics fa = sim.Execute(p, nullptr, &faulted_a);
    const engine::QueryMetrics fb = sim.Execute(p, nullptr, &faulted_b);

    v.Check(off.ToVector() == clean.ToVector() &&
                off.cpu_seconds == clean.cpu_seconds,
            "disabled injector is not bit-identical to a null injector: " +
                q.template_name);
    v.Check(fa.ToVector() == fb.ToVector() &&
                fa.cpu_seconds == fb.cpu_seconds,
            "same plan, two injectors, different metrics (determinism "
            "broken): " +
                q.template_name);
    v.Check(fa.elapsed_seconds >= clean.elapsed_seconds - 1e-12,
            StrFormat("fault made a query FASTER: %s clean %.17g faulted "
                      "%.17g",
                      q.template_name.c_str(), clean.elapsed_seconds,
                      fa.elapsed_seconds));
    clean_sum += clean.elapsed_seconds;
    faulted_sum += fa.elapsed_seconds;
    metric_sums = linalg::AddVec(metric_sums, fa.ToVector());
  }
  v.Check(simulated > 0, "no queries simulated");
  v.Check(faulted_a.injected("node_failure") > 0,
          "scenario injected zero node failures");
  v.Check(faulted_sum > clean_sum,
          "fault schedule had no aggregate elapsed-time effect");

  result.report = FaultDigest(faulted_a);
  result.report += StrFormat("queries simulated:  %llu\n",
                             static_cast<unsigned long long>(simulated));
  result.report +=
      StrFormat("clean elapsed sum:   %.17g\n", clean_sum) +
      StrFormat("faulted elapsed sum: %.17g\n", faulted_sum);
  result.report += "faulted metric sums:\n";
  const auto names = engine::QueryMetrics::MetricNames();
  for (size_t m = 0; m < names.size(); ++m) {
    result.report +=
        StrFormat("  %-18s %.17g\n", names[m].c_str(), metric_sums[m]);
  }
  return result;
}

/// fallback-storm: worker stalls blow the queue deadline; late requests
/// take the labeled deadline fallback, the breaker trips to circuit-open
/// and recovers through half-open probes, and the drift monitor fires on
/// the degradation the storm causes.
ScenarioResult RunFallbackStorm(const FaultPlan& plan,
                                const ChaosOptions& opts) {
  ScenarioResult result;
  result.name = "fallback-storm";
  Violations v(&result);

  obs::MetricsRegistry fault_registry;
  FaultInjector injector(plan, &fault_registry);

  serve::ModelRegistry registry;
  registry.Publish(TrainModel(opts.seed ^ 0x5EEDull));

  serve::ServiceConfig config;
  config.num_workers = 1;          // sequential driving => batch size 1
  config.cache_capacity = 0;       // every answer is model or fallback
  config.queue_deadline_seconds = 5.0;  // >> real waits, << injected stall
  config.breaker.enabled = true;
  config.breaker.window = 16;
  config.breaker.min_samples = 8;
  config.breaker.trip_ratio = 0.5;
  config.breaker.open_requests = 6;
  config.faults = &injector;
  serve::PredictionService service(&registry, config, ChaosCalibration());

  obs::DriftMonitor drift({}, service.metrics());
  uint64_t drift_signals = 0;

  const auto probes = MakeProbes(opts.requests, opts.seed ^ 0xD81F7ull);
  for (size_t i = 0; i < opts.requests; ++i) {
    const serve::ServeResponse resp =
        service.Submit({probes[i], 100.0}).get();
    // Score the response against "observed" metrics 3x off — a stand-in
    // actual that guarantees large relative error, so the monitor must
    // notice once warm.
    const engine::QueryMetrics actual =
        ScaleMetrics(resp.prediction.metrics, 3.0);
    const auto source = resp.degraded()
                            ? obs::DriftMonitor::Source::kFallback
                            : obs::DriftMonitor::Source::kModel;
    if (drift.Observe(source, resp.prediction.metrics, actual)) {
      ++drift_signals;
    }
    if (resp.degraded()) {
      v.Check(!resp.degraded_reason.empty(),
              "degraded response with empty reason");
    }
  }
  service.Shutdown();

  const serve::ServiceStatsSnapshot stats = service.stats();
  CheckAccounting(stats, &v);
  v.Check(stats.requests == opts.requests,
          "not every submitted request was answered");
  v.Check(stats.fallback_deadline == injector.injected("worker_stall"),
          StrFormat("deadline fallbacks %llu != injected stalls %llu (batch "
                    "size 1 must map 1:1)",
                    static_cast<unsigned long long>(stats.fallback_deadline),
                    static_cast<unsigned long long>(
                        injector.injected("worker_stall"))));
  v.Check(stats.fallback_deadline > 0, "storm injected no deadline misses");
  v.Check(service.breaker().trips() >= 1, "breaker never tripped");
  v.Check(stats.fallback_circuit_open > 0,
          "open circuit short-circuited no requests");
  v.Check(stats.model_predictions > 0,
          "no model answers at all — breaker never recovered");
  v.Check(drift_signals >= 1, "drift monitor never fired under the storm");

  result.report = FaultDigest(injector);
  result.report += ServeCounters(stats);
  result.report += StrFormat(
      "breaker trips:      %llu\ndrift signals:      %llu\n",
      static_cast<unsigned long long>(service.breaker().trips()),
      static_cast<unsigned long long>(drift_signals));
  return result;
}

/// hot-swap: the registry-swap fault fires right after a worker acquired
/// its model snapshot. Every response must still bit-match the Predict of
/// the generation it reports, and the generation-tagged cache must never
/// serve a retired model's bits.
ScenarioResult RunHotSwap(const FaultPlan& plan, const ChaosOptions& opts) {
  ScenarioResult result;
  result.name = "hot-swap";
  Violations v(&result);

  FaultInjector injector(plan);

  const auto model_a = TrainModel(opts.seed ^ 0xA0Aull);
  const auto model_b = TrainModel(opts.seed ^ 0xB0Bull);

  serve::ModelRegistry registry;
  // published[g - 1] is the model that generation g serves.
  std::mutex published_mu;
  std::vector<std::shared_ptr<const core::Predictor>> published;
  {
    std::lock_guard<std::mutex> lock(published_mu);
    registry.Publish(model_a);
    published.push_back(model_a);
  }
  injector.set_registry_swap_hook([&] {
    // Fires on the worker thread, mid-batch, after the snapshot acquire.
    std::lock_guard<std::mutex> lock(published_mu);
    const auto& next = published.size() % 2 == 1 ? model_b : model_a;
    registry.Publish(next);
    published.push_back(next);
  });

  serve::ServiceConfig config;
  config.num_workers = 1;
  config.cache_capacity = 64;
  config.faults = &injector;
  serve::PredictionService service(&registry, config, ChaosCalibration());

  const auto probes = MakeProbes(8, opts.seed ^ 0x7AB5ull);
  size_t mismatches = 0;
  for (size_t i = 0; i < opts.requests; ++i) {
    // Consecutive pairs reuse a probe: the second of each pair is a cache
    // hit unless a swap landed between them, so the cache-hit invariant
    // below holds for any seed, not just swap-sparse ones.
    const linalg::Vector& probe = probes[(i / 2) % probes.size()];
    const serve::ServeResponse resp = service.Submit({probe, 100.0}).get();
    if (resp.degraded()) {
      // The anomaly policy is orthogonal to swaps; any other degradation
      // here means the swap broke serving.
      v.Check(resp.degraded_reason == "anomalous",
              "hot-swap degraded a response: " + resp.degraded_reason);
      continue;
    }
    std::shared_ptr<const core::Predictor> truth;
    {
      std::lock_guard<std::mutex> lock(published_mu);
      if (resp.model_generation >= 1 &&
          resp.model_generation <= published.size()) {
        truth = published[resp.model_generation - 1];
      }
    }
    if (truth == nullptr) {
      v.Check(false,
              StrFormat("response reports unpublished generation %llu",
                        static_cast<unsigned long long>(
                            resp.model_generation)));
      continue;
    }
    if (!BitIdentical(resp.prediction, truth->Predict(probe))) ++mismatches;
  }
  service.Shutdown();

  v.Check(mismatches == 0,
          StrFormat("%llu responses did not bit-match their reported "
                    "generation's Predict (stale cache or blended swap)",
                    static_cast<unsigned long long>(mismatches)));
  v.Check(injector.injected("registry_swap") > 0,
          "scenario injected zero registry swaps");
  v.Check(registry.generation() == 1 + injector.injected("registry_swap"),
          "registry generation does not add up with the injected swaps");
  const serve::ServiceStatsSnapshot stats = service.stats();
  CheckAccounting(stats, &v);
  v.Check(stats.cache_hits > 0, "cache never hit despite repeated probes");

  result.report = FaultDigest(injector);
  result.report += ServeCounters(stats);
  result.report += StrFormat(
      "final generation:   %llu\n",
      static_cast<unsigned long long>(registry.generation()));
  return result;
}

/// backpressure: submit-reject storms against SubmitWithRetry. No broken
/// futures, exhausted retries degrade to the labeled overload fallback,
/// and the accounting identity holds exactly.
ScenarioResult RunBackpressure(const FaultPlan& plan,
                               const ChaosOptions& opts) {
  ScenarioResult result;
  result.name = "backpressure";
  Violations v(&result);

  FaultInjector injector(plan);

  serve::ModelRegistry registry;
  registry.Publish(TrainModel(opts.seed ^ 0xBACC5ull));

  serve::ServiceConfig config;
  config.num_workers = 1;
  config.cache_capacity = 0;
  config.faults = &injector;
  serve::PredictionService service(&registry, config, ChaosCalibration());

  serve::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.0;  // retries are the point, not waits

  const auto probes = MakeProbes(opts.requests, opts.seed ^ 0xF00Dull);
  size_t overload = 0, answered = 0, broken = 0;
  for (size_t i = 0; i < opts.requests; ++i) {
    std::future<serve::ServeResponse> future =
        service.SubmitWithRetry({probes[i], 100.0}, policy);
    try {
      const serve::ServeResponse resp = future.get();
      ++answered;
      if (resp.degraded()) {
        v.Check(resp.degraded_reason == "overload" ||
                    resp.degraded_reason == "anomalous",
                "unexpected degradation reason under backpressure: " +
                    resp.degraded_reason);
        if (resp.degraded_reason == "overload") ++overload;
      }
    } catch (const std::future_error&) {
      ++broken;
    }
  }
  service.Shutdown();

  v.Check(broken == 0, StrFormat("%llu broken futures",
                                 static_cast<unsigned long long>(broken)));
  v.Check(answered == opts.requests, "a request went unanswered");

  const serve::ServiceStatsSnapshot stats = service.stats();
  CheckAccounting(stats, &v);
  v.Check(stats.requests == opts.requests,
          "responses delivered != requests driven");
  v.Check(stats.rejected == injector.injected("submit_reject"),
          "rejected counter != injected submit rejects (queue cannot really "
          "fill under sequential driving)");
  v.Check(stats.fallback_overload == overload,
          "overload counter disagrees with client-observed overloads");
  v.Check(overload > 0, "storm never exhausted a retry budget");
  v.Check(stats.model_predictions > 0, "nothing got through the storm");

  result.report = FaultDigest(injector);
  result.report += ServeCounters(stats);
  return result;
}

/// shard-isolation: the plan kills the feather expert's registry after its
/// Nth routed request and stalls only feather workers. One dead/slow expert
/// must degrade only its own pool: golf and bowling answers stay
/// bit-identical to their experts throughout, feather traffic escalates
/// ("dead") to the one-model shard which absorbs it with base-model
/// answers, and not a single request is lost anywhere on the ladder.
ScenarioResult RunShardIsolation(const FaultPlan& plan,
                                 const ChaosOptions& opts) {
  ScenarioResult result;
  result.name = "shard-isolation";
  Violations v(&result);

  FaultInjector injector(plan);

  core::PredictorConfig cfg;
  cfg.kcca.solver = ml::KccaSolver::kExact;
  core::TwoStepPredictor two_step(cfg);
  const auto examples = MultiPoolExamples(40, opts.seed ^ 0x54A8Dull);
  two_step.Train(examples);
  for (const workload::QueryType type :
       {workload::QueryType::kFeather, workload::QueryType::kGolfBall,
        workload::QueryType::kBowlingBall}) {
    v.Check(two_step.HasCategoryModel(type),
            std::string("no expert trained for pool ") +
                workload::QueryTypeName(type));
  }

  serve::ServiceConfig service_config;
  service_config.num_workers = 1;     // sequential driving => batch size 1
  service_config.cache_capacity = 0;  // every answer is model or fallback
  service_config.queue_deadline_seconds = 5.0;  // << injected shard stalls
  // Serve the prediction (flag intact) instead of the anomalous fallback:
  // the offline TwoStepPredictor does no fallback either, so this keeps
  // every healthy answer bit-comparable to it. The anomaly policy has its
  // own coverage in the serve tests.
  service_config.fallback_on_anomalous = false;
  shard::ShardRouterConfig router_config =
      shard::MakePerPoolConfig(service_config);
  router_config.faults = &injector;  // installs the default kill hook
  shard::ShardRouter router(std::move(router_config), ChaosCalibration());
  shard::PublishTwoStep(two_step, &router);

  // Probes are training rows (pool-major), so the anomaly policy stays
  // quiet; expectations use the classifier's own verdict — identical to
  // what the router computes — so the invariants hold even if a probe's
  // neighbor vote were to land in a surprising pool.
  const size_t kProbes = 9;
  std::vector<linalg::Vector> probes;
  std::vector<std::string> probe_shard;
  for (size_t j = 0; j < kProbes; ++j) {
    const size_t pool = j % 3;
    probes.push_back(examples[pool * 40 + j / 3].query_features);
    probe_shard.push_back(workload::QueryTypeName(
        two_step.base().Predict(probes.back()).predicted_type));
  }

  const uint64_t kill_at = plan.serve.shard_kill_after_requests;
  const std::string& target = plan.serve.target_shard;
  uint64_t target_seen = 0;  // mirrors the injector's routed-request count
  uint64_t pre_kill_model = 0, pre_kill_deadline = 0, absorbed = 0;
  size_t mismatches = 0, misrouted = 0, unexpected_degraded = 0;
  for (size_t i = 0; i < opts.requests; ++i) {
    const size_t j = i % kProbes;
    const serve::ServeResponse resp =
        router.Submit({probes[j], 100.0}).get();
    const bool to_target = probe_shard[j] == target;
    if (to_target) ++target_seen;
    const bool post_kill = to_target && kill_at > 0 && target_seen >= kill_at;
    if (post_kill) {
      // Dead expert: the one-model shard absorbs with base-model answers.
      ++absorbed;
      if (resp.shard != router.catch_all_name()) ++misrouted;
      if (resp.degraded()) {
        ++unexpected_degraded;
      } else if (!BitIdentical(resp.prediction,
                               two_step.base().Predict(probes[j]))) {
        ++mismatches;
      }
      continue;
    }
    // Healthy path: answered by the classified pool's own expert, and —
    // for golf/bowling the whole run, for feather until the kill —
    // bit-identical to the offline TwoStepPredictor.
    if (resp.shard != probe_shard[j]) ++misrouted;
    if (resp.degraded()) {
      if (to_target && resp.degraded_reason == "deadline") {
        ++pre_kill_deadline;  // the targeted stall, surfaced and labeled
      } else {
        ++unexpected_degraded;
      }
    } else {
      if (to_target) ++pre_kill_model;
      if (!BitIdentical(resp.prediction, two_step.Predict(probes[j]))) {
        ++mismatches;
      }
    }
  }
  router.Shutdown();

  v.Check(misrouted == 0,
          StrFormat("%llu responses from the wrong shard",
                    static_cast<unsigned long long>(misrouted)));
  v.Check(mismatches == 0,
          StrFormat("%llu responses did not bit-match their expert",
                    static_cast<unsigned long long>(mismatches)));
  v.Check(unexpected_degraded == 0,
          StrFormat("%llu degradations outside the injected faults",
                    static_cast<unsigned long long>(unexpected_degraded)));
  v.Check(target_seen > kill_at,
          "not enough target-pool traffic to prove isolation");
  v.Check(absorbed > 0, "the one-model shard absorbed nothing");
  v.Check(injector.injected("shard_kill") == 1,
          "the kill must fire exactly once");
  v.Check(injector.injected("shard_stall") == pre_kill_deadline,
          StrFormat("deadline fallbacks %llu != injected shard stalls %llu "
                    "(batch size 1 must map 1:1)",
                    static_cast<unsigned long long>(pre_kill_deadline),
                    static_cast<unsigned long long>(
                        injector.injected("shard_stall"))));
  v.Check(pre_kill_model > 0, "target expert never answered before the kill");

  serve::ModelRegistry* killed = router.registry(target);
  v.Check(killed != nullptr && !killed->has_model(),
          "target registry still has a model after the kill");
  v.Check(killed != nullptr && killed->generation() == 1,
          "kill must retain the generation counter, not reset it");

  const shard::ShardStatsSnapshot stats = router.stats();
  v.Check(stats.escalations_dead == absorbed,
          "dead-escalation count != client-observed absorbed requests");
  v.Check(stats.escalations_open == 0 && stats.escalations_overloaded == 0 &&
              stats.fallback_exhausted == 0,
          "ladder rungs below 'dead' fired under sequential driving");
  v.Check(stats.classified + stats.route_cache_hits == opts.requests,
          "every request must be classified or route-cache answered");
  v.Check(stats.classified == kProbes,
          "classifier calls != distinct probes (route cache broken)");
  uint64_t served = 0;
  for (const auto& s : stats.shards) {
    CheckAccounting(s.service, &v);
    served += s.service.requests;
    if (s.name == target) {
      v.Check(s.service.requests == target_seen - absorbed,
              "target shard served traffic after its kill");
      v.Check(s.service.fallback_deadline == pre_kill_deadline,
              "target deadline fallbacks != client-observed stalls");
    } else if (!s.catch_all) {
      v.Check(s.service.fallbacks() == 0,
              "a non-target expert degraded (isolation broken): " + s.name);
      v.Check(s.absorbed == 0, "a non-target expert absorbed traffic");
    } else {
      v.Check(s.absorbed == absorbed,
              "one-model absorbed counter != dead escalations");
    }
  }
  v.Check(served == opts.requests, "a request was lost on the ladder");

  result.report = FaultDigest(injector);
  result.report += stats.ToString();
  result.report += StrFormat(
      "target traffic:     %llu (model %llu, stalled %llu, absorbed %llu)\n",
      static_cast<unsigned long long>(target_seen),
      static_cast<unsigned long long>(pre_kill_model),
      static_cast<unsigned long long>(pre_kill_deadline),
      static_cast<unsigned long long>(absorbed));
  return result;
}

}  // namespace

// --------------------------------------------------------------- public --

const std::vector<std::string>& ChaosScenarioNames() {
  static const std::vector<std::string> kNames = {
      "node-death", "fallback-storm", "hot-swap", "backpressure",
      "shard-isolation"};
  return kNames;
}

FaultPlan ChaosScenarioPlan(const std::string& name, uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (name == "node-death") {
    plan.engine.node_failure_probability = 0.5;
    plan.engine.max_failed_nodes = 3;
    plan.engine.repartition_seconds = 0.5;
    plan.engine.node_slowdown_probability = 0.3;
    plan.engine.node_slowdown_multiplier = 2.5;
    plan.engine.disk_stall_probability = 0.2;
    plan.engine.disk_stall_multiplier = 4.0;
  } else if (name == "fallback-storm") {
    plan.serve.worker_stall_probability = 0.45;
    plan.serve.worker_stall_seconds = 60.0;
  } else if (name == "hot-swap") {
    plan.serve.registry_swap_probability = 0.35;
  } else if (name == "backpressure") {
    plan.serve.submit_reject_probability = 0.4;
  } else if (name == "shard-isolation") {
    plan.serve.target_shard = "feather";
    plan.serve.shard_kill_after_requests = 25;
    plan.serve.shard_stall_probability = 0.3;
    plan.serve.shard_stall_seconds = 60.0;
  }
  return plan;
}

FaultPlan RandomFaultPlan(uint64_t seed) {
  Rng rng(SplitMix64(seed ^ 0xC4A05ull));
  FaultPlan plan;
  plan.seed = seed;
  plan.engine.disk_stall_probability = rng.Uniform(0.0, 0.3);
  plan.engine.disk_stall_multiplier = rng.Uniform(2.0, 8.0);
  plan.engine.message_loss_rate = rng.Uniform(0.0, 0.1);
  plan.engine.node_slowdown_probability = rng.Uniform(0.0, 0.3);
  plan.engine.node_slowdown_multiplier = rng.Uniform(1.5, 4.0);
  plan.engine.node_failure_probability = rng.Uniform(0.0, 0.3);
  plan.engine.max_failed_nodes = 2;
  plan.engine.buffer_pressure_probability = rng.Uniform(0.0, 0.3);
  plan.serve.submit_reject_probability = rng.Uniform(0.0, 0.3);
  plan.serve.worker_stall_probability = rng.Uniform(0.0, 0.2);
  plan.serve.worker_stall_seconds = 30.0;
  plan.serve.registry_swap_probability = rng.Uniform(0.0, 0.2);
  return plan;
}

ScenarioResult RunChaosScenario(const std::string& name,
                                const ChaosOptions& options) {
  const FaultPlan plan = options.has_plan_override
                             ? options.plan_override
                             : ChaosScenarioPlan(name, options.seed);
  if (name == "node-death") return RunNodeDeath(plan, options);
  if (name == "fallback-storm") return RunFallbackStorm(plan, options);
  if (name == "hot-swap") return RunHotSwap(plan, options);
  if (name == "backpressure") return RunBackpressure(plan, options);
  if (name == "shard-isolation") return RunShardIsolation(plan, options);
  ScenarioResult unknown;
  unknown.name = name;
  unknown.violations.push_back("unknown scenario: " + name);
  return unknown;
}

ScenarioResult RunChaosSoak(const ChaosOptions& options) {
  ScenarioResult result;
  result.name = "soak";
  Violations v(&result);

  const FaultPlan plan = options.has_plan_override
                             ? options.plan_override
                             : RandomFaultPlan(options.seed);
  FaultInjector injector(plan);

  const auto model_a = TrainModel(options.seed ^ 0x50A0ull);
  const auto model_b = TrainModel(options.seed ^ 0x50A1ull);
  serve::ModelRegistry registry;
  registry.Publish(model_a);
  std::atomic<uint64_t> swaps{0};
  injector.set_registry_swap_hook([&] {
    registry.Publish(swaps.fetch_add(1) % 2 == 0 ? model_b : model_a);
  });

  serve::ServiceConfig config;
  config.num_workers = 2;
  config.max_batch = 16;
  config.cache_capacity = 1024;
  config.queue_deadline_seconds = 2.0;  // << injected 30s stalls
  config.breaker.enabled = true;
  config.faults = &injector;
  serve::PredictionService service(&registry, config, ChaosCalibration());

  serve::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 1e-5;

  const size_t kClients = 4;
  const size_t per_client = options.requests / kClients;
  const size_t total = per_client * kClients;
  std::atomic<uint64_t> answered{0}, broken{0}, unlabeled{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const auto probes =
          MakeProbes(64, options.seed ^ (0xC11E47ull + c));
      for (size_t i = 0; i < per_client; ++i) {
        std::future<serve::ServeResponse> future = service.SubmitWithRetry(
            {probes[i % probes.size()], 100.0}, policy);
        try {
          const serve::ServeResponse resp = future.get();
          answered.fetch_add(1);
          if (resp.degraded() && resp.degraded_reason.empty()) {
            unlabeled.fetch_add(1);
          }
        } catch (const std::future_error&) {
          broken.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  service.Shutdown();

  v.Check(broken.load() == 0,
          StrFormat("%llu broken futures",
                    static_cast<unsigned long long>(broken.load())));
  v.Check(answered.load() == total, "a soak request went unanswered");
  v.Check(unlabeled.load() == 0, "degraded responses without a reason");

  const serve::ServiceStatsSnapshot stats = service.stats();
  CheckAccounting(stats, &v);
  v.Check(stats.requests == total,
          StrFormat("responses %llu != requests driven %llu",
                    static_cast<unsigned long long>(stats.requests),
                    static_cast<unsigned long long>(total)));
  v.Check(stats.rejected >= injector.injected("submit_reject"),
          "rejected counter below the injected reject count");

  result.report = FaultDigest(injector);
  result.report += ServeCounters(stats);
  result.report += StrFormat(
      "clients: %llu x %llu requests\n",
      static_cast<unsigned long long>(kClients),
      static_cast<unsigned long long>(per_client));
  return result;
}

}  // namespace qpp::fault
