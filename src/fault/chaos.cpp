#include "fault/chaos.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/tpcds.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/predictor.h"
#include "engine/simulator.h"
#include "fabric/fabric.h"
#include "fault/fault_injector.h"
#include "lifecycle/lifecycle.h"
#include "obs/drift_monitor.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/request_context.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "core/two_step.h"
#include "serve/prediction_service.h"
#include "shard/shard_router.h"
#include "workload/generator.h"
#include "workload/tpcds_templates.h"

namespace qpp::fault {
namespace {

// ------------------------------------------------------------ utilities --

/// Violation collector with printf ergonomics.
class Violations {
 public:
  explicit Violations(ScenarioResult* result) : result_(result) {}

  void Check(bool ok, const std::string& message) {
    if (!ok) result_->violations.push_back(message);
  }

 private:
  ScenarioResult* result_;
};

/// All fault kinds, for the report's fault digest.
const char* kAllKinds[] = {
    "disk_stall",      "message_loss",  "node_slowdown", "node_failure",
    "buffer_pressure", "submit_reject", "worker_stall",  "registry_swap",
    "shard_kill",      "shard_stall",   "replica_kill",  "replica_stall",
    "model_poison",
};

std::string FaultDigest(const FaultInjector& injector) {
  std::string out = "injected faults:\n";
  for (const char* kind : kAllKinds) {
    out += StrFormat("  %-16s %llu\n", kind,
                     static_cast<unsigned long long>(injector.injected(kind)));
  }
  return out;
}

/// The deterministic subset of the serve counters (everything except
/// wall-clock latency, which can never be replay-stable).
std::string ServeCounters(const serve::ServiceStatsSnapshot& s) {
  return StrFormat(
      "serve counters:\n"
      "  requests          %llu\n"
      "  cache_hits        %llu\n"
      "  model_predictions %llu\n"
      "  fb_no_model       %llu\n"
      "  fb_anomalous      %llu\n"
      "  fb_deadline       %llu\n"
      "  fb_shutdown       %llu\n"
      "  fb_overload       %llu\n"
      "  fb_circuit_open   %llu\n"
      "  rejected          %llu\n",
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.model_predictions),
      static_cast<unsigned long long>(s.fallback_no_model),
      static_cast<unsigned long long>(s.fallback_anomalous),
      static_cast<unsigned long long>(s.fallback_deadline),
      static_cast<unsigned long long>(s.fallback_shutdown),
      static_cast<unsigned long long>(s.fallback_overload),
      static_cast<unsigned long long>(s.fallback_circuit_open),
      static_cast<unsigned long long>(s.rejected));
}

/// The serving accounting identity: every delivered response was answered
/// by exactly one of cache / model / fallback.
void CheckAccounting(const serve::ServiceStatsSnapshot& s, Violations* v) {
  v->Check(s.cache_hits + s.model_predictions + s.fallbacks() == s.requests,
           StrFormat("accounting identity broken: cache %llu + model %llu + "
                     "fallbacks %llu != requests %llu",
                     static_cast<unsigned long long>(s.cache_hits),
                     static_cast<unsigned long long>(s.model_predictions),
                     static_cast<unsigned long long>(s.fallbacks()),
                     static_cast<unsigned long long>(s.requests)));
}

// --------------------------------------------------- serve scenario rig --

/// Small synthetic workload with nonlinear metric structure; the same
/// shape the serve tests train on (milliseconds to fit).
std::vector<ml::TrainingExample> SyntheticExamples(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ml::TrainingExample> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ml::TrainingExample ex;
    const double a = rng.Uniform(1.0, 10.0);
    const double b = rng.Uniform(1.0, 10.0);
    const double c = rng.Uniform(0.0, 5.0);
    ex.query_features = {a, b, c, a * b, rng.Uniform(0.0, 1.0)};
    ex.metrics.elapsed_seconds = 0.5 * a * b + c;
    ex.metrics.records_accessed = 1000.0 * a + 50.0 * c;
    ex.metrics.records_used = 100.0 * a;
    ex.metrics.message_count = 10.0 * b;
    ex.metrics.message_bytes = 1000.0 * b + 10.0 * a;
    out.push_back(std::move(ex));
  }
  return out;
}

std::shared_ptr<const core::Predictor> TrainModel(uint64_t seed) {
  core::PredictorConfig cfg;
  cfg.kcca.solver = ml::KccaSolver::kExact;
  auto pred = std::make_shared<core::Predictor>(cfg);
  pred->Train(SyntheticExamples(64, seed));
  return pred;
}

/// In-distribution probe vectors (anomaly policy must not fire on them).
std::vector<linalg::Vector> MakeProbes(size_t n, uint64_t seed) {
  std::vector<linalg::Vector> out;
  out.reserve(n);
  for (const auto& ex : SyntheticExamples(n, seed)) {
    out.push_back(ex.query_features);
  }
  return out;
}

/// Three Fig. 2 pools (feather / golf ball / bowling ball) with
/// well-separated features AND elapsed times, so the step-1 classifier's
/// neighbor vote lands in the right pool and every pool trains an expert.
/// Pool-major order: [0, per_pool) feathers, then golf, then bowling.
std::vector<ml::TrainingExample> MultiPoolExamples(size_t per_pool,
                                                   uint64_t seed) {
  static const double kElapsedBase[3] = {10.0, 400.0, 2500.0};
  Rng rng(seed);
  std::vector<ml::TrainingExample> out;
  out.reserve(3 * per_pool);
  for (size_t pool = 0; pool < 3; ++pool) {
    const double off = static_cast<double>(pool);
    for (size_t i = 0; i < per_pool; ++i) {
      ml::TrainingExample ex;
      const double a = rng.Uniform(1.0, 10.0);
      const double b = rng.Uniform(1.0, 10.0);
      const double c = rng.Uniform(0.0, 5.0);
      ex.query_features = {a + 40.0 * off, b + 10.0 * off, c,
                           a * b + 25.0 * off, rng.Uniform(0.0, 1.0)};
      // 0.5ab + c <= 55, so every example stays inside its pool's band.
      ex.metrics.elapsed_seconds = kElapsedBase[pool] + 0.5 * a * b + c;
      ex.metrics.records_accessed = 1000.0 * a + 50.0 * c + 10000.0 * off;
      ex.metrics.records_used = 100.0 * a + 1000.0 * off;
      ex.metrics.message_count = 10.0 * b + 100.0 * off;
      ex.metrics.message_bytes = 1000.0 * b + 10.0 * a;
      out.push_back(std::move(ex));
    }
  }
  return out;
}

/// All four Fig. 2 pools, same construction as MultiPoolExamples with a
/// wrecking-ball band on top. The fabric soak needs heavies of both kinds:
/// admission defers bowling balls and sheds wrecking balls, so the probe
/// mix must be classified into every pool.
std::vector<ml::TrainingExample> FourPoolExamples(size_t per_pool,
                                                  uint64_t seed) {
  static const double kElapsedBase[4] = {10.0, 400.0, 2500.0, 9000.0};
  Rng rng(seed);
  std::vector<ml::TrainingExample> out;
  out.reserve(4 * per_pool);
  for (size_t pool = 0; pool < 4; ++pool) {
    const double off = static_cast<double>(pool);
    for (size_t i = 0; i < per_pool; ++i) {
      ml::TrainingExample ex;
      const double a = rng.Uniform(1.0, 10.0);
      const double b = rng.Uniform(1.0, 10.0);
      const double c = rng.Uniform(0.0, 5.0);
      ex.query_features = {a + 40.0 * off, b + 10.0 * off, c,
                           a * b + 25.0 * off, rng.Uniform(0.0, 1.0)};
      // 0.5ab + c <= 55, so every example stays inside its pool's band.
      ex.metrics.elapsed_seconds = kElapsedBase[pool] + 0.5 * a * b + c;
      ex.metrics.records_accessed = 1000.0 * a + 50.0 * c + 10000.0 * off;
      ex.metrics.records_used = 100.0 * a + 1000.0 * off;
      ex.metrics.message_count = 10.0 * b + 100.0 * off;
      ex.metrics.message_bytes = 1000.0 * b + 10.0 * a;
      out.push_back(std::move(ex));
    }
  }
  return out;
}

serve::CostCalibration ChaosCalibration() {
  serve::CostCalibration cal;
  cal.slope = 1.0;
  cal.intercept = -2.0;
  cal.fitted = true;
  return cal;
}

bool BitIdentical(const core::Prediction& a, const core::Prediction& b) {
  return a.metrics.ToVector() == b.metrics.ToVector() &&
         a.mean_neighbor_distance == b.mean_neighbor_distance &&
         a.confidence == b.confidence && a.anomalous == b.anomalous &&
         a.neighbor_indices == b.neighbor_indices;
}

// -------------------------------------------------------- engine: plans --

engine::QueryMetrics ScaleMetrics(const engine::QueryMetrics& m,
                                  double factor) {
  return engine::QueryMetrics::FromVector(
      linalg::ScaleVec(m.ToVector(), factor));
}

// ----------------------------------------------------------- scenarios --

/// node-death: engine faults under the simulator. Determinism (two
/// injectors with the same plan produce bit-identical metrics), clean-run
/// bit-identity (a disabled injector changes nothing), and the
/// faults-only-slow-queries contract on elapsed time.
ScenarioResult RunNodeDeath(const FaultPlan& plan, const ChaosOptions& opts) {
  ScenarioResult result;
  result.name = "node-death";
  Violations v(&result);

  const catalog::Catalog catalog = catalog::MakeTpcdsCatalog(1.0);
  optimizer::OptimizerOptions oopts;
  oopts.nodes_used = 8;
  const optimizer::Optimizer opt(&catalog, oopts);
  const engine::ExecutionSimulator sim(&catalog,
                                       engine::SystemConfig::Neoview32(8));

  const FaultInjector faulted_a(plan);
  const FaultInjector faulted_b(plan);   // same plan, fresh injector
  const FaultInjector disabled({});      // enabled() == false

  const auto queries = workload::GenerateWorkload(
      workload::TpcdsTemplates(), opts.queries, opts.seed);
  double clean_sum = 0.0, faulted_sum = 0.0;
  linalg::Vector metric_sums(engine::QueryMetrics::kNumMetrics, 0.0);
  size_t simulated = 0;
  for (const auto& q : queries) {
    const auto planned = opt.Plan(q.sql);
    if (!planned.ok()) continue;  // template bugs are other tests' business
    const optimizer::PhysicalPlan& p = planned.value();
    ++simulated;

    const engine::QueryMetrics clean = sim.Execute(p);
    const engine::QueryMetrics off = sim.Execute(p, nullptr, &disabled);
    const engine::QueryMetrics fa = sim.Execute(p, nullptr, &faulted_a);
    const engine::QueryMetrics fb = sim.Execute(p, nullptr, &faulted_b);

    v.Check(off.ToVector() == clean.ToVector() &&
                off.cpu_seconds == clean.cpu_seconds,
            "disabled injector is not bit-identical to a null injector: " +
                q.template_name);
    v.Check(fa.ToVector() == fb.ToVector() &&
                fa.cpu_seconds == fb.cpu_seconds,
            "same plan, two injectors, different metrics (determinism "
            "broken): " +
                q.template_name);
    v.Check(fa.elapsed_seconds >= clean.elapsed_seconds - 1e-12,
            StrFormat("fault made a query FASTER: %s clean %.17g faulted "
                      "%.17g",
                      q.template_name.c_str(), clean.elapsed_seconds,
                      fa.elapsed_seconds));
    clean_sum += clean.elapsed_seconds;
    faulted_sum += fa.elapsed_seconds;
    metric_sums = linalg::AddVec(metric_sums, fa.ToVector());
  }
  v.Check(simulated > 0, "no queries simulated");
  v.Check(faulted_a.injected("node_failure") > 0,
          "scenario injected zero node failures");
  v.Check(faulted_sum > clean_sum,
          "fault schedule had no aggregate elapsed-time effect");

  result.report = FaultDigest(faulted_a);
  result.report += StrFormat("queries simulated:  %llu\n",
                             static_cast<unsigned long long>(simulated));
  result.report +=
      StrFormat("clean elapsed sum:   %.17g\n", clean_sum) +
      StrFormat("faulted elapsed sum: %.17g\n", faulted_sum);
  result.report += "faulted metric sums:\n";
  const auto names = engine::QueryMetrics::MetricNames();
  for (size_t m = 0; m < names.size(); ++m) {
    result.report +=
        StrFormat("  %-18s %.17g\n", names[m].c_str(), metric_sums[m]);
  }
  return result;
}

/// fallback-storm: worker stalls blow the queue deadline; late requests
/// take the labeled deadline fallback, the breaker trips to circuit-open
/// and recovers through half-open probes, and the drift monitor fires on
/// the degradation the storm causes.
ScenarioResult RunFallbackStorm(const FaultPlan& plan,
                                const ChaosOptions& opts) {
  ScenarioResult result;
  result.name = "fallback-storm";
  Violations v(&result);

  obs::MetricsRegistry fault_registry;
  FaultInjector injector(plan, &fault_registry);

  serve::ModelRegistry registry;
  registry.Publish(TrainModel(opts.seed ^ 0x5EEDull));

  serve::ServiceConfig config;
  config.num_workers = 1;          // sequential driving => batch size 1
  config.cache_capacity = 0;       // every answer is model or fallback
  config.queue_deadline_seconds = 5.0;  // >> real waits, << injected stall
  config.breaker.enabled = true;
  config.breaker.window = 16;
  config.breaker.min_samples = 8;
  config.breaker.trip_ratio = 0.5;
  config.breaker.open_requests = 6;
  config.faults = &injector;
  serve::PredictionService service(&registry, config, ChaosCalibration());

  obs::DriftMonitor drift({}, service.metrics());
  uint64_t drift_signals = 0;

  const auto probes = MakeProbes(opts.requests, opts.seed ^ 0xD81F7ull);
  for (size_t i = 0; i < opts.requests; ++i) {
    const serve::ServeResponse resp =
        service.Submit({probes[i], 100.0}).get();
    // Score the response against "observed" metrics 3x off — a stand-in
    // actual that guarantees large relative error, so the monitor must
    // notice once warm.
    const engine::QueryMetrics actual =
        ScaleMetrics(resp.prediction.metrics, 3.0);
    const auto source = resp.degraded()
                            ? obs::DriftMonitor::Source::kFallback
                            : obs::DriftMonitor::Source::kModel;
    if (drift.Observe(source, resp.prediction.metrics, actual)) {
      ++drift_signals;
    }
    if (resp.degraded()) {
      v.Check(!resp.degraded_reason.empty(),
              "degraded response with empty reason");
    }
  }
  service.Shutdown();

  const serve::ServiceStatsSnapshot stats = service.stats();
  CheckAccounting(stats, &v);
  v.Check(stats.requests == opts.requests,
          "not every submitted request was answered");
  v.Check(stats.fallback_deadline == injector.injected("worker_stall"),
          StrFormat("deadline fallbacks %llu != injected stalls %llu (batch "
                    "size 1 must map 1:1)",
                    static_cast<unsigned long long>(stats.fallback_deadline),
                    static_cast<unsigned long long>(
                        injector.injected("worker_stall"))));
  v.Check(stats.fallback_deadline > 0, "storm injected no deadline misses");
  v.Check(service.breaker().trips() >= 1, "breaker never tripped");
  v.Check(stats.fallback_circuit_open > 0,
          "open circuit short-circuited no requests");
  v.Check(stats.model_predictions > 0,
          "no model answers at all — breaker never recovered");
  v.Check(drift_signals >= 1, "drift monitor never fired under the storm");

  result.report = FaultDigest(injector);
  result.report += ServeCounters(stats);
  result.report += StrFormat(
      "breaker trips:      %llu\ndrift signals:      %llu\n",
      static_cast<unsigned long long>(service.breaker().trips()),
      static_cast<unsigned long long>(drift_signals));
  return result;
}

/// hot-swap: the registry-swap fault fires right after a worker acquired
/// its model snapshot. Every response must still bit-match the Predict of
/// the generation it reports, and the generation-tagged cache must never
/// serve a retired model's bits.
ScenarioResult RunHotSwap(const FaultPlan& plan, const ChaosOptions& opts) {
  ScenarioResult result;
  result.name = "hot-swap";
  Violations v(&result);

  FaultInjector injector(plan);

  const auto model_a = TrainModel(opts.seed ^ 0xA0Aull);
  const auto model_b = TrainModel(opts.seed ^ 0xB0Bull);

  serve::ModelRegistry registry;
  // published[g - 1] is the model that generation g serves.
  std::mutex published_mu;
  std::vector<std::shared_ptr<const core::Predictor>> published;
  {
    std::lock_guard<std::mutex> lock(published_mu);
    registry.Publish(model_a);
    published.push_back(model_a);
  }
  injector.set_registry_swap_hook([&] {
    // Fires on the worker thread, mid-batch, after the snapshot acquire.
    std::lock_guard<std::mutex> lock(published_mu);
    const auto& next = published.size() % 2 == 1 ? model_b : model_a;
    registry.Publish(next);
    published.push_back(next);
  });

  serve::ServiceConfig config;
  config.num_workers = 1;
  config.cache_capacity = 64;
  config.faults = &injector;
  serve::PredictionService service(&registry, config, ChaosCalibration());

  const auto probes = MakeProbes(8, opts.seed ^ 0x7AB5ull);
  size_t mismatches = 0;
  for (size_t i = 0; i < opts.requests; ++i) {
    // Consecutive pairs reuse a probe: the second of each pair is a cache
    // hit unless a swap landed between them, so the cache-hit invariant
    // below holds for any seed, not just swap-sparse ones.
    const linalg::Vector& probe = probes[(i / 2) % probes.size()];
    const serve::ServeResponse resp = service.Submit({probe, 100.0}).get();
    if (resp.degraded()) {
      // The anomaly policy is orthogonal to swaps; any other degradation
      // here means the swap broke serving.
      v.Check(resp.degraded_reason == "anomalous",
              "hot-swap degraded a response: " + resp.degraded_reason);
      continue;
    }
    std::shared_ptr<const core::Predictor> truth;
    {
      std::lock_guard<std::mutex> lock(published_mu);
      if (resp.model_generation >= 1 &&
          resp.model_generation <= published.size()) {
        truth = published[resp.model_generation - 1];
      }
    }
    if (truth == nullptr) {
      v.Check(false,
              StrFormat("response reports unpublished generation %llu",
                        static_cast<unsigned long long>(
                            resp.model_generation)));
      continue;
    }
    if (!BitIdentical(resp.prediction, truth->Predict(probe))) ++mismatches;
  }
  service.Shutdown();

  v.Check(mismatches == 0,
          StrFormat("%llu responses did not bit-match their reported "
                    "generation's Predict (stale cache or blended swap)",
                    static_cast<unsigned long long>(mismatches)));
  v.Check(injector.injected("registry_swap") > 0,
          "scenario injected zero registry swaps");
  v.Check(registry.generation() == 1 + injector.injected("registry_swap"),
          "registry generation does not add up with the injected swaps");
  const serve::ServiceStatsSnapshot stats = service.stats();
  CheckAccounting(stats, &v);
  v.Check(stats.cache_hits > 0, "cache never hit despite repeated probes");

  result.report = FaultDigest(injector);
  result.report += ServeCounters(stats);
  result.report += StrFormat(
      "final generation:   %llu\n",
      static_cast<unsigned long long>(registry.generation()));
  return result;
}

/// backpressure: submit-reject storms against SubmitWithRetry. No broken
/// futures, exhausted retries degrade to the labeled overload fallback,
/// and the accounting identity holds exactly.
ScenarioResult RunBackpressure(const FaultPlan& plan,
                               const ChaosOptions& opts) {
  ScenarioResult result;
  result.name = "backpressure";
  Violations v(&result);

  FaultInjector injector(plan);

  serve::ModelRegistry registry;
  registry.Publish(TrainModel(opts.seed ^ 0xBACC5ull));

  serve::ServiceConfig config;
  config.num_workers = 1;
  config.cache_capacity = 0;
  config.faults = &injector;
  serve::PredictionService service(&registry, config, ChaosCalibration());

  serve::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.0;  // retries are the point, not waits

  const auto probes = MakeProbes(opts.requests, opts.seed ^ 0xF00Dull);
  size_t overload = 0, answered = 0, broken = 0;
  for (size_t i = 0; i < opts.requests; ++i) {
    std::future<serve::ServeResponse> future =
        service.SubmitWithRetry({probes[i], 100.0}, policy);
    try {
      const serve::ServeResponse resp = future.get();
      ++answered;
      if (resp.degraded()) {
        v.Check(resp.degraded_reason == "overload" ||
                    resp.degraded_reason == "anomalous",
                "unexpected degradation reason under backpressure: " +
                    resp.degraded_reason);
        if (resp.degraded_reason == "overload") ++overload;
      }
    } catch (const std::future_error&) {
      ++broken;
    }
  }
  service.Shutdown();

  v.Check(broken == 0, StrFormat("%llu broken futures",
                                 static_cast<unsigned long long>(broken)));
  v.Check(answered == opts.requests, "a request went unanswered");

  const serve::ServiceStatsSnapshot stats = service.stats();
  CheckAccounting(stats, &v);
  v.Check(stats.requests == opts.requests,
          "responses delivered != requests driven");
  v.Check(stats.rejected == injector.injected("submit_reject"),
          "rejected counter != injected submit rejects (queue cannot really "
          "fill under sequential driving)");
  v.Check(stats.fallback_overload == overload,
          "overload counter disagrees with client-observed overloads");
  v.Check(overload > 0, "storm never exhausted a retry budget");
  v.Check(stats.model_predictions > 0, "nothing got through the storm");

  result.report = FaultDigest(injector);
  result.report += ServeCounters(stats);
  return result;
}

/// shard-isolation: the plan kills the feather expert's registry after its
/// Nth routed request and stalls only feather workers. One dead/slow expert
/// must degrade only its own pool: golf and bowling answers stay
/// bit-identical to their experts throughout, feather traffic escalates
/// ("dead") to the one-model shard which absorbs it with base-model
/// answers, and not a single request is lost anywhere on the ladder.
ScenarioResult RunShardIsolation(const FaultPlan& plan,
                                 const ChaosOptions& opts) {
  ScenarioResult result;
  result.name = "shard-isolation";
  Violations v(&result);

  FaultInjector injector(plan);

  core::PredictorConfig cfg;
  cfg.kcca.solver = ml::KccaSolver::kExact;
  core::TwoStepPredictor two_step(cfg);
  const auto examples = MultiPoolExamples(40, opts.seed ^ 0x54A8Dull);
  two_step.Train(examples);
  for (const workload::QueryType type :
       {workload::QueryType::kFeather, workload::QueryType::kGolfBall,
        workload::QueryType::kBowlingBall}) {
    v.Check(two_step.HasCategoryModel(type),
            std::string("no expert trained for pool ") +
                workload::QueryTypeName(type));
  }

  serve::ServiceConfig service_config;
  service_config.num_workers = 1;     // sequential driving => batch size 1
  service_config.cache_capacity = 0;  // every answer is model or fallback
  service_config.queue_deadline_seconds = 5.0;  // << injected shard stalls
  // Serve the prediction (flag intact) instead of the anomalous fallback:
  // the offline TwoStepPredictor does no fallback either, so this keeps
  // every healthy answer bit-comparable to it. The anomaly policy has its
  // own coverage in the serve tests.
  service_config.fallback_on_anomalous = false;
  shard::ShardRouterConfig router_config =
      shard::MakePerPoolConfig(service_config);
  router_config.faults = &injector;  // installs the default kill hook
  shard::ShardRouter router(std::move(router_config), ChaosCalibration());
  shard::PublishTwoStep(two_step, &router);

  // Probes are training rows (pool-major), so the anomaly policy stays
  // quiet; expectations use the classifier's own verdict — identical to
  // what the router computes — so the invariants hold even if a probe's
  // neighbor vote were to land in a surprising pool.
  const size_t kProbes = 9;
  std::vector<linalg::Vector> probes;
  std::vector<std::string> probe_shard;
  for (size_t j = 0; j < kProbes; ++j) {
    const size_t pool = j % 3;
    probes.push_back(examples[pool * 40 + j / 3].query_features);
    probe_shard.push_back(workload::QueryTypeName(
        two_step.base().Predict(probes.back()).predicted_type));
  }

  const uint64_t kill_at = plan.serve.shard_kill_after_requests;
  const std::string& target = plan.serve.target_shard;
  uint64_t target_seen = 0;  // mirrors the injector's routed-request count
  uint64_t pre_kill_model = 0, pre_kill_deadline = 0, absorbed = 0;
  size_t mismatches = 0, misrouted = 0, unexpected_degraded = 0;
  for (size_t i = 0; i < opts.requests; ++i) {
    const size_t j = i % kProbes;
    const serve::ServeResponse resp =
        router.Submit({probes[j], 100.0}).get();
    const bool to_target = probe_shard[j] == target;
    if (to_target) ++target_seen;
    const bool post_kill = to_target && kill_at > 0 && target_seen >= kill_at;
    if (post_kill) {
      // Dead expert: the one-model shard absorbs with base-model answers.
      ++absorbed;
      if (resp.shard != router.catch_all_name()) ++misrouted;
      if (resp.degraded()) {
        ++unexpected_degraded;
      } else if (!BitIdentical(resp.prediction,
                               two_step.base().Predict(probes[j]))) {
        ++mismatches;
      }
      continue;
    }
    // Healthy path: answered by the classified pool's own expert, and —
    // for golf/bowling the whole run, for feather until the kill —
    // bit-identical to the offline TwoStepPredictor.
    if (resp.shard != probe_shard[j]) ++misrouted;
    if (resp.degraded()) {
      if (to_target && resp.degraded_reason == "deadline") {
        ++pre_kill_deadline;  // the targeted stall, surfaced and labeled
      } else {
        ++unexpected_degraded;
      }
    } else {
      if (to_target) ++pre_kill_model;
      if (!BitIdentical(resp.prediction, two_step.Predict(probes[j]))) {
        ++mismatches;
      }
    }
  }
  router.Shutdown();

  v.Check(misrouted == 0,
          StrFormat("%llu responses from the wrong shard",
                    static_cast<unsigned long long>(misrouted)));
  v.Check(mismatches == 0,
          StrFormat("%llu responses did not bit-match their expert",
                    static_cast<unsigned long long>(mismatches)));
  v.Check(unexpected_degraded == 0,
          StrFormat("%llu degradations outside the injected faults",
                    static_cast<unsigned long long>(unexpected_degraded)));
  v.Check(target_seen > kill_at,
          "not enough target-pool traffic to prove isolation");
  v.Check(absorbed > 0, "the one-model shard absorbed nothing");
  v.Check(injector.injected("shard_kill") == 1,
          "the kill must fire exactly once");
  v.Check(injector.injected("shard_stall") == pre_kill_deadline,
          StrFormat("deadline fallbacks %llu != injected shard stalls %llu "
                    "(batch size 1 must map 1:1)",
                    static_cast<unsigned long long>(pre_kill_deadline),
                    static_cast<unsigned long long>(
                        injector.injected("shard_stall"))));
  v.Check(pre_kill_model > 0, "target expert never answered before the kill");

  serve::ModelRegistry* killed = router.registry(target);
  v.Check(killed != nullptr && !killed->has_model(),
          "target registry still has a model after the kill");
  v.Check(killed != nullptr && killed->generation() == 1,
          "kill must retain the generation counter, not reset it");

  const shard::ShardStatsSnapshot stats = router.stats();
  v.Check(stats.escalations_dead == absorbed,
          "dead-escalation count != client-observed absorbed requests");
  v.Check(stats.escalations_open == 0 && stats.escalations_overloaded == 0 &&
              stats.fallback_exhausted == 0,
          "ladder rungs below 'dead' fired under sequential driving");
  v.Check(stats.classified + stats.route_cache_hits == opts.requests,
          "every request must be classified or route-cache answered");
  v.Check(stats.classified == kProbes,
          "classifier calls != distinct probes (route cache broken)");
  uint64_t served = 0;
  for (const auto& s : stats.shards) {
    CheckAccounting(s.service, &v);
    served += s.service.requests;
    if (s.name == target) {
      v.Check(s.service.requests == target_seen - absorbed,
              "target shard served traffic after its kill");
      v.Check(s.service.fallback_deadline == pre_kill_deadline,
              "target deadline fallbacks != client-observed stalls");
    } else if (!s.catch_all) {
      v.Check(s.service.fallbacks() == 0,
              "a non-target expert degraded (isolation broken): " + s.name);
      v.Check(s.absorbed == 0, "a non-target expert absorbed traffic");
    } else {
      v.Check(s.absorbed == absorbed,
              "one-model absorbed counter != dead escalations");
    }
  }
  v.Check(served == opts.requests, "a request was lost on the ladder");

  result.report = FaultDigest(injector);
  result.report += stats.ToString();
  result.report += StrFormat(
      "target traffic:     %llu (model %llu, stalled %llu, absorbed %llu)\n",
      static_cast<unsigned long long>(target_seen),
      static_cast<unsigned long long>(pre_kill_model),
      static_cast<unsigned long long>(pre_kill_deadline),
      static_cast<unsigned long long>(absorbed));
  return result;
}

/// rolling-drain: replica-level faults under a Fabric. One replica of the
/// feather group ("feather#1") is stalled probabilistically and then killed
/// on a counted pick; meanwhile the golf group is drain-swap-revived one
/// replica at a time. The group must absorb both: exactly one request
/// escalates to the catch-all (the killing pick itself — its group still
/// has live peers, so nothing else leaves), stalls surface as labeled
/// deadline fallbacks on the target replica only, every healthy answer is
/// bit-identical to its expert, and no request is lost anywhere.
ScenarioResult RunRollingDrain(const FaultPlan& plan,
                               const ChaosOptions& opts) {
  ScenarioResult result;
  result.name = "rolling-drain";
  Violations v(&result);

  FaultInjector injector(plan);

  core::PredictorConfig cfg;
  cfg.kcca.solver = ml::KccaSolver::kExact;
  core::TwoStepPredictor two_step(cfg);
  const auto examples = MultiPoolExamples(40, opts.seed ^ 0x0D3A1ull);
  two_step.Train(examples);
  for (const workload::QueryType type :
       {workload::QueryType::kFeather, workload::QueryType::kGolfBall,
        workload::QueryType::kBowlingBall}) {
    v.Check(two_step.HasCategoryModel(type),
            std::string("no expert trained for pool ") +
                workload::QueryTypeName(type));
  }

  serve::ServiceConfig service_config;
  service_config.num_workers = 1;     // sequential driving => batch size 1
  service_config.max_batch = 1;       // ... even if dispatches ever overlap
  service_config.cache_capacity = 0;  // every answer is model or fallback
  service_config.queue_deadline_seconds = 5.0;  // << injected replica stalls
  service_config.fallback_on_anomalous = false;  // bit-compare healthy paths

  fabric::FabricConfig config =
      fabric::MakePerPoolFabricConfig(3, service_config);
  config.faults = &injector;  // installs the default replica-kill hook
  config.p2c_seed = SplitMix64(opts.seed ^ 0xFAB51Cull);
  fabric::Fabric fab(std::move(config), ChaosCalibration());
  fabric::PublishTwoStep(two_step, &fab);

  const std::string golf_group =
      workload::QueryTypeName(workload::QueryType::kGolfBall);
  const auto golf_model = std::make_shared<const core::Predictor>(
      *two_step.CategoryModel(workload::QueryType::kGolfBall));

  const size_t kProbes = 9;
  std::vector<linalg::Vector> probes;
  std::vector<std::string> probe_group;
  for (size_t j = 0; j < kProbes; ++j) {
    const size_t pool = j % 3;
    probes.push_back(examples[pool * 40 + j / 3].query_features);
    probe_group.push_back(workload::QueryTypeName(
        two_step.base().Predict(probes.back()).predicted_type));
  }
  // Precompute the oracles once; 1M-scale callers of the same loop below
  // (the fabric soak) cannot afford a Predict per response.
  std::vector<core::Prediction> expect_expert, expect_base;
  for (size_t j = 0; j < kProbes; ++j) {
    expect_expert.push_back(two_step.Predict(probes[j]));
    expect_base.push_back(two_step.base().Predict(probes[j]));
  }

  const std::string& target = plan.serve.target_replica_label;  // feather#1
  size_t mismatches = 0, misrouted = 0, unexpected = 0;
  uint64_t absorbed = 0, deadline_seen = 0, drain_ops = 0;
  for (size_t i = 0; i < opts.requests; ++i) {
    // Roll the golf group: drain-swap-revive replica r at the r-th quarter.
    if (i > 0 && opts.requests >= 8 && i % (opts.requests / 4) == 0) {
      const size_t r = i / (opts.requests / 4) - 1;
      if (r < 3) {
        v.Check(fab.DrainSwapRevive(golf_group, r, golf_model),
                StrFormat("drain-swap-revive of replica %llu failed",
                          static_cast<unsigned long long>(r)));
        ++drain_ops;
      }
    }
    const size_t j = i % kProbes;
    const serve::ServeResponse resp = fab.Submit({probes[j], 100.0}).get();
    if (resp.shard.rfind(probe_group[j] + "#", 0) == 0) {
      // Answered inside the classified pool's own replica group.
      if (resp.degraded()) {
        if (resp.degraded_reason == "deadline" && resp.shard == target) {
          ++deadline_seen;  // the targeted stall, surfaced and labeled
        } else {
          ++unexpected;
        }
      } else if (!BitIdentical(resp.prediction, expect_expert[j])) {
        ++mismatches;
      }
    } else if (resp.shard.rfind(fab.catch_all_name() + "#", 0) == 0) {
      // Escalated: only the killing pick itself may land here.
      ++absorbed;
      if (resp.degraded()) {
        ++unexpected;
      } else if (!BitIdentical(resp.prediction, expect_base[j])) {
        ++mismatches;
      }
    } else {
      ++misrouted;
    }
  }
  fab.Shutdown();

  v.Check(misrouted == 0,
          StrFormat("%llu responses from outside the classified group",
                    static_cast<unsigned long long>(misrouted)));
  v.Check(mismatches == 0,
          StrFormat("%llu responses did not bit-match their expert",
                    static_cast<unsigned long long>(mismatches)));
  v.Check(unexpected == 0,
          StrFormat("%llu degradations outside the injected faults",
                    static_cast<unsigned long long>(unexpected)));
  v.Check(injector.injected("replica_kill") == 1,
          "the replica kill must fire exactly once");
  v.Check(absorbed == 1,
          StrFormat("catch-all absorbed %llu requests; only the killing "
                    "pick may escalate (the group has live peers)",
                    static_cast<unsigned long long>(absorbed)));
  v.Check(injector.injected("replica_stall") == deadline_seen,
          StrFormat("deadline fallbacks %llu != injected replica stalls "
                    "%llu (batch size 1 must map 1:1)",
                    static_cast<unsigned long long>(deadline_seen),
                    static_cast<unsigned long long>(
                        injector.injected("replica_stall"))));
  v.Check(deadline_seen > 0, "target replica never stalled before the kill");
  v.Check(fab.health("feather", 1) == fabric::ReplicaHealth::kDead,
          "killed replica is not marked dead");
  v.Check(!fab.registry("feather", 1)->has_model(),
          "killed replica still has a model");
  v.Check(fab.registry("feather", 1)->generation() == 1,
          "kill must retain the generation counter, not reset it");
  for (size_t r = 0; r < drain_ops; ++r) {
    v.Check(fab.registry(golf_group, r)->generation() == 2,
            "drained replica did not take the republished model");
    v.Check(fab.health(golf_group, r) == fabric::ReplicaHealth::kUp,
            "drained replica was not revived");
  }

  const fabric::FabricStatsSnapshot stats = fab.stats();
  v.Check(stats.drains == drain_ops,
          "drains counter != drain-swap-revive operations");
  v.Check(stats.escalations_dead == absorbed,
          "dead-escalation count != client-observed absorbed requests");
  v.Check(stats.escalations_open == 0 && stats.escalations_overloaded == 0 &&
              stats.fallback_exhausted == 0,
          "ladder rungs below 'dead' fired under sequential driving");
  v.Check(stats.shed == 0 && stats.deferred == 0,
          "admission acted while disabled");
  v.Check(stats.classified == kProbes,
          "classifier calls != distinct probes (route cache broken)");
  v.Check(stats.classified + stats.route_cache_hits == opts.requests,
          "every request must be classified or route-cache answered");
  uint64_t served = 0;
  for (const auto& g : stats.groups) {
    for (const auto& r : g.replicas) {
      CheckAccounting(r.service, &v);
      served += r.service.requests;
      if (r.label == target) {
        v.Check(r.service.fallback_deadline == deadline_seen,
                "target deadline fallbacks != client-observed stalls");
      } else {
        v.Check(r.service.fallbacks() == 0,
                "a non-target replica degraded (containment broken): " +
                    r.label);
      }
    }
    if (g.name == golf_group) {
      for (const auto& r : g.replicas) {
        v.Check(r.picks > 0, "a golf replica never took a pick: " + r.label);
      }
    }
  }
  v.Check(served == opts.requests, "a request was lost on the ladder");

  result.report = FaultDigest(injector);
  result.report += stats.ToString();
  result.report += StrFormat(
      "rolling drains:     %llu (stalled %llu, absorbed %llu)\n",
      static_cast<unsigned long long>(drain_ops),
      static_cast<unsigned long long>(deadline_seen),
      static_cast<unsigned long long>(absorbed));
  return result;
}

/// model-lifecycle: the closed loop under the model_poison fault. A weak
/// champion serves a live (sequentially driven) PredictionService whose
/// shadow lane feeds a LifecycleManager; strong candidates are registered
/// one at a time — the injector decides which are poisoned — and each is
/// driven to a terminal state. The scenario requires one of each outcome:
/// a poisoned candidate rejected by the gate, a clean promotion regressed
/// (actuals scaled mid-probation) into a watchdog rollback, and a clean
/// promotion confirmed. Throughout, every response must bit-match the
/// model of the generation it reports, and no generation ever maps to a
/// poisoned candidate's model (zero poisoned predictions reach clients).
LifecycleChaosResult RunLifecycleChaosImpl(const FaultPlan& plan,
                                           const ChaosOptions& opts) {
  LifecycleChaosResult out;
  ScenarioResult& result = out.scenario;
  result.name = "model-lifecycle";
  Violations v(&result);

  obs::MetricsRegistry fault_registry;
  FaultInjector injector(plan, &fault_registry);
  obs::FlightRecorder flight;
  injector.set_flight_recorder(&flight);

  auto train = [](size_t n, uint64_t seed, double metric_scale) {
    core::PredictorConfig cfg;
    cfg.kcca.solver = ml::KccaSolver::kExact;
    auto examples = SyntheticExamples(n, seed);
    for (auto& ex : examples) {
      ex.metrics = ScaleMetrics(ex.metrics, metric_scale);
    }
    auto pred = std::make_shared<core::Predictor>(cfg);
    pred->Train(examples);
    return pred;
  };

  // The champion is trained on x3-miscalibrated metrics, so it serves with
  // a steady ~2.0 relative error on every metric. Clean challengers train
  // unbiased and land around 0.8-1.6 (the intrinsic error of 3-NN equal
  // weighting on this workload), comfortably under the champion; poisoned
  // ones multiply predictions x100 and sit near 99.
  const auto weak_champion = train(16, opts.seed ^ 0x0DDBA11ull, 3.0);
  serve::ModelRegistry registry;
  registry.Publish(weak_champion);

  obs::MetricsRegistry lifecycle_metrics;
  lifecycle::LifecycleConfig lcfg;
  lcfg.window_observations = 24;
  lcfg.gate.min_observations = 24;
  lcfg.gate.margin = 0.05;
  // Above the clean challengers' intrinsic ~1.6 error, far below the
  // poisoned candidates' ~99: tolerance alone rejects every poison.
  lcfg.gate.tolerance = lifecycle::UniformTolerance(3.0);
  lcfg.max_shadow_windows = 3;
  lcfg.probation_windows = 2;
  // The watchdog threshold is max(2.5, 2x the promoted risk): a clean
  // probation (windowed risk <= ~2.0) never trips it, while the
  // regressed-actuals phase below (x0.2 => ~4.0 relative error) always
  // does.
  lcfg.rollback_margin = 1.0;
  lcfg.rollback_min_risk = 2.5;
  lcfg.registry = &lifecycle_metrics;
  lcfg.flight = &flight;
  lcfg.faults = &injector;
  lifecycle::LifecycleManager manager(&registry, lcfg);

  serve::ServiceConfig config;
  config.num_workers = 1;     // sequential driving => deterministic order
  config.cache_capacity = 0;  // every answer is a fresh model prediction
  config.fallback_on_anomalous = false;  // lifecycle traffic, not anomalies
  config.faults = &injector;
  config.shadow = &manager;
  serve::PredictionService service(&registry, config, ChaosCalibration());

  const auto examples = SyntheticExamples(256, opts.seed ^ 0x11FEC1Cull);

  // Harness-side truth: which model every published generation maps to,
  // and whether that model belongs to a poisoned candidate.
  std::vector<std::pair<std::shared_ptr<const core::Predictor>, bool>>
      registered;
  std::map<uint64_t, std::shared_ptr<const core::Predictor>> gen_models;
  std::map<uint64_t, bool> gen_poisoned;
  gen_models[registry.generation()] = weak_champion;
  gen_poisoned[registry.generation()] = false;

  uint64_t driven = 0, mismatches = 0, poisoned_served = 0, unknown_gen = 0;
  auto drive = [&](size_t n, double actual_scale) {
    for (size_t k = 0; k < n; ++k) {
      const auto& ex = examples[driven % examples.size()];
      const serve::ServeResponse resp =
          service.Submit({ex.query_features, 100.0}).get();
      ++driven;
      const auto it = gen_models.find(resp.model_generation);
      if (it == gen_models.end()) {
        ++unknown_gen;
      } else {
        if (!BitIdentical(resp.prediction,
                          it->second->Predict(ex.query_features))) {
          ++mismatches;
        }
        if (gen_poisoned[resp.model_generation]) ++poisoned_served;
      }
      // The simulator actuals: the example's ground-truth metrics, scaled
      // when the scenario wants the serving champion to look regressed.
      manager.ScoreActual(ex.query_features,
                          ScaleMetrics(ex.metrics, actual_scale));
      const uint64_t gen = manager.champion_generation();
      if (gen_models.find(gen) == gen_models.end()) {
        const auto model = manager.champion_model();
        bool poisoned = false;
        for (const auto& [m, p] : registered) {
          if (m == model && p) poisoned = true;
        }
        gen_models[gen] = model;
        gen_poisoned[gen] = poisoned;
      }
    }
  };

  const auto terminal = [](lifecycle::CandidateState s) {
    return s == lifecycle::CandidateState::kRejected ||
           s == lifecycle::CandidateState::kRolledBack ||
           s == lifecycle::CandidateState::kConfirmed;
  };

  bool poison_done = false, rollback_done = false, confirm_done = false;
  size_t next_candidate = 0;
  while (!(poison_done && rollback_done && confirm_done) &&
         next_candidate < 24) {
    const auto model =
        train(96, opts.seed ^ (0xC0FFEEull + 31 * next_candidate), 1.0);
    const size_t idx = manager.RegisterCandidate(
        model, StrFormat("cand-%02zu", next_candidate));
    ++next_candidate;
    const bool poisoned = manager.candidate_poisoned(idx);
    registered.emplace_back(model, poisoned);
    // A clean candidate while a rollback is still owed gets regressed
    // actuals once promoted, so the watchdog must demote it.
    const bool make_bad = !poisoned && !rollback_done;
    size_t guard = 0;
    while (!terminal(manager.candidate_state(idx)) && guard < 12) {
      const bool in_probation =
          manager.candidate_state(idx) == lifecycle::CandidateState::kPromoted;
      // Scaling actuals DOWN is what regresses the serving champion:
      // |m - m/5| / (m/5) = 4.0, while scaling up saturates below 1.0.
      drive(lcfg.window_observations, in_probation && make_bad ? 0.2 : 1.0);
      ++guard;
    }
    const lifecycle::CandidateState final_state = manager.candidate_state(idx);
    v.Check(terminal(final_state),
            StrFormat("candidate %zu never reached a terminal state", idx));
    if (poisoned) {
      v.Check(final_state == lifecycle::CandidateState::kRejected,
              StrFormat("poisoned candidate %zu ended %s, not rejected", idx,
                        lifecycle::CandidateStateName(final_state)));
      if (final_state == lifecycle::CandidateState::kRejected) {
        poison_done = true;
      }
    } else if (make_bad) {
      if (final_state == lifecycle::CandidateState::kRolledBack) {
        rollback_done = true;
      }
    } else if (final_state == lifecycle::CandidateState::kConfirmed) {
      confirm_done = true;
    }
  }
  service.Shutdown();

  v.Check(poison_done, "no poisoned candidate was drawn and rejected");
  v.Check(rollback_done, "the watchdog rollback never happened");
  v.Check(confirm_done, "no clean promotion was confirmed");

  // The zero-tolerance invariant: a poisoned candidate must never serve.
  uint64_t poisoned_promoted = 0;
  for (const auto& info : manager.Candidates()) {
    if (info.poisoned && info.promoted_generation != 0) ++poisoned_promoted;
  }
  v.Check(poisoned_promoted == 0, "a poisoned candidate was promoted");
  v.Check(poisoned_served == 0,
          StrFormat("%llu responses served by a poisoned model",
                    static_cast<unsigned long long>(poisoned_served)));
  v.Check(mismatches == 0,
          StrFormat("%llu responses did not bit-match their generation",
                    static_cast<unsigned long long>(mismatches)));
  v.Check(unknown_gen == 0,
          StrFormat("%llu responses reported an unknown generation",
                    static_cast<unsigned long long>(unknown_gen)));

  const serve::ServiceStatsSnapshot stats = service.stats();
  CheckAccounting(stats, &v);
  v.Check(stats.requests == driven, "a request was lost");
  v.Check(stats.shadow_observed == stats.model_predictions,
          "shadow lane missed a model response");
  const lifecycle::LifecycleStats ls = manager.stats();
  v.Check(ls.scored + ls.pending_invalidated == driven,
          "a scored observation went missing");
  v.Check(ls.poisoned_candidates == injector.injected("model_poison"),
          "poison tally diverged from the injector");

  result.report = FaultDigest(injector);
  result.report += ServeCounters(stats);
  result.report += StrFormat(
      "lifecycle counters:\n"
      "  candidates         %llu (poisoned %llu)\n"
      "  windows            %llu (scored %llu, shadow %llu)\n"
      "  promotions         %llu\n"
      "  rejections         %llu\n"
      "  rollbacks          %llu\n"
      "  confirmations      %llu\n",
      static_cast<unsigned long long>(ls.candidates),
      static_cast<unsigned long long>(ls.poisoned_candidates),
      static_cast<unsigned long long>(ls.windows),
      static_cast<unsigned long long>(ls.scored),
      static_cast<unsigned long long>(ls.shadow_predictions),
      static_cast<unsigned long long>(ls.promotions),
      static_cast<unsigned long long>(ls.rejections),
      static_cast<unsigned long long>(ls.rollbacks),
      static_cast<unsigned long long>(ls.confirmations));
  result.report += "candidates:\n";
  for (const auto& info : manager.Candidates()) {
    result.report += StrFormat(
        "  %-8s %-11s poisoned=%d windows=%llu gen=%llu risk=%.9g\n",
        info.label.c_str(), lifecycle::CandidateStateName(info.state),
        info.poisoned ? 1 : 0,
        static_cast<unsigned long long>(info.shadow_windows),
        static_cast<unsigned long long>(info.promoted_generation), info.risk);
  }
  // The decision log closes the report, so the CI same-seed diff of two
  // scenario runs IS the byte-identical-decision-log check.
  result.report += manager.log().ToString();

  out.counters = {
      {"lifecycle_candidates", static_cast<double>(ls.candidates)},
      {"lifecycle_poisoned_candidates",
       static_cast<double>(ls.poisoned_candidates)},
      {"lifecycle_promotions", static_cast<double>(ls.promotions)},
      {"lifecycle_rejections", static_cast<double>(ls.rejections)},
      {"lifecycle_rollbacks", static_cast<double>(ls.rollbacks)},
      {"lifecycle_confirmations", static_cast<double>(ls.confirmations)},
      {"lifecycle_windows", static_cast<double>(ls.windows)},
      {"lifecycle_scored", static_cast<double>(ls.scored)},
      {"lifecycle_shadow_predictions",
       static_cast<double>(ls.shadow_predictions)},
      {"lifecycle_requests", static_cast<double>(stats.requests)},
      {"lifecycle_poisoned_promoted", static_cast<double>(poisoned_promoted)},
      {"lifecycle_poisoned_served", static_cast<double>(poisoned_served)},
      {"lifecycle_prediction_mismatches", static_cast<double>(mismatches)},
      {"lifecycle_violations",
       static_cast<double>(result.violations.size())},
  };
  return out;
}

}  // namespace

// --------------------------------------------------------------- public --

const std::vector<std::string>& ChaosScenarioNames() {
  static const std::vector<std::string> kNames = {
      "node-death", "fallback-storm", "hot-swap", "backpressure",
      "shard-isolation", "rolling-drain", "model-lifecycle"};
  return kNames;
}

FaultPlan ChaosScenarioPlan(const std::string& name, uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (name == "node-death") {
    plan.engine.node_failure_probability = 0.5;
    plan.engine.max_failed_nodes = 3;
    plan.engine.repartition_seconds = 0.5;
    plan.engine.node_slowdown_probability = 0.3;
    plan.engine.node_slowdown_multiplier = 2.5;
    plan.engine.disk_stall_probability = 0.2;
    plan.engine.disk_stall_multiplier = 4.0;
  } else if (name == "fallback-storm") {
    plan.serve.worker_stall_probability = 0.45;
    plan.serve.worker_stall_seconds = 60.0;
  } else if (name == "hot-swap") {
    plan.serve.registry_swap_probability = 0.35;
  } else if (name == "backpressure") {
    plan.serve.submit_reject_probability = 0.4;
  } else if (name == "shard-isolation") {
    plan.serve.target_shard = "feather";
    plan.serve.shard_kill_after_requests = 25;
    plan.serve.shard_stall_probability = 0.3;
    plan.serve.shard_stall_seconds = 60.0;
  } else if (name == "rolling-drain") {
    // The kill must land inside small harness runs too: at 200 requests
    // (the unit-test scale) the target sees ~20 picks, so 15 is the
    // latest counted pick that reliably exists.
    plan.serve.target_replica_label = "feather#1";
    plan.serve.replica_kill_after_picks = 15;
    plan.serve.replica_stall_probability = 0.25;
    plan.serve.replica_stall_seconds = 60.0;
  } else if (name == "model-lifecycle") {
    // High enough that a poisoned candidate lands within a few draws at
    // any seed; the scenario keeps registering until it has seen one.
    plan.serve.model_poison_probability = 0.75;
    plan.serve.model_poison_multiplier = 100.0;
  }
  return plan;
}

FaultPlan RandomFaultPlan(uint64_t seed) {
  Rng rng(SplitMix64(seed ^ 0xC4A05ull));
  FaultPlan plan;
  plan.seed = seed;
  plan.engine.disk_stall_probability = rng.Uniform(0.0, 0.3);
  plan.engine.disk_stall_multiplier = rng.Uniform(2.0, 8.0);
  plan.engine.message_loss_rate = rng.Uniform(0.0, 0.1);
  plan.engine.node_slowdown_probability = rng.Uniform(0.0, 0.3);
  plan.engine.node_slowdown_multiplier = rng.Uniform(1.5, 4.0);
  plan.engine.node_failure_probability = rng.Uniform(0.0, 0.3);
  plan.engine.max_failed_nodes = 2;
  plan.engine.buffer_pressure_probability = rng.Uniform(0.0, 0.3);
  plan.serve.submit_reject_probability = rng.Uniform(0.0, 0.3);
  plan.serve.worker_stall_probability = rng.Uniform(0.0, 0.2);
  plan.serve.worker_stall_seconds = 30.0;
  plan.serve.registry_swap_probability = rng.Uniform(0.0, 0.2);
  // Replica-targeted fields (plan v3) get nontrivial values too so serde
  // round trips exercise them; they are label-gated to fabric replica
  // labels and the soak's service carries no shard_label, so they stay
  // inert in RunChaosSoak.
  plan.serve.target_replica_label = "golf ball#1";
  plan.serve.replica_kill_after_picks = 10 + seed % 90;
  plan.serve.replica_stall_probability = rng.Uniform(0.05, 0.3);
  plan.serve.replica_stall_seconds = rng.Uniform(10.0, 60.0);
  // Model-poison fields (plan v4): exercised by serde round trips; inert
  // in the soak itself, which registers no lifecycle candidates.
  plan.serve.model_poison_probability = rng.Uniform(0.1, 0.9);
  plan.serve.model_poison_multiplier = rng.Uniform(10.0, 200.0);
  return plan;
}

ScenarioResult RunChaosScenario(const std::string& name,
                                const ChaosOptions& options) {
  const FaultPlan plan = options.has_plan_override
                             ? options.plan_override
                             : ChaosScenarioPlan(name, options.seed);
  if (name == "node-death") return RunNodeDeath(plan, options);
  if (name == "fallback-storm") return RunFallbackStorm(plan, options);
  if (name == "hot-swap") return RunHotSwap(plan, options);
  if (name == "backpressure") return RunBackpressure(plan, options);
  if (name == "shard-isolation") return RunShardIsolation(plan, options);
  if (name == "rolling-drain") return RunRollingDrain(plan, options);
  if (name == "model-lifecycle") return RunLifecycleChaosImpl(plan, options).scenario;
  ScenarioResult unknown;
  unknown.name = name;
  unknown.violations.push_back("unknown scenario: " + name);
  return unknown;
}

LifecycleChaosResult RunLifecycleChaos(const ChaosOptions& options) {
  const FaultPlan plan =
      options.has_plan_override
          ? options.plan_override
          : ChaosScenarioPlan("model-lifecycle", options.seed);
  return RunLifecycleChaosImpl(plan, options);
}

ScenarioResult RunChaosSoak(const ChaosOptions& options) {
  ScenarioResult result;
  result.name = "soak";
  Violations v(&result);

  const FaultPlan plan = options.has_plan_override
                             ? options.plan_override
                             : RandomFaultPlan(options.seed);
  FaultInjector injector(plan);

  const auto model_a = TrainModel(options.seed ^ 0x50A0ull);
  const auto model_b = TrainModel(options.seed ^ 0x50A1ull);
  serve::ModelRegistry registry;
  registry.Publish(model_a);
  std::atomic<uint64_t> swaps{0};
  injector.set_registry_swap_hook([&] {
    registry.Publish(swaps.fetch_add(1) % 2 == 0 ? model_b : model_a);
  });

  serve::ServiceConfig config;
  config.num_workers = 2;
  config.max_batch = 16;
  config.cache_capacity = 1024;
  config.queue_deadline_seconds = 2.0;  // << injected 30s stalls
  config.breaker.enabled = true;
  config.faults = &injector;
  serve::PredictionService service(&registry, config, ChaosCalibration());

  serve::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 1e-5;

  const size_t kClients = 4;
  const size_t per_client = options.requests / kClients;
  const size_t total = per_client * kClients;
  std::atomic<uint64_t> answered{0}, broken{0}, unlabeled{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const auto probes =
          MakeProbes(64, options.seed ^ (0xC11E47ull + c));
      for (size_t i = 0; i < per_client; ++i) {
        std::future<serve::ServeResponse> future = service.SubmitWithRetry(
            {probes[i % probes.size()], 100.0}, policy);
        try {
          const serve::ServeResponse resp = future.get();
          answered.fetch_add(1);
          if (resp.degraded() && resp.degraded_reason.empty()) {
            unlabeled.fetch_add(1);
          }
        } catch (const std::future_error&) {
          broken.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  service.Shutdown();

  v.Check(broken.load() == 0,
          StrFormat("%llu broken futures",
                    static_cast<unsigned long long>(broken.load())));
  v.Check(answered.load() == total, "a soak request went unanswered");
  v.Check(unlabeled.load() == 0, "degraded responses without a reason");

  const serve::ServiceStatsSnapshot stats = service.stats();
  CheckAccounting(stats, &v);
  v.Check(stats.requests == total,
          StrFormat("responses %llu != requests driven %llu",
                    static_cast<unsigned long long>(stats.requests),
                    static_cast<unsigned long long>(total)));
  v.Check(stats.rejected >= injector.injected("submit_reject"),
          "rejected counter below the injected reject count");

  result.report = FaultDigest(injector);
  result.report += ServeCounters(stats);
  result.report += StrFormat(
      "clients: %llu x %llu requests\n",
      static_cast<unsigned long long>(kClients),
      static_cast<unsigned long long>(per_client));
  return result;
}

FabricSoakResult RunFabricSoak(const ChaosOptions& options) {
  FabricSoakResult out;
  ScenarioResult& result = out.scenario;
  result.name = "fabric-soak";
  Violations v(&result);

  const size_t requests = options.requests;
  // The fault schedule is sized relative to the run: the counted kill
  // lands once the target replica has taken ~1/20th of the traffic in
  // picks (its fair share is ~1/12th, so it always gets there), and the
  // stall probability is low enough that the capped real sleeps stay
  // negligible even at 1M requests.
  v.Check(requests >= 10000,
          "fabric soak needs >= 10k requests for its fault schedule");
  FaultPlan plan;
  if (options.has_plan_override) {
    plan = options.plan_override;
  } else {
    plan.seed = options.seed;
    plan.serve.target_replica_label = "feather#2";
    plan.serve.replica_kill_after_picks =
        std::max<uint64_t>(50, requests / 20);
    plan.serve.replica_stall_probability = 0.01;
    plan.serve.replica_stall_seconds = 60.0;
  }
  FaultInjector injector(plan);

  core::PredictorConfig cfg;
  cfg.kcca.solver = ml::KccaSolver::kExact;
  core::TwoStepPredictor two_step(cfg);
  const auto examples = FourPoolExamples(40, options.seed ^ 0xFAB50ull);
  two_step.Train(examples);
  for (const workload::QueryType type :
       {workload::QueryType::kFeather, workload::QueryType::kGolfBall,
        workload::QueryType::kBowlingBall,
        workload::QueryType::kWreckingBall}) {
    v.Check(two_step.HasCategoryModel(type),
            std::string("no expert trained for pool ") +
                workload::QueryTypeName(type));
  }

  serve::ServiceConfig service_config;
  service_config.num_workers = 1;
  // Batch size 1 pins batch formation: deferred dispatches briefly overlap
  // the admitted request in flight, and merged batches would make the
  // per-batch stall draws timing-dependent. One request per batch keeps
  // the whole fault schedule — and so the report — byte-replayable.
  service_config.max_batch = 1;
  service_config.cache_capacity = 1024;
  service_config.queue_deadline_seconds = 5.0;  // << injected replica stalls
  service_config.fallback_on_anomalous = false;  // bit-compare healthy paths

  fabric::FabricConfig config =
      fabric::MakePerPoolFabricConfig(3, service_config);
  config.faults = &injector;  // installs the default replica-kill hook
  config.p2c_seed = SplitMix64(options.seed ^ 0xFAB51Cull);
  // Deferred dispatches overlap in-flight traffic, so live queue depths
  // are racy; pin the P2C to its keyed draws to keep pick counts (and so
  // the whole report) byte-replayable.
  config.p2c_ignore_depth = true;
  config.admission.enabled = true;
  config.admission.p99_slo_seconds = 0.25;
  config.admission.max_queue_depth = 512;
  config.admission.max_deferred = 256;
  config.admission.defer_drain_per_submit = 4;
  const fabric::AdmissionConfig admission_cfg = config.admission;
  fabric::Fabric fab(std::move(config), ChaosCalibration());
  fabric::PublishTwoStep(two_step, &fab);

  const std::string golf_group =
      workload::QueryTypeName(workload::QueryType::kGolfBall);
  const auto golf_model = std::make_shared<const core::Predictor>(
      *two_step.CategoryModel(workload::QueryType::kGolfBall));

  // Four probes per pool; expectations use the classifier's own verdict so
  // the invariants hold regardless of where a neighbor vote lands. The
  // oracles are precomputed — at 1M requests a Predict per response would
  // dominate the run.
  const size_t kProbes = 16;
  std::vector<linalg::Vector> probes;
  std::vector<workload::QueryType> probe_pool;
  std::vector<std::string> probe_prefix;
  std::vector<core::Prediction> expect_expert, expect_base;
  bool pool_covered[4] = {false, false, false, false};
  for (size_t j = 0; j < kProbes; ++j) {
    const size_t pool = j % 4;
    probes.push_back(examples[pool * 40 + j / 4].query_features);
    const workload::QueryType verdict =
        two_step.base().Predict(probes.back()).predicted_type;
    probe_pool.push_back(verdict);
    probe_prefix.push_back(
        std::string(workload::QueryTypeName(verdict)) + "#");
    pool_covered[static_cast<size_t>(verdict)] = true;
    expect_expert.push_back(two_step.Predict(probes.back()));
    expect_base.push_back(two_step.base().Predict(probes.back()));
  }
  for (size_t p = 0; p < 4; ++p) {
    v.Check(pool_covered[p],
            std::string("probe mix never classifies into pool ") +
                workload::QueryTypeName(
                    static_cast<workload::QueryType>(p)));
  }
  const std::string catch_prefix = fab.catch_all_name() + "#";

  // Load waves, keyed purely by request index: every fourth block of
  // wave_len requests runs with a virtual overload signal, so the
  // admission decisions (and every counter downstream of them) replay
  // bit-for-bit. Rolling drains walk the golf group throughout.
  const size_t wave_len = std::max<size_t>(1, requests / 16);
  const auto in_overload = [wave_len](size_t i) {
    return ((i / wave_len) % 4) == 3;
  };
  const fabric::LoadSignal kCalm{0, 0.0};
  const fabric::LoadSignal kOverload{4096, 1.0};
  const size_t drain_every = std::max<size_t>(1000, requests / 12);

  obs::Histogram latency_hist;
  struct Parked {
    std::future<serve::ServeResponse> future;
    size_t probe = 0;
  };
  std::deque<Parked> parked;  // mirrors the fabric's deferred queue, FIFO
  uint64_t shed_direct = 0, shed_overflow = 0, parked_total = 0,
           drained_mid = 0, deadline_seen = 0, absorbed = 0,
           admitted_mirror = 0, breach_mirror = 0, drain_ops = 0,
           bad_shed = 0;
  uint64_t mismatches = 0, misrouted = 0, unexpected = 0;

  const auto verify = [&](const serve::ServeResponse& resp, size_t j) {
    latency_hist.Record(resp.latency_seconds);
    if (resp.shard.rfind(probe_prefix[j], 0) == 0) {
      if (resp.degraded()) {
        if (resp.degraded_reason == "deadline" &&
            resp.shard == plan.serve.target_replica_label) {
          ++deadline_seen;  // the targeted stall, surfaced and labeled
        } else {
          ++unexpected;
        }
      } else if (!BitIdentical(resp.prediction, expect_expert[j])) {
        ++mismatches;
      }
    } else if (resp.shard.rfind(catch_prefix, 0) == 0) {
      // Escalated: only the killing pick itself may land here.
      ++absorbed;
      if (resp.degraded()) {
        ++unexpected;
      } else if (!BitIdentical(resp.prediction, expect_base[j])) {
        ++mismatches;
      }
    } else {
      ++misrouted;
    }
  };

  std::optional<bool> over_prev;
  for (size_t i = 0; i < requests; ++i) {
    const bool over = in_overload(i);
    if (!over_prev.has_value() || *over_prev != over) {
      fab.admission()->SetVirtualLoad(over ? kOverload : kCalm);
      over_prev = over;
    }
    if (i > 0 && i % drain_every == 0) {
      const size_t r = (i / drain_every - 1) % 3;
      v.Check(fab.DrainSwapRevive(golf_group, r, golf_model),
              "drain-swap-revive failed mid-soak");
      ++drain_ops;
    }
    const size_t j = i % kProbes;
    const workload::QueryType pool = probe_pool[j];
    if (over) ++breach_mirror;
    std::future<serve::ServeResponse> future =
        fab.Submit({probes[j], 100.0});
    // The driver mirrors the admission policy (same pool verdict, same
    // virtual signal) so it knows which futures resolved inline (sheds),
    // which are parked at the front door, and which hit a replica queue.
    if (over && pool == workload::QueryType::kWreckingBall) {
      if (future.get().degraded_reason != "admission-shed") ++bad_shed;
      ++shed_direct;
      continue;
    }
    if (over && pool == workload::QueryType::kBowlingBall) {
      if (parked.size() < admission_cfg.max_deferred) {
        parked.push_back({std::move(future), j});
        ++parked_total;
        continue;
      }
      if (future.get().degraded_reason != "admission-shed") ++bad_shed;
      ++shed_overflow;
      continue;
    }
    ++admitted_mirror;
    verify(future.get(), j);
    if (!over) {
      // The fabric piggyback-drained up to defer_drain_per_submit parked
      // requests during this admit; collect them in the same FIFO order.
      const size_t n =
          std::min(admission_cfg.defer_drain_per_submit, parked.size());
      for (size_t k = 0; k < n; ++k) {
        Parked p = std::move(parked.front());
        parked.pop_front();
        verify(p.future.get(), p.probe);
        ++drained_mid;
      }
    }
  }
  const uint64_t shutdown_drained = parked.size();
  fab.Shutdown();  // dispatches the still-parked leftovers, then stops
  while (!parked.empty()) {
    Parked p = std::move(parked.front());
    parked.pop_front();
    verify(p.future.get(), p.probe);
  }

  v.Check(misrouted == 0,
          StrFormat("%llu responses from outside the classified group",
                    static_cast<unsigned long long>(misrouted)));
  v.Check(mismatches == 0,
          StrFormat("%llu responses did not bit-match their expert",
                    static_cast<unsigned long long>(mismatches)));
  v.Check(unexpected == 0,
          StrFormat("%llu degradations outside the injected faults",
                    static_cast<unsigned long long>(unexpected)));
  v.Check(bad_shed == 0,
          StrFormat("%llu shed responses were not labeled admission-shed",
                    static_cast<unsigned long long>(bad_shed)));
  v.Check(shed_direct > 0, "no wrecking ball was shed under overload");
  v.Check(parked_total > 0, "no bowling ball was deferred under overload");
  v.Check(drained_mid > 0, "no deferred request drained after its wave");
  v.Check(injector.injected("replica_kill") == 1,
          "the replica kill must fire exactly once");
  v.Check(absorbed == 1,
          StrFormat("catch-all absorbed %llu requests; only the killing "
                    "pick may escalate (the group has live peers)",
                    static_cast<unsigned long long>(absorbed)));
  v.Check(injector.injected("replica_stall") == deadline_seen,
          StrFormat("deadline fallbacks %llu != injected replica stalls "
                    "%llu (batch size 1 must map 1:1)",
                    static_cast<unsigned long long>(deadline_seen),
                    static_cast<unsigned long long>(
                        injector.injected("replica_stall"))));
  v.Check(deadline_seen > 0, "target replica never stalled before the kill");
  v.Check(fab.health("feather", 2) == fabric::ReplicaHealth::kDead,
          "killed replica is not marked dead");
  v.Check(!fab.registry("feather", 2)->has_model(),
          "killed replica still has a model");

  const fabric::FabricStatsSnapshot stats = fab.stats();
  v.Check(stats.shed == shed_direct + shed_overflow,
          "shed counter != client-observed sheds");
  v.Check(stats.defer_overflow == shed_overflow,
          "defer-overflow counter != client-observed overflow sheds");
  v.Check(stats.deferred == parked_total,
          "deferred counter != client-parked requests");
  v.Check(stats.defer_drained == drained_mid + shutdown_drained,
          "defer-drained counter != mid-run + shutdown drains");
  v.Check(stats.admitted == admitted_mirror,
          "admitted counter != client-mirrored admits");
  v.Check(stats.slo_breaches == breach_mirror,
          "slo-breach counter != requests decided under overload waves");
  v.Check(stats.drains == drain_ops,
          "drains counter != drain-swap-revive operations");
  v.Check(stats.escalations_dead == absorbed,
          "dead-escalation count != client-observed absorbed requests");
  v.Check(stats.escalations_open == 0 && stats.escalations_overloaded == 0 &&
              stats.fallback_exhausted == 0,
          "ladder rungs below 'dead' fired under sequential driving");
  v.Check(stats.classified == kProbes,
          "classifier calls != distinct probes (route cache broken)");
  v.Check(stats.classified + stats.route_cache_hits ==
              requests + stats.defer_drained,
          "every submit and every defer dispatch must classify exactly once");
  uint64_t served = 0;
  for (const auto& g : stats.groups) {
    for (const auto& r : g.replicas) {
      CheckAccounting(r.service, &v);
      served += r.service.requests;
      if (r.label == plan.serve.target_replica_label) {
        v.Check(r.service.fallback_deadline == deadline_seen,
                "target deadline fallbacks != client-observed stalls");
      } else {
        v.Check(r.service.fallbacks() == 0,
                "a non-target replica degraded (containment broken): " +
                    r.label);
      }
      if (!g.catch_all) {
        v.Check(r.picks > 0, "a replica never took a pick: " + r.label);
      }
    }
  }
  v.Check(served + stats.shed == requests,
          "a request was lost on the ladder");

  // The p99-under-chaos SLO: an invariant, never part of the report (the
  // report must stay byte-replayable and wall-clock never is).
  const double p99 = latency_hist.Quantile(0.99);
  v.Check(p99 <= 0.25,
          StrFormat("p99 under chaos %.6fs breached the 0.25s soak SLO",
                    p99));

  result.report = StrFormat(
      "fabric soak: %llu requests | wave %llu | probes %llu | replicas 3\n",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(wave_len),
      static_cast<unsigned long long>(kProbes));
  result.report += FaultDigest(injector);
  result.report += stats.ToString();

  const auto count = [](uint64_t value) {
    return static_cast<double>(value);
  };
  // Keys carry the fabric_soak_ prefix because they land in the shared
  // golden/tolerance namespace (tests/golden/fabric.json) next to the
  // paper-figure headline keys.
  out.counters = {
      {"fabric_soak_requests", count(requests)},
      {"fabric_soak_classified", count(stats.classified)},
      {"fabric_soak_route_cache_hits", count(stats.route_cache_hits)},
      {"fabric_soak_admitted", count(stats.admitted)},
      {"fabric_soak_shed_wrecking", count(shed_direct)},
      {"fabric_soak_shed_defer_overflow", count(shed_overflow)},
      {"fabric_soak_deferred", count(stats.deferred)},
      {"fabric_soak_defer_drained_midrun", count(drained_mid)},
      {"fabric_soak_defer_drained_shutdown", count(shutdown_drained)},
      {"fabric_soak_slo_breaches", count(stats.slo_breaches)},
      {"fabric_soak_drains", count(stats.drains)},
      {"fabric_soak_escalations_dead", count(stats.escalations_dead)},
      {"fabric_soak_replica_kills", count(injector.injected("replica_kill"))},
      {"fabric_soak_replica_stalls",
       count(injector.injected("replica_stall"))},
      {"fabric_soak_deadline_fallbacks", count(deadline_seen)},
      {"fabric_soak_violations", count(result.violations.size())},
  };
  return out;
}

namespace {
size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}
}  // namespace

ObsFlightDemoResult RunObsFlightDemo(const ChaosOptions& options) {
  ObsFlightDemoResult out;
  ScenarioResult& result = out.scenario;
  result.name = "obs-flight-demo";
  Violations v(&result);

  const size_t requests = options.requests;
  v.Check(requests >= 512,
          "obs flight demo needs >= 512 requests (one breaching window)");
  if (requests < 512) return out;

  obs::TraceRecorder trace;

  core::PredictorConfig cfg;
  cfg.kcca.solver = ml::KccaSolver::kExact;
  core::TwoStepPredictor two_step(cfg);
  const auto examples = FourPoolExamples(40, options.seed ^ 0x0B5D3340ull);
  two_step.Train(examples);

  serve::ServiceConfig service_config;
  service_config.num_workers = 1;
  service_config.max_batch = 1;  // byte-replayable, as in the fabric soak
  service_config.cache_capacity = 1024;
  service_config.fallback_on_anomalous = false;

  fabric::FabricConfig config =
      fabric::MakePerPoolFabricConfig(2, service_config);
  config.trace = &trace;
  config.trace_seed = SplitMix64(options.seed ^ 0x0B5F11D0ull);
  config.p2c_seed = SplitMix64(options.seed ^ 0xFAB51Cull);
  config.p2c_ignore_depth = true;
  config.admission.enabled = true;
  config.admission.p99_slo_seconds = 0.25;
  config.admission.max_queue_depth = 512;
  // Shed-only policy: every future resolves inline or through a replica,
  // so the sequential driver never blocks on a parked request and the
  // whole flight history replays byte-for-byte.
  config.admission.defer_bowling = false;
  fabric::Fabric fab(std::move(config), ChaosCalibration());
  fabric::PublishTwoStep(two_step, &fab);
  fab.flight()->Record(obs::FlightEventKind::kNote, /*trace_id=*/0,
                       /*code=*/0, 0.0, "obs-demo-start");

  // Two probes per pool, classified by the step-1 model itself so the
  // shed/admit mirror below matches the fabric's verdicts exactly.
  const size_t kProbes = 8;
  std::vector<linalg::Vector> probes;
  std::vector<workload::QueryType> probe_pool;
  for (size_t j = 0; j < kProbes; ++j) {
    probes.push_back(examples[(j % 4) * 40 + j / 4].query_features);
    probe_pool.push_back(
        two_step.base().Predict(probes.back()).predicted_type);
  }

  // The SLO engine under test: synthetic seed-derived latencies (never the
  // wall clock) make every window's verdict a pure function of the seed.
  // The p99 rule trips during overload waves; the fallback-share rule
  // trips with it (sheds are degraded responses); the deferred-pending
  // gauge rule never trips — the dump shows healthy rules next to
  // breaching ones.
  obs::Histogram* demo_latency = fab.metrics()->GetHistogram(
      "qpp_demo_latency_seconds", {}, [] {
        obs::HistogramOptions o;
        o.exemplars = true;
        return o;
      }());
  fab.metrics()->SetHelp("qpp_demo_latency_seconds",
                         "seed-derived synthetic latency of demo requests");
  obs::Counter* responses_total =
      fab.metrics()->GetCounter("qpp_demo_responses_total");
  obs::Counter* degraded_total =
      fab.metrics()->GetCounter("qpp_demo_degraded_total");
  obs::SloEngineOptions engine_options;
  engine_options.window_ticks = 64;
  engine_options.eager_refresh_every = 0;  // pure tumbling windows
  engine_options.registry = fab.metrics();
  engine_options.flight = fab.flight();
  engine_options.trace = &trace;
  obs::SloEngine slo(engine_options);
  {
    obs::SloRule p99;
    p99.name = "demo_p99";
    p99.kind = obs::SloRule::Kind::kHistogramQuantile;
    p99.threshold = 0.25;
    p99.min_samples = 16;
    p99.histogram = demo_latency;
    p99.quantile = 0.99;
    slo.AddRule(std::move(p99));
    obs::SloRule share;
    share.name = "demo_fallback_share";
    share.kind = obs::SloRule::Kind::kCounterRatio;
    share.threshold = 0.10;
    share.min_samples = 16;
    share.numerator = degraded_total;
    share.denominator = responses_total;
    slo.AddRule(std::move(share));
    obs::SloRule deferred;
    deferred.name = "demo_deferred_pending";
    deferred.kind = obs::SloRule::Kind::kGaugeThreshold;
    deferred.threshold = 1.0;
    deferred.gauge = fab.metrics()->GetGauge("qpp_fabric_deferred_pending");
    slo.AddRule(std::move(deferred));
  }

  // Overload waves keyed purely by request index, as in the fabric soak:
  // every fourth block runs under a virtual breach signal.
  const size_t wave_len = std::max<size_t>(64, requests / 16);
  const auto in_overload = [wave_len](size_t i) {
    return ((i / wave_len) % 4) == 3;
  };
  const fabric::LoadSignal kCalm{0, 0.0};
  const fabric::LoadSignal kOverload{4096, 1.0};

  uint64_t shed_mirror = 0, admitted_mirror = 0, degraded_seen = 0;
  std::string first_breach_rule;
  std::optional<bool> over_prev;
  for (size_t i = 0; i < requests; ++i) {
    const bool over = in_overload(i);
    if (!over_prev.has_value() || *over_prev != over) {
      fab.admission()->SetVirtualLoad(over ? kOverload : kCalm);
      over_prev = over;
    }
    const size_t j = i % kProbes;
    const serve::ServeResponse resp = fab.Submit({probes[j], 100.0}).get();
    if (over && probe_pool[j] == workload::QueryType::kWreckingBall) {
      ++shed_mirror;
      v.Check(resp.degraded_reason == "admission-shed",
              "wrecking ball under overload was not labeled admission-shed");
    } else {
      ++admitted_mirror;
    }
    v.Check(resp.trace_id != 0, "a response came back without a trace id");
    if (resp.degraded()) ++degraded_seen;

    // Synthetic latency: uniform noise off the seed, an order of magnitude
    // over the SLO during waves. The response's own identity scopes the
    // tick, so the alert that closes a breaching window is tagged with the
    // request that tipped it.
    Rng lat_rng(SplitMix64(options.seed ^ 0x0B5DA7ull ^ i));
    const double synthetic = over ? 0.5 + 0.5 * lat_rng.NextDouble()
                                  : 0.001 + 0.004 * lat_rng.NextDouble();
    obs::ScopedRequestContext tick_scope(
        obs::RequestContext{resp.trace_id});
    responses_total->Inc();
    if (resp.degraded()) degraded_total->Inc();
    demo_latency->Record(synthetic, resp.trace_id);
    const std::optional<obs::SloEvaluation> eval = slo.Tick();
    if (eval.has_value() && !eval->eager && eval->any_breached() &&
        out.flight_dump.empty()) {
      // The black box, captured the moment the breach is known.
      out.breach_trace_id = resp.trace_id;
      for (const obs::SloRuleOutcome& r : eval->rules) {
        if (r.breached) { first_breach_rule = r.rule; break; }
      }
      out.flight_dump =
          fab.flight()->DumpJson("slo-breach:" + first_breach_rule);
    }
  }
  fab.Shutdown();
  out.trace_json = trace.ToJson();
  out.prometheus_text = fab.metrics()->PrometheusText();

  const std::string breach_hex = obs::TraceIdHex(out.breach_trace_id);
  v.Check(!out.flight_dump.empty(), "no SLO window ever closed breaching");
  v.Check(out.breach_trace_id != 0, "breaching window has no trace id");
  v.Check(slo.alerts_total() > 0, "the SLO engine never fired an alert");
  v.Check(slo.windows_closed() >= requests / 64 / 2,
          "the SLO engine closed too few windows");
  v.Check(out.flight_dump.find("\"slo_alert\"") != std::string::npos,
          "flight dump carries no slo_alert event");
  v.Check(out.flight_dump.find("\"slo_breach\"") != std::string::npos,
          "flight dump carries no admission slo_breach event");
  v.Check(out.flight_dump.find("\"admission_shed\"") != std::string::npos,
          "flight dump carries no admission_shed event");
  v.Check(out.flight_dump.find("\"pick\"") != std::string::npos,
          "flight dump carries no replica pick event");
  v.Check(out.flight_dump.find(breach_hex) != std::string::npos,
          "flight dump does not mention the breaching trace id");
  const size_t chain = CountOccurrences(out.trace_json, breach_hex);
  v.Check(chain >= 3,
          StrFormat("breaching trace id appears %llu times in the trace; "
                    "expected a span chain of >= 3",
                    static_cast<unsigned long long>(chain)));
  v.Check(trace.dropped_count() == 0, "trace recorder dropped events");
  v.Check(out.prometheus_text.find(
              "# TYPE qpp_demo_latency_seconds histogram") !=
              std::string::npos,
          "prometheus exposition lost the demo histogram");
  v.Check(out.prometheus_text.find("trace_id=") != std::string::npos,
          "prometheus exposition carries no exemplar");
  const fabric::FabricStatsSnapshot stats = fab.stats();
  v.Check(stats.shed == shed_mirror,
          "shed counter != client-observed sheds");
  v.Check(stats.admitted == admitted_mirror,
          "admitted counter != client-mirrored admits");
  v.Check(degraded_seen == shed_mirror,
          "degradations beyond the admission sheds");

  result.report = StrFormat(
      "obs flight demo: %llu requests | wave %llu | window 64 | probes "
      "%llu\n"
      "breach: rule %s trace %s\n"
      "slo: ticks %llu windows %llu alerts %llu\n"
      "admission: admitted %llu shed %llu\n"
      "flight: dump %llu bytes | prom %llu bytes | id chain %llu spans\n",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(wave_len),
      static_cast<unsigned long long>(kProbes), first_breach_rule.c_str(),
      breach_hex.c_str(), static_cast<unsigned long long>(slo.ticks()),
      static_cast<unsigned long long>(slo.windows_closed()),
      static_cast<unsigned long long>(slo.alerts_total()),
      static_cast<unsigned long long>(admitted_mirror),
      static_cast<unsigned long long>(shed_mirror),
      static_cast<unsigned long long>(out.flight_dump.size()),
      static_cast<unsigned long long>(out.prometheus_text.size()),
      static_cast<unsigned long long>(chain));
  return out;
}

}  // namespace qpp::fault
