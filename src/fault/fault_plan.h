// Deterministic fault injection: the FaultPlan.
//
// The paper's use cases (admission control, scheduling, user feedback) only
// pay off if predictions stay trustworthy when the system misbehaves — and
// learned predictors degrade exactly when the serving environment drifts
// from training conditions (see PAPERS.md, the LinkedIn evaluation). A
// FaultPlan is a compact, serializable description of *how* the system
// misbehaves: fault kinds, probabilities, and magnitudes for both layers
// that matter —
//
//  * the execution simulator (src/engine/): disk stalls, message loss with
//    retransmit cost, straggler/failed nodes with work re-partitioning,
//    buffer-pool pressure shrinking operator working memory;
//  * the prediction service (src/serve/): submit-reject storms (simulated
//    queue saturation), worker stalls that age queued requests past their
//    deadline, and registry hot-swaps injected mid-batch.
//
// Every stochastic decision a plan implies is sampled from seeded RNG
// streams keyed by (plan.seed, decision point) — see fault_injector.h — so
// a fault schedule is exactly replayable: same plan, same workload, same
// faults, bit-for-bit. Plans serialize via common/serde (versioned binary,
// byte-stable round trips) so a chaos run can be shipped and replayed.
#pragma once

#include <cstdint>
#include <string>

#include "common/serde.h"
#include "common/status.h"

namespace qpp::fault {

/// Engine-layer faults, applied per query / per operator inside
/// engine::ExecutionSimulator::Execute. Multipliers are >= 1 in any sane
/// plan (faults make things slower, never faster); probabilities in [0, 1].
struct EngineFaultSpec {
  /// Per-operator probability that this operator's disk I/O stalls.
  double disk_stall_probability = 0.0;
  /// I/O time multiplier applied to a stalled operator.
  double disk_stall_multiplier = 4.0;
  /// Fraction of each operator's messages lost and retransmitted.
  double message_loss_rate = 0.0;
  /// Cost of one lost message, in sent-message equivalents (send + ack
  /// timeout + resend is > 1 message of work).
  double retransmit_cost_factor = 2.0;
  /// Per-query probability that one node is a straggler; the barrier at
  /// every operator then waits on it.
  double node_slowdown_probability = 0.0;
  double node_slowdown_multiplier = 2.0;  ///< straggler CPU multiplier
  /// Per-query probability that nodes fail before execution; their work is
  /// re-partitioned over the survivors.
  double node_failure_probability = 0.0;
  int max_failed_nodes = 1;  ///< failures sampled in [1, max]; < nodes_used
  /// One-time cost of re-partitioning work after node failure.
  double repartition_seconds = 0.5;
  /// Per-query probability of buffer-pool pressure (a co-resident workload
  /// stealing memory): operator working memory shrinks, forcing spills.
  double buffer_pressure_probability = 0.0;
  /// Effective working-memory multiplier under pressure, in (0, 1].
  double work_mem_multiplier = 0.25;

  bool enabled() const {
    return disk_stall_probability > 0.0 || message_loss_rate > 0.0 ||
           node_slowdown_probability > 0.0 ||
           node_failure_probability > 0.0 ||
           buffer_pressure_probability > 0.0;
  }
};

/// Serve-layer faults, applied by serve::PredictionService at deterministic
/// decision points: one decision per submit attempt (indexed by a global
/// attempt counter) and one per micro-batch (indexed by a batch counter).
struct ServeFaultSpec {
  /// Probability that a TrySubmit attempt is refused as if the queue were
  /// full (a saturation storm without needing real queue pressure).
  double submit_reject_probability = 0.0;
  /// Per-batch probability that the picking worker stalls.
  double worker_stall_probability = 0.0;
  /// Stall length, added to every batched request's *virtual* queue age so
  /// deadline policy triggers deterministically (the worker also really
  /// sleeps, capped at 1ms, so stalls are visible in wall-time traces).
  double worker_stall_seconds = 0.0;
  /// Per-batch probability of firing the registry-swap hook right after
  /// the worker acquired its model snapshot — the hardest hot-swap timing.
  double registry_swap_probability = 0.0;

  // Shard-targeted faults (sharded serving, see shard/shard_router.h).
  // `target_shard` names the shard they apply to; empty disables them.

  /// Shard whose registry/workers the faults below aim at.
  std::string target_shard;
  /// Kill the target shard's registry (fire the shard-kill hook) when the
  /// Nth request is routed to it — a counted, not sampled, decision, so
  /// the kill lands on the same request under any seed. 0 disables.
  uint64_t shard_kill_after_requests = 0;
  /// Per-batch probability that a target-shard worker stalls; same virtual
  /// -age semantics as worker_stall_* but scoped to one shard.
  double shard_stall_probability = 0.0;
  double shard_stall_seconds = 0.0;

  bool shard_targeted() const {
    return !target_shard.empty() && (shard_kill_after_requests > 0 ||
                                     shard_stall_probability > 0.0);
  }

  // Replica-targeted faults (replicated serving, see fabric/fabric.h).
  // `target_replica_label` names one replica by its "group#index" label;
  // empty disables them. Distinct from the shard fields above so a plan
  // can aim at a whole shard and one replica of another group at once.

  /// Replica whose registry/workers the faults below aim at.
  std::string target_replica_label;
  /// Kill the target replica (fire the replica-kill hook: health -> dead,
  /// registry unpublished) when the fabric picks it for the Nth time — a
  /// counted, not sampled, decision, like shard_kill. 0 disables.
  uint64_t replica_kill_after_picks = 0;
  /// Per-batch probability that a target-replica worker stalls; same
  /// virtual-age semantics as worker_stall_* but scoped to one replica.
  double replica_stall_probability = 0.0;
  double replica_stall_seconds = 0.0;

  bool replica_targeted() const {
    return !target_replica_label.empty() &&
           (replica_kill_after_picks > 0 || replica_stall_probability > 0.0);
  }

  // Lifecycle-targeted faults (closed-loop model lifecycle, see
  // lifecycle/lifecycle.h). One decision per registered candidate, keyed
  // by its registration index.

  /// Probability that a registered challenger model is poisoned: its
  /// shadow predictions are scaled by model_poison_multiplier, modeling a
  /// corrupted or badly retrained candidate. The lifecycle gate must
  /// reject it — a poisoned candidate never reaches user traffic (the
  /// "model-lifecycle" chaos scenario pins this as zero-tolerance).
  double model_poison_probability = 0.0;
  /// Prediction multiplier applied to a poisoned candidate (>= 1).
  double model_poison_multiplier = 100.0;

  bool enabled() const {
    return submit_reject_probability > 0.0 ||
           worker_stall_probability > 0.0 ||
           registry_swap_probability > 0.0 || shard_targeted() ||
           replica_targeted() || model_poison_probability > 0.0;
  }
};

/// A complete, replayable fault schedule: seed + per-layer specs.
struct FaultPlan {
  uint64_t seed = 0;
  EngineFaultSpec engine;
  ServeFaultSpec serve;

  bool enabled() const { return engine.enabled() || serve.enabled(); }

  /// Versioned binary serialization (magic "QPPF"). Write/Read round trips
  /// are byte-identical — tests/property_test.cpp holds this invariant.
  void Write(BinaryWriter* w) const;
  static FaultPlan Read(BinaryReader* r);

  /// Multi-line human-readable description (chaos harness banner).
  std::string ToString() const;
};

Status SaveFaultPlanFile(const FaultPlan& plan, const std::string& path);
Result<FaultPlan> LoadFaultPlanFile(const std::string& path);

}  // namespace qpp::fault
