#include "fault/fault_plan.h"

#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/str_util.h"

namespace qpp::fault {

namespace {
constexpr uint32_t kMagic = 0x51505046;  // "QPPF" little-endian
// v1: engine + serve probabilities. v2 appends the shard-targeted serve
// fields; v3 appends the replica-targeted serve fields; v4 appends the
// model_poison lifecycle fields. Older files still load (the appended
// fault families default to disabled).
constexpr uint32_t kVersion = 4;
}  // namespace

void FaultPlan::Write(BinaryWriter* w) const {
  QPP_CHECK(w != nullptr);
  w->WriteU32(kMagic);
  w->WriteU32(kVersion);
  w->WriteU64(seed);
  w->WriteDouble(engine.disk_stall_probability);
  w->WriteDouble(engine.disk_stall_multiplier);
  w->WriteDouble(engine.message_loss_rate);
  w->WriteDouble(engine.retransmit_cost_factor);
  w->WriteDouble(engine.node_slowdown_probability);
  w->WriteDouble(engine.node_slowdown_multiplier);
  w->WriteDouble(engine.node_failure_probability);
  w->WriteI64(engine.max_failed_nodes);
  w->WriteDouble(engine.repartition_seconds);
  w->WriteDouble(engine.buffer_pressure_probability);
  w->WriteDouble(engine.work_mem_multiplier);
  w->WriteDouble(serve.submit_reject_probability);
  w->WriteDouble(serve.worker_stall_probability);
  w->WriteDouble(serve.worker_stall_seconds);
  w->WriteDouble(serve.registry_swap_probability);
  w->WriteString(serve.target_shard);
  w->WriteU64(serve.shard_kill_after_requests);
  w->WriteDouble(serve.shard_stall_probability);
  w->WriteDouble(serve.shard_stall_seconds);
  w->WriteString(serve.target_replica_label);
  w->WriteU64(serve.replica_kill_after_picks);
  w->WriteDouble(serve.replica_stall_probability);
  w->WriteDouble(serve.replica_stall_seconds);
  w->WriteDouble(serve.model_poison_probability);
  w->WriteDouble(serve.model_poison_multiplier);
}

FaultPlan FaultPlan::Read(BinaryReader* r) {
  QPP_CHECK(r != nullptr);
  QPP_CHECK_MSG(r->ReadU32() == kMagic, "not a fault plan file");
  const uint32_t version = r->ReadU32();
  QPP_CHECK_MSG(version >= 1 && version <= kVersion,
                "unsupported fault plan version");
  FaultPlan p;
  p.seed = r->ReadU64();
  p.engine.disk_stall_probability = r->ReadDouble();
  p.engine.disk_stall_multiplier = r->ReadDouble();
  p.engine.message_loss_rate = r->ReadDouble();
  p.engine.retransmit_cost_factor = r->ReadDouble();
  p.engine.node_slowdown_probability = r->ReadDouble();
  p.engine.node_slowdown_multiplier = r->ReadDouble();
  p.engine.node_failure_probability = r->ReadDouble();
  p.engine.max_failed_nodes = static_cast<int>(r->ReadI64());
  p.engine.repartition_seconds = r->ReadDouble();
  p.engine.buffer_pressure_probability = r->ReadDouble();
  p.engine.work_mem_multiplier = r->ReadDouble();
  p.serve.submit_reject_probability = r->ReadDouble();
  p.serve.worker_stall_probability = r->ReadDouble();
  p.serve.worker_stall_seconds = r->ReadDouble();
  p.serve.registry_swap_probability = r->ReadDouble();
  if (version >= 2) {
    p.serve.target_shard = r->ReadString();
    p.serve.shard_kill_after_requests = r->ReadU64();
    p.serve.shard_stall_probability = r->ReadDouble();
    p.serve.shard_stall_seconds = r->ReadDouble();
  }
  if (version >= 3) {
    p.serve.target_replica_label = r->ReadString();
    p.serve.replica_kill_after_picks = r->ReadU64();
    p.serve.replica_stall_probability = r->ReadDouble();
    p.serve.replica_stall_seconds = r->ReadDouble();
  }
  if (version >= 4) {
    p.serve.model_poison_probability = r->ReadDouble();
    p.serve.model_poison_multiplier = r->ReadDouble();
  }
  return p;
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  os << StrFormat("fault plan (seed %llu)%s\n",
                  static_cast<unsigned long long>(seed),
                  enabled() ? "" : " — all faults disabled");
  if (engine.enabled()) {
    os << StrFormat(
        "  engine: disk_stall p=%.2f x%.1f | msg_loss %.2f x%.1f | "
        "slowdown p=%.2f x%.1f | node_fail p=%.2f (<=%d, +%.2fs) | "
        "buf_pressure p=%.2f mem x%.2f\n",
        engine.disk_stall_probability, engine.disk_stall_multiplier,
        engine.message_loss_rate, engine.retransmit_cost_factor,
        engine.node_slowdown_probability, engine.node_slowdown_multiplier,
        engine.node_failure_probability, engine.max_failed_nodes,
        engine.repartition_seconds, engine.buffer_pressure_probability,
        engine.work_mem_multiplier);
  }
  if (serve.enabled()) {
    os << StrFormat(
        "  serve: submit_reject p=%.2f | worker_stall p=%.2f %.1fs | "
        "registry_swap p=%.2f\n",
        serve.submit_reject_probability, serve.worker_stall_probability,
        serve.worker_stall_seconds, serve.registry_swap_probability);
    if (serve.shard_targeted()) {
      os << StrFormat(
          "  shard \"%s\": kill after %llu routed | stall p=%.2f %.1fs\n",
          serve.target_shard.c_str(),
          static_cast<unsigned long long>(serve.shard_kill_after_requests),
          serve.shard_stall_probability, serve.shard_stall_seconds);
    }
    if (serve.replica_targeted()) {
      os << StrFormat(
          "  replica \"%s\": kill after %llu picks | stall p=%.2f %.1fs\n",
          serve.target_replica_label.c_str(),
          static_cast<unsigned long long>(serve.replica_kill_after_picks),
          serve.replica_stall_probability, serve.replica_stall_seconds);
    }
    if (serve.model_poison_probability > 0.0) {
      os << StrFormat("  lifecycle: model_poison p=%.2f x%.1f\n",
                      serve.model_poison_probability,
                      serve.model_poison_multiplier);
    }
  }
  return os.str();
}

Status SaveFaultPlanFile(const FaultPlan& plan, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os.good()) return Status::Error("cannot open for write: " + path);
  try {
    BinaryWriter w(os);
    plan.Write(&w);
  } catch (const CheckFailure& e) {
    return Status::Error(std::string("fault plan write failed: ") + e.what());
  }
  os.flush();
  if (!os.good()) return Status::Error("write failed: " + path);
  return Status::Ok();
}

Result<FaultPlan> LoadFaultPlanFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return Status::Error("cannot open for read: " + path);
  try {
    BinaryReader r(is);
    return FaultPlan::Read(&r);
  } catch (const CheckFailure& e) {
    return Status::Error(std::string("fault plan read failed: ") + e.what());
  }
}

}  // namespace qpp::fault
