// The FaultInjector: a thread-safe session that turns a FaultPlan into
// concrete, replayable fault decisions, and makes every injected fault
// observable.
//
// Determinism is the whole point. Each decision point draws from its own
// RNG derived as Rng(SplitMix64(seed ^ tag ^ index)):
//
//  * engine decisions are keyed by the query hash (and operator ordinal
//    within the query), so a given query suffers the same faults no matter
//    when, where, or how many times it is simulated;
//  * serve decisions are keyed by monotonic per-kind sequence numbers
//    (submit attempt #i, batch #j). Driven sequentially — one request in
//    flight at a time, as the chaos harness does — the whole schedule is
//    bit-replayable; under concurrent traffic the decision *sequence* is
//    still fixed, only which request draws which index varies.
//
// Observability: every injected fault increments a labeled counter
// (qpp_fault_injected_total{layer=...,kind=...}) in the registry passed at
// construction, and emits an instant event (category "fault") into the
// trace recorder — tagged with the current request's trace id when a
// RequestContext scope is installed — so chaos runs show up in statsz and
// Perfetto exactly like organic behavior. A flight recorder can be
// attached (set_flight_recorder) to also put every injection into the
// black box. All sinks are optional and null-tested once.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/rng.h"
#include "fault/fault_plan.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace qpp::fault {

class FaultInjector {
 public:
  /// `registry` and `trace` (both optional) receive fault events; they
  /// must outlive the injector.
  explicit FaultInjector(FaultPlan plan,
                         obs::MetricsRegistry* registry = nullptr,
                         obs::TraceRecorder* trace = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  bool engine_enabled() const { return plan_.engine.enabled(); }
  bool serve_enabled() const { return plan_.serve.enabled(); }

  /// Attaches (or detaches, with nullptr) a flight recorder that receives
  /// one kFault event per injection. The recorder must stay alive until
  /// detached — the Fabric attaches its own in its constructor and
  /// detaches it on destruction.
  void set_flight_recorder(obs::FlightRecorder* flight) {
    flight_.store(flight, std::memory_order_release);
  }

  // ------------------------------------------------------------- engine --

  /// Query-level faults, fixed for a (plan.seed, query_hash) pair.
  struct QueryFaults {
    double cpu_multiplier = 1.0;      ///< straggler node gates every barrier
    int failed_nodes = 0;             ///< work re-partitioned over survivors
    double repartition_seconds = 0.0; ///< one-time failover cost
    double work_mem_multiplier = 1.0; ///< buffer-pool pressure
    uint64_t op_seed = 0;             ///< stream seed for per-op decisions
    bool any() const {
      return cpu_multiplier != 1.0 || failed_nodes > 0 ||
             work_mem_multiplier != 1.0;
    }
  };

  /// Operator-level faults within a query, keyed by the operator's visit
  /// ordinal. Deterministic for (QueryFaults.op_seed, op_index).
  struct OpFaults {
    double io_multiplier = 1.0;  ///< disk stall
    double message_loss = 0.0;   ///< fraction of messages retransmitted
  };

  /// Samples (and records) the query-level faults for one simulated query.
  /// Never blocks; safe from any thread.
  QueryFaults SampleQuery(uint64_t query_hash, int nodes_used) const;

  /// Samples (and records) operator-level faults. `op_index` is the
  /// operator's ordinal in plan visit order; `net_messages` the operator's
  /// message count (loss only applies to operators that move messages).
  OpFaults SampleOp(const QueryFaults& q, size_t op_index,
                    double net_messages) const;

  // -------------------------------------------------------------- serve --

  /// One decision per submit attempt: true = refuse this attempt as if the
  /// queue were saturated. Consumes the next submit-attempt index.
  bool NextSubmitReject();

  struct BatchFaults {
    double stall_seconds = 0.0;  ///< virtual age added to the whole batch
    bool swap_registry = false;  ///< fire the swap hook mid-batch
  };

  /// One decision per micro-batch; consumes the next batch index.
  BatchFaults NextBatchFaults();

  /// Called by the serving worker when a batch decision says swap; invokes
  /// the hook (set by the harness to publish a new model generation).
  void FireRegistrySwap();
  void set_registry_swap_hook(std::function<void()> hook);

  // -------------------------------------------------------------- shard --

  /// One decision per request routed to `shard` by a ShardRouter: true
  /// exactly once, when the plan's target shard has seen its configured
  /// Nth routed request (a counted decision — deterministic under
  /// sequential driving, and independent of the seed). Calls for
  /// non-target shards return false without consuming the counter.
  bool NextShardKill(const std::string& shard);

  /// Called by the router when NextShardKill said kill; invokes the hook
  /// (typically ShardRouter's default hook, which unpublishes the target
  /// shard's registry) and records the injection.
  void FireShardKill();
  void set_shard_kill_hook(std::function<void()> hook);

  /// One decision per micro-batch picked up by a worker of `shard`; only
  /// the plan's target shard ever stalls (stall_seconds; swap_registry is
  /// never set here). Consumes the target shard's batch index.
  BatchFaults NextShardBatchFaults(const std::string& shard);

  // ------------------------------------------------------------- replica --

  /// One decision per fabric pick of the replica labeled `label`
  /// ("group#index"): true exactly once, when the plan's target replica
  /// has been picked its configured Nth time (counted, like
  /// NextShardKill). Calls for non-target replicas return false without
  /// consuming the counter.
  bool NextReplicaKill(const std::string& label);

  /// Called by the fabric when NextReplicaKill said kill; invokes the hook
  /// (typically Fabric's default hook: mark the replica dead and unpublish
  /// its registry) and records the injection.
  void FireReplicaKill();
  void set_replica_kill_hook(std::function<void()> hook);

  /// One decision per micro-batch picked up by the replica labeled
  /// `label`; only the plan's target replica ever stalls. Consumes the
  /// target replica's batch index.
  BatchFaults NextReplicaBatchFaults(const std::string& label);

  // ----------------------------------------------------------- lifecycle --

  /// One decision per registered lifecycle candidate: the prediction
  /// multiplier the candidate's shadow lane must apply (1.0 = clean,
  /// plan.serve.model_poison_multiplier = poisoned). Consumes the next
  /// candidate index; records a model_poison injection when poisoned.
  double NextModelPoison();

  // ------------------------------------------------------ introspection --

  /// Total injected faults by kind, independent of any registry (the chaos
  /// report's deterministic fault-schedule digest feeds on these).
  uint64_t injected(const char* kind) const;
  uint64_t total_injected() const;

 private:
  // Decision-stream tags: each fault point hashes its own tag into the
  // seed so streams never correlate.
  enum Tag : uint64_t {
    kTagDiskStall = 0x9E3779B97F4A7C15ull,
    kTagMsgLoss = 0xBF58476D1CE4E5B9ull,
    kTagSlowdown = 0x94D049BB133111EBull,
    kTagNodeFail = 0xD6E8FEB86659FD93ull,
    kTagBufPressure = 0xA5A5A5A5A5A5A5A5ull,
    kTagSubmit = 0xC2B2AE3D27D4EB4Full,
    kTagStall = 0x165667B19E3779F9ull,
    kTagSwap = 0x27D4EB2F165667C5ull,
    kTagShardStall = 0x2545F4914F6CDD1Dull,
    kTagReplicaStall = 0x8EBC6AF09C88C6E3ull,
    kTagPoison = 0x589965CC75374CC3ull,
  };

  struct Kind {
    const char* name;
    std::atomic<uint64_t> count{0};
    obs::Counter* counter = nullptr;  // resolved once in the constructor
  };
  enum KindIndex {
    kDiskStall = 0,
    kMsgLoss,
    kNodeSlowdown,
    kNodeFailure,
    kBufferPressure,
    kSubmitReject,
    kWorkerStall,
    kRegistrySwap,
    kShardKill,
    kShardStall,
    kReplicaKill,
    kReplicaStall,
    kModelPoison,
    kNumKinds,
  };

  /// Deterministic uniform draw for (tag, index) under this plan's seed.
  double Draw(uint64_t tag, uint64_t index) const;
  void Record(KindIndex kind, const char* detail = nullptr) const;

  const FaultPlan plan_;
  obs::TraceRecorder* const trace_;
  std::atomic<obs::FlightRecorder*> flight_{nullptr};
  mutable Kind kinds_[kNumKinds];
  std::atomic<uint64_t> submit_seq_{0};
  std::atomic<uint64_t> batch_seq_{0};
  // Shard-targeted streams: only calls naming the plan's target shard
  // consume these, so one shard's schedule is unaffected by its peers.
  std::atomic<uint64_t> shard_route_seq_{0};
  std::atomic<uint64_t> shard_batch_seq_{0};
  // Replica-targeted streams, keyed the same way one level down.
  std::atomic<uint64_t> replica_pick_seq_{0};
  std::atomic<uint64_t> replica_batch_seq_{0};
  // Lifecycle stream: one poison decision per registered candidate.
  std::atomic<uint64_t> candidate_seq_{0};
  std::mutex hook_mu_;
  std::function<void()> swap_hook_;
  std::function<void()> shard_kill_hook_;
  std::function<void()> replica_kill_hook_;
};

}  // namespace qpp::fault
