#include "fault/fault_injector.h"

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"
#include "obs/request_context.h"

namespace qpp::fault {

namespace {
const char* kKindNames[] = {
    "disk_stall",     "message_loss", "node_slowdown", "node_failure",
    "buffer_pressure", "submit_reject", "worker_stall",  "registry_swap",
    "shard_kill",     "shard_stall",  "replica_kill",  "replica_stall",
    "model_poison",
};
const char* kKindLayers[] = {
    "engine", "engine", "engine", "engine",   "engine",  "serve",
    "serve",  "serve",  "shard",  "shard",    "replica", "replica",
    "lifecycle",
};
}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, obs::MetricsRegistry* registry,
                             obs::TraceRecorder* trace)
    : plan_(std::move(plan)), trace_(trace) {
  for (int k = 0; k < kNumKinds; ++k) {
    kinds_[k].name = kKindNames[k];
    if (registry != nullptr) {
      kinds_[k].counter = registry->GetCounter(
          "qpp_fault_injected_total",
          {{"layer", kKindLayers[k]}, {"kind", kKindNames[k]}});
    }
  }
}

double FaultInjector::Draw(uint64_t tag, uint64_t index) const {
  // One throwaway Rng per decision: decisions are keyed purely by
  // (seed, tag, index), never by draw order, so replay is exact under any
  // interleaving of callers.
  Rng rng(SplitMix64(plan_.seed ^ tag ^ SplitMix64(index)));
  return rng.NextDouble();
}

void FaultInjector::Record(KindIndex kind, const char* detail) const {
  kinds_[kind].count.fetch_add(1, std::memory_order_relaxed);
  if (kinds_[kind].counter != nullptr) kinds_[kind].counter->Inc();
  if (obs::FlightRecorder* flight =
          flight_.load(std::memory_order_acquire)) {
    // trace_id 0 falls back to the installed RequestContext inside Record,
    // so request-triggered faults land in the black box with their id.
    flight->Record(obs::FlightEventKind::kFault, /*trace_id=*/0,
                   static_cast<int32_t>(kind), 0.0,
                   detail != nullptr ? std::string_view(detail)
                                     : std::string_view(kinds_[kind].name));
  }
  if (trace_ != nullptr) {
    obs::TraceEvent e;
    e.phase = 'i';
    e.name = kinds_[kind].name;
    e.category = "fault";
    e.pid = obs::TraceRecorder::kServicePid;
    e.tid = trace_->CurrentThreadTid();
    e.ts_us = trace_->NowMicros();
    if (detail != nullptr) {
      e.args.emplace_back("detail", std::string("\"") + detail + "\"");
    }
    const obs::RequestContext& ctx = obs::CurrentRequestContext();
    if (ctx.valid()) {
      e.args.emplace_back(
          "trace_id", "\"" + obs::TraceIdHex(ctx.trace_id) + "\"");
    }
    trace_->Add(std::move(e));
  }
}

FaultInjector::QueryFaults FaultInjector::SampleQuery(uint64_t query_hash,
                                                      int nodes_used) const {
  QueryFaults q;
  q.op_seed = SplitMix64(plan_.seed ^ query_hash);
  const EngineFaultSpec& spec = plan_.engine;
  if (!spec.enabled()) return q;
  if (spec.node_slowdown_probability > 0.0 &&
      Draw(kTagSlowdown, query_hash) < spec.node_slowdown_probability) {
    q.cpu_multiplier = std::max(1.0, spec.node_slowdown_multiplier);
    Record(kNodeSlowdown);
  }
  if (spec.node_failure_probability > 0.0 &&
      Draw(kTagNodeFail, query_hash) < spec.node_failure_probability) {
    // Fail 1..max nodes but always leave a survivor.
    const int cap = std::min(spec.max_failed_nodes, nodes_used - 1);
    if (cap >= 1) {
      const uint64_t extra =
          static_cast<uint64_t>(Draw(kTagNodeFail, ~query_hash) * cap);
      q.failed_nodes = 1 + static_cast<int>(std::min<uint64_t>(
                               extra, static_cast<uint64_t>(cap - 1)));
      q.repartition_seconds = std::max(0.0, spec.repartition_seconds);
      Record(kNodeFailure);
    }
  }
  if (spec.buffer_pressure_probability > 0.0 &&
      Draw(kTagBufPressure, query_hash) < spec.buffer_pressure_probability) {
    q.work_mem_multiplier =
        std::clamp(spec.work_mem_multiplier, 1e-3, 1.0);
    Record(kBufferPressure);
  }
  return q;
}

FaultInjector::OpFaults FaultInjector::SampleOp(const QueryFaults& q,
                                                size_t op_index,
                                                double net_messages) const {
  OpFaults op;
  const EngineFaultSpec& spec = plan_.engine;
  if (!spec.enabled()) return op;
  if (spec.disk_stall_probability > 0.0 &&
      Draw(kTagDiskStall, q.op_seed ^ op_index) <
          spec.disk_stall_probability) {
    op.io_multiplier = std::max(1.0, spec.disk_stall_multiplier);
    Record(kDiskStall);
  }
  if (spec.message_loss_rate > 0.0 && net_messages > 0.0) {
    // Message loss is a rate, not a coin flip: every operator that moves
    // messages loses the configured fraction and pays the retransmit cost.
    op.message_loss = std::clamp(spec.message_loss_rate, 0.0, 1.0);
    Record(kMsgLoss);
  }
  return op;
}

bool FaultInjector::NextSubmitReject() {
  const ServeFaultSpec& spec = plan_.serve;
  if (spec.submit_reject_probability <= 0.0) return false;
  const uint64_t i = submit_seq_.fetch_add(1, std::memory_order_relaxed);
  if (Draw(kTagSubmit, i) < spec.submit_reject_probability) {
    Record(kSubmitReject);
    return true;
  }
  return false;
}

FaultInjector::BatchFaults FaultInjector::NextBatchFaults() {
  BatchFaults out;
  const ServeFaultSpec& spec = plan_.serve;
  if (!spec.enabled()) return out;
  const uint64_t i = batch_seq_.fetch_add(1, std::memory_order_relaxed);
  if (spec.worker_stall_probability > 0.0 &&
      Draw(kTagStall, i) < spec.worker_stall_probability) {
    out.stall_seconds = std::max(0.0, spec.worker_stall_seconds);
    Record(kWorkerStall);
  }
  if (spec.registry_swap_probability > 0.0 &&
      Draw(kTagSwap, i) < spec.registry_swap_probability) {
    out.swap_registry = true;
    // Recorded in FireRegistrySwap, when the swap actually happens.
  }
  return out;
}

void FaultInjector::FireRegistrySwap() {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    hook = swap_hook_;
  }
  if (hook) {
    Record(kRegistrySwap);
    hook();
  }
}

void FaultInjector::set_registry_swap_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  swap_hook_ = std::move(hook);
}

bool FaultInjector::NextShardKill(const std::string& shard) {
  const ServeFaultSpec& spec = plan_.serve;
  if (spec.shard_kill_after_requests == 0 || shard != spec.target_shard) {
    return false;
  }
  // Counted, not sampled: the (spec.shard_kill_after_requests)-th request
  // routed to the target shard is the one that kills it.
  return shard_route_seq_.fetch_add(1, std::memory_order_relaxed) + 1 ==
         spec.shard_kill_after_requests;
}

void FaultInjector::FireShardKill() {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    hook = shard_kill_hook_;
  }
  if (hook) {
    Record(kShardKill, plan_.serve.target_shard.c_str());
    hook();
  }
}

void FaultInjector::set_shard_kill_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  shard_kill_hook_ = std::move(hook);
}

FaultInjector::BatchFaults FaultInjector::NextShardBatchFaults(
    const std::string& shard) {
  BatchFaults out;
  const ServeFaultSpec& spec = plan_.serve;
  if (spec.shard_stall_probability <= 0.0 || shard != spec.target_shard) {
    return out;
  }
  const uint64_t i = shard_batch_seq_.fetch_add(1, std::memory_order_relaxed);
  if (Draw(kTagShardStall, i) < spec.shard_stall_probability) {
    out.stall_seconds = std::max(0.0, spec.shard_stall_seconds);
    Record(kShardStall, spec.target_shard.c_str());
  }
  return out;
}

bool FaultInjector::NextReplicaKill(const std::string& label) {
  const ServeFaultSpec& spec = plan_.serve;
  if (spec.replica_kill_after_picks == 0 ||
      label != spec.target_replica_label) {
    return false;
  }
  // Counted, not sampled: the (spec.replica_kill_after_picks)-th pick of
  // the target replica is the one that kills it.
  return replica_pick_seq_.fetch_add(1, std::memory_order_relaxed) + 1 ==
         spec.replica_kill_after_picks;
}

void FaultInjector::FireReplicaKill() {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    hook = replica_kill_hook_;
  }
  if (hook) {
    Record(kReplicaKill, plan_.serve.target_replica_label.c_str());
    hook();
  }
}

void FaultInjector::set_replica_kill_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  replica_kill_hook_ = std::move(hook);
}

FaultInjector::BatchFaults FaultInjector::NextReplicaBatchFaults(
    const std::string& label) {
  BatchFaults out;
  const ServeFaultSpec& spec = plan_.serve;
  if (spec.replica_stall_probability <= 0.0 ||
      label != spec.target_replica_label) {
    return out;
  }
  const uint64_t i =
      replica_batch_seq_.fetch_add(1, std::memory_order_relaxed);
  if (Draw(kTagReplicaStall, i) < spec.replica_stall_probability) {
    out.stall_seconds = std::max(0.0, spec.replica_stall_seconds);
    Record(kReplicaStall, spec.target_replica_label.c_str());
  }
  return out;
}

double FaultInjector::NextModelPoison() {
  const ServeFaultSpec& spec = plan_.serve;
  if (spec.model_poison_probability <= 0.0) return 1.0;
  const uint64_t i = candidate_seq_.fetch_add(1, std::memory_order_relaxed);
  if (Draw(kTagPoison, i) < spec.model_poison_probability) {
    Record(kModelPoison);
    return std::max(1.0, spec.model_poison_multiplier);
  }
  return 1.0;
}

uint64_t FaultInjector::injected(const char* kind) const {
  for (int k = 0; k < kNumKinds; ++k) {
    if (std::string(kinds_[k].name) == kind) {
      return kinds_[k].count.load(std::memory_order_relaxed);
    }
  }
  QPP_CHECK_MSG(false, "unknown fault kind: " << kind);
  return 0;
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (int k = 0; k < kNumKinds; ++k) {
    total += kinds_[k].count.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace qpp::fault
