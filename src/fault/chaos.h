// The seeded chaos harness: named fault scenarios with asserted
// invariants, runnable from tests (tests/chaos_test.cpp) and from the CLI
// (`qpp_tool chaos`).
//
// Each scenario builds a real slice of the system — the execution
// simulator over a generated workload, or a live PredictionService with a
// trained model — attaches a FaultInjector with a scenario-specific
// FaultPlan, drives traffic, and checks the resilience contracts:
//
//   node-death      engine: node failures + stragglers; metrics stay
//                   deterministic per seed, faulted runs are never faster
//                   than clean ones, a disabled injector is bit-identical
//                   to no injector at all.
//   fallback-storm  serve: worker stalls blow request deadlines; every
//                   late request gets the labeled deadline fallback, the
//                   circuit breaker trips and recovers via half-open
//                   probes, and the drift monitor notices the degradation.
//   hot-swap        serve: the registry is swapped right after workers
//                   snapshot their model; every response still bit-matches
//                   the generation it reports and the cache never serves a
//                   retired generation.
//   backpressure    serve: submit-reject storms; SubmitWithRetry never
//                   yields a broken future and the stats accounting
//                   identity (requests == cache + model + fallbacks)
//                   holds exactly.
//   shard-isolation shard: the feather expert is stalled and then killed
//                   mid-run under a ShardRouter; golf/bowling answers stay
//                   bit-identical to their experts, feather traffic is
//                   absorbed by the one-model shard, zero requests lost.
//   rolling-drain   fabric: one replica of the feather group is stalled
//                   and then killed while the golf group is drain-swapped
//                   replica by replica; the surviving peers absorb the
//                   load inside the group (exactly one request escalates —
//                   the killing pick itself), every healthy answer stays
//                   bit-identical to its expert, zero requests lost.
//   model-lifecycle lifecycle: candidates (some poisoned by the
//                   model_poison fault) shadow a weak champion behind a
//                   live PredictionService; poisoned candidates are never
//                   promoted (zero poisoned predictions reach clients), a
//                   clean challenger is promoted, a mid-probation actuals
//                   shift trips the SloEngine watchdog into rollback, and
//                   a second clean challenger is promoted and confirmed.
//                   Every response bit-matches the generation's model and
//                   the decision log replays byte-for-byte per seed.
//
// Scenario traffic is driven sequentially (one request in flight), so the
// injected fault schedule AND the resulting report are bit-replayable:
// running the same scenario twice with the same options yields the same
// report string. Reports therefore contain only deterministic data —
// counters, fault digests, metric sums — never wall-clock latencies.
//
// RunChaosSoak is the exception: it drives concurrent clients under a
// randomized FaultPlan for volume, so only the invariants (not the report
// bytes) are stable. It is gated behind QPP_SOAK=1 in the test suite.
//
// RunFabricSoak is the capacity-scale variant for qpp::fabric: a
// sequentially driven, fully deterministic soak sized for >= 1M requests.
// It combines admission-control load waves (virtual LoadSignal keyed by
// request index), a counted replica kill, probabilistic replica stalls,
// and rolling drain-swap-revive operations, and checks the whole fabric
// contract — bit-identity, labeled degradations, counter accounting, and
// a wall-clock p99 SLO under chaos. Its report and counters are
// byte-replayable per seed (CI diffs two same-seed runs), while the p99
// check is an invariant only and never enters the report.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"

namespace qpp::fault {

struct ChaosOptions {
  uint64_t seed = 42;
  /// Requests driven through the service in serve scenarios (and the soak).
  size_t requests = 400;
  /// Queries simulated in engine scenarios.
  size_t queries = 24;
  /// When set, replaces the scenario's built-in FaultPlan (replay support:
  /// `qpp_tool chaos --plan file`). The plan's own seed is used as-is.
  bool has_plan_override = false;
  FaultPlan plan_override;
};

struct ScenarioResult {
  std::string name;
  /// Deterministic multi-line report (counters, fault digest, metric sums).
  std::string report;
  /// Human-readable invariant violations; empty on success.
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

/// The scenario names, in canonical order.
const std::vector<std::string>& ChaosScenarioNames();

/// The FaultPlan a scenario runs under (before any override); exposed so
/// `qpp_tool chaos --save-plan` can ship a schedule for replay.
FaultPlan ChaosScenarioPlan(const std::string& name, uint64_t seed);

/// A moderate-everything randomized plan, derived from `seed` (soak mode).
FaultPlan RandomFaultPlan(uint64_t seed);

/// Runs one named scenario. Unknown names yield a result with a violation
/// (never a crash), so the CLI can report them uniformly.
ScenarioResult RunChaosScenario(const std::string& name,
                                const ChaosOptions& options);

/// High-volume concurrent soak under RandomFaultPlan(seed): checks the
/// accounting identities and the no-broken-future contract, not report
/// determinism.
ScenarioResult RunChaosSoak(const ChaosOptions& options);

/// The fabric soak's outcome: the usual deterministic scenario report plus
/// the headline counters as a flat name -> value list, in a fixed order,
/// so the CLI can emit a byte-replayable JSON artifact for CI.
struct FabricSoakResult {
  ScenarioResult scenario;
  std::vector<std::pair<std::string, double>> counters;
};

/// Deterministic capacity soak over qpp::fabric (see the file comment).
/// Sized for options.requests >= 1M on manual CI dispatch; needs at least
/// a few thousand requests for the counted replica kill to fire.
FabricSoakResult RunFabricSoak(const ChaosOptions& options);

/// The model-lifecycle scenario's outcome: the deterministic report (which
/// embeds the full promotion/rollback decision log — CI byte-diffs it)
/// plus the headline lifecycle counters as a flat name -> value list for
/// the golden-metrics JSON artifact (tests/golden/lifecycle.json).
struct LifecycleChaosResult {
  ScenarioResult scenario;
  std::vector<std::pair<std::string, double>> counters;
};

/// Runs the closed-loop lifecycle scenario (see the file comment). Mostly
/// self-sizing: candidate registrations adapt to the seed's poison draws,
/// so any seed exercises reject + promote + rollback + confirm.
LifecycleChaosResult RunLifecycleChaos(const ChaosOptions& options);

/// The observability flight demo's outcome: the usual deterministic
/// scenario report plus the three black-box artifacts the run produced.
/// `flight_dump` and `prometheus_text` are byte-identical across same-seed
/// runs (CI diffs them); `trace_json` carries wall-clock timestamps, but
/// which spans exist and which trace ids tag them replays exactly.
struct ObsFlightDemoResult {
  ScenarioResult scenario;
  /// Flight-recorder DumpJson captured the moment the first SLO window
  /// closed breaching — the black box as of the failure.
  std::string flight_dump;
  /// Chrome trace of the whole run (load in ui.perfetto.dev; search for
  /// the breach trace id to see the request's span chain).
  std::string trace_json;
  /// Prometheus exposition of the fabric registry: qpp_fabric_*, the
  /// demo latency histogram with trace-id exemplars, and the SLO engine's
  /// qpp_slo_* self-metrics.
  std::string prometheus_text;
  /// The request whose tick closed the first breaching window.
  uint64_t breach_trace_id = 0;
};

/// Drives a small traced fabric through deterministic overload waves with
/// an SloEngine judging seed-derived synthetic latencies, so an SLO breach
/// is *guaranteed* and everything observability promises can be asserted:
/// trace-id propagation front door to span chain, the flight dump at the
/// breach, alert accounting, and the Prometheus exposition. Needs
/// options.requests >= 512 (the default 400 is rounded up by callers).
ObsFlightDemoResult RunObsFlightDemo(const ChaosOptions& options);

}  // namespace qpp::fault
