// The shadow lane's seam into the serving hot path.
//
// A ShadowObserver sees every model-answered response (model or cache
// source — never fallbacks) just before the client future resolves: the
// exact feature vector, the served prediction bits, and the generation
// that answered. lifecycle::LifecycleManager implements it to compute and
// score challenger predictions against the same traffic without ever
// touching what the client receives (docs/LIFECYCLE.md).
//
// This interface lives in serve/ (not lifecycle/) so the dependency points
// one way: the service knows only this abstract hook, the lifecycle layer
// knows the service. The callback runs on the answering worker thread with
// the request's obs::RequestContext installed, so anything the observer
// records (flight events, trace instants, counters) attributes to the
// request; implementations must be thread-safe and must not Submit back
// into the observed service.
#pragma once

#include <cstdint>

#include "core/predictor.h"
#include "linalg/matrix.h"

namespace qpp::serve {

class ShadowObserver {
 public:
  virtual ~ShadowObserver() = default;

  /// One model-path (or cache-hit) response about to be delivered.
  /// `served` is the exact prediction the client gets; `generation` the
  /// registry generation that produced it; `trace_id` the request's
  /// correlation id (0 = none).
  virtual void OnServedPrediction(const linalg::Vector& features,
                                  const core::Prediction& served,
                                  uint64_t generation, uint64_t trace_id) = 0;
};

}  // namespace qpp::serve
