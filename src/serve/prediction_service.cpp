#include "serve/prediction_service.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/check.h"
#include "serve/shadow_observer.h"

namespace qpp::serve {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

const char* ResponseSourceName(ResponseSource s) {
  switch (s) {
    case ResponseSource::kModel: return "model";
    case ResponseSource::kCache: return "cache";
    case ResponseSource::kOptimizerFallback: return "optimizer-cost";
  }
  return "?";
}

size_t PredictionService::FeatureHash::operator()(
    const linalg::Vector& v) const {
  // FNV-1a over the raw double bit patterns: exact-match semantics, and
  // +0.0 vs -0.0 hashing apart is fine (equal_to would match them, but a
  // spurious miss only costs a model call).
  uint64_t h = 1469598103934665603ull;
  for (const double d : v) {
    h ^= std::bit_cast<uint64_t>(d);
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

PredictionService::PredictionService(ModelRegistry* registry,
                                     ServiceConfig config,
                                     CostCalibration calibration)
    : registry_(registry),
      config_(config),
      calibration_(calibration),
      queue_(config.queue_capacity),
      breaker_(config.breaker),
      cache_(config.cache_capacity) {
  QPP_CHECK(registry_ != nullptr);
  QPP_CHECK(config_.num_workers >= 1 && config_.max_batch >= 1);
  workers_.reserve(config_.num_workers);
  for (size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

PredictionService::~PredictionService() { Shutdown(); }

std::future<ServeResponse> PredictionService::Submit(ServeRequest request) {
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued_at = std::chrono::steady_clock::now();
  std::future<ServeResponse> future = pending.promise.get_future();
  if (!queue_.Push(std::move(pending))) {
    // Lost the race with Shutdown(): answer directly instead of dropping.
    stats_.RecordFallbackShutdown();
    Respond(&pending,
            FallbackPrediction(calibration_, pending.request.optimizer_cost,
                               /*anomalous=*/false),
            ResponseSource::kOptimizerFallback, "shutdown",
            /*generation=*/0);
  }
  return future;
}

bool PredictionService::TrySubmit(ServeRequest request,
                                  std::future<ServeResponse>* out) {
  QPP_CHECK(out != nullptr);
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  if (!TrySubmitWithPromise(std::move(request), &promise)) return false;
  *out = std::move(future);
  return true;
}

bool PredictionService::TrySubmitWithPromise(
    ServeRequest request, std::promise<ServeResponse>* promise) {
  QPP_CHECK(promise != nullptr);
  if (config_.faults != nullptr && config_.faults->serve_enabled() &&
      config_.faults->NextSubmitReject()) {
    // Injected queue-full storm: indistinguishable from the real thing.
    stats_.RecordRejected();
    return false;
  }
  Pending pending;
  pending.request = std::move(request);
  pending.promise = std::move(*promise);
  pending.enqueued_at = std::chrono::steady_clock::now();
  if (!queue_.TryPush(std::move(pending))) {
    // TryPush refuses without consuming; hand the promise back intact.
    *promise = std::move(pending.promise);
    stats_.RecordRejected();
    return false;
  }
  return true;
}

std::future<ServeResponse> PredictionService::SubmitWithRetry(
    ServeRequest request) {
  return SubmitWithRetry(std::move(request), config_.retry);
}

std::future<ServeResponse> PredictionService::SubmitWithRetry(
    ServeRequest request, const RetryPolicy& policy) {
  QPP_CHECK(policy.max_attempts >= 1);
  double backoff = std::max(0.0, policy.initial_backoff_seconds);
  for (int attempt = 0;; ++attempt) {
    std::future<ServeResponse> future;
    if (TrySubmit(request, &future)) return future;
    if (attempt + 1 >= policy.max_attempts) break;
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    backoff = std::min(backoff * policy.backoff_multiplier,
                       policy.max_backoff_seconds);
  }
  // Every attempt refused: degrade inline instead of handing back an error.
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued_at = std::chrono::steady_clock::now();
  std::future<ServeResponse> future = pending.promise.get_future();
  stats_.RecordFallbackOverload();
  Respond(&pending,
          FallbackPrediction(calibration_, pending.request.optimizer_cost,
                             /*anomalous=*/false),
          ResponseSource::kOptimizerFallback, "overload",
          /*generation=*/0);
  return future;
}

void PredictionService::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    queue_.Close();
    for (std::thread& w : workers_) w.join();
  });
}

void PredictionService::WorkerLoop() {
  std::vector<Pending> batch;
  WorkerScratch scratch;
  while (true) {
    batch.clear();
    const size_t taken = queue_.PopBatch(config_.max_batch, &batch);
    if (taken == 0) return;  // closed and drained
    stats_.RecordBatch(taken);
    ProcessBatch(&batch, &scratch);
  }
}

void PredictionService::ProcessBatch(std::vector<Pending>* batch,
                                     WorkerScratch* scratch) {
  obs::TraceRecorder* const trace = config_.trace;
  // Request-scoped correlation: a single-request batch (the shape every
  // deterministic harness drives) installs its context for the whole
  // batch, so every span below — the predictor's internal stages included
  // — auto-tags with the trace id. Multi-request batches share the stage
  // spans by construction; those get the id list on the batch span below
  // and exact per-request ids on the queue_wait events and responses.
  obs::ScopedRequestContext batch_ctx(batch->size() == 1
                                          ? (*batch)[0].request.ctx
                                          : obs::RequestContext{});
  obs::Span batch_span(trace, "batch");
  batch_span.AddArg("size", static_cast<uint64_t>(batch->size()));
  if (trace != nullptr && batch->size() > 1) {
    std::string ids;
    for (const Pending& p : *batch) {
      if (!p.request.ctx.valid()) continue;
      if (!ids.empty()) ids += ',';
      ids += obs::TraceIdHex(p.request.ctx.trace_id);
    }
    if (!ids.empty()) batch_span.AddArg("trace_ids", ids.c_str());
  }

  const ModelRegistry::Snapshot snap = registry_->Acquire();

  // Batch-level fault hooks. The registry swap fires AFTER the snapshot
  // was acquired — the hardest timing for the hot-swap contract, since the
  // whole batch must still answer (and cache) under the generation it
  // grabbed, never a blend. The worker stall is applied as *virtual* queue
  // age so deadline behavior is deterministic under replay; a token real
  // sleep (capped at 1ms) keeps the stall visible in wall-clock traces
  // without making the test suite slow.
  double virtual_age = 0.0;
  if (config_.faults != nullptr && config_.faults->serve_enabled()) {
    const fault::FaultInjector::BatchFaults bf =
        config_.faults->NextBatchFaults();
    if (bf.swap_registry) config_.faults->FireRegistrySwap();
    if (bf.stall_seconds > 0.0) {
      virtual_age = bf.stall_seconds;
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(bf.stall_seconds, 0.001)));
    }
    if (!config_.shard_label.empty()) {
      // Shard-targeted stall: only fires on the service whose label the
      // plan names, so chaos can slow one expert while its peers run clean.
      const fault::FaultInjector::BatchFaults sf =
          config_.faults->NextShardBatchFaults(config_.shard_label);
      if (sf.stall_seconds > 0.0) {
        virtual_age += sf.stall_seconds;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(sf.stall_seconds, 0.001)));
      }
      // Replica-targeted stall: same mechanism one level down — the plan
      // names a single "group#index" replica label, so chaos can slow one
      // replica while its group peers absorb the traffic.
      const fault::FaultInjector::BatchFaults rf =
          config_.faults->NextReplicaBatchFaults(config_.shard_label);
      if (rf.stall_seconds > 0.0) {
        virtual_age += rf.stall_seconds;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(rf.stall_seconds, 0.001)));
      }
    }
  }

  const auto picked_up_at = std::chrono::steady_clock::now();

  if (trace != nullptr) {
    // Queue-wait intervals: begun at Submit() on a client thread, ended at
    // pickup here. Emitted as async begin/end pairs — unlike complete
    // spans, overlapping waits from concurrent requests render correctly.
    for (const Pending& p : *batch) {
      const uint64_t id = trace->NextAsyncId();
      const uint32_t tid = trace->CurrentThreadTid();
      obs::TraceEvent b;
      b.phase = 'b';
      b.name = "queue_wait";
      b.category = "serve";
      b.pid = obs::TraceRecorder::kServicePid;
      b.tid = tid;
      b.ts_us = trace->MicrosAt(p.enqueued_at);
      b.id = id;
      if (p.request.ctx.valid()) {
        b.args.emplace_back(
            "trace_id",
            "\"" + obs::TraceIdHex(p.request.ctx.trace_id) + "\"");
      }
      trace->Add(std::move(b));
      obs::TraceEvent e;
      e.phase = 'e';
      e.name = "queue_wait";
      e.category = "serve";
      e.pid = obs::TraceRecorder::kServicePid;
      e.tid = tid;
      e.ts_us = trace->MicrosAt(picked_up_at);
      e.id = id;
      trace->Add(std::move(e));
    }
  }

  // Pass 1: deadline policy and cache probes; collect the model's work.
  // The collection vectors live in the worker's scratch: cleared (capacity
  // kept), not reconstructed, every batch.
  std::vector<size_t>& miss_indices = scratch->miss_indices;
  std::vector<linalg::Vector>& miss_features = scratch->miss_features;
  miss_indices.clear();
  miss_features.clear();
  {
  obs::Span cache_span(trace, "cache_lookup");
  for (size_t i = 0; i < batch->size(); ++i) {
    Pending& p = (*batch)[i];
    const double deadline = p.request.deadline_seconds > 0.0
                                ? p.request.deadline_seconds
                                : config_.queue_deadline_seconds;
    if (deadline > 0.0 &&
        SecondsSince(p.enqueued_at, picked_up_at) + virtual_age > deadline) {
      stats_.RecordFallbackDeadline();
      // A blown deadline is the predictor path failing its budget — this
      // is what the breaker watches.
      if (config_.breaker.enabled) breaker_.RecordFailure();
      Respond(&p,
              FallbackPrediction(calibration_, p.request.optimizer_cost,
                                 /*anomalous=*/false),
              ResponseSource::kOptimizerFallback, "deadline",
              snap.generation);
      continue;
    }
    if (!snap.valid()) {
      stats_.RecordFallbackNoModel();
      Respond(&p,
              FallbackPrediction(calibration_, p.request.optimizer_cost,
                                 /*anomalous=*/false),
              ResponseSource::kOptimizerFallback, "no-model",
              /*generation=*/0);
      continue;
    }
    if (config_.breaker.enabled && !breaker_.AllowRequest()) {
      stats_.RecordFallbackCircuitOpen();
      Respond(&p,
              FallbackPrediction(calibration_, p.request.optimizer_cost,
                                 /*anomalous=*/false),
              ResponseSource::kOptimizerFallback, "circuit-open",
              snap.generation);
      continue;
    }
    if (config_.cache_capacity > 0) {
      CachedPrediction cached;
      bool hit;
      {
        std::lock_guard<std::mutex> lock(cache_mu_);
        hit = cache_.Get(p.request.features, &cached);
      }
      // Entries from a retired model generation are treated as misses and
      // overwritten below, so a hot-swap can never serve stale results.
      if (hit && cached.generation == snap.generation) {
        stats_.RecordCacheHit();
        if (config_.breaker.enabled) breaker_.RecordSuccess();
        Respond(&p, std::move(cached.prediction), ResponseSource::kCache,
                "", snap.generation);
        continue;
      }
    }
    miss_indices.push_back(i);
    miss_features.push_back(p.request.features);
  }
  }  // cache_span
  if (miss_indices.empty()) return;

  // Pass 2: one batched prediction for everything the cache did not cover,
  // through the query-blocked zero-allocation entry point with this
  // worker's warmed scratch. PredictBatchInto is bit-identical to
  // per-query Predict, so batching never changes an answer (tracing
  // doesn't either — it only wraps the stages).
  std::vector<core::Prediction>& predictions = scratch->predictions;
  {
    obs::Span predict_span(trace, "predict");
    predict_span.AddArg("misses", static_cast<uint64_t>(miss_indices.size()));
    predict_span.AddArg("generation", snap.generation);
    snap.model->PredictBatchInto(miss_features, &scratch->predict,
                                 &predictions, trace);
  }
  obs::Span respond_span(trace, "respond");
  for (size_t j = 0; j < miss_indices.size(); ++j) {
    Pending& p = (*batch)[miss_indices[j]];
    const core::Prediction& prediction = predictions[j];
    if (prediction.anomalous && config_.fallback_on_anomalous) {
      // The model says "this query is far from everything I trained on";
      // answering with the optimizer baseline (labeled) beats answering
      // with a number the paper shows is untrustworthy there. Anomalous
      // predictions are not cached: they are rare, and the cache only
      // holds what was actually served as a model answer.
      stats_.RecordFallbackAnomalous();
      Respond(&p,
              FallbackPrediction(calibration_, p.request.optimizer_cost,
                                 /*anomalous=*/true),
              ResponseSource::kOptimizerFallback, "anomalous",
              snap.generation);
      continue;
    }
    if (config_.cache_capacity > 0) {
      std::lock_guard<std::mutex> lock(cache_mu_);
      cache_.Put(p.request.features, {snap.generation, prediction});
    }
    stats_.RecordModelPrediction();
    if (config_.breaker.enabled) breaker_.RecordSuccess();
    Respond(&p, prediction, ResponseSource::kModel, "", snap.generation);
  }
}

void PredictionService::Respond(Pending* pending,
                                core::Prediction prediction,
                                ResponseSource source,
                                std::string degraded_reason,
                                uint64_t generation) {
  ServeResponse response;
  response.prediction = std::move(prediction);
  response.source = source;
  response.degraded_reason = std::move(degraded_reason);
  response.model_generation = generation;
  response.shard = config_.shard_label;
  response.trace_id = pending->request.ctx.trace_id;
  response.latency_seconds =
      SecondsSince(pending->enqueued_at, std::chrono::steady_clock::now());
  // Per-request scope even inside a multi-request batch: the latency
  // exemplar and anything the on_response observer records (the fabric's
  // SLO engine, its flight recorder) attribute to *this* request.
  obs::ScopedRequestContext respond_ctx(pending->request.ctx);
  stats_.RecordResponse(response.latency_seconds, response.trace_id);
  if (config_.shadow != nullptr &&
      source != ResponseSource::kOptimizerFallback) {
    // The shadow lane observes, never writes: it gets the served bits (and
    // the features that produced them) but the response object is already
    // built, so nothing the observer does can change what the client sees.
    stats_.RecordShadowObserved();
    config_.shadow->OnServedPrediction(pending->request.features,
                                       response.prediction, generation,
                                       response.trace_id);
  }
  if (config_.on_response) config_.on_response(response);
  pending->promise.set_value(std::move(response));
}

core::WorkloadManager::Outcome AdmitServed(const core::WorkloadManager& wm,
                                           const ServeResponse& response) {
  core::WorkloadManager::Outcome out;
  out.prediction = response.prediction;
  out.decision = wm.Decide(response.prediction);
  out.kill_deadline_seconds = wm.KillDeadlineSeconds(response.prediction);
  return out;
}

}  // namespace qpp::serve
