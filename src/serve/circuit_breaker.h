// Count-based circuit breaker guarding the predictor path.
//
// The optimizer-cost fallback is a weak crutch (Kleerekoper et al., see
// PAPERS.md) — but when the predictor path itself is failing requests
// (queue deadlines blown under worker stalls or overload), answering every
// request late-then-degraded is strictly worse than tripping to the
// fallback immediately and probing for recovery. Classic three-state
// breaker, deliberately counted in *requests* rather than wall time so
// that state transitions are deterministic under the seeded chaos harness:
//
//   closed ──(failure ratio over window ≥ trip_ratio)──▶ open
//   open   ──(open_requests short-circuited)───────────▶ half-open
//   half-open: one probe rides the model path;
//              success ▶ closed (window reset), failure ▶ open again
//
// "Failure" means the predictor path failed the request — today that is a
// blown queue deadline. Data-dependent fallbacks (anomalous query) and
// environmental ones (no model published) say nothing about path health
// and are not recorded.
//
// Thread safety: all methods take one mutex; the breaker is consulted once
// per request, far off the per-instruction hot path. Disabled breakers
// (config.enabled == false) are never consulted at all — the service
// checks the flag first, so the throughput gate pays one branch.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "common/check.h"

namespace qpp::serve {

struct CircuitBreakerConfig {
  bool enabled = false;
  /// Sliding window of recorded outcomes the trip decision looks at.
  size_t window = 64;
  /// Outcomes required in the window before the breaker may trip.
  size_t min_samples = 16;
  /// Failure fraction over the window that opens the circuit.
  double trip_ratio = 0.5;
  /// Requests short-circuited while open before a half-open probe is let
  /// through (request-counted, not timed: deterministic under replay).
  size_t open_requests = 32;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config = {})
      : config_(config), outcomes_(config.window > 0 ? config.window : 1) {
    QPP_CHECK(config_.min_samples >= 1 && config_.window >= 1);
    QPP_CHECK(config_.trip_ratio > 0.0 && config_.trip_ratio <= 1.0);
  }

  /// True when the request may take the model path. While open, counts the
  /// short-circuit and, after open_requests of them, admits one half-open
  /// probe (further requests keep short-circuiting until the probe's
  /// outcome is recorded).
  bool AllowRequest() {
    std::lock_guard<std::mutex> lock(mu_);
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen:
        if (++short_circuits_ > config_.open_requests) {
          TransitionLocked(State::kHalfOpen);
          probe_in_flight_ = true;
          return true;
        }
        return false;
      case State::kHalfOpen:
        if (!probe_in_flight_) {
          probe_in_flight_ = true;
          return true;
        }
        return false;
    }
    return true;
  }

  /// Records a predictor-path success (model or cache answer delivered).
  void RecordSuccess() { RecordOutcome(false); }

  /// Records a predictor-path failure (deadline blown).
  void RecordFailure() { RecordOutcome(true); }

  State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }
  /// Closed-to-open transitions so far.
  uint64_t trips() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trips_;
  }

  /// Observer invoked on every state transition (from, to), from the
  /// thread driving the transition and while the breaker lock is held —
  /// the hook must be cheap and must not call back into the breaker. The
  /// fabric uses it to put breaker flips into the flight recorder.
  void set_transition_hook(std::function<void(State, State)> hook) {
    std::lock_guard<std::mutex> lock(mu_);
    transition_hook_ = std::move(hook);
  }

 private:
  void TransitionLocked(State to) {
    const State from = state_;
    state_ = to;
    if (from != to && transition_hook_) transition_hook_(from, to);
  }

  void RecordOutcome(bool failure) {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::kHalfOpen) {
      // The probe's verdict decides the whole circuit.
      probe_in_flight_ = false;
      if (failure) {
        TransitionLocked(State::kOpen);
        short_circuits_ = 0;
      } else {
        TransitionLocked(State::kClosed);
        ResetWindowLocked();
      }
      return;
    }
    if (state_ == State::kOpen) return;  // straggler outcome; ignore
    if (filled_ == outcomes_.size()) {
      failures_ -= outcomes_[next_] ? 1u : 0u;
    } else {
      ++filled_;
    }
    outcomes_[next_] = failure;
    failures_ += failure ? 1u : 0u;
    next_ = (next_ + 1) % outcomes_.size();
    if (filled_ >= config_.min_samples &&
        static_cast<double>(failures_) >=
            config_.trip_ratio * static_cast<double>(filled_)) {
      TransitionLocked(State::kOpen);
      short_circuits_ = 0;
      ++trips_;
    }
  }

  void ResetWindowLocked() {
    failures_ = 0;
    filled_ = 0;
    next_ = 0;
  }

  const CircuitBreakerConfig config_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  std::vector<bool> outcomes_;  // ring buffer: true = failure
  size_t next_ = 0;
  size_t filled_ = 0;
  size_t failures_ = 0;
  size_t short_circuits_ = 0;
  bool probe_in_flight_ = false;
  uint64_t trips_ = 0;
  std::function<void(State, State)> transition_hook_;
};

}  // namespace qpp::serve
