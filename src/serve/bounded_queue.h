// Bounded MPMC blocking queue — the admission edge of the prediction
// service. Clients push requests (blocking when the queue is full, which is
// the service's backpressure mechanism), workers drain them in micro-batches.
//
// Semantics:
//  * Push blocks while full, returns false once the queue is closed;
//  * TryPush never blocks, returns false when full or closed;
//  * Pop/PopBatch block while empty; after Close() they drain whatever is
//    still queued and then report exhaustion, so no accepted request is
//    ever dropped on shutdown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"

namespace qpp::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    QPP_CHECK(capacity_ >= 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false iff the queue was
  /// closed before space became available; on failure the item is NOT
  /// consumed (the caller still owns it and can answer it directly).
  bool Push(T&& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed (item not consumed).
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Empty optional once closed AND drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Micro-batch drain: blocks for the first item, then takes whatever else
  /// is already queued, up to `max_items`. Appends to `*out` and returns
  /// the number taken; 0 means closed and fully drained. Draining only
  /// what is ready (instead of waiting to fill the batch) keeps latency
  /// low under light load while amortizing work under heavy load.
  size_t PopBatch(size_t max_items, std::vector<T>* out) {
    QPP_CHECK(max_items >= 1 && out != nullptr);
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    size_t taken = 0;
    while (taken < max_items && !items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      ++taken;
    }
    lock.unlock();
    if (taken > 0) not_full_.notify_all();
    return taken;
  }

  /// Closes the queue: subsequent pushes fail, poppers drain then stop.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace qpp::serve
