// The online prediction service (the customer-site half of the paper's
// Fig. 1, grown into a serving layer): many client threads submit plan
// feature vectors, a worker pool drains them in micro-batches through the
// batched KCCA path, and every client gets a future that resolves to a
// labeled response.
//
//   clients ──Submit()──▶ BoundedQueue ──PopBatch()──▶ workers
//                                                        │ LRU cache probe
//                                                        │ Predictor::PredictBatch
//                                                        │ fallback policy
//                                                        ▼
//                                             std::promise → client future
//
// Guarantees:
//  * Determinism — for any request answered from the model or the cache,
//    response.prediction is bit-identical to core::Predictor::Predict on
//    the same features against the same model generation, regardless of
//    batching, caching, thread count, or arrival order.
//  * Graceful degradation — when the model cannot be trusted (none
//    published, query anomalous, queue deadline exceeded) the service
//    answers with the calibrated optimizer-cost baseline instead of
//    failing, and the response says so (`source`, `degraded_reason`).
//  * No accepted request is dropped: Shutdown() drains the queue before
//    the workers exit, and destruction shuts down cleanly.
//  * Backpressure — Submit blocks when the queue is full; TrySubmit
//    refuses instead (and the refusal is counted); SubmitWithRetry retries
//    with exponential backoff and degrades to the labeled "overload"
//    fallback rather than failing.
//  * Resilience — an optional circuit breaker trips the model path to the
//    fallback when the request deadline budget is being exhausted, and a
//    fault::FaultInjector can be attached to rehearse all of this
//    deterministically (see docs/FAULTS.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/predictor.h"
#include "core/workload_manager.h"
#include "fault/fault_injector.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "serve/bounded_queue.h"
#include "serve/circuit_breaker.h"
#include "serve/cost_fallback.h"
#include "serve/lru_cache.h"
#include "serve/model_registry.h"
#include "serve/service_stats.h"

namespace qpp::serve {

class ShadowObserver;  // serve/shadow_observer.h

enum class ResponseSource {
  kModel,              ///< answered by the published model
  kCache,              ///< identical feature vector answered before
  kOptimizerFallback,  ///< degraded: calibrated optimizer cost estimate
};

const char* ResponseSourceName(ResponseSource s);

struct ServeRequest {
  linalg::Vector features;       ///< raw plan feature vector
  /// The plan's optimizer cost, carried along as the degradation baseline;
  /// negative = unavailable (fallback then predicts zero metrics).
  double optimizer_cost = -1.0;
  /// Per-request queue deadline override: > 0 replaces the config-wide
  /// queue_deadline_seconds for this request; 0 (the default) inherits it.
  double deadline_seconds = 0.0;
  /// Request-scoped correlation context (see obs/request_context.h). The
  /// fabric stamps a deterministic trace id here at its front door;
  /// standalone callers may stamp their own or leave it empty (no
  /// correlation, no cost). Never affects the prediction.
  obs::RequestContext ctx;
};

struct ServeResponse {
  core::Prediction prediction;
  ResponseSource source = ResponseSource::kModel;
  /// Non-empty iff source == kOptimizerFallback: "no-model", "anomalous",
  /// "deadline", "shutdown" (Submit lost the race with Shutdown()),
  /// "overload" (SubmitWithRetry exhausted its attempts), or
  /// "circuit-open" (the breaker short-circuited the model path).
  std::string degraded_reason;
  /// Registry generation that answered (0 for no-model fallback).
  uint64_t model_generation = 0;
  /// Submit-to-response wall time.
  double latency_seconds = 0.0;
  /// ServiceConfig::shard_label of the answering service; empty outside a
  /// ShardRouter deployment (see shard/shard_router.h).
  std::string shard;
  /// The request's correlation id echoed back (0 when the request carried
  /// none): the handle for finding this request's spans in the Chrome
  /// trace and its decisions in the flight recorder.
  uint64_t trace_id = 0;

  bool degraded() const { return source == ResponseSource::kOptimizerFallback; }
};

/// Backoff schedule for SubmitWithRetry: attempt i sleeps
/// min(initial * multiplier^i, max) before retrying a refused submit.
/// The deployment-wide default lives in ServiceConfig::retry; the explicit
/// SubmitWithRetry(request, policy) overload overrides it per call.
struct RetryPolicy {
  int max_attempts = 3;
  double initial_backoff_seconds = 0.0005;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.05;
};

struct ServiceConfig {
  size_t num_workers = 2;
  /// Upper bound on one micro-batch; workers take whatever is queued up to
  /// this, so light load degenerates to batch size 1 (lowest latency).
  size_t max_batch = 16;
  size_t queue_capacity = 1024;
  /// Requests older than this when a worker picks them up are answered
  /// with the fallback instead of the model ("better a rough answer now
  /// than a good answer too late"). <= 0 disables the deadline — the
  /// default, because deadline fallbacks are inherently timing-dependent
  /// and forfeit the determinism guarantee.
  double queue_deadline_seconds = 0.0;
  /// Answer anomalous queries (far from all training neighbors) with the
  /// optimizer baseline; the paper's model is explicitly untrustworthy
  /// there. Requires the request to carry an optimizer cost.
  bool fallback_on_anomalous = true;
  /// Result-cache entries (exact feature-vector match); 0 disables.
  size_t cache_capacity = 4096;
  /// Per-request span tracing (queue wait, batch assembly, cache lookup,
  /// predict stages, respond) into this recorder; null (the default)
  /// disables tracing at the cost of one pointer test per stage — the
  /// serve throughput gate runs in this mode and must not move. The
  /// recorder must outlive the service.
  obs::TraceRecorder* trace = nullptr;
  /// Circuit breaker guarding the model path (see circuit_breaker.h);
  /// disabled by default — the hot path then pays one bool test.
  CircuitBreakerConfig breaker;
  /// Fault injection session (chaos testing); null (the default) compiles
  /// the fault points down to one pointer test each. The injector must
  /// outlive the service.
  fault::FaultInjector* faults = nullptr;
  /// Name of the shard this service instance backs. Stamped onto every
  /// response (`ServeResponse::shard`) and matched against the fault
  /// plan's `target_shard` / `target_replica_label` for targeted worker
  /// stalls; empty (the default) for a monolithic deployment. Fabric
  /// replicas use "group#index" labels (see fabric/fabric.h).
  std::string shard_label;
  /// Default backoff schedule for SubmitWithRetry; per-call policies
  /// override it. The defaults here ARE the historical compile-time
  /// defaults, so existing deployments behave identically.
  RetryPolicy retry;
  /// Observer invoked on every response (including inline fallbacks) just
  /// before the future resolves, from whichever thread answers. Used by
  /// fabric::AdmissionController to feed its windowed-p99 load signal;
  /// null (the default) costs one test per response. Must not Submit back
  /// into the same service (the queue lock is not held, but worker threads
  /// calling themselves recursively would deadlock Shutdown).
  std::function<void(const ServeResponse&)> on_response;
  /// The shadow lane (serve/shadow_observer.h): sees every model/cache
  /// response — features, served bits, generation — just before the future
  /// resolves, so a lifecycle::LifecycleManager can score challengers
  /// against live traffic without touching what clients receive. Fallback
  /// responses are NOT observed (there is no model prediction to compare).
  /// Null (the default) costs one test per response; the observer must
  /// outlive the service and must not Submit back into it.
  ShadowObserver* shadow = nullptr;
};

class PredictionService {
 public:
  /// The registry is the service's model source and must outlive it.
  /// Publishing to it mid-traffic hot-swaps the model between batches.
  PredictionService(ModelRegistry* registry, ServiceConfig config = {},
                    CostCalibration calibration = {});
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Enqueues a request; blocks while the queue is full (backpressure).
  /// The future resolves once a worker answers.
  std::future<ServeResponse> Submit(ServeRequest request);

  /// Non-blocking submit: false (and a counted rejection) when the queue
  /// is full or the service is shutting down. Fault injection may refuse
  /// an attempt here as if the queue were saturated (counted the same).
  bool TrySubmit(ServeRequest request, std::future<ServeResponse>* out);

  /// TrySubmit that fulfills a caller-owned promise instead of minting a
  /// new future: on success the promise is moved into the queue and will
  /// resolve when a worker answers; on refusal (queue full, shutdown, or
  /// injected rejection — counted like TrySubmit) the caller keeps the
  /// promise. This is how the fabric bridges deferred-admission requests:
  /// the front door hands out the future at defer time and the service
  /// fulfills it when the request is finally dispatched.
  bool TrySubmitWithPromise(ServeRequest request,
                            std::promise<ServeResponse>* promise);

  /// TrySubmit with exponential backoff under config().retry. Never
  /// returns a broken future: when every attempt is refused the request is
  /// answered inline with the labeled "overload" fallback, so callers
  /// under a rejection storm still get the degradation contract instead of
  /// an error path to handle.
  std::future<ServeResponse> SubmitWithRetry(ServeRequest request);
  /// Same, but with an explicit per-call backoff schedule.
  std::future<ServeResponse> SubmitWithRetry(ServeRequest request,
                                             const RetryPolicy& policy);

  /// Stops accepting requests, drains everything already queued, joins the
  /// workers. Idempotent.
  void Shutdown();

  // Hash/equality for exact feature-vector cache keys: doubles hashed by
  // bit pattern, so a hit implies bit-identical input. Public because the
  // ShardRouter keys its routing cache the same way.
  struct FeatureHash {
    size_t operator()(const linalg::Vector& v) const;
  };

  /// Requests currently queued (a point-in-time load signal; the fabric's
  /// power-of-two-choices spread compares replicas on this).
  size_t queue_depth() const { return queue_.size(); }

  ServiceStatsSnapshot stats() const { return stats_.Snapshot(); }
  /// The service's metrics registry (statsz/JSON export surface; see
  /// docs/OBSERVABILITY.md for the metric names).
  obs::MetricsRegistry* metrics() { return stats_.registry(); }
  const obs::MetricsRegistry& metrics() const { return stats_.registry(); }
  const ServiceConfig& config() const { return config_; }
  const CircuitBreaker& breaker() const { return breaker_; }
  /// Mutable breaker access for deployment wiring (the fabric installs a
  /// transition hook per replica); not for flipping state by hand.
  CircuitBreaker* mutable_breaker() { return &breaker_; }

 private:
  struct Pending {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  /// Per-worker reusable buffers: the predictor's batch scratch plus the
  /// miss-collection and result vectors. Owned by one worker thread and
  /// reused across batches, so the steady-state model path runs through
  /// core::Predictor::PredictBatchInto without reallocating per batch.
  struct WorkerScratch {
    core::Predictor::BatchScratch predict;
    std::vector<size_t> miss_indices;
    std::vector<linalg::Vector> miss_features;
    std::vector<core::Prediction> predictions;
  };

  void WorkerLoop();
  void ProcessBatch(std::vector<Pending>* batch, WorkerScratch* scratch);
  void Respond(Pending* pending, core::Prediction prediction,
               ResponseSource source, std::string degraded_reason,
               uint64_t generation);

  // Cached entries are tagged with the model generation that produced
  // them; a hot-swap makes older entries miss (and get overwritten) rather
  // than serve predictions from a retired model.
  struct CachedPrediction {
    uint64_t generation = 0;
    core::Prediction prediction;
  };

  ModelRegistry* const registry_;
  const ServiceConfig config_;
  const CostCalibration calibration_;
  BoundedQueue<Pending> queue_;
  ServiceStats stats_;
  CircuitBreaker breaker_;
  std::mutex cache_mu_;
  LruCache<linalg::Vector, CachedPrediction, FeatureHash> cache_;
  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;
};

/// Admission control riding on the service: the WorkloadManager thresholds
/// applied to a served response. Works for degraded responses too — a
/// fallback triggered by an anomaly keeps the anomalous flag, so the
/// review-anomalies policy still routes it to a human.
core::WorkloadManager::Outcome AdmitServed(const core::WorkloadManager& wm,
                                           const ServeResponse& response);

}  // namespace qpp::serve
