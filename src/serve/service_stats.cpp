#include "serve/service_stats.h"

#include <cstdio>

namespace qpp::serve {

ServiceStats::ServiceStats()
    : requests_(registry_.GetCounter("qpp_serve_requests_total")),
      cache_hits_(registry_.GetCounter("qpp_serve_cache_hits_total")),
      model_predictions_(
          registry_.GetCounter("qpp_serve_model_predictions_total")),
      fallback_no_model_(registry_.GetCounter(
          "qpp_serve_fallbacks_total", {{"reason", "no-model"}})),
      fallback_anomalous_(registry_.GetCounter(
          "qpp_serve_fallbacks_total", {{"reason", "anomalous"}})),
      fallback_deadline_(registry_.GetCounter(
          "qpp_serve_fallbacks_total", {{"reason", "deadline"}})),
      fallback_shutdown_(registry_.GetCounter(
          "qpp_serve_fallbacks_total", {{"reason", "shutdown"}})),
      fallback_overload_(registry_.GetCounter(
          "qpp_serve_fallbacks_total", {{"reason", "overload"}})),
      fallback_circuit_open_(registry_.GetCounter(
          "qpp_serve_fallbacks_total", {{"reason", "circuit-open"}})),
      rejected_(registry_.GetCounter("qpp_serve_rejected_total")),
      batches_(registry_.GetCounter("qpp_serve_batches_total")),
      batched_requests_(
          registry_.GetCounter("qpp_serve_batched_requests_total")),
      shadow_observed_(
          registry_.GetCounter("qpp_lifecycle_shadow_observed_total")),
      latency_(registry_.GetHistogram(
          "qpp_serve_latency_seconds", {},
          // Default layout plus per-bucket exemplars: a tail bucket in the
          // exposition names a trace id that landed there.
          [] {
            obs::HistogramOptions o;
            o.exemplars = true;
            return o;
          }())),
      batch_size_(registry_.GetHistogram(
          "qpp_serve_batch_size", {},
          // Count-scaled layout (1..1e4 requests per micro-batch): shows
          // whether workers actually drain in batches — the blocked
          // predict path's speedup is a function of this distribution.
          [] {
            obs::HistogramOptions o;
            o.min_exponent = 0;
            o.max_exponent = 4;
            return o;
          }())) {
  registry_.SetHelp("qpp_serve_latency_seconds",
                    "submit-to-response latency of served requests");
  registry_.SetHelp("qpp_serve_requests_total", "responses delivered");
  registry_.SetHelp("qpp_serve_fallbacks_total",
                    "degraded responses by labeled reason");
  registry_.SetHelp("qpp_serve_batch_size",
                    "requests drained per worker micro-batch");
  registry_.SetHelp("qpp_lifecycle_shadow_observed_total",
                    "model/cache responses handed to the shadow lane");
}

ServiceStatsSnapshot ServiceStats::Snapshot() const {
  ServiceStatsSnapshot s;
  s.requests = requests_->value();
  s.cache_hits = cache_hits_->value();
  s.model_predictions = model_predictions_->value();
  s.fallback_no_model = fallback_no_model_->value();
  s.fallback_anomalous = fallback_anomalous_->value();
  s.fallback_deadline = fallback_deadline_->value();
  s.fallback_shutdown = fallback_shutdown_->value();
  s.fallback_overload = fallback_overload_->value();
  s.fallback_circuit_open = fallback_circuit_open_->value();
  s.rejected = rejected_->value();
  s.batches = batches_->value();
  s.batched_requests = batched_requests_->value();
  s.shadow_observed = shadow_observed_->value();
  const obs::HistogramSnapshot latency = latency_->Snapshot();
  s.p50_seconds = latency.Quantile(0.50);
  s.p95_seconds = latency.Quantile(0.95);
  s.p99_seconds = latency.Quantile(0.99);
  s.latency_min_seconds = latency.min;
  s.latency_max_seconds = latency.max;
  s.latency_underflow = latency.underflow;
  s.latency_overflow = latency.overflow;
  return s;
}

namespace {
std::string FormatLatency(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}
}  // namespace

std::string ServiceStatsSnapshot::ToString() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "requests:          %llu (rejected: %llu)\n"
      "cache hits:        %llu (%.1f%%)\n"
      "model predictions: %llu\n"
      "fallbacks:         %llu (no-model %llu, anomalous %llu, deadline "
      "%llu, shutdown %llu, overload %llu, circuit-open %llu)\n"
      "batches:           %llu (mean size %.2f)\n"
      "latency:           p50 %s, p95 %s, p99 %s\n"
      "latency range:     min %s, max %s\n",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(cache_hits), 100.0 * cache_hit_rate(),
      static_cast<unsigned long long>(model_predictions),
      static_cast<unsigned long long>(fallbacks()),
      static_cast<unsigned long long>(fallback_no_model),
      static_cast<unsigned long long>(fallback_anomalous),
      static_cast<unsigned long long>(fallback_deadline),
      static_cast<unsigned long long>(fallback_shutdown),
      static_cast<unsigned long long>(fallback_overload),
      static_cast<unsigned long long>(fallback_circuit_open),
      static_cast<unsigned long long>(batches), mean_batch_size(),
      FormatLatency(p50_seconds).c_str(), FormatLatency(p95_seconds).c_str(),
      FormatLatency(p99_seconds).c_str(),
      FormatLatency(latency_min_seconds).c_str(),
      FormatLatency(latency_max_seconds).c_str());
  return buf;
}

}  // namespace qpp::serve
