#include "serve/service_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace qpp::serve {

void LatencyHistogram::Record(double seconds) {
  // Clamp into the representable range; sub-100ns and >100s latencies land
  // in the edge buckets.
  double idx_f = (std::log10(std::max(seconds, 1e-300)) - kMinExponent) *
                 static_cast<double>(kBucketsPerDecade);
  idx_f = std::clamp(idx_f, 0.0, static_cast<double>(kNumBuckets - 1));
  buckets_[static_cast<size_t>(idx_f)].fetch_add(1,
                                                 std::memory_order_relaxed);
}

double LatencyHistogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  uint64_t total = 0;
  std::array<uint64_t, kNumBuckets> counts;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += counts[i];
    if (seen >= std::max<uint64_t>(rank, 1)) {
      // Geometric midpoint of the bucket.
      const double exp = kMinExponent +
                         (static_cast<double>(i) + 0.5) /
                             static_cast<double>(kBucketsPerDecade);
      return std::pow(10.0, exp);
    }
  }
  return std::pow(10.0, kMaxExponent);
}

uint64_t LatencyHistogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

ServiceStatsSnapshot ServiceStats::Snapshot() const {
  ServiceStatsSnapshot s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.model_predictions = model_predictions_.load(std::memory_order_relaxed);
  s.fallback_no_model = fallback_no_model_.load(std::memory_order_relaxed);
  s.fallback_anomalous = fallback_anomalous_.load(std::memory_order_relaxed);
  s.fallback_deadline = fallback_deadline_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.p50_seconds = latency_.Quantile(0.50);
  s.p95_seconds = latency_.Quantile(0.95);
  s.p99_seconds = latency_.Quantile(0.99);
  return s;
}

namespace {
std::string FormatLatency(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}
}  // namespace

std::string ServiceStatsSnapshot::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "requests:          %llu (rejected: %llu)\n"
      "cache hits:        %llu (%.1f%%)\n"
      "model predictions: %llu\n"
      "fallbacks:         %llu (no-model %llu, anomalous %llu, deadline "
      "%llu)\n"
      "batches:           %llu (mean size %.2f)\n"
      "latency:           p50 %s, p95 %s, p99 %s\n",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(cache_hits), 100.0 * cache_hit_rate(),
      static_cast<unsigned long long>(model_predictions),
      static_cast<unsigned long long>(fallbacks()),
      static_cast<unsigned long long>(fallback_no_model),
      static_cast<unsigned long long>(fallback_anomalous),
      static_cast<unsigned long long>(fallback_deadline),
      static_cast<unsigned long long>(batches), mean_batch_size(),
      FormatLatency(p50_seconds).c_str(), FormatLatency(p95_seconds).c_str(),
      FormatLatency(p99_seconds).c_str());
  return buf;
}

}  // namespace qpp::serve
