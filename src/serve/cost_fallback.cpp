#include "serve/cost_fallback.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qpp::serve {

CostCalibration CostCalibration::Fit(
    const std::vector<double>& costs,
    const std::vector<double>& elapsed_seconds) {
  QPP_CHECK(costs.size() == elapsed_seconds.size() && costs.size() >= 2);
  const size_t n = costs.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    const double x = std::log10(std::max(costs[i], 1e-9));
    const double y = std::log10(std::max(elapsed_seconds[i], 1e-6));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  CostCalibration c;
  if (std::abs(denom) < 1e-12) {
    // Degenerate (all costs equal): predict the geometric-mean elapsed.
    c.slope = 0.0;
    c.intercept = sy / dn;
  } else {
    c.slope = (dn * sxy - sx * sy) / denom;
    c.intercept = (sy - c.slope * sx) / dn;
  }
  c.fitted = true;
  return c;
}

double CostCalibration::EstimateSeconds(double optimizer_cost) const {
  const double log_cost = std::log10(std::max(optimizer_cost, 1e-9));
  return std::pow(10.0, slope * log_cost + intercept);
}

core::Prediction FallbackPrediction(const CostCalibration& calibration,
                                    double optimizer_cost, bool anomalous) {
  core::Prediction p;
  if (optimizer_cost >= 0.0) {
    p.metrics.elapsed_seconds = calibration.EstimateSeconds(optimizer_cost);
  }
  p.confidence = 0.0;
  p.anomalous = anomalous;
  p.predicted_type = workload::ClassifyElapsed(p.metrics.elapsed_seconds);
  return p;
}

}  // namespace qpp::serve
