// Built-in service observability: request/fallback/cache counters and a
// lock-free log-bucketed latency histogram with p50/p95/p99 estimates.
//
// Everything is std::atomic with relaxed ordering — the counters are
// monotonic tallies, not synchronization, and a snapshot taken under
// traffic is allowed to be a few requests stale.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace qpp::serve {

/// Log-spaced latency histogram: 8 buckets per decade across 1e-7s..1e2s.
/// Record() is wait-free; quantiles are estimated as the geometric midpoint
/// of the bucket containing the requested rank (≤ ~15% relative error,
/// plenty for a p99 readout).
class LatencyHistogram {
 public:
  static constexpr size_t kBucketsPerDecade = 8;
  static constexpr int kMinExponent = -7;  ///< 100 ns
  static constexpr int kMaxExponent = 2;   ///< 100 s
  static constexpr size_t kNumBuckets =
      kBucketsPerDecade * static_cast<size_t>(kMaxExponent - kMinExponent);

  void Record(double seconds);

  /// Latency (seconds) at quantile q in [0, 1]; 0 when empty.
  double Quantile(double q) const;

  uint64_t count() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// One consistent-enough read of the service counters.
struct ServiceStatsSnapshot {
  uint64_t requests = 0;           ///< responses delivered
  uint64_t cache_hits = 0;
  uint64_t model_predictions = 0;  ///< answered by the live model
  uint64_t fallback_no_model = 0;
  uint64_t fallback_anomalous = 0;
  uint64_t fallback_deadline = 0;
  uint64_t rejected = 0;           ///< TrySubmit refused (queue full)
  uint64_t batches = 0;
  uint64_t batched_requests = 0;   ///< sum of batch sizes
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;

  uint64_t fallbacks() const {
    return fallback_no_model + fallback_anomalous + fallback_deadline;
  }
  double cache_hit_rate() const {
    return requests > 0 ? static_cast<double>(cache_hits) /
                              static_cast<double>(requests)
                        : 0.0;
  }
  double mean_batch_size() const {
    return batches > 0 ? static_cast<double>(batched_requests) /
                             static_cast<double>(batches)
                       : 0.0;
  }

  /// Multi-line human-readable report (printed by `qpp_tool serve`).
  std::string ToString() const;
};

class ServiceStats {
 public:
  void RecordResponse(double latency_seconds) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    latency_.Record(latency_seconds);
  }
  void RecordCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void RecordModelPrediction() {
    model_predictions_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordFallbackNoModel() {
    fallback_no_model_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordFallbackAnomalous() {
    fallback_anomalous_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordFallbackDeadline() {
    fallback_deadline_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void RecordBatch(size_t batch_size) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_requests_.fetch_add(batch_size, std::memory_order_relaxed);
  }

  ServiceStatsSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> model_predictions_{0};
  std::atomic<uint64_t> fallback_no_model_{0};
  std::atomic<uint64_t> fallback_anomalous_{0};
  std::atomic<uint64_t> fallback_deadline_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_requests_{0};
  LatencyHistogram latency_;
};

}  // namespace qpp::serve
