// Built-in service observability: request/fallback/cache counters and a
// wait-free log-bucketed latency histogram with p50/p95/p99 estimates.
//
// Since the qpp::obs subsystem landed, ServiceStats is a facade over an
// obs::MetricsRegistry: every counter and the latency histogram live in
// the registry under stable names (qpp_serve_*, see docs/OBSERVABILITY.md)
// so the same numbers are available through the statsz/JSON exports, while
// this header keeps the original narrow Record*/Snapshot API the service
// and its tests were written against. The hot path is unchanged — the
// registry hands back stable metric pointers that are resolved once in the
// constructor, and recording through them is the same relaxed-atomic
// fetch_add it always was.
#pragma once

#include <cstdint>
#include <string>

#include "obs/registry.h"

namespace qpp::serve {

/// Log-spaced latency histogram: 8 buckets per decade across 1e-7s..1e2s,
/// with explicit underflow/overflow buckets and exact observed min/max
/// (obs::Histogram's defaults are exactly this layout).
using LatencyHistogram = obs::Histogram;

/// One consistent-enough read of the service counters.
struct ServiceStatsSnapshot {
  uint64_t requests = 0;           ///< responses delivered
  uint64_t cache_hits = 0;
  uint64_t model_predictions = 0;  ///< answered by the live model
  uint64_t fallback_no_model = 0;
  uint64_t fallback_anomalous = 0;
  uint64_t fallback_deadline = 0;
  uint64_t fallback_shutdown = 0;      ///< Submit lost the race with Shutdown
  uint64_t fallback_overload = 0;      ///< SubmitWithRetry exhausted attempts
  uint64_t fallback_circuit_open = 0;  ///< breaker short-circuited the model
  uint64_t rejected = 0;           ///< TrySubmit refused (queue full)
  uint64_t batches = 0;
  uint64_t batched_requests = 0;   ///< sum of batch sizes
  /// Model/cache responses handed to the shadow lane (the lifecycle
  /// observer); 0 when no ShadowObserver is configured.
  uint64_t shadow_observed = 0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  /// Exact extreme latencies observed (not bucket estimates); 0 when no
  /// responses were recorded.
  double latency_min_seconds = 0.0;
  double latency_max_seconds = 0.0;
  /// Samples outside the histogram range (sub-100ns / >100s); they count
  /// toward `requests` and the quantile ranks but carry no bucket.
  uint64_t latency_underflow = 0;
  uint64_t latency_overflow = 0;

  uint64_t fallbacks() const {
    return fallback_no_model + fallback_anomalous + fallback_deadline +
           fallback_shutdown + fallback_overload + fallback_circuit_open;
  }
  double cache_hit_rate() const {
    return requests > 0 ? static_cast<double>(cache_hits) /
                              static_cast<double>(requests)
                        : 0.0;
  }
  double mean_batch_size() const {
    return batches > 0 ? static_cast<double>(batched_requests) /
                             static_cast<double>(batches)
                       : 0.0;
  }

  /// Multi-line human-readable report (printed by `qpp_tool serve`).
  std::string ToString() const;
};

class ServiceStats {
 public:
  ServiceStats();

  /// `trace_id` (0 = none) becomes the latency bucket's exemplar, linking
  /// a statsz/Prometheus tail bucket to the request's Chrome trace.
  void RecordResponse(double latency_seconds, uint64_t trace_id = 0) {
    requests_->Inc();
    latency_->Record(latency_seconds, trace_id);
  }
  void RecordCacheHit() { cache_hits_->Inc(); }
  void RecordModelPrediction() { model_predictions_->Inc(); }
  void RecordFallbackNoModel() { fallback_no_model_->Inc(); }
  void RecordFallbackAnomalous() { fallback_anomalous_->Inc(); }
  void RecordFallbackDeadline() { fallback_deadline_->Inc(); }
  void RecordFallbackShutdown() { fallback_shutdown_->Inc(); }
  void RecordFallbackOverload() { fallback_overload_->Inc(); }
  void RecordFallbackCircuitOpen() { fallback_circuit_open_->Inc(); }
  void RecordRejected() { rejected_->Inc(); }
  void RecordShadowObserved() { shadow_observed_->Inc(); }
  void RecordBatch(size_t batch_size) {
    batches_->Inc();
    batched_requests_->Inc(batch_size);
    batch_size_->Record(static_cast<double>(batch_size));
  }

  ServiceStatsSnapshot Snapshot() const;

  /// The backing registry — the statsz/JSON export surface, and where
  /// components sharing the service's observability (e.g. a DriftMonitor)
  /// register their own metrics.
  obs::MetricsRegistry* registry() { return &registry_; }
  const obs::MetricsRegistry& registry() const { return registry_; }

 private:
  obs::MetricsRegistry registry_;
  obs::Counter* requests_;
  obs::Counter* cache_hits_;
  obs::Counter* model_predictions_;
  obs::Counter* fallback_no_model_;
  obs::Counter* fallback_anomalous_;
  obs::Counter* fallback_deadline_;
  obs::Counter* fallback_shutdown_;
  obs::Counter* fallback_overload_;
  obs::Counter* fallback_circuit_open_;
  obs::Counter* rejected_;
  obs::Counter* batches_;
  obs::Counter* batched_requests_;
  obs::Counter* shadow_observed_;
  obs::Histogram* latency_;
  obs::Histogram* batch_size_;
};

}  // namespace qpp::serve
