// Atomic model hot-swap (the missing piece between the paper's offline
// training and a service that never stops answering: the vendor retrains,
// the customer site publishes the new model under live traffic).
//
// Readers call Acquire() and get an immutable snapshot — a
// std::shared_ptr<const core::Predictor> plus the generation it was
// published as. They hold the snapshot for a whole micro-batch and never
// take a caller-visible lock; the swap itself is a single atomic
// shared_ptr store (libstdc++ guards the control block with an internal
// per-object spinlock, paid once per batch, not per query). Publishers are
// rare (one per retrain) and serialize on the atomic exchange loop.
//
// The published Predictor must never be mutated afterwards — see the
// thread-safety contract in core/predictor.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "core/predictor.h"

namespace qpp::serve {

class ModelRegistry {
 public:
  struct Snapshot {
    std::shared_ptr<const core::Predictor> model;  ///< null before publish
    uint64_t generation = 0;                       ///< 0 = nothing published
    bool valid() const { return model != nullptr; }
  };

  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Publishes a new model; traffic switches to it at the next Acquire().
  /// Returns the generation assigned to this model (1, 2, ...).
  uint64_t Publish(std::shared_ptr<const core::Predictor> model) {
    QPP_CHECK(model != nullptr && model->trained());
    auto entry = std::make_shared<Entry>();
    entry->model = std::move(model);
    std::shared_ptr<const Entry> prev = entry_.load();
    do {
      entry->generation = (prev ? prev->generation : 0) + 1;
    } while (!entry_.compare_exchange_weak(prev, entry));
    return entry->generation;
  }

  /// Convenience overload: copies a trained predictor into a shared
  /// snapshot (the copy is what makes in-place retraining safe to publish).
  uint64_t Publish(const core::Predictor& model) {
    return Publish(std::make_shared<const core::Predictor>(model));
  }

  /// Removes the published model (shard kill / decommission): Acquire()
  /// then returns an invalid snapshot and the service degrades to its
  /// labeled no-model fallback. The generation counter is retained so a
  /// later Publish keeps advancing it and generation-tagged caches never
  /// confuse a revived registry with the model it served before the kill.
  void Unpublish() {
    std::shared_ptr<const Entry> prev = entry_.load();
    std::shared_ptr<const Entry> cleared;
    do {
      if (!prev || prev->model == nullptr) return;  // already empty
      auto entry = std::make_shared<Entry>();
      entry->generation = prev->generation;  // model stays null
      cleared = std::move(entry);
    } while (!entry_.compare_exchange_weak(prev, cleared));
  }

  /// Current model + generation; {nullptr, 0} before the first publish.
  /// After Unpublish() the snapshot is invalid but keeps the generation.
  Snapshot Acquire() const {
    const std::shared_ptr<const Entry> entry = entry_.load();
    if (!entry) return {};
    return {entry->model, entry->generation};
  }

  bool has_model() const {
    const std::shared_ptr<const Entry> entry = entry_.load();
    return entry != nullptr && entry->model != nullptr;
  }
  uint64_t generation() const {
    const std::shared_ptr<const Entry> entry = entry_.load();
    return entry ? entry->generation : 0;
  }

 private:
  struct Entry {
    std::shared_ptr<const core::Predictor> model;
    uint64_t generation = 0;
  };
  std::atomic<std::shared_ptr<const Entry>> entry_;
};

}  // namespace qpp::serve
