// Graceful-degradation baseline: the optimizer's cost estimate, calibrated
// to seconds the same way Fig. 17 relates the two — a least-squares line in
// log-log space. This is exactly the predictor sites had *before* the
// paper's model (and the paper shows it is 10x-100x off for many queries),
// so it is the honest thing to answer with when the learned model cannot
// be trusted: no model published yet, the query is anomalous (far from all
// training neighbors), or the request sat in the queue past its deadline.
// Responses built from it are always labeled (ResponseSource::
// kOptimizerFallback) so downstream decisions know what they are riding on.
#pragma once

#include <vector>

#include "core/predictor.h"

namespace qpp::serve {

struct CostCalibration {
  /// log10(elapsed_seconds) = slope * log10(cost) + intercept.
  double slope = 1.0;
  double intercept = 0.0;
  bool fitted = false;

  /// Least-squares fit in log-log space over (cost, measured elapsed)
  /// pairs, e.g. the training pool. Costs and times are clamped away from
  /// zero exactly as the Fig. 17 bench does.
  static CostCalibration Fit(const std::vector<double>& costs,
                             const std::vector<double>& elapsed_seconds);

  double EstimateSeconds(double optimizer_cost) const;
};

/// Builds the degraded prediction for a fallback response: elapsed from the
/// calibrated cost estimate, the remaining five metrics unknown (zero),
/// zero confidence, and the category implied by the estimated elapsed.
core::Prediction FallbackPrediction(const CostCalibration& calibration,
                                    double optimizer_cost, bool anomalous);

}  // namespace qpp::serve
