// Least-recently-used result cache for the prediction service.
//
// Decision-support workloads are template-heavy: the same plan instantiated
// with different constants often produces the *identical* feature vector
// (counts and estimated-cardinality sums per operator), and prediction is a
// pure function of that vector. Caching on the exact feature vector
// therefore returns bit-identical results to re-running the model — the
// service's determinism guarantee survives caching.
//
// Not internally synchronized: PredictionService guards its cache with a
// mutex (touched once per request, far off the model hot path).
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace qpp::serve {

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class LruCache {
 public:
  /// capacity == 0 disables the cache (Get misses, Put is a no-op).
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Copies the cached value into *out and promotes the entry to
  /// most-recently-used. False on miss.
  bool Get(const K& key, V* out) {
    QPP_CHECK(out != nullptr);
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    *out = it->second->second;
    return true;
  }

  /// Inserts or overwrites; evicts the least-recently-used entry when over
  /// capacity.
  void Put(const K& key, V value) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  size_t size() const { return order_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::list<std::pair<K, V>> order_;  ///< front = most recently used
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash,
                     Eq>
      index_;
};

}  // namespace qpp::serve
