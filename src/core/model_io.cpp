#include "core/model_io.h"

#include <fstream>

namespace qpp::core {

Status SaveModelFile(const Predictor& predictor, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os.good()) return Status::Error("cannot open for write: " + path);
  try {
    predictor.Save(&os);
  } catch (const CheckFailure& e) {
    return Status::Error(std::string("model write failed: ") + e.what());
  }
  os.flush();
  if (!os.good()) return Status::Error("write failed: " + path);
  return Status::Ok();
}

Result<Predictor> LoadModelFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return Status::Error("cannot open for read: " + path);
  try {
    return Predictor::Load(&is);
  } catch (const CheckFailure& e) {
    return Status::Error(std::string("model read failed: ") + e.what());
  }
}

}  // namespace qpp::core
