#include "core/capacity_planner.h"

#include <algorithm>

#include "common/check.h"

namespace qpp::core {

void CapacityPlanner::AddConfiguration(CandidateConfig config) {
  QPP_CHECK(config.predictor != nullptr && config.predictor->trained());
  configs_.push_back(std::move(config));
}

WorkloadEstimate CapacityPlanner::Estimate(
    const std::string& config_name,
    const std::vector<linalg::Vector>& features) const {
  const CandidateConfig* cfg = nullptr;
  for (const CandidateConfig& c : configs_) {
    if (c.name == config_name) {
      cfg = &c;
      break;
    }
  }
  QPP_CHECK_MSG(cfg != nullptr, "unknown configuration: " << config_name);

  WorkloadEstimate est;
  est.config_name = cfg->name;
  est.nodes = cfg->nodes;
  for (const linalg::Vector& f : features) {
    const Prediction p = cfg->predictor->Predict(f);
    est.total_elapsed_seconds += p.metrics.elapsed_seconds;
    est.max_query_seconds =
        std::max(est.max_query_seconds, p.metrics.elapsed_seconds);
    est.total_disk_ios += p.metrics.disk_ios;
    est.total_message_bytes += p.metrics.message_bytes;
    if (p.anomalous) est.anomalous_queries += 1;
  }
  return est;
}

std::optional<WorkloadEstimate> CapacityPlanner::Recommend(
    const std::vector<std::vector<linalg::Vector>>& features_per_config,
    double deadline_seconds) const {
  QPP_CHECK(features_per_config.size() == configs_.size());
  std::optional<WorkloadEstimate> best;
  double best_cost = 0.0;
  for (size_t i = 0; i < configs_.size(); ++i) {
    const WorkloadEstimate est =
        Estimate(configs_[i].name, features_per_config[i]);
    if (est.total_elapsed_seconds > deadline_seconds) continue;
    if (!best || configs_[i].cost < best_cost) {
      best = est;
      best_cost = configs_[i].cost;
    }
  }
  return best;
}

}  // namespace qpp::core
