// File-level model shipping (the vendor -> customer flow of Fig. 1).
#pragma once

#include <string>

#include "common/status.h"
#include "core/predictor.h"

namespace qpp::core {

/// Writes a trained predictor to `path` (binary format, versioned).
Status SaveModelFile(const Predictor& predictor, const std::string& path);

/// Loads a predictor from `path`.
Result<Predictor> LoadModelFile(const std::string& path);

}  // namespace qpp::core
