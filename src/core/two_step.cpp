#include "core/two_step.h"

#include "common/check.h"

namespace qpp::core {

TwoStepPredictor::TwoStepPredictor(PredictorConfig config)
    : config_(config), base_(config) {}

void TwoStepPredictor::Train(const std::vector<ml::TrainingExample>& examples,
                             size_t min_category_size) {
  base_.Train(examples);

  std::map<workload::QueryType, std::vector<ml::TrainingExample>> by_type;
  for (const ml::TrainingExample& ex : examples) {
    by_type[workload::ClassifyElapsed(ex.metrics.elapsed_seconds)].push_back(
        ex);
  }
  per_type_.clear();
  for (auto& [type, members] : by_type) {
    if (members.size() < std::max(min_category_size,
                                  config_.k_neighbors + 1)) {
      continue;  // too small: fall back to the base model at predict time
    }
    PredictorConfig cfg = config_;
    // Small per-category training sets: the exact KCCA solver is both
    // affordable and more accurate than a truncated ICD basis.
    if (members.size() <= cfg.kcca.exact_threshold) {
      cfg.kcca.solver = ml::KccaSolver::kExact;
    }
    auto model = std::make_unique<Predictor>(cfg);
    model->Train(members);
    per_type_[type] = std::move(model);
  }
  trained_ = true;
}

Prediction TwoStepPredictor::Predict(
    const linalg::Vector& query_features) const {
  QPP_CHECK_MSG(trained_, "Predict before Train");
  Prediction first = base_.Predict(query_features);
  const auto it = per_type_.find(first.predicted_type);
  if (it == per_type_.end()) return first;
  Prediction second = it->second->Predict(query_features);
  second.predicted_type = first.predicted_type;
  return second;
}

bool TwoStepPredictor::HasCategoryModel(workload::QueryType type) const {
  return per_type_.count(type) > 0;
}

const Predictor* TwoStepPredictor::CategoryModel(
    workload::QueryType type) const {
  const auto it = per_type_.find(type);
  return it != per_type_.end() ? it->second.get() : nullptr;
}

}  // namespace qpp::core
