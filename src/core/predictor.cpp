#include "core/predictor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/check.h"
#include "common/serde.h"
#include "linalg/serde.h"
#include "par/parallel_for.h"

namespace qpp::core {

namespace {
/// Queries per parallel chunk when batching k-d tree lookups (matches the
/// brute batch path's kQueryGrain; fixed — see par/thread_pool.h).
constexpr size_t kIndexQueryGrain = 4;
}  // namespace

Predictor::Predictor(PredictorConfig config) : config_(std::move(config)) {
  QPP_CHECK(config_.k_neighbors >= 1);
}

void Predictor::Train(const std::vector<ml::TrainingExample>& examples) {
  QPP_CHECK_MSG(examples.size() >= config_.k_neighbors + 1,
                "need more training examples than neighbors");
  const ml::FeatureMatrices mats = ml::StackExamples(examples);
  train_y_ = mats.y;

  preprocessor_ = ml::Preprocessor(config_.preprocess_log1p,
                                   config_.preprocess_standardize);
  preprocessor_.Fit(mats.x);
  const linalg::Matrix xp = preprocessor_.Transform(mats.x);

  if (config_.model == ModelKind::kRegression) {
    regression_.Fit(xp, mats.y, /*ridge=*/1e-8);
    proj_index_.Clear();
    feat_index_.Clear();
    trained_ = true;
    return;
  }

  // Performance features enter the kernel preprocessed the same way the
  // query features do (log1p compresses seconds vs. byte counts).
  ml::Preprocessor y_prep(true, true);
  y_prep.Fit(mats.y);
  const linalg::Matrix yp = y_prep.Transform(mats.y);

  kcca_ = ml::KccaModel::Train(xp, yp, config_.kcca);

  train_xp_ = xp;
  RebuildIndexes();

  // Self neighbor-distance distributions over the training projection and
  // the preprocessed feature space, for anomaly thresholds: for each
  // training point, the mean distance to its k nearest other points. The
  // searches run batched (tree or brute); per-row results are bit-identical
  // to a per-row FindNearest loop (the contract in ml/knn.h and
  // ml/kdtree.h), so the stored thresholds don't depend on the index or
  // the thread count.
  const auto self_stats = [&](const std::vector<std::vector<ml::Neighbor>>&
                                  all_nbrs,
                              double* mean_out, double* p99_out) {
    const size_t n = all_nbrs.size();
    linalg::Vector self_dist(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      size_t used = 0;
      for (const ml::Neighbor& nb : all_nbrs[i]) {
        if (nb.index == i) continue;
        sum += nb.distance;
        if (++used == config_.k_neighbors) break;
      }
      self_dist[i] = used > 0 ? sum / static_cast<double>(used) : 0.0;
    }
    double mean = 0.0;
    for (double v : self_dist) mean += v;
    mean /= static_cast<double>(n);
    std::sort(self_dist.begin(), self_dist.end());
    *mean_out = mean;
    *p99_out = self_dist[static_cast<size_t>(0.99 * (n - 1))];
  };
  self_stats(IndexedNeighbors(proj_index_, kcca_.x_projection(),
                              kcca_.x_projection(), config_.k_neighbors + 1),
             &train_dist_mean_, &train_dist_p99_);
  self_stats(IndexedNeighbors(feat_index_, train_xp_, train_xp_,
                              config_.k_neighbors + 1),
             &train_feat_dist_mean_, &train_feat_dist_p99_);
  trained_ = true;
}

void Predictor::RebuildIndexes() {
  proj_index_.Clear();
  feat_index_.Clear();
  if (config_.model == ModelKind::kKcca &&
      config_.distance == ml::DistanceKind::kEuclidean &&
      config_.use_knn_index) {
    proj_index_.Build(kcca_.x_projection());
    feat_index_.Build(train_xp_);
  }
}

std::vector<std::vector<ml::Neighbor>> Predictor::IndexedNeighbors(
    const ml::KdTree& index, const linalg::Matrix& points,
    const linalg::Matrix& queries, size_t k) const {
  std::vector<std::vector<ml::Neighbor>> out;
  IndexedNeighborsInto(index, points, queries, k, &out);
  return out;
}

void Predictor::IndexedNeighborsInto(
    const ml::KdTree& index, const linalg::Matrix& points,
    const linalg::Matrix& queries, size_t k,
    std::vector<std::vector<ml::Neighbor>>* out) const {
  if (index.empty()) {
    *out = ml::FindNearestBatch(points, queries, k, config_.distance);
    return;
  }
  QPP_CHECK(queries.cols() == index.dims());
  // resize keeps the outer capacity and the inner vectors' capacity;
  // FindNearestRaw overwrites each inner vector in place.
  out->resize(queries.rows());
  // One-pointer context so the std::function built by ParallelFor stays
  // inside the small-buffer optimization (a multi-reference capture would
  // heap-allocate on every call).
  struct Ctx {
    const ml::KdTree* index;
    const double* qbase;
    size_t dims;
    size_t k;
    std::vector<std::vector<ml::Neighbor>>* out;
  } ctx{&index, queries.data().data(), queries.cols(), k, out};
  par::ParallelFor(
      0, queries.rows(), kIndexQueryGrain,
      [&ctx](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          ctx.index->FindNearestRaw(ctx.qbase + r * ctx.dims, ctx.k,
                                    &(*ctx.out)[r]);
        }
      },
      "kdtree_batch");
}

Prediction Predictor::Predict(const linalg::Vector& query_features) const {
  QPP_CHECK_MSG(trained_, "Predict before Train");
  Prediction out;
  const linalg::Vector xp = preprocessor_.TransformRow(query_features);

  if (config_.model == ModelKind::kRegression) {
    out.metrics = engine::QueryMetrics::FromVector(regression_.Predict(xp));
    out.predicted_type =
        workload::ClassifyElapsed(out.metrics.elapsed_seconds);
    return out;
  }

  const linalg::Vector q = kcca_.ProjectX(xp);
  const std::vector<ml::Neighbor> nbrs =
      proj_index_.empty()
          ? ml::FindNearest(kcca_.x_projection(), q, config_.k_neighbors,
                            config_.distance)
          : proj_index_.FindNearest(q, config_.k_neighbors);
  // Feature-space distance to the query's own feature-space neighbors (see
  // header: catches far-away inputs the saturating kernel would hide). These
  // are searched independently of the projection neighbors — the projection
  // legitimately ignores performance-irrelevant dimensions, so its
  // neighbors can be feature-distant without being anomalous.
  const std::vector<ml::Neighbor> feat_nbrs =
      feat_index_.empty()
          ? ml::FindNearest(train_xp_, xp, config_.k_neighbors,
                            config_.distance)
          : feat_index_.FindNearest(xp, config_.k_neighbors);
  return AssembleKccaPrediction(nbrs, feat_nbrs);
}

std::vector<Prediction> Predictor::PredictBatch(
    const std::vector<linalg::Vector>& queries,
    obs::TraceRecorder* trace) const {
  // Convenience wrapper: same pipeline with call-local scratch. Callers on
  // the steady-state serving path hold a warmed BatchScratch and use
  // PredictBatchInto directly.
  BatchScratch scratch;
  std::vector<Prediction> out;
  PredictBatchInto(queries, &scratch, &out, trace, nullptr);
  return out;
}

void Predictor::PredictBatchInto(const std::vector<linalg::Vector>& queries,
                                 BatchScratch* scratch,
                                 std::vector<Prediction>* out,
                                 obs::TraceRecorder* trace,
                                 BatchStageTimes* times) const {
  QPP_CHECK_MSG(trained_, "PredictBatch before Train");
  const size_t b = queries.size();
  // resize, not clear+push: reuses the Prediction objects (and their
  // neighbor_indices buffers) left from the previous batch.
  out->resize(b);
  if (b == 0) return;

  if (config_.model == ModelKind::kRegression) {
    // No shared work to amortize in the linear model; keep one code path.
    obs::Span span(trace, "regression_predict", "predict");
    for (size_t r = 0; r < b; ++r) (*out)[r] = Predict(queries[r]);
    return;
  }

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  {
    obs::Span span(trace, "preprocess", "predict");
    scratch->xp.Reshape(b, preprocessor_.dims());
    double* base = scratch->xp.data().data();
    const size_t dims = preprocessor_.dims();
    for (size_t r = 0; r < b; ++r) {
      preprocessor_.TransformRowTo(queries[r], base + r * dims);
    }
  }
  const auto t1 = Clock::now();
  ml::KccaProjectTimes ptimes;
  {
    obs::Span span(trace, "kcca_project", "predict");
    kcca_.ProjectXBatchInto(scratch->xp, &scratch->ws, &scratch->projections,
                            times != nullptr ? &ptimes : nullptr);
  }
  const auto t2 = Clock::now();
  {
    obs::Span span(trace, "knn_projection_space", "predict");
    IndexedNeighborsInto(proj_index_, kcca_.x_projection(),
                         scratch->projections, config_.k_neighbors,
                         &scratch->nbrs);
  }
  {
    obs::Span span(trace, "knn_feature_space", "predict");
    IndexedNeighborsInto(feat_index_, train_xp_, scratch->xp,
                         config_.k_neighbors, &scratch->feat_nbrs);
  }
  const auto t3 = Clock::now();
  {
    obs::Span span(trace, "assemble", "predict");
    for (size_t r = 0; r < b; ++r) {
      AssembleKccaPredictionInto(scratch->nbrs[r], scratch->feat_nbrs[r],
                                 &(*out)[r]);
    }
  }
  if (times != nullptr) {
    const auto t4 = Clock::now();
    const auto secs = [](Clock::time_point a, Clock::time_point z) {
      return std::chrono::duration<double>(z - a).count();
    };
    times->preprocess_s += secs(t0, t1);
    times->kernel_s += ptimes.kernel_s;
    times->solve_s += ptimes.solve_s;
    times->project_s += ptimes.project_s;
    times->knn_s += secs(t2, t3);
    times->assemble_s += secs(t3, t4);
  }
}

Prediction Predictor::AssembleKccaPrediction(
    const std::vector<ml::Neighbor>& projection_neighbors,
    const std::vector<ml::Neighbor>& feature_neighbors) const {
  Prediction out;
  AssembleKccaPredictionInto(projection_neighbors, feature_neighbors, &out);
  return out;
}

void Predictor::AssembleKccaPredictionInto(
    const std::vector<ml::Neighbor>& projection_neighbors,
    const std::vector<ml::Neighbor>& feature_neighbors,
    Prediction* outp) const {
  Prediction& out = *outp;
  // `out` may be a reused object from a previous batch: every field is
  // reassigned below; the neighbor list is cleared (keeping capacity) and
  // the vote default restored before the tally.
  out.neighbor_indices.clear();
  out.predicted_type = workload::QueryType::kFeather;
  double metrics[engine::QueryMetrics::kNumMetrics];
  ml::WeightedAverageTo(projection_neighbors, train_y_, config_.weighting,
                        metrics);
  out.metrics = engine::QueryMetrics::FromArray(metrics);

  double sum = 0.0;
  for (const ml::Neighbor& nb : projection_neighbors) {
    sum += nb.distance;
    out.neighbor_indices.push_back(nb.index);
  }
  out.mean_neighbor_distance =
      sum / static_cast<double>(projection_neighbors.size());
  double feat_sum = 0.0;
  for (const ml::Neighbor& nb : feature_neighbors) feat_sum += nb.distance;
  const double feat_dist =
      feat_sum / static_cast<double>(feature_neighbors.size());
  // Confidence maps the worse of the two normalized distances through
  // 1/(1+d/10): a typical query (distance ~= the training mean) scores
  // ~0.9, ten times the training mean scores 0.5, and far-out queries
  // decay toward 0. The /10 softening keeps in-distribution scores high so
  // thresholding at ~0.5 separates trust from review.
  const double scale = train_dist_mean_ + 1e-12;
  const double feat_scale = train_feat_dist_mean_ + 1e-12;
  out.confidence =
      1.0 / (1.0 + std::max(out.mean_neighbor_distance / scale,
                            feat_dist / feat_scale) /
                       10.0);
  out.anomalous =
      out.mean_neighbor_distance > config_.anomaly_factor * train_dist_p99_ ||
      feat_dist > config_.anomaly_factor * train_feat_dist_p99_;

  // Majority vote over the neighbors' measured categories. Fixed tally
  // array (ties to the lowest enum value, same as the ordered-map walk
  // this replaces) — the map's node allocations showed up in the Predict
  // profile.
  size_t votes[4] = {0, 0, 0, 0};
  for (const ml::Neighbor& nb : projection_neighbors) {
    const double elapsed = train_y_(nb.index, 0);
    votes[static_cast<size_t>(workload::ClassifyElapsed(elapsed))] += 1;
  }
  size_t best = 0;
  for (size_t t = 0; t < 4; ++t) {
    if (votes[t] > best) {
      best = votes[t];
      out.predicted_type = static_cast<workload::QueryType>(t);
    }
  }
}

const ml::KccaModel& Predictor::kcca() const {
  QPP_CHECK(trained_ && config_.model == ModelKind::kKcca);
  return kcca_;
}

namespace {
constexpr uint32_t kMagic = 0x4D505051;  // "QPPM"
constexpr uint32_t kVersion = 1;
}  // namespace

void Predictor::Save(std::ostream* os) const {
  QPP_CHECK(trained_);
  BinaryWriter w(*os);
  w.WriteU32(kMagic);
  w.WriteU32(kVersion);
  w.WriteU32(config_.model == ModelKind::kKcca ? 0u : 1u);
  w.WriteU64(config_.k_neighbors);
  w.WriteU32(static_cast<uint32_t>(config_.distance));
  w.WriteU32(static_cast<uint32_t>(config_.weighting));
  w.WriteU32(config_.preprocess_log1p ? 1 : 0);
  w.WriteU32(config_.preprocess_standardize ? 1 : 0);
  w.WriteDouble(config_.anomaly_factor);
  preprocessor_.Save(&w);
  linalg::WriteMatrix(&w, train_y_);
  linalg::WriteMatrix(&w, train_xp_);
  w.WriteDouble(train_dist_mean_);
  w.WriteDouble(train_dist_p99_);
  w.WriteDouble(train_feat_dist_mean_);
  w.WriteDouble(train_feat_dist_p99_);
  if (config_.model == ModelKind::kKcca) {
    kcca_.Save(&w);
  } else {
    // Regression: per-metric models.
    w.WriteU64(engine::QueryMetrics::kNumMetrics);
    for (const ml::LinearRegression& m : regression_.models()) {
      m.Save(&w);
    }
  }
}

Predictor Predictor::Load(std::istream* is) {
  BinaryReader r(*is);
  QPP_CHECK_MSG(r.ReadU32() == kMagic, "not a qpp model file");
  QPP_CHECK_MSG(r.ReadU32() == kVersion, "unsupported model version");
  PredictorConfig cfg;
  cfg.model = r.ReadU32() == 0 ? ModelKind::kKcca : ModelKind::kRegression;
  cfg.k_neighbors = static_cast<size_t>(r.ReadU64());
  cfg.distance = static_cast<ml::DistanceKind>(r.ReadU32());
  cfg.weighting = static_cast<ml::NeighborWeighting>(r.ReadU32());
  cfg.preprocess_log1p = r.ReadU32() != 0;
  cfg.preprocess_standardize = r.ReadU32() != 0;
  cfg.anomaly_factor = r.ReadDouble();
  Predictor p(cfg);
  p.preprocessor_ = ml::Preprocessor::Load(&r);
  p.train_y_ = linalg::ReadMatrix(&r);
  p.train_xp_ = linalg::ReadMatrix(&r);
  p.train_dist_mean_ = r.ReadDouble();
  p.train_dist_p99_ = r.ReadDouble();
  p.train_feat_dist_mean_ = r.ReadDouble();
  p.train_feat_dist_p99_ = r.ReadDouble();
  if (cfg.model == ModelKind::kKcca) {
    p.kcca_ = ml::KccaModel::Load(&r);
    // Derived, not serialized: the indexes are rebuilt from the loaded
    // projection and features so serve/shard/fabric reloads stay
    // byte-identical on the wire while still getting the fast lookup path.
    p.RebuildIndexes();
  } else {
    // Regression reload rebuilds the multi-output wrapper.
    const size_t m = static_cast<size_t>(r.ReadU64());
    QPP_CHECK(m == engine::QueryMetrics::kNumMetrics);
    // MultiOutputRegression has no direct setter; reconstruct via Fit-free
    // assignment through a friend-less copy: reload each model and push.
    std::vector<ml::LinearRegression> models;
    models.reserve(m);
    for (size_t i = 0; i < m; ++i) {
      models.push_back(ml::LinearRegression::Load(&r));
    }
    p.regression_ = ml::MultiOutputRegression();
    p.regression_.set_models(std::move(models));
  }
  p.trained_ = true;
  return p;
}

}  // namespace qpp::core
