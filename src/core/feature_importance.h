// Feature-influence probes (paper Section VII-C.2, "Can our results inform
// database development?", implemented):
// The paper wants to know which query operators drive performance, but
// KCCA's projection is hard to invert; instead it "compared the similarity
// of each feature of a test query with the corresponding features of its
// nearest neighbors" and eyeballed that join counts/cardinalities matter
// most. We implement that probe plus a sharper perturbation-based one.
#pragma once

#include <string>
#include <vector>

#include "core/predictor.h"

namespace qpp::core {

struct FeatureInfluence {
  std::string feature;
  /// Neighbor-agreement probe: mean |query - neighbor| along this dimension
  /// (preprocessed space) for the neighbors the projection actually picks.
  /// SMALL values mean the projection insists on agreement along this
  /// dimension — i.e. it is influential.
  double neighbor_disagreement = 0.0;
  /// Perturbation probe: mean relative change of the predicted elapsed time
  /// when this dimension is perturbed by +1 standard deviation. LARGE
  /// values mean influential.
  double perturbation_response = 0.0;
};

/// Runs both probes for every feature dimension over a probe set.
/// `feature_names` must align with the feature vectors' dimensions.
std::vector<FeatureInfluence> AnalyzeFeatureInfluence(
    const Predictor& predictor,
    const std::vector<ml::TrainingExample>& probes,
    const std::vector<std::string>& feature_names);

/// Renders the influence table sorted by perturbation response (desc).
std::string InfluenceTable(std::vector<FeatureInfluence> influences,
                           size_t top_k = 12);

}  // namespace qpp::core
