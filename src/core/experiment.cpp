#include "core/experiment.h"

#include <sstream>

#include "catalog/retailbank.h"
#include "catalog/tpcds.h"
#include "common/str_util.h"
#include "ml/risk.h"
#include "optimizer/optimizer.h"
#include "workload/generator.h"
#include "workload/problem_templates.h"
#include "workload/retailbank_templates.h"
#include "workload/tpcds_templates.h"

namespace qpp::core {

ExperimentData BuildTpcdsExperiment(const ExperimentOptions& options) {
  ExperimentData data;
  data.catalog = std::make_shared<catalog::Catalog>(
      catalog::MakeTpcdsCatalog(options.scale_factor));
  data.config = options.config;
  data.world_seed = options.world_seed;

  // Candidate template mix.
  std::vector<workload::QueryTemplate> mix;
  const std::vector<workload::QueryTemplate> tpcds =
      workload::TpcdsTemplates();
  const std::vector<workload::QueryTemplate> problem =
      workload::ProblemTemplates();
  for (size_t r = 0; r < options.tpcds_template_repeat; ++r) {
    mix.insert(mix.end(), tpcds.begin(), tpcds.end());
  }
  for (size_t r = 0; r < options.problem_template_repeat; ++r) {
    mix.insert(mix.end(), problem.begin(), problem.end());
  }

  const std::vector<workload::GeneratedQuery> queries =
      workload::GenerateWorkload(mix, options.num_candidates, options.seed);

  optimizer::OptimizerOptions opt_options;
  opt_options.world_seed = options.world_seed;
  opt_options.nodes_used = options.config.nodes_used;
  const optimizer::Optimizer opt(data.catalog.get(), opt_options);
  const engine::ExecutionSimulator sim(data.catalog.get(), options.config);

  data.pools = workload::BuildPools(queries, opt, sim,
                                    &data.num_failed_plans);
  return data;
}

ExperimentData BuildRetailBankExperiment(size_t num_queries, uint64_t seed,
                                         const engine::SystemConfig& config) {
  ExperimentData data;
  data.catalog = std::make_shared<catalog::Catalog>(
      catalog::MakeRetailBankCatalog());
  data.config = config;
  data.world_seed = optimizer::kDefaultWorldSeed;

  const std::vector<workload::GeneratedQuery> queries =
      workload::GenerateWorkload(workload::RetailBankTemplates(), num_queries,
                                 seed);
  optimizer::OptimizerOptions opt_options;
  opt_options.nodes_used = config.nodes_used;
  const optimizer::Optimizer opt(data.catalog.get(), opt_options);
  const engine::ExecutionSimulator sim(data.catalog.get(), config);
  data.pools =
      workload::BuildPools(queries, opt, sim, &data.num_failed_plans);
  return data;
}

std::vector<ml::TrainingExample> MakeExamples(
    const workload::QueryPools& pools, const std::vector<size_t>& indices) {
  std::vector<ml::TrainingExample> out;
  out.reserve(indices.size());
  for (size_t idx : indices) {
    QPP_CHECK(idx < pools.queries.size());
    ml::TrainingExample ex;
    ex.query_features = ml::PlanFeatureVector(pools.queries[idx].plan);
    ex.metrics = pools.queries[idx].metrics;
    out.push_back(std::move(ex));
  }
  return out;
}

std::vector<ml::TrainingExample> MakeAllExamples(
    const workload::QueryPools& pools) {
  std::vector<size_t> indices(pools.queries.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  return MakeExamples(pools, indices);
}

std::vector<MetricEvaluation> EvaluatePredictions(
    const PredictFn& predict, const std::vector<ml::TrainingExample>& test) {
  QPP_CHECK(!test.empty());
  const auto names = engine::QueryMetrics::MetricNames();
  std::vector<MetricEvaluation> evals(names.size());
  for (size_t m = 0; m < names.size(); ++m) {
    evals[m].metric = names[m];
    evals[m].predicted.reserve(test.size());
    evals[m].actual.reserve(test.size());
  }
  for (const ml::TrainingExample& ex : test) {
    const linalg::Vector pred = predict(ex.query_features).ToVector();
    const linalg::Vector act = ex.metrics.ToVector();
    for (size_t m = 0; m < names.size(); ++m) {
      evals[m].predicted.push_back(pred[m]);
      evals[m].actual.push_back(act[m]);
    }
  }
  for (MetricEvaluation& e : evals) {
    e.risk = ml::PredictiveRisk(e.predicted, e.actual);
    e.risk_drop1 =
        ml::PredictiveRiskDroppingOutliers(e.predicted, e.actual, 1);
    e.within20 = ml::FractionWithinRelative(e.predicted, e.actual, 0.20);
  }
  return evals;
}

std::string RiskTable(const std::vector<MetricEvaluation>& evals) {
  std::ostringstream os;
  os << StrFormat("%-18s %10s %12s %10s\n", "metric", "risk", "risk(-1out)",
                  "within20%");
  for (const MetricEvaluation& e : evals) {
    os << StrFormat("%-18s %10s %12s %9.0f%%\n", e.metric.c_str(),
                    ml::FormatRisk(e.risk).c_str(),
                    ml::FormatRisk(e.risk_drop1).c_str(), e.within20 * 100.0);
  }
  return os.str();
}

std::string ScatterCsv(const MetricEvaluation& eval) {
  std::ostringstream os;
  os << "predicted,actual\n";
  for (size_t i = 0; i < eval.predicted.size(); ++i) {
    os << FormatG(eval.predicted[i], 6) << "," << FormatG(eval.actual[i], 6)
       << "\n";
  }
  return os.str();
}

}  // namespace qpp::core
