// Workload management decisions driven by predictions (paper Section I:
// "Should we run this query? If so, when? How long do we wait before
// deciding something went wrong?").
#pragma once

#include <string>

#include "core/predictor.h"

namespace qpp::core {

enum class AdmissionDecision {
  kRunImmediately,   ///< predicted cheap: run now
  kScheduleOffPeak,  ///< predicted heavy: defer to a low-contention window
  kReject,           ///< predicted beyond the acceptable ceiling: do not run
  kNeedsReview,      ///< anomalous (far from all training neighbors)
};

const char* AdmissionDecisionName(AdmissionDecision d);

struct WorkloadManagerConfig {
  /// Queries predicted longer than this run off-peak.
  double offpeak_threshold_seconds = 300.0;
  /// Queries predicted longer than this are rejected outright.
  double reject_threshold_seconds = 7200.0;
  /// Flag anomalous predictions for human review instead of auto-deciding.
  bool review_anomalies = true;
  /// Kill multiplier: a running query is presumed stuck once it exceeds
  /// predicted elapsed by this factor (the paper's "how long do we wait
  /// before killing it" question).
  double kill_multiplier = 3.0;
  /// Floor so that millisecond predictions do not produce hair-trigger
  /// kill deadlines.
  double kill_floor_seconds = 60.0;
};

class WorkloadManager {
 public:
  WorkloadManager(const Predictor* predictor, WorkloadManagerConfig config);

  /// Decide-only manager for the serving path: admission decisions ride on
  /// serve::PredictionService responses (which carry their own Prediction,
  /// possibly a labeled optimizer-cost fallback), so no Predictor is held.
  /// Admit() is unavailable in this mode; use Decide()/KillDeadlineSeconds
  /// or serve::AdmitServed.
  explicit WorkloadManager(WorkloadManagerConfig config);

  /// Predicts and decides in one step.
  struct Outcome {
    Prediction prediction;
    AdmissionDecision decision = AdmissionDecision::kRunImmediately;
    double kill_deadline_seconds = 0.0;
  };
  Outcome Admit(const linalg::Vector& query_features) const;

  /// Decision for an existing prediction.
  AdmissionDecision Decide(const Prediction& prediction) const;

  /// The kill deadline for a query with this prediction.
  double KillDeadlineSeconds(const Prediction& prediction) const;

 private:
  const Predictor* predictor_;
  WorkloadManagerConfig config_;
};

}  // namespace qpp::core
