#include "core/retraining.h"

#include "common/check.h"
#include "obs/trace.h"
#include "par/thread_pool.h"

namespace qpp::core {

SlidingWindowPredictor::SlidingWindowPredictor(SlidingWindowConfig config)
    : config_(config), predictor_(config.predictor), rng_(config.seed) {
  QPP_CHECK(config_.window_capacity >= 8);
  QPP_CHECK(config_.retrain_every >= 1);
  QPP_CHECK(config_.fresh_fraction > 0.0 && config_.fresh_fraction <= 1.0);
  QPP_CHECK(config_.oldest_keep_probability >= 0.0 &&
            config_.oldest_keep_probability <= 1.0);
}

bool SlidingWindowPredictor::Observe(const linalg::Vector& query_features,
                                     const engine::QueryMetrics& measured) {
  ml::TrainingExample ex;
  ex.query_features = query_features;
  ex.metrics = measured;
  window_.push_back(std::move(ex));
  while (window_.size() > config_.window_capacity) window_.pop_front();

  if (++since_retrain_ < config_.retrain_every && predictor_.trained()) {
    return false;
  }
  return Retrain();
}

bool SlidingWindowPredictor::Retrain() {
  const size_t min_needed = config_.predictor.k_neighbors + 4;
  if (window_.size() < min_needed) return false;

  // Age-based down-sampling: window_[0] is the oldest observation.
  const size_t n = window_.size();
  const size_t fresh_start = static_cast<size_t>(
      static_cast<double>(n) * (1.0 - config_.fresh_fraction));
  std::vector<ml::TrainingExample> sample;
  sample.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i >= fresh_start) {
      sample.push_back({window_[i].query_features, window_[i].metrics});
      continue;
    }
    // Linear interpolation of survival probability over the stale region:
    // oldest -> oldest_keep_probability, newest-stale -> 1.0.
    const double age_frac =
        fresh_start > 0
            ? static_cast<double>(fresh_start - i) /
                  static_cast<double>(fresh_start)
            : 0.0;
    const double keep =
        1.0 - age_frac * (1.0 - config_.oldest_keep_probability);
    if (rng_.Bernoulli(keep)) {
      sample.push_back({window_[i].query_features, window_[i].metrics});
    }
  }
  if (sample.size() < min_needed) return false;

  // The heavy phases inside Train (kernel matrices, Gram products,
  // triangular solves) all route through the qpp::par pool, so a retrain
  // spreads across compute threads instead of monopolizing the observing
  // thread; the umbrella span puts the whole retrain on the "par" trace
  // timeline next to the individual region spans.
  Predictor fresh(config_.predictor);
  {
    obs::Span span(par::ObservedTrace(), "retrain", "par");
    span.AddArg("window", static_cast<uint64_t>(n));
    span.AddArg("sample", static_cast<uint64_t>(sample.size()));
    fresh.Train(sample);
  }
  predictor_ = std::move(fresh);
  since_retrain_ = 0;
  ++generation_;
  if (publish_hook_) publish_hook_(predictor_);
  return true;
}

}  // namespace qpp::core
