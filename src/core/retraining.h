// Continuous retraining (paper Section VII-C.4, future work implemented):
// "We also plan to investigate techniques to make KCCA more amenable to
//  continuous retraining (e.g., to reflect recently executed queries).
//  Such an enhancement would allow us to maintain a sliding training set
//  of data with a larger emphasis on more recently executed queries."
//
// SlidingWindowPredictor keeps a bounded window of the most recent
// (features, metrics) observations and retrains the underlying Predictor
// every `retrain_every` new observations. Recency emphasis is implemented
// by age-based down-sampling: the newest `fresh_fraction` of the window is
// always used, while older observations are kept with a probability that
// decays with age — so a regime change (data growth, configuration change,
// OS upgrade) washes out of the model at a controlled rate.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "core/predictor.h"

namespace qpp::core {

struct SlidingWindowConfig {
  /// Maximum observations retained.
  size_t window_capacity = 2000;
  /// Retrain after this many new observations (training is minutes-scale in
  /// the paper, sub-second here; still not something to do per query).
  size_t retrain_every = 200;
  /// Newest fraction of the window always included in training.
  double fresh_fraction = 0.5;
  /// Survival probability of the OLDEST retained observation; observations
  /// between the fresh region and the window tail interpolate linearly.
  double oldest_keep_probability = 0.25;
  /// Seed for the age-based down-sampling.
  uint64_t seed = 0x51EEDull;
  PredictorConfig predictor;
};

class SlidingWindowPredictor {
 public:
  explicit SlidingWindowPredictor(SlidingWindowConfig config = {});

  /// Records a finished query's features and measured metrics; retrains
  /// when due. Returns true if a retrain happened.
  bool Observe(const linalg::Vector& query_features,
               const engine::QueryMetrics& measured);

  /// Forces a retrain on the current window (no-op when the window is too
  /// small to train).
  bool Retrain();

  bool trained() const { return predictor_.trained(); }
  Prediction Predict(const linalg::Vector& query_features) const {
    return predictor_.Predict(query_features);
  }

  size_t window_size() const { return window_.size(); }
  /// Number of completed retrains (model generation).
  size_t generation() const { return generation_; }
  const Predictor& predictor() const { return predictor_; }

  /// Called with the freshly trained predictor after every completed
  /// retrain — the publish side of online serving. Wire it to
  /// serve::ModelRegistry::Publish and a retrain hot-swaps the service
  /// model without pausing traffic:
  ///
  ///   sliding.set_publish_hook([&](const Predictor& p) {
  ///     registry.Publish(p);   // copies into an immutable snapshot
  ///   });
  ///
  /// The hook runs on the thread that called Observe()/Retrain(), while
  /// the predictor is quiescent; the registry copy is what live readers
  /// see, so in-place retraining stays invisible to them.
  using PublishHook = std::function<void(const Predictor&)>;
  void set_publish_hook(PublishHook hook) { publish_hook_ = std::move(hook); }

 private:
  SlidingWindowConfig config_;
  std::deque<ml::TrainingExample> window_;
  size_t since_retrain_ = 0;
  size_t generation_ = 0;
  Predictor predictor_;
  PublishHook publish_hook_;
  Rng rng_;
};

}  // namespace qpp::core
