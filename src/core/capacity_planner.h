// Capacity planning / system sizing from predictions (paper Section I:
// "How big a system is needed to execute this workload with this time
// constraint?").
//
// One predictor per candidate configuration (the paper trains per-config
// models); the planner sums each configuration's predicted workload time
// and picks the smallest configuration meeting a deadline.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/predictor.h"

namespace qpp::core {

struct CandidateConfig {
  std::string name;
  int nodes = 4;
  /// Relative cost of the configuration (e.g. node count); the planner
  /// minimizes this among configs meeting the deadline.
  double cost = 1.0;
  const Predictor* predictor = nullptr;
};

struct WorkloadEstimate {
  std::string config_name;
  int nodes = 0;
  double total_elapsed_seconds = 0.0;
  double max_query_seconds = 0.0;
  /// Aggregate resource predictions across the workload.
  double total_disk_ios = 0.0;
  double total_message_bytes = 0.0;
  size_t anomalous_queries = 0;
};

class CapacityPlanner {
 public:
  void AddConfiguration(CandidateConfig config);
  const std::vector<CandidateConfig>& configurations() const {
    return configs_;
  }

  /// Predicts the workload on one configuration. The caller supplies the
  /// feature vectors *as planned for that configuration* (plans differ
  /// across configurations, as the paper observed on the 32-node system).
  WorkloadEstimate Estimate(const std::string& config_name,
                            const std::vector<linalg::Vector>& features) const;

  /// Smallest-cost configuration whose predicted total time meets the
  /// deadline. `features_per_config[i]` must align with configurations()[i].
  std::optional<WorkloadEstimate> Recommend(
      const std::vector<std::vector<linalg::Vector>>& features_per_config,
      double deadline_seconds) const;

 private:
  std::vector<CandidateConfig> configs_;
};

}  // namespace qpp::core
