#include "core/feature_importance.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/str_util.h"

namespace qpp::core {

std::vector<FeatureInfluence> AnalyzeFeatureInfluence(
    const Predictor& predictor,
    const std::vector<ml::TrainingExample>& probes,
    const std::vector<std::string>& feature_names) {
  QPP_CHECK(predictor.trained() && !probes.empty());
  const size_t p = feature_names.size();
  QPP_CHECK(probes[0].query_features.size() == p);

  std::vector<FeatureInfluence> out(p);
  for (size_t d = 0; d < p; ++d) out[d].feature = feature_names[d];

  // Per-dimension standard deviation of the probe set (raw space), for the
  // perturbation probe.
  linalg::Vector mean(p, 0.0), stddev(p, 0.0);
  for (const auto& ex : probes) {
    for (size_t d = 0; d < p; ++d) mean[d] += ex.query_features[d];
  }
  for (double& m : mean) m /= static_cast<double>(probes.size());
  for (const auto& ex : probes) {
    for (size_t d = 0; d < p; ++d) {
      const double v = ex.query_features[d] - mean[d];
      stddev[d] += v * v;
    }
  }
  for (double& s : stddev) {
    s = std::sqrt(s / static_cast<double>(probes.size()));
  }

  const linalg::Matrix& train_xp = predictor.preprocessed_training_features();
  for (const auto& ex : probes) {
    const Prediction base = predictor.Predict(ex.query_features);
    const double base_elapsed = std::max(base.metrics.elapsed_seconds, 1e-6);
    const linalg::Vector xp = predictor.PreprocessFeatures(ex.query_features);

    // Neighbor-agreement probe.
    for (size_t nb : base.neighbor_indices) {
      for (size_t d = 0; d < p; ++d) {
        out[d].neighbor_disagreement +=
            std::abs(xp[d] - train_xp(nb, d)) /
            static_cast<double>(base.neighbor_indices.size());
      }
    }

    // Perturbation probe: +1 sigma on each dimension independently.
    for (size_t d = 0; d < p; ++d) {
      if (stddev[d] <= 0.0) continue;  // constant dim: no response defined
      linalg::Vector perturbed = ex.query_features;
      perturbed[d] += stddev[d];
      const Prediction alt = predictor.Predict(perturbed);
      out[d].perturbation_response +=
          std::abs(alt.metrics.elapsed_seconds - base.metrics.elapsed_seconds) /
          base_elapsed;
    }
  }
  const double inv_n = 1.0 / static_cast<double>(probes.size());
  for (FeatureInfluence& fi : out) {
    fi.neighbor_disagreement *= inv_n;
    fi.perturbation_response *= inv_n;
  }
  return out;
}

std::string InfluenceTable(std::vector<FeatureInfluence> influences,
                           size_t top_k) {
  std::sort(influences.begin(), influences.end(),
            [](const FeatureInfluence& a, const FeatureInfluence& b) {
              return a.perturbation_response > b.perturbation_response;
            });
  std::ostringstream os;
  os << StrFormat("%-26s %18s %20s\n", "feature", "perturb response",
                  "nbr disagreement");
  for (size_t i = 0; i < influences.size() && i < top_k; ++i) {
    os << StrFormat("%-26s %18.3f %20.3f\n", influences[i].feature.c_str(),
                    influences[i].perturbation_response,
                    influences[i].neighbor_disagreement);
  }
  return os.str();
}

}  // namespace qpp::core
