// Two-step prediction (paper Experiment 3, Fig. 14).
//
// Step 1: a base one-model KCCA predictor classifies the incoming query as
// feather / golf ball / bowling ball by majority vote of its nearest
// neighbors' measured elapsed times.
// Step 2: a per-category KCCA model (trained only on that category's
// queries) produces the metric predictions. Categories with too few
// training queries fall back to the base model.
#pragma once

#include <map>
#include <memory>

#include "core/predictor.h"

namespace qpp::core {

class TwoStepPredictor {
 public:
  explicit TwoStepPredictor(PredictorConfig config = {});

  /// Trains the base model on all examples and a per-category model on each
  /// category with at least `min_category_size` members.
  void Train(const std::vector<ml::TrainingExample>& examples,
             size_t min_category_size = 12);
  bool trained() const { return trained_; }

  Prediction Predict(const linalg::Vector& query_features) const;

  const Predictor& base() const { return base_; }
  /// True if a dedicated second-step model exists for the category.
  bool HasCategoryModel(workload::QueryType type) const;
  /// The dedicated second-step model for `type`, or null when that
  /// category fell back to the base model (too few training members).
  /// Lets a sharded deployment publish each expert into its own registry.
  const Predictor* CategoryModel(workload::QueryType type) const;

 private:
  PredictorConfig config_;
  Predictor base_;
  std::map<workload::QueryType, std::unique_ptr<Predictor>> per_type_;
  bool trained_ = false;
};

}  // namespace qpp::core
