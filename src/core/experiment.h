// Shared experiment harness: builds the paper's workloads, pools, splits,
// and evaluation reports. Used by the bench binaries (one per paper table /
// figure) and by the integration tests, so every experiment is driven
// through the same code path.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/predictor.h"
#include "engine/simulator.h"
#include "ml/feature_vector.h"
#include "workload/pools.h"

namespace qpp::core {

struct ExperimentOptions {
  /// Number of candidate queries instantiated before pooling.
  size_t num_candidates = 3200;
  uint64_t seed = 42;
  /// Hidden-data-truth seed shared by optimizer estimate/true models.
  uint64_t world_seed = optimizer::kDefaultWorldSeed;
  engine::SystemConfig config = engine::SystemConfig::Neoview4();
  double scale_factor = 1.0;
  /// Weight of problem templates relative to TPC-DS templates in the
  /// candidate mix (the paper needed many problem-template instantiations
  /// to populate the golf/bowling pools).
  size_t problem_template_repeat = 2;
  size_t tpcds_template_repeat = 3;
};

struct ExperimentData {
  std::shared_ptr<catalog::Catalog> catalog;
  engine::SystemConfig config;
  uint64_t world_seed = 0;
  workload::QueryPools pools;
  size_t num_failed_plans = 0;
};

/// Generates the TPC-DS (+ problem) candidate workload, plans and runs
/// every query on the configured system, and pools by elapsed time.
ExperimentData BuildTpcdsExperiment(const ExperimentOptions& options);

/// Generates the customer (retailbank) workload for Experiment 4.
ExperimentData BuildRetailBankExperiment(size_t num_queries, uint64_t seed,
                                         const engine::SystemConfig& config);

/// Extracts plan-feature training examples for the given pool indices.
std::vector<ml::TrainingExample> MakeExamples(
    const workload::QueryPools& pools, const std::vector<size_t>& indices);

/// Plan-feature example for every query in the pools.
std::vector<ml::TrainingExample> MakeAllExamples(
    const workload::QueryPools& pools);

/// Per-metric evaluation of a prediction function over a test set.
struct MetricEvaluation {
  std::string metric;
  double risk = 0.0;            ///< predictive risk (NaN = Null)
  double risk_drop1 = 0.0;      ///< risk after dropping the worst outlier
  double within20 = 0.0;        ///< fraction within 20% relative error
  linalg::Vector predicted;
  linalg::Vector actual;
};

using PredictFn = std::function<engine::QueryMetrics(const linalg::Vector&)>;

std::vector<MetricEvaluation> EvaluatePredictions(
    const PredictFn& predict, const std::vector<ml::TrainingExample>& test);

/// Renders the per-metric risk table (the recurring shape of the paper's
/// Tables I-III and Fig. 16 rows).
std::string RiskTable(const std::vector<MetricEvaluation>& evals);

/// Renders a predicted-vs-actual scatter series as CSV text (one figure's
/// points; enough to re-plot the paper's log-log scatter figures).
std::string ScatterCsv(const MetricEvaluation& eval);

}  // namespace qpp::core
