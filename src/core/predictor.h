// The public prediction API — the tool the paper's Fig. 1 ships from the
// vendor to customer sites.
//
// A Predictor is trained on (query feature vector, measured metrics) pairs
// from one system configuration and predicts all six metrics for unseen
// queries before they run, using only compile-time information. The default
// configuration is the paper's winner: query-plan features, KCCA projection,
// 3 nearest neighbors by Euclidean distance, equally weighted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "engine/metrics.h"
#include "linalg/matrix.h"
#include "ml/feature_vector.h"
#include "ml/kcca.h"
#include "ml/kdtree.h"
#include "ml/knn.h"
#include "ml/linear_regression.h"
#include "ml/preprocess.h"
#include "obs/trace.h"
#include "par/workspace.h"
#include "workload/pools.h"

namespace qpp::core {

enum class ModelKind {
  kKcca,        ///< the paper's technique
  kRegression,  ///< OLS baseline (Section V-A)
};

struct PredictorConfig {
  ModelKind model = ModelKind::kKcca;
  size_t k_neighbors = 3;                       // Table II
  ml::DistanceKind distance = ml::DistanceKind::kEuclidean;   // Table I
  ml::NeighborWeighting weighting = ml::NeighborWeighting::kEqual;  // Table III
  ml::KccaOptions kcca;
  bool preprocess_log1p = true;
  bool preprocess_standardize = true;
  /// Test points whose mean neighbor distance exceeds anomaly_factor times
  /// the 99th percentile of the training self-distance distribution are
  /// flagged anomalous (paper Section VII-C.3). Quantiles, not z-scores:
  /// projection-space distances are heavy-tailed.
  double anomaly_factor = 1.5;
  /// Serve both neighbor searches (projection space and preprocessed
  /// feature space) from exact k-d trees (ml::KdTree) instead of the
  /// brute-force scans. Euclidean only; results are bit-identical either
  /// way (the tree is pinned to the brute oracle by tests/kdtree_test.cpp),
  /// so this is purely a latency knob — off is the oracle path the A/B
  /// benches compare against. Runtime-only: deliberately NOT serialized
  /// (the model format is unchanged; Load rebuilds the indexes under the
  /// loading config).
  bool use_knn_index = true;
};

struct Prediction {
  engine::QueryMetrics metrics;
  /// Mean distance to the k neighbors in the query projection.
  double mean_neighbor_distance = 0.0;
  /// 1 / (1 + normalized neighbor distance): 1 = high confidence.
  double confidence = 1.0;
  bool anomalous = false;
  /// Training-example indices of the neighbors used.
  std::vector<size_t> neighbor_indices;
  /// Majority feather/golf/bowling vote of the neighbors' measured elapsed
  /// times (used by the two-step predictor's first stage).
  workload::QueryType predicted_type = workload::QueryType::kFeather;
};

/// Thread-safety contract
/// ----------------------
/// A Predictor is immutable once trained: Train()/Load() write the model
/// state exactly once, and every const member function (Predict,
/// PredictBatch, PreprocessFeatures, the accessors) only reads it — there
/// is no mutable state, lazy initialization, or internal caching anywhere
/// in the predict path (audited down through ml::Preprocessor,
/// ml::KccaModel, and ml::FindNearest, which are all pure reads too). Any
/// number of threads may therefore call const methods on one shared
/// instance concurrently, which is how the serving worker pool uses it
/// (serve::PredictionService workers predict against one
/// std::shared_ptr<const Predictor> snapshot).
///
/// Train() itself is NOT safe to run concurrently with reads on the same
/// instance. Never retrain in place under traffic: train a fresh Predictor
/// and publish it atomically through serve::ModelRegistry instead.
class Predictor {
 public:
  explicit Predictor(PredictorConfig config = {});

  /// Trains on examples from one system configuration.
  void Train(const std::vector<ml::TrainingExample>& examples);
  bool trained() const { return trained_; }

  /// Predicts all six metrics for a query feature vector.
  Prediction Predict(const linalg::Vector& query_features) const;

  /// Micro-batch prediction: result i is bit-identical to
  /// Predict(queries[i]). One call runs the query-blocked KCCA pipeline
  /// (ml::KccaModel::ProjectXBatchInto: batched kernel tiles, one blocked
  /// triangular solve over the whole batch) and one batched neighbor
  /// search per space, amortizing both the per-row allocations and the
  /// per-query factor traffic that dominate single-query latency. This is
  /// the path the serving micro-batcher drains queued requests through.
  ///
  /// When `trace` is non-null, the internal stages (preprocess, KCCA
  /// kernel/projection, the two kNN searches, prediction assembly) are
  /// recorded as spans; a null trace costs one branch per stage. Tracing
  /// never changes the arithmetic.
  std::vector<Prediction> PredictBatch(
      const std::vector<linalg::Vector>& queries,
      obs::TraceRecorder* trace = nullptr) const;

  /// Reusable per-caller scratch for PredictBatchInto. All buffers grow to
  /// the steady-state batch shape on the first calls and are then reused:
  /// after warmup, PredictBatchInto performs no heap allocations (pinned
  /// by the allocation-count check in bench_timing_batch_predict). Not
  /// thread-safe; give each serving worker its own instance.
  struct BatchScratch {
    par::Workspace ws;              ///< KCCA kernel/solve staging
    linalg::Matrix xp;              ///< B x p preprocessed queries
    linalg::Matrix projections;     ///< B x d KCCA projections
    std::vector<std::vector<ml::Neighbor>> nbrs;       ///< projection space
    std::vector<std::vector<ml::Neighbor>> feat_nbrs;  ///< feature space
  };

  /// Wall-clock seconds per internal stage, accumulated (+=) across calls
  /// so a bench can sum over repetitions. kernel/solve/project split the
  /// KCCA projection stage (see ml::KccaProjectTimes); knn covers both
  /// neighbor searches.
  struct BatchStageTimes {
    double preprocess_s = 0.0;
    double kernel_s = 0.0;
    double solve_s = 0.0;
    double project_s = 0.0;
    double knn_s = 0.0;
    double assemble_s = 0.0;
  };

  /// PredictBatch into caller-owned storage. (*out)[i] is bit-identical to
  /// Predict(queries[i]); `out` is resized to the batch (existing
  /// Prediction objects — and their neighbor_indices capacity — are
  /// reused). With a warmed `scratch` this is the zero-allocation serving
  /// hot path. `times`, when non-null, receives the per-stage breakdown.
  void PredictBatchInto(const std::vector<linalg::Vector>& queries,
                        BatchScratch* scratch, std::vector<Prediction>* out,
                        obs::TraceRecorder* trace = nullptr,
                        BatchStageTimes* times = nullptr) const;

  const PredictorConfig& config() const { return config_; }
  /// The trained KCCA model (kKcca only). Exposed for the projection
  /// diagnostics of Fig. 6 and for the KNN design-sweep benches.
  const ml::KccaModel& kcca() const;
  /// N x 6 matrix of training metrics in paper order.
  const linalg::Matrix& training_metrics() const { return train_y_; }
  /// N x p preprocessed training features (diagnostics / feature probes).
  const linalg::Matrix& preprocessed_training_features() const {
    return train_xp_;
  }
  /// Applies the fitted preprocessing to a raw feature vector.
  linalg::Vector PreprocessFeatures(const linalg::Vector& raw) const {
    return preprocessor_.TransformRow(raw);
  }
  size_t num_training_examples() const { return train_y_.rows(); }

  /// Training self neighbor-distance statistics (the anomaly/confidence
  /// thresholds): mean and 99th percentile in the projection space and in
  /// the preprocessed feature space. Exposed for diagnostics dashboards
  /// and for the seed-equivalent reference predictor in
  /// bench_timing_batch_predict.
  struct DistanceStats {
    double mean = 0.0;
    double p99 = 0.0;
    double feat_mean = 0.0;
    double feat_p99 = 0.0;
  };
  DistanceStats training_distance_stats() const {
    return {train_dist_mean_, train_dist_p99_, train_feat_dist_mean_,
            train_feat_dist_p99_};
  }

  void Save(std::ostream* os) const;
  static Predictor Load(std::istream* is);

 private:
  friend class TwoStepPredictor;

  /// Everything downstream of the neighbor searches (metric averaging,
  /// confidence, anomaly flags, category vote) for one query. Shared by
  /// Predict and PredictBatch so the two paths cannot drift.
  Prediction AssembleKccaPrediction(
      const std::vector<ml::Neighbor>& projection_neighbors,
      const std::vector<ml::Neighbor>& feature_neighbors) const;

  /// AssembleKccaPrediction into a (possibly reused) Prediction object.
  /// Every field is reassigned — stale state from a previous batch cannot
  /// leak — and the neighbor list is cleared, not reallocated.
  void AssembleKccaPredictionInto(
      const std::vector<ml::Neighbor>& projection_neighbors,
      const std::vector<ml::Neighbor>& feature_neighbors,
      Prediction* out) const;

  /// k nearest rows of `points` for every row of `queries`: `index` when
  /// built (it must have been built over exactly `points`), else the brute
  /// batch search — bit-identical either way. Shared by PredictBatch and
  /// the training self-stats, for both search spaces.
  std::vector<std::vector<ml::Neighbor>> IndexedNeighbors(
      const ml::KdTree& index, const linalg::Matrix& points,
      const linalg::Matrix& queries, size_t k) const;

  /// IndexedNeighbors into caller-owned storage; outer and inner vectors
  /// keep their capacity across calls, so the indexed path allocates
  /// nothing after warmup (the brute fallback — non-default configs only —
  /// still assigns a fresh batch result).
  void IndexedNeighborsInto(const ml::KdTree& index,
                            const linalg::Matrix& points,
                            const linalg::Matrix& queries, size_t k,
                            std::vector<std::vector<ml::Neighbor>>* out) const;

  /// Builds (or clears) proj_index_ / feat_index_ from the trained
  /// projection and feature matrices according to the config. Called from
  /// Train and Load.
  void RebuildIndexes();

  PredictorConfig config_;
  bool trained_ = false;
  ml::Preprocessor preprocessor_;
  ml::KccaModel kcca_;
  /// Exact k-d trees over kcca_.x_projection() and train_xp_ (Euclidean +
  /// kKcca + use_knn_index only; empty otherwise). Derived state: rebuilt
  /// by Train/Load, never serialized. Immutable after training, so the
  /// thread-safety contract above is unchanged.
  ml::KdTree proj_index_;
  ml::KdTree feat_index_;
  ml::MultiOutputRegression regression_;
  linalg::Matrix train_y_;       ///< N x 6 raw metrics
  linalg::Matrix train_xp_;      ///< N x p preprocessed query features
  /// Training neighbor-distance distributions (anomaly thresholding) in
  /// the projection space and in the preprocessed feature space. Both are
  /// needed: a Gaussian kernel saturates for far-away inputs, which can
  /// project them deceptively close to the training mass, while the raw
  /// feature distance still exposes them.
  double train_dist_mean_ = 0.0;
  double train_dist_p99_ = 0.0;
  double train_feat_dist_mean_ = 0.0;
  double train_feat_dist_p99_ = 0.0;
};

}  // namespace qpp::core
