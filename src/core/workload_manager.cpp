#include "core/workload_manager.h"

#include <algorithm>

#include "common/check.h"

namespace qpp::core {

const char* AdmissionDecisionName(AdmissionDecision d) {
  switch (d) {
    case AdmissionDecision::kRunImmediately: return "run";
    case AdmissionDecision::kScheduleOffPeak: return "off-peak";
    case AdmissionDecision::kReject: return "reject";
    case AdmissionDecision::kNeedsReview: return "review";
  }
  return "?";
}

WorkloadManager::WorkloadManager(const Predictor* predictor,
                                 WorkloadManagerConfig config)
    : predictor_(predictor), config_(config) {
  QPP_CHECK(predictor != nullptr && predictor->trained());
}

WorkloadManager::WorkloadManager(WorkloadManagerConfig config)
    : predictor_(nullptr), config_(config) {}

WorkloadManager::Outcome WorkloadManager::Admit(
    const linalg::Vector& query_features) const {
  QPP_CHECK_MSG(predictor_ != nullptr,
                "Admit on a decide-only WorkloadManager; predictions come "
                "from the service in this mode");
  Outcome out;
  out.prediction = predictor_->Predict(query_features);
  out.decision = Decide(out.prediction);
  out.kill_deadline_seconds = KillDeadlineSeconds(out.prediction);
  return out;
}

AdmissionDecision WorkloadManager::Decide(const Prediction& p) const {
  if (config_.review_anomalies && p.anomalous) {
    return AdmissionDecision::kNeedsReview;
  }
  const double elapsed = p.metrics.elapsed_seconds;
  if (elapsed > config_.reject_threshold_seconds) {
    return AdmissionDecision::kReject;
  }
  if (elapsed > config_.offpeak_threshold_seconds) {
    return AdmissionDecision::kScheduleOffPeak;
  }
  return AdmissionDecision::kRunImmediately;
}

double WorkloadManager::KillDeadlineSeconds(const Prediction& p) const {
  return std::max(config_.kill_floor_seconds,
                  p.metrics.elapsed_seconds * config_.kill_multiplier);
}

}  // namespace qpp::core
