// ParallelFor / DeterministicReduce — the two primitives call sites use.
//
// ParallelFor(begin, end, grain, body) runs body(chunk_begin, chunk_end)
// over the fixed grain-sized chunks of [begin, end) on the global pool
// (see thread_pool.h for the determinism contract). Use it for elementwise
// work whose outputs are disjoint per index: matrix row blocks, kernel row
// strips, per-query batch slots.
//
// DeterministicReduce additionally combines per-chunk partial results in
// ascending chunk order, so a floating-point reduction gives bit-identical
// results at every thread count — including 1, because the chunking (and
// therefore the association of the partial sums) never depends on the pool
// size. Note the *grain* is part of the result's identity: the same range
// reduced with a different grain may differ in the last ulps, so pick a
// grain per call site and keep it.
//
// When a trace recorder is wired via par::SetObservability, every region
// appears as a span in category "par" named by `label` — training's matmul
// and kernel phases render in the Chrome trace next to the serve pipeline.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "par/thread_pool.h"

namespace qpp::par {

/// Runs body(chunk_begin, chunk_end) over every grain-sized chunk of
/// [begin, end), in parallel on the global pool. Blocks until done.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body,
                 const char* label = "parallel_for");

/// Like ParallelFor but the body also receives the chunk index — the
/// building block for chunk-indexed partial results.
void ParallelForChunks(size_t begin, size_t end, size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& body,
                       const char* label = "parallel_for");

/// Parallel map over fixed chunks + sequential combine in ascending chunk
/// order:
///
///   acc = init
///   for chunk c = 0, 1, ...: acc = combine(acc, map(chunk_begin, chunk_end))
///
/// map runs in parallel (one call per chunk, any thread); combine runs on
/// the calling thread in fixed order. Bit-identical across thread counts.
template <typename T, typename MapFn, typename CombineFn>
T DeterministicReduce(size_t begin, size_t end, size_t grain, T init,
                      const MapFn& map, const CombineFn& combine,
                      const char* label = "reduce") {
  const size_t chunks = ThreadPool::NumChunks(begin, end, grain);
  if (chunks == 0) return init;
  std::vector<T> partials(chunks);
  ParallelForChunks(
      begin, end, grain,
      [&](size_t b, size_t e, size_t c) { partials[c] = map(b, e); }, label);
  T acc = std::move(init);
  for (size_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

}  // namespace qpp::par
