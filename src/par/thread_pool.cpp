#include "par/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/check.h"
#include "obs/registry.h"

namespace qpp::par {

namespace {

// True while the current thread is executing chunks of a region (pool
// workers permanently, callers during their own share). Nested Execute()
// calls from such a thread run inline.
thread_local bool tl_in_region = false;

// Observability sinks (see SetObservability). Resolved once per wiring;
// the hot path reads them with relaxed atomics.
std::atomic<obs::Counter*> g_tasks_total{nullptr};
std::atomic<obs::Gauge*> g_queue_depth{nullptr};
std::atomic<obs::TraceRecorder*> g_trace{nullptr};

void CountChunks(size_t n) {
  if (obs::Counter* c = g_tasks_total.load(std::memory_order_relaxed)) {
    c->Inc(n);
  }
}

void RecordQueueDepth(size_t depth) {
  if (obs::Gauge* g = g_queue_depth.load(std::memory_order_relaxed)) {
    g->Set(static_cast<double>(depth));
  }
}

}  // namespace

ThreadPool::ThreadPool(size_t threads) : threads_(threads == 0 ? 1 : threads) {
  workers_.reserve(threads_ - 1);
  for (size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t ThreadPool::NumChunks(size_t begin, size_t end, size_t grain) {
  if (end <= begin) return 0;
  const size_t n = end - begin;
  const size_t g = grain == 0 ? 1 : grain;
  return (n + g - 1) / g;
}

void ThreadPool::RunShare(Region* region, size_t share) {
  const size_t grain = region->grain;
  for (size_t c = share; c < region->chunks; c += region->shares) {
    {
      std::lock_guard<std::mutex> lock(region->mu);
      if (region->failed) break;
    }
    const size_t b = region->begin + c * grain;
    const size_t e = std::min(region->end, b + grain);
    try {
      (*region->fn)(b, e, c);
    } catch (...) {
      std::lock_guard<std::mutex> lock(region->mu);
      if (!region->failed) {
        region->failed = true;
        region->error = std::current_exception();
      }
      break;
    }
  }
  {
    // Notify while still holding the lock: the Region lives on the
    // caller's stack, and the caller destroys it as soon as its wait sees
    // pending == 0. Signaling after unlock would let that destruction
    // race the tail of notify_all (TSan flags the cond destroy).
    std::lock_guard<std::mutex> lock(region->mu);
    if (--region->pending == 0) region->done_cv.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  tl_in_region = true;  // anything a worker runs is inside a region
  for (;;) {
    std::pair<Region*, size_t> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = queue_.front();
      queue_.pop_front();
      RecordQueueDepth(queue_.size());
    }
    RunShare(task.first, task.second);
  }
}

void ThreadPool::Execute(size_t begin, size_t end, size_t grain,
                         const std::function<void(size_t, size_t, size_t)>& fn) {
  const size_t g = grain == 0 ? 1 : grain;
  const size_t chunks = NumChunks(begin, end, g);
  if (chunks == 0) return;
  CountChunks(chunks);

  if (threads_ == 1 || chunks == 1 || tl_in_region) {
    // Inline path: same chunks, ascending order, caller's thread.
    for (size_t c = 0; c < chunks; ++c) {
      const size_t b = begin + c * g;
      const size_t e = std::min(end, b + g);
      fn(b, e, c);
    }
    return;
  }

  Region region;
  region.fn = &fn;
  region.begin = begin;
  region.end = end;
  region.grain = g;
  region.chunks = chunks;
  region.shares = std::min(threads_, chunks);
  region.pending = region.shares;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t s = 1; s < region.shares; ++s) {
      queue_.emplace_back(&region, s);
    }
    RecordQueueDepth(queue_.size());
  }
  cv_.notify_all();

  tl_in_region = true;
  RunShare(&region, 0);
  tl_in_region = false;

  {
    std::unique_lock<std::mutex> lock(region.mu);
    region.done_cv.wait(lock, [&region] { return region.pending == 0; });
    if (region.error) std::rethrow_exception(region.error);
  }
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

size_t DefaultThreads() {
  size_t n = 0;
  if (const char* env = std::getenv("QPP_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') n = static_cast<size_t>(v);
  }
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  return std::min<size_t>(n, 1024);
}

ThreadPool& GlobalPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  std::unique_ptr<ThreadPool>& slot = GlobalSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(DefaultThreads());
  return *slot;
}

size_t EffectiveThreads() { return GlobalPool().threads(); }

void SetGlobalThreads(size_t n) {
  QPP_CHECK_MSG(n >= 1, "SetGlobalThreads needs n >= 1");
  std::lock_guard<std::mutex> lock(g_pool_mu);
  std::unique_ptr<ThreadPool>& slot = GlobalSlot();
  slot.reset();  // joins the old workers
  slot = std::make_unique<ThreadPool>(std::min<size_t>(n, 1024));
}

void SetObservability(obs::MetricsRegistry* registry,
                      obs::TraceRecorder* trace) {
  if (registry != nullptr) {
    g_tasks_total.store(registry->GetCounter("qpp_par_tasks_total"),
                        std::memory_order_relaxed);
    g_queue_depth.store(registry->GetGauge("qpp_par_queue_depth"),
                        std::memory_order_relaxed);
  } else {
    g_tasks_total.store(nullptr, std::memory_order_relaxed);
    g_queue_depth.store(nullptr, std::memory_order_relaxed);
  }
  g_trace.store(trace, std::memory_order_relaxed);
}

obs::TraceRecorder* ObservedTrace() {
  return g_trace.load(std::memory_order_relaxed);
}

}  // namespace qpp::par
