#include "par/parallel_for.h"

#include "obs/trace.h"

namespace qpp::par {

void ParallelForChunks(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& body,
    const char* label) {
  obs::TraceRecorder* trace = ObservedTrace();
  if (trace == nullptr) {
    GlobalPool().Execute(begin, end, grain, body);
    return;
  }
  obs::Span span(trace, label, "par");
  span.AddArg("range", static_cast<uint64_t>(end > begin ? end - begin : 0));
  span.AddArg("grain", static_cast<uint64_t>(grain));
  span.AddArg("threads", static_cast<uint64_t>(EffectiveThreads()));
  GlobalPool().Execute(begin, end, grain, body);
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body,
                 const char* label) {
  ParallelForChunks(
      begin, end, grain,
      [&body](size_t b, size_t e, size_t /*chunk*/) { body(b, e); }, label);
}

}  // namespace qpp::par
