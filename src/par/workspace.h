// A reusable bump-allocator arena for batch-prediction scratch buffers.
//
// The serve-path hot loop (core::Predictor::PredictBatchInto →
// ml::KccaModel::ProjectXBatchInto) needs a handful of transient matrices
// per batch — the packed query block, the m×B kernel right-hand side, the
// projected rows. Allocating them per call puts malloc/free on the
// microsecond path and defeats the zero-allocation-after-warmup gate in
// bench_timing_batch_predict. A Workspace hands out doubles from one
// retained buffer instead: Alloc() bumps a cursor, Reset() rewinds it and
// keeps the capacity. While the arena is still growing, an oversized
// Alloc spills to an overflow block and the next Reset() folds the total
// into the main buffer — so after one warmup batch of the steady-state
// shape, Alloc/Reset never touch the heap again.
//
// Ownership: one Workspace per calling thread (serve workers each own
// one; the bench owns one). It is NOT thread-safe — parallel regions
// inside a batch carve disjoint ranges out of buffers the caller Alloc'd
// up front, they never Alloc concurrently.
//
// Returned memory is uninitialized (it holds bytes from earlier batches
// after reuse); every consumer fully overwrites what it Alloc'd, which
// keeps Reset() O(1) and is also why recycling cannot leak one batch's
// values into the next batch's results.
#pragma once

#include <cstddef>
#include <vector>

namespace qpp::par {

class Workspace {
 public:
  /// `n` doubles from the arena, 64-byte aligned (cache-line / AVX-512
  /// friendly). Valid until the next Reset(). Heap-allocates only while
  /// the arena is still growing toward its steady-state size.
  double* Alloc(size_t n) {
    const size_t need = Padded(n);
    if (used_ + need <= main_.size()) {
      double* p = main_.data() + used_;
      used_ += need;
      return p;
    }
    overflow_.emplace_back(need);
    overflow_total_ += need;
    return overflow_.back().data();
  }

  /// Rewinds the arena, retaining capacity. If the previous cycle
  /// overflowed, grows the main buffer to cover everything that was
  /// Alloc'd — the one (warmup-only) allocation per growth step.
  void Reset() {
    if (overflow_total_ > 0) {
      main_.resize(main_.size() + overflow_total_ + kAlignDoubles);
      overflow_.clear();
      overflow_total_ = 0;
    }
    used_ = AlignUp(main_.data());
  }

  /// Doubles currently reserved (main buffer only; overflow folds in at
  /// the next Reset). For tests and capacity introspection.
  size_t capacity() const { return main_.size(); }

 private:
  static constexpr size_t kAlignBytes = 64;
  static constexpr size_t kAlignDoubles = kAlignBytes / sizeof(double);

  static size_t Padded(size_t n) {
    return (n + kAlignDoubles - 1) / kAlignDoubles * kAlignDoubles;
  }
  /// Offset of the first 64-byte-aligned double in the main buffer.
  static size_t AlignUp(const double* base) {
    const auto addr = reinterpret_cast<size_t>(base);
    return (kAlignBytes - addr % kAlignBytes) % kAlignBytes / sizeof(double);
  }

  std::vector<double> main_;
  size_t used_ = 0;
  std::vector<std::vector<double>> overflow_;
  size_t overflow_total_ = 0;
};

}  // namespace qpp::par
