#include "par/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "par/simd_lanes.h"

namespace qpp::simd {

namespace {

bool EnvForcesScalar() {
  const char* v = std::getenv("QPP_SIMD");
  if (v == nullptr) return false;
  return std::strcmp(v, "scalar") == 0 || std::strcmp(v, "off") == 0 ||
         std::strcmp(v, "0") == 0;
}

/// -1 = uninitialized (read QPP_SIMD on first use), 0 = simd, 1 = scalar.
std::atomic<int> g_force_scalar{-1};

int ForceState() {
  int s = g_force_scalar.load(std::memory_order_relaxed);
  if (s < 0) {
    s = EnvForcesScalar() ? 1 : 0;
    g_force_scalar.store(s, std::memory_order_relaxed);
  }
  return s;
}

}  // namespace

const char* CompiledIsa() { return kIsaName; }

size_t CompiledLanes() { return kLanes; }

bool Enabled() { return ForceState() == 0; }

bool SetForceScalar(bool force) {
  const int prev = ForceState();
  g_force_scalar.store(force ? 1 : 0, std::memory_order_relaxed);
  return prev == 1;
}

const char* ActiveIsa() { return Enabled() ? kIsaName : "scalar (forced)"; }

}  // namespace qpp::simd
