// Runtime controls for the qpp::simd compute kernels.
//
// The hot inner loops (blocked GEMM in linalg/matrix.cpp, Gaussian kernel
// row evaluation in ml/kernel.cpp, the distance scans behind ml/knn.cpp and
// ml/kcca.cpp) each carry two implementations: the original scalar kernel,
// kept verbatim as the differential-testing oracle, and a hand-vectorized
// one built on the lane primitives in par/simd_lanes.h. The instruction set
// is chosen at **compile time** (AVX2 > SSE2 > NEON > scalar lanes,
// whatever the compiler flags enable — see the QPP_SIMD_ARCH option in the
// top-level CMakeLists.txt); this header only exposes the runtime switch
// that forces the scalar oracle path and a few introspection helpers.
//
// The determinism contract (docs/PERFORMANCE.md, "SIMD dispatch & oracle
// testing"): every vectorized kernel dispatched through Enabled() is
// **bit-identical** to its scalar oracle, because vectorization is only
// applied *across independent outputs* — each output element keeps the
// exact scalar accumulation chain (same order, same mul/add split, no FMA
// contraction). Lane width therefore never leaks into results: AVX2, SSE2,
// NEON, and forced-scalar builds all produce the same bytes, which is what
// lets the golden suite, the cross-thread-count byte-identity tests, and
// the serve/shard/fabric bit-identity contracts stay pinned while the
// kernels get faster. The only reassociating helpers (horizontal
// reductions, simd_lanes.h ReduceAdd) are not used on any pinned path and
// are gated by tolerance-based differential tests instead.
#pragma once

#include <cstddef>

namespace qpp::simd {

/// Name of the instruction set the vector kernels were compiled for:
/// "avx2", "sse2", "neon", or "scalar-lanes" (portable fallback).
const char* CompiledIsa();

/// Lane width (doubles per vector) of the compiled kernels.
size_t CompiledLanes();

/// True when the vectorized kernels are active. False when forced off via
/// SetForceScalar(true) or the QPP_SIMD environment variable ("scalar",
/// "off", or "0" — checked once, on first use). Either way the results are
/// bit-identical; this switch exists for differential testing and for
/// isolating suspected SIMD miscompiles in the field.
bool Enabled();

/// Forces (true) or re-allows (false) the scalar oracle path, overriding
/// the environment. Takes effect for subsequent kernel dispatches; not a
/// synchronization point, so flip it only between compute regions (tests
/// do). Returns the previous forced state.
bool SetForceScalar(bool force);

/// "avx2" etc. when Enabled(), "scalar (forced)" otherwise — for bench
/// reports and statsz lines.
const char* ActiveIsa();

}  // namespace qpp::simd
