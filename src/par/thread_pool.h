// qpp::par — the shared parallel compute core.
//
// A small fixed-size thread pool with one job: run grain-sized chunks of an
// index range on several threads *without ever changing a numeric result*.
// Every hot loop in linalg/ and ml/ (kernel-matrix construction, the Gram
// products and triangular solves of the exact KCCA solver, batch projection
// and batch kNN on the serving path) routes through this pool, so training
// and batch prediction scale with cores while staying bit-identical to the
// single-threaded code they replaced.
//
// Determinism contract
// --------------------
//  * Static partitioning: a range [begin, end) with grain g is always split
//    into the same chunks — chunk c covers [begin + c*g, min(end, begin +
//    (c+1)*g)). The split depends only on (range, grain), NEVER on the
//    thread count, so per-chunk partial results are the same objects no
//    matter how many threads exist.
//  * Static assignment: chunk c runs on share (c mod shares); no work
//    stealing, no dynamic scheduling.
//  * Fixed reduce order: DeterministicReduce (parallel_for.h) combines the
//    per-chunk partials sequentially in ascending chunk order. Together
//    with the fixed split this makes floating-point reductions bit-identical
//    across QPP_THREADS = 1, 2, 8, ... — verified by tests/par_test.cpp,
//    which trains and serializes full models at several thread counts and
//    asserts byte equality.
//  * Elementwise ParallelFor bodies write disjoint outputs, so for them the
//    contract is simply that the same (begin, end, grain, body) runs the
//    same per-element arithmetic as a sequential loop would.
//
// Sizing: the global pool reads QPP_THREADS (clamped to [1, 1024]) at first
// use, falling back to std::thread::hardware_concurrency(). A pool of size
// T spawns T-1 workers; the calling thread always executes share 0, so
// QPP_THREADS=1 never creates a thread and every region runs inline.
// Nested regions (a parallel body calling another parallel op) execute
// inline on the worker that hit them — same values, no deadlock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace qpp::obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace qpp::obs

namespace qpp::par {

class ThreadPool {
 public:
  /// A pool of `threads` total compute threads (>= 1): `threads - 1`
  /// workers plus the caller of Execute().
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t threads() const { return threads_; }

  /// The fixed chunking rule: ceil((end - begin) / grain) chunks, the last
  /// one possibly partial. Depends only on the range and grain.
  static size_t NumChunks(size_t begin, size_t end, size_t grain);

  /// Runs fn(chunk_begin, chunk_end, chunk_index) for every chunk of
  /// [begin, end), blocking until all chunks finished. Chunks are assigned
  /// round-robin to at most `threads()` shares; runs entirely inline when
  /// the pool has one thread, there is one chunk, or the caller is already
  /// inside a parallel region. Rethrows the first chunk exception after
  /// the region drains (remaining chunks of the failing region are
  /// skipped).
  void Execute(size_t begin, size_t end, size_t grain,
               const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  struct Region {
    const std::function<void(size_t, size_t, size_t)>* fn = nullptr;
    size_t begin = 0;
    size_t grain = 0;
    size_t end = 0;
    size_t chunks = 0;
    size_t shares = 0;
    std::mutex mu;
    std::condition_variable done_cv;
    size_t pending = 0;
    std::exception_ptr error;
    bool failed = false;  ///< set with `mu`; later chunks bail out early
  };

  void WorkerLoop();
  void RunShare(Region* region, size_t share);

  const size_t threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::pair<Region*, size_t>> queue_;
  bool stop_ = false;
};

/// The process-wide pool, created lazily with DefaultThreads().
ThreadPool& GlobalPool();

/// Total compute threads the global pool uses (pool size, not worker
/// count). Creates the pool on first call.
size_t EffectiveThreads();

/// Replaces the global pool with one of `n` threads. Joins the old pool's
/// workers first. Must not be called while any parallel region is in
/// flight — intended for process startup and the cross-thread-count
/// determinism tests.
void SetGlobalThreads(size_t n);

/// QPP_THREADS env var if set and valid, else hardware_concurrency(),
/// clamped to [1, 1024].
size_t DefaultThreads();

/// Wires the par layer into an observability sink. Registers
/// `qpp_par_tasks_total` (chunks executed) and `qpp_par_queue_depth`
/// (worker queue depth gauge) on `registry`, and wraps every parallel
/// region in a trace span (category "par") on `trace`. Either may be null;
/// pass (nullptr, nullptr) to detach before the sinks are destroyed. Not
/// synchronized against in-flight regions — call from quiescent setup /
/// teardown code.
void SetObservability(obs::MetricsRegistry* registry,
                      obs::TraceRecorder* trace);

/// The trace recorder handed to SetObservability (null when detached).
/// Lets callers (e.g. SlidingWindowPredictor::Retrain) put their own spans
/// on the same "par" timeline.
obs::TraceRecorder* ObservedTrace();

}  // namespace qpp::par
