// Portable double-precision lane primitives for the qpp::simd kernels.
//
// One vector type, VecD, holding kLanes doubles, selected at compile time:
// AVX-512 (8 lanes) > AVX2 (4) > SSE2 (2) > NEON (2) > a plain-array
// fallback (2 lanes, written so the compiler may — but need not —
// vectorize it). Every
// operation here is IEEE-exact per lane (add/sub/mul/div/sqrt/min/max are
// correctly rounded on all three ISAs, and hardware sqrt matches
// std::sqrt), so a kernel that assigns one *independent* output chain per
// lane is bit-identical to its scalar form at any lane width. The two
// deliberate exceptions, ReduceAdd and ReduceMax, collapse lanes
// horizontally: ReduceMax is still exact (max is associative), but
// ReduceAdd reassociates the sum and may differ from a sequential scalar
// sum in the final ulps — it must never be used on a path whose bytes are
// pinned (see par/simd.h), and tests/simd_kernel_test.cpp gates it with a
// relative-tolerance differential check instead of a bitwise one.
//
// This header is internal to the kernel .cpp files in libqpp (which are
// all compiled with one consistent set of ISA flags); public call sites
// use par/simd.h. Keeping the inline vector code out of public headers
// avoids ODR hazards between translation units compiled with different
// flags.
#pragma once

#include <cmath>
#include <cstddef>

#if defined(__AVX512F__)
#include <immintrin.h>
#define QPP_SIMD_ISA_AVX512 1
#elif defined(__AVX2__)
#include <immintrin.h>
#define QPP_SIMD_ISA_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#include <emmintrin.h>
#define QPP_SIMD_ISA_SSE2 1
#elif defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#define QPP_SIMD_ISA_NEON 1
#else
#define QPP_SIMD_ISA_SCALAR 1
#endif

namespace qpp::simd {

#if defined(QPP_SIMD_ISA_AVX512)

inline constexpr size_t kLanes = 8;
inline constexpr const char* kIsaName = "avx512";

struct VecD {
  __m512d v;
};

inline VecD Zero() { return {_mm512_setzero_pd()}; }
inline VecD Splat(double x) { return {_mm512_set1_pd(x)}; }
inline VecD LoadU(const double* p) { return {_mm512_loadu_pd(p)}; }
inline void StoreU(double* p, VecD a) { _mm512_storeu_pd(p, a.v); }
/// Lanes p[0], p[stride], ..., p[7*stride] — the "one training row per
/// lane" load used by the distance kernels.
inline VecD GatherStride(const double* p, size_t stride) {
  return {_mm512_set_pd(p[7 * stride], p[6 * stride], p[5 * stride],
                        p[4 * stride], p[3 * stride], p[2 * stride],
                        p[stride], p[0])};
}
inline VecD Add(VecD a, VecD b) { return {_mm512_add_pd(a.v, b.v)}; }
inline VecD Sub(VecD a, VecD b) { return {_mm512_sub_pd(a.v, b.v)}; }
inline VecD Mul(VecD a, VecD b) { return {_mm512_mul_pd(a.v, b.v)}; }
inline VecD Div(VecD a, VecD b) { return {_mm512_div_pd(a.v, b.v)}; }
inline VecD Sqrt(VecD a) { return {_mm512_sqrt_pd(a.v)}; }
inline VecD Min(VecD a, VecD b) { return {_mm512_min_pd(a.v, b.v)}; }
inline VecD Max(VecD a, VecD b) { return {_mm512_max_pd(a.v, b.v)}; }
/// Bitmask of lanes where a < b. AVX-512 compares produce a mask register
/// directly (__mmask8), one bit per lane, same convention as movemask.
inline unsigned MaskLT(VecD a, VecD b) {
  return static_cast<unsigned>(_mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ));
}
/// Bitmask of lanes where a <= b.
inline unsigned MaskLE(VecD a, VecD b) {
  return static_cast<unsigned>(_mm512_cmp_pd_mask(a.v, b.v, _CMP_LE_OQ));
}

#elif defined(QPP_SIMD_ISA_AVX2)

inline constexpr size_t kLanes = 4;
inline constexpr const char* kIsaName = "avx2";

struct VecD {
  __m256d v;
};

inline VecD Zero() { return {_mm256_setzero_pd()}; }
inline VecD Splat(double x) { return {_mm256_set1_pd(x)}; }
inline VecD LoadU(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void StoreU(double* p, VecD a) { _mm256_storeu_pd(p, a.v); }
/// Lanes p[0], p[stride], p[2*stride], p[3*stride] — the "one training row
/// per lane" load used by the distance kernels.
inline VecD GatherStride(const double* p, size_t stride) {
  return {_mm256_set_pd(p[3 * stride], p[2 * stride], p[stride], p[0])};
}
inline VecD Add(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
inline VecD Sub(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline VecD Mul(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline VecD Div(VecD a, VecD b) { return {_mm256_div_pd(a.v, b.v)}; }
inline VecD Sqrt(VecD a) { return {_mm256_sqrt_pd(a.v)}; }
inline VecD Min(VecD a, VecD b) { return {_mm256_min_pd(a.v, b.v)}; }
inline VecD Max(VecD a, VecD b) { return {_mm256_max_pd(a.v, b.v)}; }
/// Bitmask of lanes where a < b.
inline unsigned MaskLT(VecD a, VecD b) {
  return static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)));
}
/// Bitmask of lanes where a <= b.
inline unsigned MaskLE(VecD a, VecD b) {
  return static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)));
}

#elif defined(QPP_SIMD_ISA_SSE2)

inline constexpr size_t kLanes = 2;
inline constexpr const char* kIsaName = "sse2";

struct VecD {
  __m128d v;
};

inline VecD Zero() { return {_mm_setzero_pd()}; }
inline VecD Splat(double x) { return {_mm_set1_pd(x)}; }
inline VecD LoadU(const double* p) { return {_mm_loadu_pd(p)}; }
inline void StoreU(double* p, VecD a) { _mm_storeu_pd(p, a.v); }
inline VecD GatherStride(const double* p, size_t stride) {
  return {_mm_set_pd(p[stride], p[0])};
}
inline VecD Add(VecD a, VecD b) { return {_mm_add_pd(a.v, b.v)}; }
inline VecD Sub(VecD a, VecD b) { return {_mm_sub_pd(a.v, b.v)}; }
inline VecD Mul(VecD a, VecD b) { return {_mm_mul_pd(a.v, b.v)}; }
inline VecD Div(VecD a, VecD b) { return {_mm_div_pd(a.v, b.v)}; }
inline VecD Sqrt(VecD a) { return {_mm_sqrt_pd(a.v)}; }
inline VecD Min(VecD a, VecD b) { return {_mm_min_pd(a.v, b.v)}; }
inline VecD Max(VecD a, VecD b) { return {_mm_max_pd(a.v, b.v)}; }
inline unsigned MaskLT(VecD a, VecD b) {
  return static_cast<unsigned>(_mm_movemask_pd(_mm_cmplt_pd(a.v, b.v)));
}
inline unsigned MaskLE(VecD a, VecD b) {
  return static_cast<unsigned>(_mm_movemask_pd(_mm_cmple_pd(a.v, b.v)));
}

#elif defined(QPP_SIMD_ISA_NEON)

inline constexpr size_t kLanes = 2;
inline constexpr const char* kIsaName = "neon";

struct VecD {
  float64x2_t v;
};

inline VecD Zero() { return {vdupq_n_f64(0.0)}; }
inline VecD Splat(double x) { return {vdupq_n_f64(x)}; }
inline VecD LoadU(const double* p) { return {vld1q_f64(p)}; }
inline void StoreU(double* p, VecD a) { vst1q_f64(p, a.v); }
inline VecD GatherStride(const double* p, size_t stride) {
  float64x2_t v = vdupq_n_f64(p[0]);
  v = vsetq_lane_f64(p[stride], v, 1);
  return {v};
}
inline VecD Add(VecD a, VecD b) { return {vaddq_f64(a.v, b.v)}; }
inline VecD Sub(VecD a, VecD b) { return {vsubq_f64(a.v, b.v)}; }
inline VecD Mul(VecD a, VecD b) { return {vmulq_f64(a.v, b.v)}; }
inline VecD Div(VecD a, VecD b) { return {vdivq_f64(a.v, b.v)}; }
inline VecD Sqrt(VecD a) { return {vsqrtq_f64(a.v)}; }
inline VecD Min(VecD a, VecD b) { return {vminq_f64(a.v, b.v)}; }
inline VecD Max(VecD a, VecD b) { return {vmaxq_f64(a.v, b.v)}; }
inline unsigned MaskLT(VecD a, VecD b) {
  const uint64x2_t m = vcltq_f64(a.v, b.v);
  return static_cast<unsigned>((vgetq_lane_u64(m, 0) & 1) |
                               ((vgetq_lane_u64(m, 1) & 1) << 1));
}
inline unsigned MaskLE(VecD a, VecD b) {
  const uint64x2_t m = vcleq_f64(a.v, b.v);
  return static_cast<unsigned>((vgetq_lane_u64(m, 0) & 1) |
                               ((vgetq_lane_u64(m, 1) & 1) << 1));
}

#else  // QPP_SIMD_ISA_SCALAR

inline constexpr size_t kLanes = 2;
inline constexpr const char* kIsaName = "scalar-lanes";

struct VecD {
  double v[2];
};

inline VecD Zero() { return {{0.0, 0.0}}; }
inline VecD Splat(double x) { return {{x, x}}; }
inline VecD LoadU(const double* p) { return {{p[0], p[1]}}; }
inline void StoreU(double* p, VecD a) {
  p[0] = a.v[0];
  p[1] = a.v[1];
}
inline VecD GatherStride(const double* p, size_t stride) {
  return {{p[0], p[stride]}};
}
inline VecD Add(VecD a, VecD b) { return {{a.v[0] + b.v[0], a.v[1] + b.v[1]}}; }
inline VecD Sub(VecD a, VecD b) { return {{a.v[0] - b.v[0], a.v[1] - b.v[1]}}; }
inline VecD Mul(VecD a, VecD b) { return {{a.v[0] * b.v[0], a.v[1] * b.v[1]}}; }
inline VecD Div(VecD a, VecD b) { return {{a.v[0] / b.v[0], a.v[1] / b.v[1]}}; }
inline VecD Sqrt(VecD a) { return {{std::sqrt(a.v[0]), std::sqrt(a.v[1])}}; }
inline VecD Min(VecD a, VecD b) {
  return {{a.v[0] < b.v[0] ? a.v[0] : b.v[0],
           a.v[1] < b.v[1] ? a.v[1] : b.v[1]}};
}
inline VecD Max(VecD a, VecD b) {
  return {{a.v[0] > b.v[0] ? a.v[0] : b.v[0],
           a.v[1] > b.v[1] ? a.v[1] : b.v[1]}};
}
inline unsigned MaskLT(VecD a, VecD b) {
  return (a.v[0] < b.v[0] ? 1u : 0u) | (a.v[1] < b.v[1] ? 2u : 0u);
}
inline unsigned MaskLE(VecD a, VecD b) {
  return (a.v[0] <= b.v[0] ? 1u : 0u) | (a.v[1] <= b.v[1] ? 2u : 0u);
}

#endif

/// Extracts lane i (0 <= i < kLanes).
inline double Lane(VecD a, size_t i) {
  double tmp[kLanes];
  StoreU(tmp, a);
  return tmp[i];
}

/// Horizontal sum of the lanes, combined in ascending lane order. NOTE:
/// using this after a lane-parallel accumulation *reassociates* the overall
/// sum — see the header comment. Exact per-lane order is still fixed, so
/// the result is deterministic, just not bitwise equal to a scalar loop.
inline double ReduceAdd(VecD a) {
  double tmp[kLanes];
  StoreU(tmp, a);
  double s = tmp[0];
  for (size_t i = 1; i < kLanes; ++i) s += tmp[i];
  return s;
}

/// Horizontal max of the lanes. Max is associative and commutative over
/// non-NaN doubles, so unlike ReduceAdd this is bit-exact.
inline double ReduceMax(VecD a) {
  double tmp[kLanes];
  StoreU(tmp, a);
  double m = tmp[0];
  for (size_t i = 1; i < kLanes; ++i) m = m > tmp[i] ? m : tmp[i];
  return m;
}

// ---------------------------------------------------------------------------
// Shared kernel building blocks. Each vector lane carries one *independent*
// output's full scalar accumulation chain, so every helper below is
// bit-identical to its scalar counterpart.
// ---------------------------------------------------------------------------

/// o[j] += a * b[j] for j in [0, n) — the GEMM inner loop. Each o[j] gets
/// exactly one mul and one add, as in the scalar kernel.
inline void AxpyRow(double* o, double a, const double* b, size_t n) {
  const VecD va = Splat(a);
  size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    StoreU(o + j, Add(LoadU(o + j), Mul(va, LoadU(b + j))));
  }
  for (; j < n; ++j) o[j] += a * b[j];
}

/// o[j] -= a * b[j]. Bit-identical to the scalar `o[j] -= a*b[j]` because
/// x - y*z == x + (-y)*z exactly in IEEE arithmetic (negation is exact).
inline void AxpyNegRow(double* o, double a, const double* b, size_t n) {
  AxpyRow(o, -a, b, n);
}

/// o[q] = o[q] / d for q in [0, n). One IEEE division per element — lane
/// division is correctly rounded, so this matches the scalar chain bitwise
/// (a reciprocal-multiply would not).
inline void DivRowBy(double* o, double d, size_t n) {
  const VecD vd = Splat(d);
  size_t q = 0;
  for (; q + kLanes <= n; q += kLanes) {
    StoreU(o + q, Div(LoadU(o + q), vd));
  }
  for (; q < n; ++q) o[q] = o[q] / d;
}

/// The blocked-forward-substitution trailing update:
///
///   srow[q] -= sum over j in [0, nb) of l[j*lstride] * g[j*gstride + q]
///
/// applied as nb running subtractions in ascending j per output element —
/// exactly the scalar per-column chain, never a dot-then-subtract (which
/// would reassociate). Lane q carries output column q; the accumulator
/// stays in a register across the j loop, so a tile of nb pivots costs one
/// load + one store of srow instead of nb round trips through AxpyNegRow.
inline void SolveUpdateRow(double* srow, const double* l, size_t lstride,
                           const double* g, size_t gstride, size_t nb,
                           size_t n) {
  size_t q = 0;
  for (; q + kLanes <= n; q += kLanes) {
    VecD acc = LoadU(srow + q);
    for (size_t j = 0; j < nb; ++j) {
      acc = Sub(acc, Mul(Splat(l[j * lstride]), LoadU(g + j * gstride + q)));
    }
    StoreU(srow + q, acc);
  }
  for (; q < n; ++q) {
    double s = srow[q];
    for (size_t j = 0; j < nb; ++j) s -= l[j * lstride] * g[j * gstride + q];
    srow[q] = s;
  }
}

/// Squared Euclidean distances from `query` to kLanes consecutive rows of a
/// row-major matrix: lane L accumulates sum_j (rows[L*stride + j] - q[j])^2
/// over ascending j — the exact SquaredDistanceRaw chain per lane.
inline VecD SquaredDistanceRows(const double* rows, size_t stride,
                                const double* query, size_t dims) {
  VecD acc = Zero();
  for (size_t j = 0; j < dims; ++j) {
    const VecD d = Sub(GatherStride(rows + j, stride), Splat(query[j]));
    acc = Add(acc, Mul(d, d));
  }
  return acc;
}

/// Rows per column-major tile used by the tiled distance kernels below.
/// A tile stores up to kTileRows consecutive rows coordinate-major —
/// element (r, j) of a tile holding `rows` rows lives at tile[j * rows + r]
/// — so the scan loads full vectors of *consecutive rows* per coordinate
/// instead of gathering strided elements. The distance scan is
/// throughput-bound on those loads (gathers decompose into scalar loads;
/// see docs/PERFORMANCE.md), so the tiled form is the fast path for
/// indexes that own their storage (ml::KdTree leaves, the KCCA pivot
/// block). Layout is derived state, rebuilt by whoever owns it, never
/// serialized — the value read per (row, coordinate) is the same double,
/// so tiled and row-major scans are bit-identical.
inline constexpr size_t kTileRows = 4 * kLanes;

/// Squared distances from `query` to kLanes consecutive tile rows starting
/// at row r0 of a column-major tile holding `rows` rows. Lane L carries
/// row r0+L's full ascending-j chain — exactly the scalar chain.
inline VecD SquaredDistanceTile(const double* tile, size_t rows, size_t r0,
                                const double* query, size_t dims) {
  VecD acc = Zero();
  for (size_t j = 0; j < dims; ++j) {
    const VecD d = Sub(LoadU(tile + j * rows + r0), Splat(query[j]));
    acc = Add(acc, Mul(d, d));
  }
  return acc;
}

/// Four independent SquaredDistanceTile chains over 4*kLanes consecutive
/// tile rows starting at row r0: out[c] holds the lanes for tile rows
/// (r0 + c*kLanes ..). Contiguous full-width loads plus four accumulators
/// in flight — the combination that saturates the load ports (neither
/// alone does: gathers cost ~2 uops per element, and a single accumulator
/// is latency-bound on its dependent add chain).
inline void SquaredDistanceTile4(const double* tile, size_t rows, size_t r0,
                                 const double* query, size_t dims,
                                 VecD* out) {
  VecD a0 = Zero();
  VecD a1 = Zero();
  VecD a2 = Zero();
  VecD a3 = Zero();
  for (size_t j = 0; j < dims; ++j) {
    const double* c = tile + j * rows + r0;
    const VecD q = Splat(query[j]);
    const VecD d0 = Sub(LoadU(c), q);
    const VecD d1 = Sub(LoadU(c + kLanes), q);
    const VecD d2 = Sub(LoadU(c + 2 * kLanes), q);
    const VecD d3 = Sub(LoadU(c + 3 * kLanes), q);
    a0 = Add(a0, Mul(d0, d0));
    a1 = Add(a1, Mul(d1, d1));
    a2 = Add(a2, Mul(d2, d2));
    a3 = Add(a3, Mul(d3, d3));
  }
  out[0] = a0;
  out[1] = a1;
  out[2] = a2;
  out[3] = a3;
}

/// Four independent SquaredDistanceRows chains over 4*kLanes consecutive
/// rows: out[c] holds the lanes for rows (c*kLanes .. c*kLanes+kLanes-1).
/// Every row's chain is exactly the scalar chain — the interleaving only
/// adds instruction-level parallelism. The single-accumulator form is
/// latency-bound on its dependent add chain (each row's sum is sequential
/// by contract), so four rows-in-flight per lane slot roughly double the
/// throughput of the big scans (measured in bench_timing_batch_predict).
inline void SquaredDistanceRows4(const double* rows, size_t stride,
                                 const double* query, size_t dims,
                                 VecD* out) {
  VecD a0 = Zero();
  VecD a1 = Zero();
  VecD a2 = Zero();
  VecD a3 = Zero();
  const double* r1 = rows + kLanes * stride;
  const double* r2 = rows + 2 * kLanes * stride;
  const double* r3 = rows + 3 * kLanes * stride;
  for (size_t j = 0; j < dims; ++j) {
    const VecD q = Splat(query[j]);
    const VecD d0 = Sub(GatherStride(rows + j, stride), q);
    const VecD d1 = Sub(GatherStride(r1 + j, stride), q);
    const VecD d2 = Sub(GatherStride(r2 + j, stride), q);
    const VecD d3 = Sub(GatherStride(r3 + j, stride), q);
    a0 = Add(a0, Mul(d0, d0));
    a1 = Add(a1, Mul(d1, d1));
    a2 = Add(a2, Mul(d2, d2));
    a3 = Add(a3, Mul(d3, d3));
  }
  out[0] = a0;
  out[1] = a1;
  out[2] = a2;
  out[3] = a3;
}

/// Dot products of `query` against kLanes consecutive rows; lane L sums
/// rows[L*stride + j] * q[j] over ascending j (the DotRaw chain per lane).
inline VecD DotRows(const double* rows, size_t stride, const double* query,
                    size_t dims) {
  VecD acc = Zero();
  for (size_t j = 0; j < dims; ++j) {
    acc = Add(acc, Mul(GatherStride(rows + j, stride), Splat(query[j])));
  }
  return acc;
}

/// Self dot products (squared norms) of kLanes consecutive rows.
inline VecD SelfDotRows(const double* rows, size_t stride, size_t dims) {
  VecD acc = Zero();
  for (size_t j = 0; j < dims; ++j) {
    const VecD r = GatherStride(rows + j, stride);
    acc = Add(acc, Mul(r, r));
  }
  return acc;
}

}  // namespace qpp::simd
