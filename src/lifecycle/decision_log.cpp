#include "lifecycle/decision_log.h"

#include <utility>

#include "common/str_util.h"

namespace qpp::lifecycle {

void DecisionLog::Append(Decision d) {
  std::lock_guard<std::mutex> lock(mu_);
  d.sequence = entries_.size() + 1;
  entries_.push_back(std::move(d));
}

std::vector<Decision> DecisionLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

size_t DecisionLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t DecisionLog::CountEvent(const std::string& event) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const Decision& d : entries_) {
    if (d.event == event) ++n;
  }
  return n;
}

std::string FormatDecision(const Decision& d) {
  return StrFormat(
      "[%llu] w%llu s%llu %-9s cand=%s champ_gen=%llu cand_gen=%llu "
      "risk_champ=%.9g risk_cand=%.9g %s\n",
      static_cast<unsigned long long>(d.sequence),
      static_cast<unsigned long long>(d.window),
      static_cast<unsigned long long>(d.scored), d.event.c_str(),
      d.candidate.empty() ? "-" : d.candidate.c_str(),
      static_cast<unsigned long long>(d.champion_generation),
      static_cast<unsigned long long>(d.candidate_generation),
      d.champion_risk, d.challenger_risk, d.reason.c_str());
}

std::string DecisionLog::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "lifecycle decision log:\n";
  for (const Decision& d : entries_) {
    out += "  " + FormatDecision(d);
  }
  return out;
}

}  // namespace qpp::lifecycle
