// The lifecycle decision log: an append-only record of every promotion
// decision the closed loop takes, carrying only deterministic quantities
// (scored-observation counts, window indices, generations, risk EWMAs of
// bit-identical predictions) — never wall-clock time. Two same-seed runs
// of a lifecycle harness must produce byte-identical ToString() output;
// CI diffs them (see docs/LIFECYCLE.md, "Determinism contract").
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace qpp::lifecycle {

/// One decision-log entry. `event` is one of: "register", "hold",
/// "reject", "promote", "probation", "rollback", "confirm".
struct Decision {
  uint64_t sequence = 0;   ///< 1-based append order
  uint64_t scored = 0;     ///< scored observations when the decision fired
  uint64_t window = 0;     ///< lifecycle windows closed so far
  std::string event;
  std::string candidate;   ///< candidate label ("" for champion-only events)
  uint64_t champion_generation = 0;
  uint64_t candidate_generation = 0;  ///< 0 unless promoted/rolled back
  double champion_risk = 0.0;
  double challenger_risk = 0.0;
  std::string reason;      ///< gate verdict / watchdog rule, free-form
};

class DecisionLog {
 public:
  DecisionLog() = default;
  DecisionLog(const DecisionLog&) = delete;
  DecisionLog& operator=(const DecisionLog&) = delete;

  /// Appends one entry; `sequence` is assigned here (1, 2, ...).
  void Append(Decision d);

  std::vector<Decision> Entries() const;
  size_t size() const;

  /// Counts entries with the given event name ("promote", "rollback", ...).
  uint64_t CountEvent(const std::string& event) const;

  /// The byte-stable dump: one fixed-format line per entry. Risks are
  /// printed with %.9g — the inputs are bit-identical across thread counts
  /// and SIMD dispatch (the repo-wide determinism contract), so the bytes
  /// are too.
  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::vector<Decision> entries_;
};

/// Formats one entry exactly as ToString does (shared with tests that pin
/// the format).
std::string FormatDecision(const Decision& d);

}  // namespace qpp::lifecycle
