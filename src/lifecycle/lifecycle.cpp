#include "lifecycle/lifecycle.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/str_util.h"
#include "obs/request_context.h"
#include "workload/pools.h"

namespace qpp::lifecycle {

double RiskWindow::risk() const {
  double worst = 0.0;
  for (size_t m = 0; m < kNumMetrics; ++m) {
    worst = std::max(worst, metric_ewma[m]);
    for (size_t p = 0; p < kNumPools; ++p) {
      worst = std::max(worst, pool_ewma[p][m]);
    }
  }
  return worst;
}

namespace {

obs::DriftMonitorOptions ScorerOptions(double alpha) {
  obs::DriftMonitorOptions o;
  o.alpha = alpha;
  return o;
}

}  // namespace

ShadowScorer::ShadowScorer(std::shared_ptr<const core::Predictor> model,
                           double alpha, double poison_multiplier)
    : model_(std::move(model)),
      poison_multiplier_(poison_multiplier),
      monitor_(ScorerOptions(alpha), /*registry=*/nullptr) {}

engine::QueryMetrics ShadowScorer::Predict(
    const linalg::Vector& features) const {
  QPP_CHECK_MSG(model_ != nullptr, "score-only scorer cannot predict");
  engine::QueryMetrics m = model_->Predict(features).metrics;
  if (poison_multiplier_ != 1.0) {
    linalg::Vector v = m.ToVector();
    for (double& x : v) x *= poison_multiplier_;
    m = engine::QueryMetrics::FromVector(v);
  }
  return m;
}

void ShadowScorer::Score(const engine::QueryMetrics& predicted,
                         const engine::QueryMetrics& actual) {
  monitor_.Observe(obs::DriftMonitor::Source::kModel, predicted, actual);
}

RiskWindow ShadowScorer::Window() const {
  RiskWindow w;
  w.observations = monitor_.model_observations();
  for (size_t m = 0; m < RiskWindow::kNumMetrics; ++m) {
    w.metric_ewma[m] = monitor_.MetricEwma(m);
    for (size_t p = 0; p < RiskWindow::kNumPools; ++p) {
      w.pool_ewma[p][m] =
          monitor_.PoolMetricEwma(static_cast<workload::QueryType>(p), m);
    }
  }
  return w;
}

uint64_t ShadowScorer::observations() const {
  return monitor_.model_observations();
}

PromotionGate::PromotionGate(PromotionGateConfig config)
    : config_(config) {}

GateDecision PromotionGate::Evaluate(const RiskWindow& champion,
                                     const RiskWindow& challenger) const {
  GateDecision d;
  d.champion_risk = champion.risk();
  d.challenger_risk = challenger.risk();
  // Every condition below is "challenger quantity <= fixed bound"; EWMAs
  // only grow when scored errors grow, so worsening the challenger can
  // never flip a reject into a promote (the monotonicity property test).
  if (champion.observations < config_.min_observations ||
      challenger.observations < config_.min_observations) {
    d.reason = "warmup";
    return d;
  }
  const auto names = engine::QueryMetrics::MetricNames();
  for (size_t m = 0; m < RiskWindow::kNumMetrics; ++m) {
    if (challenger.metric_ewma[m] > config_.tolerance[m]) {
      d.reason = "tolerance:" + names[m];
      return d;
    }
  }
  if (d.challenger_risk > d.champion_risk * (1.0 - config_.margin)) {
    d.reason = "margin";
    return d;
  }
  d.promote = true;
  d.reason = "promote";
  return d;
}

const char* CandidateStateName(CandidateState s) {
  switch (s) {
    case CandidateState::kShadowing: return "shadowing";
    case CandidateState::kPromoted: return "promoted";
    case CandidateState::kConfirmed: return "confirmed";
    case CandidateState::kRejected: return "rejected";
    case CandidateState::kRolledBack: return "rolled_back";
  }
  return "?";
}

LifecycleManager::LifecycleManager(serve::ModelRegistry* registry,
                                   LifecycleConfig config)
    : registry_(registry), config_(config), gate_(config.gate) {
  QPP_CHECK_MSG(registry_ != nullptr, "lifecycle needs a model registry");
  QPP_CHECK_MSG(config_.window_observations > 0, "window must be positive");
  const serve::ModelRegistry::Snapshot snap = registry_->Acquire();
  champion_model_ = snap.model;
  champion_generation_ = snap.generation;
  champion_scorer_ =
      std::make_unique<ShadowScorer>(nullptr, config_.alpha);
  if (config_.registry != nullptr) {
    obs::MetricsRegistry* r = config_.registry;
    shadow_predictions_counter_ =
        r->GetCounter("qpp_lifecycle_shadow_predictions_total");
    scored_counter_ = r->GetCounter("qpp_lifecycle_scored_total");
    windows_counter_ = r->GetCounter("qpp_lifecycle_windows_total");
    candidates_counter_ = r->GetCounter("qpp_lifecycle_candidates_total");
    poisoned_counter_ = r->GetCounter("qpp_lifecycle_poisoned_total");
    promotions_counter_ = r->GetCounter("qpp_lifecycle_promotions_total");
    rejections_counter_ = r->GetCounter("qpp_lifecycle_rejections_total");
    rollbacks_counter_ = r->GetCounter("qpp_lifecycle_rollbacks_total");
    confirmations_counter_ =
        r->GetCounter("qpp_lifecycle_confirmations_total");
    pending_dropped_counter_ =
        r->GetCounter("qpp_lifecycle_pending_dropped_total");
    champion_risk_gauge_ = r->GetGauge("qpp_lifecycle_champion_risk");
    challenger_risk_gauge_ = r->GetGauge("qpp_lifecycle_challenger_risk");
  }
}

size_t LifecycleManager::RegisterCandidate(
    std::shared_ptr<const core::Predictor> model, std::string label) {
  QPP_CHECK_MSG(model != nullptr && model->trained(),
                "candidate must be a trained model");
  // The poison decision is drawn outside the lock: the injector keys it by
  // registration order alone (candidate index i), never by our state.
  double poison = 1.0;
  if (config_.faults != nullptr) poison = config_.faults->NextModelPoison();

  std::lock_guard<std::mutex> lock(mu_);
  const size_t index = candidates_.size();
  Candidate c;
  c.label = std::move(label);
  c.scorer =
      std::make_unique<ShadowScorer>(std::move(model), config_.alpha, poison);
  const bool poisoned = c.scorer->poisoned();
  candidates_.push_back(std::move(c));
  ++tallies_.candidates;
  if (candidates_counter_ != nullptr) candidates_counter_->Inc();
  if (poisoned) {
    ++tallies_.poisoned_candidates;
    if (poisoned_counter_ != nullptr) poisoned_counter_->Inc();
  }
  if (active_ == kNoActive && !in_probation_) AdvanceActiveLocked();

  const std::string& stored_label = candidates_[index].label;
  Flight(obs::FlightEventKind::kCandidateRegistered,
         static_cast<int32_t>(index), 0.0, stored_label);
  TraceInstant("candidate_registered", stored_label);
  Decision d;
  d.event = "register";
  d.candidate = stored_label;
  d.champion_generation = champion_generation_;
  d.reason = active_ == index ? "shadowing" : "queued";
  LogLocked(std::move(d));
  return index;
}

void LifecycleManager::OnServedPrediction(const linalg::Vector& features,
                                          const core::Prediction& served,
                                          uint64_t generation,
                                          uint64_t trace_id) {
  (void)trace_id;  // correlation flows via the installed RequestContext
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.size() >= config_.max_pending &&
      pending_.find(features) == pending_.end()) {
    ++tallies_.pending_dropped;
    if (pending_dropped_counter_ != nullptr) pending_dropped_counter_->Inc();
    return;
  }
  PendingPair p;
  p.served = served.metrics;
  p.generation = generation;
  if (active_ != kNoActive) {
    const Candidate& c = candidates_[active_];
    obs::Span span(config_.trace, "shadow_predict", "lifecycle");
    span.AddArg("candidate", c.label.c_str());
    p.shadow = c.scorer->Predict(features);
    p.has_shadow = true;
    p.candidate = active_;
    ++tallies_.shadow_predictions;
    if (shadow_predictions_counter_ != nullptr) {
      shadow_predictions_counter_->Inc();
    }
  }
  pending_[features] = std::move(p);
}

bool LifecycleManager::ScoreActual(const linalg::Vector& features,
                                   const engine::QueryMetrics& actual) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(features);
  if (it == pending_.end()) return false;
  const PendingPair p = std::move(it->second);
  pending_.erase(it);
  // A pair served by an older generation says nothing about the current
  // champion; promotions/rollbacks also clear pending wholesale, so this
  // only catches swaps that raced a registration.
  if (p.generation != champion_generation_) {
    ++tallies_.pending_invalidated;
    return false;
  }
  champion_scorer_->Score(p.served, actual);
  if (p.has_shadow &&
      candidates_[p.candidate].state == CandidateState::kShadowing) {
    candidates_[p.candidate].scorer->Score(p.shadow, actual);
  }
  ++scored_;
  ++tallies_.scored;
  if (scored_counter_ != nullptr) scored_counter_->Inc();

  const double champion_risk = ChampionWindowLocked().risk();
  if (champion_risk_gauge_ != nullptr) {
    champion_risk_gauge_->Set(champion_risk);
  }
  if (challenger_risk_gauge_ != nullptr && active_ != kNoActive) {
    challenger_risk_gauge_->Set(candidates_[active_].scorer->Window().risk());
  }

  ++window_tick_;
  std::optional<obs::SloEvaluation> eval;
  if (in_probation_) {
    probation_gauge_.Set(champion_risk);
    eval = probation_slo_->Tick();
  }
  if (window_tick_ < config_.window_observations) return true;
  window_tick_ = 0;
  ++windows_closed_;
  ++tallies_.windows;
  if (windows_counter_ != nullptr) windows_counter_->Inc();

  if (in_probation_) {
    // The probation engine ticks in lockstep with our window counter (both
    // were zeroed at promotion), so this tick closed its window too.
    if (eval.has_value() && !eval->eager && eval->any_breached()) {
      RollbackLocked(champion_risk);
    } else {
      ++probation_windows_done_;
      Decision d;
      d.event = "probation";
      d.candidate = candidates_[promoted_candidate_].label;
      d.champion_generation = champion_generation_;
      d.candidate_generation =
          candidates_[promoted_candidate_].promoted_generation;
      d.champion_risk = champion_risk;
      d.reason = StrFormat(
          "clean %llu/%llu threshold=%.9g",
          static_cast<unsigned long long>(probation_windows_done_),
          static_cast<unsigned long long>(config_.probation_windows),
          probation_threshold_);
      LogLocked(std::move(d));
      if (probation_windows_done_ >= config_.probation_windows) {
        ConfirmLocked();
      }
    }
  } else if (active_ != kNoActive) {
    CloseShadowWindowLocked();
  }
  return true;
}

RiskWindow LifecycleManager::ChampionWindowLocked() const {
  return champion_scorer_->Window();
}

void LifecycleManager::AdvanceActiveLocked() {
  active_ = kNoActive;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i].state == CandidateState::kShadowing) {
      active_ = i;
      break;
    }
  }
}

void LifecycleManager::CloseShadowWindowLocked() {
  const size_t index = active_;
  Candidate& c = candidates_[index];
  const RiskWindow champion = ChampionWindowLocked();
  const RiskWindow challenger = c.scorer->Window();
  const GateDecision gd = gate_.Evaluate(champion, challenger);
  c.last_risk = gd.challenger_risk;
  ++c.shadow_windows;
  Flight(obs::FlightEventKind::kShadowWindow, static_cast<int32_t>(index),
         gd.challenger_risk, gd.reason);
  TraceInstant("shadow_window", gd.reason);
  if (gd.promote) {
    PromoteLocked(index, gd);
    return;
  }
  Decision d;
  d.candidate = c.label;
  d.champion_generation = champion_generation_;
  d.champion_risk = gd.champion_risk;
  d.challenger_risk = gd.challenger_risk;
  d.reason = gd.reason;
  if (c.shadow_windows >= config_.max_shadow_windows) {
    c.state = CandidateState::kRejected;
    ++tallies_.rejections;
    if (rejections_counter_ != nullptr) rejections_counter_->Inc();
    d.event = "reject";
    LogLocked(std::move(d));
    AdvanceActiveLocked();
  } else {
    d.event = "hold";
    LogLocked(std::move(d));
  }
}

void LifecycleManager::PromoteLocked(size_t index,
                                     const GateDecision& decision) {
  Candidate& c = candidates_[index];
  previous_champion_ = champion_model_;
  previous_generation_ = champion_generation_;
  const uint64_t generation = registry_->Publish(c.scorer->model());
  champion_model_ = c.scorer->model();
  champion_generation_ = generation;
  c.state = CandidateState::kPromoted;
  c.promoted_generation = generation;
  promoted_candidate_ = index;
  active_ = kNoActive;

  // Fresh champion window: the new champion is judged on its own serving
  // errors, not the shadow EWMAs it was promoted on.
  champion_scorer_ = std::make_unique<ShadowScorer>(nullptr, config_.alpha);
  InvalidatePendingLocked();
  window_tick_ = 0;

  probation_threshold_ =
      std::max(config_.rollback_min_risk,
               decision.challenger_risk * (1.0 + config_.rollback_margin));
  obs::SloEngineOptions so;
  so.window_ticks = config_.window_observations;
  so.registry = config_.registry;
  so.flight = config_.flight;
  so.trace = config_.trace;
  probation_slo_ = std::make_unique<obs::SloEngine>(so);
  probation_gauge_.Set(0.0);
  obs::SloRule rule;
  rule.name = "lifecycle_rollback";
  rule.kind = obs::SloRule::Kind::kGaugeThreshold;
  rule.threshold = probation_threshold_;
  rule.gauge = &probation_gauge_;
  probation_slo_->AddRule(std::move(rule));
  in_probation_ = true;
  probation_windows_done_ = 0;

  ++tallies_.promotions;
  if (promotions_counter_ != nullptr) promotions_counter_->Inc();
  Flight(obs::FlightEventKind::kPromotion, static_cast<int32_t>(index),
         decision.challenger_risk, c.label);
  TraceInstant("promotion", c.label);
  Decision d;
  d.event = "promote";
  d.candidate = c.label;
  d.champion_generation = previous_generation_;
  d.candidate_generation = generation;
  d.champion_risk = decision.champion_risk;
  d.challenger_risk = decision.challenger_risk;
  d.reason = StrFormat("gate=promote watchdog_threshold=%.9g",
                       probation_threshold_);
  LogLocked(std::move(d));
}

void LifecycleManager::RollbackLocked(double breached_risk) {
  Candidate& c = candidates_[promoted_candidate_];
  if (previous_champion_ != nullptr) {
    champion_generation_ = registry_->Publish(previous_champion_);
    champion_model_ = previous_champion_;
  } else {
    registry_->Unpublish();
    champion_model_ = nullptr;
    champion_generation_ = registry_->generation();
  }
  c.state = CandidateState::kRolledBack;
  const size_t index = promoted_candidate_;
  promoted_candidate_ = kNoActive;
  in_probation_ = false;
  probation_slo_.reset();
  champion_scorer_ = std::make_unique<ShadowScorer>(nullptr, config_.alpha);
  InvalidatePendingLocked();
  window_tick_ = 0;

  ++tallies_.rollbacks;
  if (rollbacks_counter_ != nullptr) rollbacks_counter_->Inc();
  Flight(obs::FlightEventKind::kRollback, static_cast<int32_t>(index),
         breached_risk, c.label);
  TraceInstant("rollback", c.label);
  Decision d;
  d.event = "rollback";
  d.candidate = c.label;
  d.champion_generation = champion_generation_;
  d.candidate_generation = c.promoted_generation;
  d.champion_risk = breached_risk;
  d.reason = StrFormat("risk=%.9g > threshold=%.9g", breached_risk,
                       probation_threshold_);
  LogLocked(std::move(d));
  AdvanceActiveLocked();
}

void LifecycleManager::ConfirmLocked() {
  Candidate& c = candidates_[promoted_candidate_];
  c.state = CandidateState::kConfirmed;
  const size_t index = promoted_candidate_;
  promoted_candidate_ = kNoActive;
  in_probation_ = false;
  probation_slo_.reset();
  previous_champion_ = champion_model_;
  previous_generation_ = champion_generation_;

  ++tallies_.confirmations;
  if (confirmations_counter_ != nullptr) confirmations_counter_->Inc();
  Flight(obs::FlightEventKind::kShadowWindow, static_cast<int32_t>(index),
         ChampionWindowLocked().risk(), "confirm");
  TraceInstant("confirm", c.label);
  Decision d;
  d.event = "confirm";
  d.candidate = c.label;
  d.champion_generation = champion_generation_;
  d.candidate_generation = c.promoted_generation;
  d.champion_risk = ChampionWindowLocked().risk();
  d.reason = StrFormat(
      "probation clean %llu windows",
      static_cast<unsigned long long>(probation_windows_done_));
  LogLocked(std::move(d));
  AdvanceActiveLocked();
}

void LifecycleManager::InvalidatePendingLocked() {
  tallies_.pending_invalidated += pending_.size();
  pending_.clear();
}

void LifecycleManager::LogLocked(Decision d) {
  d.scored = scored_;
  d.window = windows_closed_;
  log_.Append(std::move(d));
}

void LifecycleManager::Flight(obs::FlightEventKind kind, int32_t code,
                              double value, const std::string& detail) {
  if (config_.flight == nullptr) return;
  // trace_id 0 falls back to the installed RequestContext inside Record.
  config_.flight->Record(kind, /*trace_id=*/0, code, value, detail);
}

void LifecycleManager::TraceInstant(const char* name,
                                    const std::string& detail) {
  if (config_.trace == nullptr) return;
  obs::TraceEvent e;
  e.phase = 'i';
  e.name = name;
  e.category = "lifecycle";
  e.pid = obs::TraceRecorder::kServicePid;
  e.tid = config_.trace->CurrentThreadTid();
  e.ts_us = config_.trace->NowMicros();
  if (!detail.empty()) {
    e.args.emplace_back("detail", "\"" + detail + "\"");
  }
  const obs::RequestContext& ctx = obs::CurrentRequestContext();
  if (ctx.valid()) {
    e.args.emplace_back("trace_id",
                        "\"" + obs::TraceIdHex(ctx.trace_id) + "\"");
  }
  config_.trace->Add(std::move(e));
}

CandidateState LifecycleManager::candidate_state(size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  QPP_CHECK(index < candidates_.size());
  return candidates_[index].state;
}

bool LifecycleManager::candidate_poisoned(size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  QPP_CHECK(index < candidates_.size());
  return candidates_[index].scorer->poisoned();
}

std::vector<CandidateInfo> LifecycleManager::Candidates() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CandidateInfo> out;
  out.reserve(candidates_.size());
  for (const Candidate& c : candidates_) {
    CandidateInfo info;
    info.label = c.label;
    info.state = c.state;
    info.poisoned = c.scorer->poisoned();
    info.shadow_windows = c.shadow_windows;
    info.promoted_generation = c.promoted_generation;
    info.risk = c.last_risk;
    out.push_back(std::move(info));
  }
  return out;
}

size_t LifecycleManager::num_candidates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return candidates_.size();
}

uint64_t LifecycleManager::champion_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return champion_generation_;
}

std::shared_ptr<const core::Predictor> LifecycleManager::champion_model()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return champion_model_;
}

RiskWindow LifecycleManager::ChampionWindow() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ChampionWindowLocked();
}

bool LifecycleManager::in_probation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_probation_;
}

LifecycleStats LifecycleManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tallies_;
}

}  // namespace qpp::lifecycle
