// qpp::lifecycle — the closed-loop model lifecycle: shadow scoring,
// champion/challenger promotion, and auto-rollback.
//
// DriftMonitor can trigger a retrain and ModelRegistry can hot-swap, but
// nothing validated a candidate before it took traffic (the dominant
// failure mode of learned QPP in production per the LinkedIn deployment
// study, PAPERS.md). This layer closes the loop:
//
//   RegisterCandidate ──▶ kShadowing ──gate──▶ kPromoted ──watchdog──▶ kConfirmed
//                             │                    │
//                             ▼                    ▼
//                         kRejected            kRolledBack
//
//  * ShadowScorer — computes the candidate's prediction for every
//    model-answered request (via the serve::ShadowObserver hook) and
//    scores it against the observed actuals with the same per-pool
//    relative-error EWMAs DriftMonitor keeps. Shadow predictions are
//    computed, scored, and discarded — they can never reach a client by
//    construction.
//  * PromotionGate — promotes a challenger only when both windows are
//    warm, every challenger metric EWMA passes its golden-metrics-style
//    tolerance, AND the challenger's risk beats the champion's by a
//    configured margin. The gate is monotone: worsening a challenger's
//    scored errors can only raise its EWMAs, so it can never flip a
//    reject into a promote (pinned by tests/property_test.cpp).
//  * AutoRollback — at promotion the previous champion (bits +
//    generation) is retained and a fresh obs::SloEngine watchdog watches
//    the new champion's risk gauge; a gauge-threshold breach within the
//    probation windows republishes the previous champion — rollback
//    within one window of the regression.
//
// Determinism: decisions depend only on scored-observation counts and
// EWMAs of bit-identical predictions, so two same-seed runs produce a
// byte-identical DecisionLog (CI diffs them). The model_poison fault kind
// (fault/fault_plan.h) poisons a candidate's shadow predictions at
// registration; the gate then never promotes it — the chaos scenario
// "model-lifecycle" pins that a poisoned candidate never reaches user
// traffic, as a zero-tolerance golden key (tests/golden/lifecycle.json).
//
// Thread safety: all entry points share one mutex; rates are per-response.
// See docs/LIFECYCLE.md for the knobs and the full determinism contract.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/predictor.h"
#include "engine/metrics.h"
#include "fault/fault_injector.h"
#include "lifecycle/decision_log.h"
#include "obs/drift_monitor.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/prediction_service.h"
#include "serve/shadow_observer.h"

namespace qpp::lifecycle {

/// One side's windowed risk: per-metric relative-error EWMAs, overall and
/// per query pool (the DriftMonitor internals the gate reuses).
struct RiskWindow {
  static constexpr size_t kNumMetrics = engine::QueryMetrics::kNumMetrics;
  static constexpr size_t kNumPools = 4;  // feather/golf/bowling/wrecking

  uint64_t observations = 0;
  double metric_ewma[kNumMetrics] = {};
  double pool_ewma[kNumPools][kNumMetrics] = {};

  /// Scalar risk: the worst relative-error EWMA across all metrics,
  /// overall and per pool. Monotone in every entry.
  double risk() const;
};

/// Scores one model's predictions against observed actuals. The challenger
/// side also computes the predictions (shadow lane); the champion side is
/// score-only — the served bits come from the service.
class ShadowScorer {
 public:
  /// `model` may be null for score-only use. `poison_multiplier` != 1
  /// scales every shadow prediction (the model_poison fault); 1 = clean.
  ShadowScorer(std::shared_ptr<const core::Predictor> model, double alpha,
               double poison_multiplier = 1.0);

  ShadowScorer(const ShadowScorer&) = delete;
  ShadowScorer& operator=(const ShadowScorer&) = delete;

  const std::shared_ptr<const core::Predictor>& model() const {
    return model_;
  }
  bool poisoned() const { return poison_multiplier_ != 1.0; }
  double poison_multiplier() const { return poison_multiplier_; }

  /// The shadow prediction for `features`, with any poison multiplier
  /// applied. Computed and scored, never served.
  engine::QueryMetrics Predict(const linalg::Vector& features) const;

  /// Folds one (predicted, observed) pair into the window EWMAs; the pool
  /// is derived from the observed elapsed time, exactly as DriftMonitor
  /// does (it IS a DriftMonitor underneath).
  void Score(const engine::QueryMetrics& predicted,
             const engine::QueryMetrics& actual);

  RiskWindow Window() const;
  uint64_t observations() const;

 private:
  std::shared_ptr<const core::Predictor> model_;
  const double poison_multiplier_;
  obs::DriftMonitor monitor_;
};

/// Fills a per-metric tolerance array with one value (paper metric order).
constexpr std::array<double, RiskWindow::kNumMetrics> UniformTolerance(
    double t) {
  std::array<double, RiskWindow::kNumMetrics> a{};
  for (size_t i = 0; i < a.size(); ++i) a[i] = t;
  return a;
}

struct PromotionGateConfig {
  /// Both windows need at least this many scored observations.
  uint64_t min_observations = 32;
  /// Promote only when challenger risk <= champion risk * (1 - margin).
  double margin = 0.1;
  /// Golden-metrics-style per-metric ceiling: every challenger metric EWMA
  /// must stay at or under its tolerance, whatever the champion does.
  std::array<double, RiskWindow::kNumMetrics> tolerance =
      UniformTolerance(0.5);
};

struct GateDecision {
  bool promote = false;
  /// "promote", "warmup", "tolerance:<metric>", or "margin".
  std::string reason;
  double champion_risk = 0.0;
  double challenger_risk = 0.0;
};

/// The champion/challenger gate. Pure function of the two windows, and
/// monotone in the challenger's errors: every condition is of the form
/// "challenger EWMA <= bound", so raising any challenger EWMA can only
/// turn a promote into a non-promote, never the reverse.
class PromotionGate {
 public:
  explicit PromotionGate(PromotionGateConfig config = {});

  GateDecision Evaluate(const RiskWindow& champion,
                        const RiskWindow& challenger) const;

  const PromotionGateConfig& config() const { return config_; }

 private:
  const PromotionGateConfig config_;
};

enum class CandidateState {
  kShadowing,   ///< scored against live traffic, never served
  kPromoted,    ///< serving, under the rollback watchdog (probation)
  kConfirmed,   ///< survived probation; it is the champion now
  kRejected,    ///< gate never passed within max_shadow_windows
  kRolledBack,  ///< promotion regressed; previous champion republished
};

const char* CandidateStateName(CandidateState s);

struct LifecycleConfig {
  /// EWMA smoothing for both scorers (DriftMonitor's alpha).
  double alpha = 0.1;
  /// Scored observations per decision window: the gate evaluates (and the
  /// probation watchdog's SLO window closes) every this-many scores.
  uint64_t window_observations = 32;
  PromotionGateConfig gate;
  /// A candidate still shadowing after this many windows is rejected.
  uint64_t max_shadow_windows = 4;
  /// Probation length after a promotion, in windows; surviving all of
  /// them clean confirms the promotion.
  uint64_t probation_windows = 2;
  /// Rollback when the promoted champion's risk exceeds
  /// max(rollback_min_risk, promotion_risk * (1 + rollback_margin)).
  double rollback_margin = 0.5;
  double rollback_min_risk = 0.05;
  /// Bound on unscored (served, shadow) pairs held for ScoreActual;
  /// excess pairs are dropped (counted), never blocked on.
  size_t max_pending = 4096;
  /// Optional sinks; all must outlive the manager. `registry` receives
  /// the qpp_lifecycle_* metrics, `flight` one event per decision,
  /// `trace` one "lifecycle"-category instant per decision.
  obs::MetricsRegistry* registry = nullptr;
  obs::FlightRecorder* flight = nullptr;
  obs::TraceRecorder* trace = nullptr;
  /// Fault session: RegisterCandidate draws one model_poison decision per
  /// candidate from it (fault/fault_plan.h). Null = no faults.
  fault::FaultInjector* faults = nullptr;
};

struct CandidateInfo {
  std::string label;
  CandidateState state = CandidateState::kShadowing;
  bool poisoned = false;
  uint64_t shadow_windows = 0;
  uint64_t promoted_generation = 0;  ///< 0 = never promoted
  double risk = 0.0;                 ///< latest challenger window risk
};

struct LifecycleStats {
  uint64_t shadow_predictions = 0;  ///< challenger predictions computed
  uint64_t scored = 0;              ///< (served, actual) pairs scored
  uint64_t windows = 0;             ///< decision windows closed
  uint64_t candidates = 0;
  uint64_t poisoned_candidates = 0;
  uint64_t promotions = 0;
  uint64_t rejections = 0;
  uint64_t rollbacks = 0;
  uint64_t confirmations = 0;
  uint64_t pending_dropped = 0;      ///< max_pending overflow
  uint64_t pending_invalidated = 0;  ///< cleared by promote/rollback
};

/// The closed loop. Install as ServiceConfig::shadow (or via the shard /
/// fabric pass-through) so every model-answered response flows through
/// OnServedPrediction; feed observed actuals back through ScoreActual.
/// One candidate is active at a time; further registrations queue behind
/// it in registration order.
class LifecycleManager : public serve::ShadowObserver {
 public:
  /// `registry` is the serving registry this loop governs (promotion
  /// publishes to it, rollback republishes the previous champion); it must
  /// outlive the manager. The current published model (if any) is adopted
  /// as the initial champion.
  LifecycleManager(serve::ModelRegistry* registry, LifecycleConfig config);

  LifecycleManager(const LifecycleManager&) = delete;
  LifecycleManager& operator=(const LifecycleManager&) = delete;

  /// Registers a challenger; returns its candidate index. Draws the
  /// model_poison fault decision (when a fault session is attached) —
  /// a poisoned candidate's shadow predictions are scaled by the plan's
  /// multiplier, so the gate sees its true (terrible) risk.
  size_t RegisterCandidate(std::shared_ptr<const core::Predictor> model,
                           std::string label);

  // serve::ShadowObserver — called by the service on the worker thread for
  // every model/cache-answered response.
  void OnServedPrediction(const linalg::Vector& features,
                          const core::Prediction& served, uint64_t generation,
                          uint64_t trace_id) override;

  /// Scores the pending pair recorded for `features` against the observed
  /// metrics, advancing the window/gate/watchdog machinery. Returns false
  /// when no pair is pending (fallback-answered request, or the pair was
  /// invalidated by a promotion/rollback swap).
  bool ScoreActual(const linalg::Vector& features,
                   const engine::QueryMetrics& actual);

  CandidateState candidate_state(size_t index) const;
  bool candidate_poisoned(size_t index) const;
  std::vector<CandidateInfo> Candidates() const;
  size_t num_candidates() const;

  uint64_t champion_generation() const;
  std::shared_ptr<const core::Predictor> champion_model() const;
  RiskWindow ChampionWindow() const;
  bool in_probation() const;

  LifecycleStats stats() const;
  /// The append-only decision log (thread-safe; ToString is byte-stable).
  const DecisionLog& log() const { return log_; }

 private:
  struct Candidate {
    std::string label;
    CandidateState state = CandidateState::kShadowing;
    std::unique_ptr<ShadowScorer> scorer;
    uint64_t shadow_windows = 0;
    uint64_t promoted_generation = 0;
    double last_risk = 0.0;
  };

  struct PendingPair {
    engine::QueryMetrics served;
    engine::QueryMetrics shadow;
    bool has_shadow = false;
    size_t candidate = 0;
    uint64_t generation = 0;
  };

  static constexpr size_t kNoActive = static_cast<size_t>(-1);

  // All Locked helpers assume mu_ is held.
  RiskWindow ChampionWindowLocked() const;
  void AdvanceActiveLocked();
  void CloseShadowWindowLocked();
  void PromoteLocked(size_t index, const GateDecision& decision);
  void RollbackLocked(double breached_risk);
  void ConfirmLocked();
  void InvalidatePendingLocked();
  void LogLocked(Decision d);
  void Flight(obs::FlightEventKind kind, int32_t code, double value,
              const std::string& detail);
  void TraceInstant(const char* name, const std::string& detail);

  serve::ModelRegistry* const registry_;
  const LifecycleConfig config_;
  const PromotionGate gate_;
  DecisionLog log_;

  mutable std::mutex mu_;
  std::vector<Candidate> candidates_;
  size_t active_ = kNoActive;
  std::unordered_map<linalg::Vector, PendingPair,
                     serve::PredictionService::FeatureHash>
      pending_;

  // Champion side: the currently-serving bits, their scorer, and what to
  // restore on rollback.
  std::shared_ptr<const core::Predictor> champion_model_;
  uint64_t champion_generation_ = 0;
  std::unique_ptr<ShadowScorer> champion_scorer_;
  std::shared_ptr<const core::Predictor> previous_champion_;
  uint64_t previous_generation_ = 0;

  // Probation watchdog: one fresh SloEngine per promotion, a single
  // gauge-threshold rule over the internal champion-risk gauge.
  obs::Gauge probation_gauge_;
  std::unique_ptr<obs::SloEngine> probation_slo_;
  size_t promoted_candidate_ = kNoActive;
  double probation_threshold_ = 0.0;
  uint64_t probation_windows_done_ = 0;
  bool in_probation_ = false;

  uint64_t scored_ = 0;
  uint64_t window_tick_ = 0;
  uint64_t windows_closed_ = 0;
  LifecycleStats tallies_;

  // Registry metrics, resolved once (null without a registry).
  obs::Counter* shadow_predictions_counter_ = nullptr;
  obs::Counter* scored_counter_ = nullptr;
  obs::Counter* windows_counter_ = nullptr;
  obs::Counter* candidates_counter_ = nullptr;
  obs::Counter* poisoned_counter_ = nullptr;
  obs::Counter* promotions_counter_ = nullptr;
  obs::Counter* rejections_counter_ = nullptr;
  obs::Counter* rollbacks_counter_ = nullptr;
  obs::Counter* confirmations_counter_ = nullptr;
  obs::Counter* pending_dropped_counter_ = nullptr;
  obs::Gauge* champion_risk_gauge_ = nullptr;
  obs::Gauge* challenger_risk_gauge_ = nullptr;
};

}  // namespace qpp::lifecycle
