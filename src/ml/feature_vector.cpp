#include "ml/feature_vector.h"

#include "common/check.h"
#include "sql/sql_features.h"

namespace qpp::ml {

linalg::Vector PlanFeatureVector(const optimizer::PhysicalPlan& plan) {
  linalg::Vector v(kPlanFeatureDims, 0.0);
  plan.Visit([&](const optimizer::PhysicalNode& n) {
    const size_t op = static_cast<size_t>(n.op);
    QPP_CHECK(op < optimizer::kNumPhysOps);
    v[2 * op] += 1.0;
    v[2 * op + 1] += n.est_rows;
  });
  return v;
}

std::vector<std::string> PlanFeatureNames() {
  std::vector<std::string> names;
  names.reserve(kPlanFeatureDims);
  for (size_t op = 0; op < optimizer::kNumPhysOps; ++op) {
    const char* base =
        optimizer::PhysOpName(static_cast<optimizer::PhysOp>(op));
    names.push_back(std::string(base) + "_count");
    names.push_back(std::string(base) + "_cardsum");
  }
  return names;
}

linalg::Vector SqlTextFeatureVector(const sql::SelectStmt& stmt) {
  const auto arr = sql::ExtractSqlFeatures(stmt).ToVector();
  return linalg::Vector(arr.begin(), arr.end());
}

std::vector<std::string> SqlTextFeatureNames() {
  const auto arr = sql::SqlFeatures::DimensionNames();
  return std::vector<std::string>(arr.begin(), arr.end());
}

FeatureMatrices StackExamples(const std::vector<TrainingExample>& examples) {
  QPP_CHECK(!examples.empty());
  const size_t n = examples.size();
  const size_t p = examples[0].query_features.size();
  FeatureMatrices out;
  out.x = linalg::Matrix(n, p);
  out.y = linalg::Matrix(n, engine::QueryMetrics::kNumMetrics);
  for (size_t i = 0; i < n; ++i) {
    QPP_CHECK_MSG(examples[i].query_features.size() == p,
                  "inconsistent feature dimensionality");
    out.x.SetRow(i, examples[i].query_features);
    out.y.SetRow(i, examples[i].metrics.ToVector());
  }
  return out;
}

}  // namespace qpp::ml
