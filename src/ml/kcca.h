// Kernel Canonical Correlation Analysis — the paper's core technique
// (Sections V-E and VI).
//
// Training correlates a Gaussian-kernel view of the query feature matrix
// with a Gaussian-kernel view of the performance feature matrix, producing
// a query projection K_x A and a performance projection K_y B that are
// maximally correlated (and, through the kernel, cluster similar queries —
// the paper's Fig. 6). Prediction projects a new query's kernel vector onto
// the query projection; the caller (core::Predictor) then finds k nearest
// training neighbors there and averages their raw performance vectors,
// side-stepping the kernel pre-image problem exactly as the paper does.
//
// Two solver paths:
//  * kExact   — dense N x N kernel matrices, the regularized generalized
//               eigenproblem reduced via Cholesky to one symmetric
//               eigenproblem. Cubic in N; used for small N and as the
//               reference implementation in tests.
//  * kIcd     — pivoted incomplete Cholesky kernel approximations of rank
//               m << N followed by a regularized linear CCA in the induced
//               feature space (Bach & Jordan, the paper's reference [22]).
//               This is the production path for N ~ 1000+.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "linalg/matrix.h"
#include "ml/cca.h"
#include "ml/kernel.h"

namespace qpp::par {
class Workspace;
}  // namespace qpp::par

namespace qpp::ml {

enum class KccaSolver { kAuto, kExact, kIcd };

/// Wall-clock seconds accumulated per stage of the blocked ICD batch
/// projection (ProjectXBatchInto): pivot-kernel block, blocked triangular
/// solve, CCA-direction projection. Purely observational — timing never
/// affects results.
struct KccaProjectTimes {
  double kernel_s = 0.0;
  double solve_s = 0.0;
  double project_s = 0.0;
};

struct KccaOptions {
  size_t num_dims = 16;       ///< projection dimensions kept
  double kappa = 0.05;        ///< regularization strength (relative)
  /// Kernel scale factors: fraction of the norm variance (paper Section
  /// VI-A). The paper uses 0.1 / 0.2 on raw feature vectors; our features
  /// are log1p-standardized first, which shrinks the norm variance, so the
  /// equivalent fractions are larger (tuned by the ablation bench).
  double tau_factor_x = 0.8;
  double tau_factor_y = 1.6;
  KccaSolver solver = KccaSolver::kAuto;
  /// kAuto uses kExact at or below this many training points.
  size_t exact_threshold = 320;
  size_t icd_max_rank = 256;
  double icd_tolerance = 1e-4;
};

class KccaModel {
 public:
  /// Trains on preprocessed feature matrices (rows aligned across x and y).
  static KccaModel Train(const linalg::Matrix& x, const linalg::Matrix& y,
                         const KccaOptions& options);

  /// N x d training query projection (K_x A).
  const linalg::Matrix& x_projection() const { return px_; }
  /// N x d training performance projection (K_y B).
  const linalg::Matrix& y_projection() const { return py_; }
  /// Canonical correlations per kept dimension, descending.
  const linalg::Vector& correlations() const { return correlations_; }
  /// Which solver actually ran.
  KccaSolver solver_used() const { return solver_used_; }
  size_t num_training_points() const { return px_.rows(); }

  /// Projects a new (preprocessed) query feature vector into the query
  /// projection space.
  linalg::Vector ProjectX(const linalg::Vector& x) const;

  /// Batch projection: row i of the result is bit-identical to
  /// ProjectX(xs.Row(i)). Convenience wrapper over ProjectXBatchInto with
  /// a call-local workspace (the exact path projects row-chunks in
  /// parallel directly). Results are identical at every thread count
  /// (tests/par_test.cpp asserts byte equality).
  linalg::Matrix ProjectXBatch(const linalg::Matrix& xs) const;

  /// The query-blocked batch projection — the serving hot path. For the
  /// ICD solver the per-row chain (pivot kernel vector → forward
  /// substitution → CCA directions) is restructured into three
  /// batch-level phases over an m×B right-hand-side block carved from
  /// `ws`: one multi-query pass over the pivot tiles
  /// (ml::GaussianKernelTilesBatch), one blocked triangular solve
  /// (linalg::ForwardSubstBlocked) that reads the 256 KB factor once per
  /// B-column block instead of once per query, and one projection pass.
  /// Row q of `out` stays bit-identical to ProjectX(xs.Row(q)) — every
  /// output element keeps its exact per-query scalar chain; blocking only
  /// reorders which element advances next (pinned by
  /// tests/simd_kernel_test.cpp and tests/knn_oracle_test.cpp).
  ///
  /// `ws` and `out` are caller-owned and reused across calls: after one
  /// warmup batch of the steady-state shape the call performs zero heap
  /// allocations (the bench's operator-new hook gates this). `times`, when
  /// non-null, accumulates per-stage wall clock. The exact solver has no
  /// blocked form and delegates to the row-parallel path (allocating its
  /// result as before).
  void ProjectXBatchInto(const linalg::Matrix& xs, par::Workspace* ws,
                         linalg::Matrix* out,
                         KccaProjectTimes* times = nullptr) const;

  void Save(BinaryWriter* w) const;
  static KccaModel Load(BinaryReader* r);

 private:
  KccaOptions options_;
  KccaSolver solver_used_ = KccaSolver::kExact;
  double tau_x_ = 1.0;

  // Shared outputs.
  linalg::Matrix px_;
  linalg::Matrix py_;
  linalg::Vector correlations_;

  // Exact path state: kernel against all training points.
  linalg::Matrix train_x_;       ///< N x p preprocessed features
  linalg::Matrix a_;             ///< N x d dual coefficients
  linalg::Vector kx_row_means_;  ///< uncentered K_x row means
  double kx_grand_mean_ = 0.0;

  // ICD path state: kernel against pivot points only.
  linalg::Matrix pivot_x_;       ///< m x p pivot feature rows
  linalg::Matrix lpp_;           ///< m x m lower factor of K[P,P]
  /// Derived: lpp_ transposed, so the column-oriented (vectorized) forward
  /// substitution in ProjectX reads columns of the factor contiguously.
  /// Rebuilt in Train and Load, never serialized (the model format is
  /// unchanged).
  linalg::Matrix lpp_t_;
  /// Derived: pivot_x_ repacked into the column-major tile layout
  /// (ml::PackRowsToTiles) the tiled Gaussian kernel consumes, so the
  /// serving-path pivot kernel vector runs on contiguous vector loads.
  /// Rebuilt in Train and Load, never serialized.
  std::vector<double> pivot_tiles_;
  linalg::Vector gx_means_;      ///< column means of G_x
  linalg::Matrix wx_;            ///< m x d CCA directions in feature space
};

}  // namespace qpp::ml
