#include "ml/pca.h"

#include "common/check.h"
#include "linalg/eigen_sym.h"

namespace qpp::ml {

void Pca::Fit(const linalg::Matrix& x, size_t num_components) {
  const size_t n = x.rows();
  const size_t p = x.cols();
  QPP_CHECK(n >= 2 && num_components >= 1);
  const size_t k = std::min(num_components, p);

  mean_.assign(p, 0.0);
  for (size_t j = 0; j < p; ++j) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) s += x(i, j);
    mean_[j] = s / static_cast<double>(n);
  }
  linalg::Matrix xc(n, p);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < p; ++j) xc(i, j) = x(i, j) - mean_[j];

  linalg::Matrix cov = xc.TransposeMultiply(xc).Scale(
      1.0 / static_cast<double>(n - 1));
  total_variance_ = 0.0;
  for (size_t j = 0; j < p; ++j) total_variance_ += cov(j, j);

  const linalg::TopEigen top = linalg::TopKEigenSymmetric(cov, k);
  components_ = top.vectors;  // p x k, descending eigenvalues
  variance_ = top.values;
  for (double& v : variance_) v = std::max(v, 0.0);
  fitted_ = true;
}

linalg::Matrix Pca::Transform(const linalg::Matrix& x) const {
  QPP_CHECK(fitted_ && x.cols() == mean_.size());
  linalg::Matrix out(x.rows(), components_.cols());
  for (size_t i = 0; i < x.rows(); ++i) {
    const linalg::Vector row = TransformRow(x.Row(i));
    out.SetRow(i, row);
  }
  return out;
}

linalg::Vector Pca::TransformRow(const linalg::Vector& v) const {
  QPP_CHECK(fitted_ && v.size() == mean_.size());
  linalg::Vector centered(v.size());
  for (size_t j = 0; j < v.size(); ++j) centered[j] = v[j] - mean_[j];
  linalg::Vector out(components_.cols(), 0.0);
  for (size_t c = 0; c < components_.cols(); ++c) {
    double s = 0.0;
    for (size_t j = 0; j < v.size(); ++j) s += centered[j] * components_(j, c);
    out[c] = s;
  }
  return out;
}

double Pca::ExplainedVarianceRatio() const {
  QPP_CHECK(fitted_);
  if (total_variance_ <= 0.0) return 0.0;
  double kept = 0.0;
  for (double v : variance_) kept += v;
  return kept / total_variance_;
}

}  // namespace qpp::ml
