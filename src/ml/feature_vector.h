// Feature-vector construction (paper Section VI-D).
//
// Two query representations are evaluated by the paper:
//  * the SQL-text feature vector (9 statistics) — poor accuracy (Fig. 8);
//  * the query-plan feature vector — an instance count and an estimated-
//    cardinality sum per physical operator (Fig. 9) — the winner, used for
//    all headline results.
// The performance feature vector is the six metrics in paper order
// (engine::QueryMetrics::ToVector()).
#pragma once

#include <string>
#include <vector>

#include "engine/metrics.h"
#include "linalg/matrix.h"
#include "optimizer/physical_plan.h"
#include "sql/ast.h"

namespace qpp::ml {

/// Number of dimensions of the plan feature vector: one (count, cardinality
/// sum) pair per physical operator.
constexpr size_t kPlanFeatureDims = 2 * optimizer::kNumPhysOps;

/// Builds the query-plan feature vector: for each operator kind, the number
/// of instances in the plan and the sum of their ESTIMATED output
/// cardinalities (only optimizer-visible information).
linalg::Vector PlanFeatureVector(const optimizer::PhysicalPlan& plan);

/// Dimension names matching PlanFeatureVector (e.g. "nested_join_count",
/// "nested_join_cardsum").
std::vector<std::string> PlanFeatureNames();

/// Builds the 9-dim SQL-text feature vector from a parsed statement.
linalg::Vector SqlTextFeatureVector(const sql::SelectStmt& stmt);

std::vector<std::string> SqlTextFeatureNames();

/// One training example: query features paired with measured performance.
struct TrainingExample {
  linalg::Vector query_features;
  engine::QueryMetrics metrics;
};

/// Stacks examples into the two KCCA input matrices (row k of each matrix
/// describes the same query, as the paper requires).
struct FeatureMatrices {
  linalg::Matrix x;  ///< N x p query features
  linalg::Matrix y;  ///< N x 6 performance features
};
FeatureMatrices StackExamples(const std::vector<TrainingExample>& examples);

}  // namespace qpp::ml
