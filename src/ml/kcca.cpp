#include "ml/kcca.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/incomplete_cholesky.h"
#include "linalg/serde.h"
#include "linalg/triangular.h"
#include "par/parallel_for.h"
#include "par/simd.h"
#include "par/simd_lanes.h"
#include "par/workspace.h"

namespace qpp::ml {

namespace {

/// Batch-projection rows per parallel chunk (fixed: the chunking must not
/// depend on the thread count; see par/thread_pool.h).
constexpr size_t kProjectGrain = 8;

/// Right-hand-side columns per blocked-solve chunk. Each chunk solves a
/// disjoint column range of the m×B block independently (columns never
/// interact in forward substitution), so the chunking affects scheduling
/// only — but it is fixed like every other grain so perf numbers compare
/// across hosts.
constexpr size_t kSolveColGrain = 32;

/// Below this batch size ProjectXBatchInto runs the per-query transposed
/// solve instead of the blocked one: with only a few right-hand-side
/// columns the blocked solve's lane dimension (columns) degenerates to
/// scalar updates, while the transposed per-query substitution vectorizes
/// over rows regardless of batch size. Both chains are bit-identical per
/// column (the blocked-solve contract in linalg/triangular.h), so this
/// dispatch can never change a result — it is purely a crossover point,
/// sized at two AVX-512 lane widths where the measured curves intersect.
constexpr size_t kBlockedMinBatch = 16;

/// exp(-||a - b||^2 / tau) over raw row pointers: the exact
/// GaussianKernel::operator() chain without the Vector copies. The ICD
/// kernel oracles call this ~rank * n times per factorization.
double GaussianRaw(const double* a, const double* b, size_t dims,
                   double tau) {
  double s = 0.0;
  for (size_t j = 0; j < dims; ++j) {
    const double d = a[j] - b[j];
    s += d * d;
  }
  return std::exp(-s / tau);
}

/// In-place forward substitution L g = rhs, column-oriented over the
/// cached transpose lt (row j of lt is column j of L): once g[j] is fixed,
/// one AxpyNegRow folds column j out of every remaining residual. Each
/// element's subtraction chain still runs in ascending j — identical to
/// the row-oriented loop in the scalar path — and s -= x is exactly
/// s += (-x) in IEEE arithmetic, with the division last, so the result is
/// bit-identical to the scalar substitution.
void ForwardSubstColumns(const double* lt, size_t m, double* s) {
  for (size_t j = 0; j < m; ++j) {
    const double g = s[j] / lt[j * m + j];
    s[j] = g;
    simd::AxpyNegRow(s + j + 1, g, lt + j * m + j + 1, m - j - 1);
  }
}

linalg::Vector RowMeans(const linalg::Matrix& k, double* grand) {
  const size_t n = k.rows();
  linalg::Vector means(n, 0.0);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < n; ++j) s += k(i, j);
    means[i] = s / static_cast<double>(n);
    total += s;
  }
  if (grand != nullptr) {
    *grand = total / static_cast<double>(n * n);
  }
  return means;
}

}  // namespace

KccaModel KccaModel::Train(const linalg::Matrix& x, const linalg::Matrix& y,
                           const KccaOptions& options) {
  QPP_CHECK(x.rows() == y.rows() && x.rows() >= 4);
  const size_t n = x.rows();

  KccaModel model;
  model.options_ = options;
  model.tau_x_ = GaussianScaleFromNorms(x, options.tau_factor_x);
  const double tau_y = GaussianScaleFromNorms(y, options.tau_factor_y);
  const GaussianKernel kx_fn{model.tau_x_};
  const GaussianKernel ky_fn{tau_y};

  const bool exact =
      options.solver == KccaSolver::kExact ||
      (options.solver == KccaSolver::kAuto && n <= options.exact_threshold);

  const size_t d_wanted = std::max<size_t>(options.num_dims, 1);

  if (exact) {
    model.solver_used_ = KccaSolver::kExact;
    model.train_x_ = x;

    linalg::Matrix kx = KernelMatrix(x, kx_fn);
    linalg::Matrix ky = KernelMatrix(y, ky_fn);
    model.kx_row_means_ = RowMeans(kx, &model.kx_grand_mean_);
    CenterKernelMatrix(&kx);
    CenterKernelMatrix(&ky);

    // Regularized generalized eigenproblem reduced to one symmetric
    // problem:  S = Lx^{-1} (Kx Ky) My^{-1} (Ky Kx) Lx^{-T}
    // with Mx = Kx Kx + kappa_x Kx + eps I = Lx Lx^T (My analogous).
    const double kappa_x =
        options.kappa * kx.FrobeniusNorm() / std::sqrt(static_cast<double>(n));
    const double kappa_y =
        options.kappa * ky.FrobeniusNorm() / std::sqrt(static_cast<double>(n));

    linalg::Matrix mx = kx.Multiply(kx);
    {
      const linalg::Matrix reg = kx.Scale(kappa_x);
      mx = mx.Add(reg);
    }
    mx.AddToDiagonal(1e-8 * std::max(mx.MaxAbs(), 1.0));
    linalg::Matrix my = ky.Multiply(ky);
    {
      const linalg::Matrix reg = ky.Scale(kappa_y);
      my = my.Add(reg);
    }
    my.AddToDiagonal(1e-8 * std::max(my.MaxAbs(), 1.0));

    const linalg::Cholesky lx(mx, 1e-2);
    const linalg::Cholesky ly(my, 1e-2);
    QPP_CHECK_MSG(lx.ok() && ly.ok(), "KCCA kernel system not SPD");

    const linalg::Matrix c = kx.Multiply(ky);          // N x N
    const linalg::Matrix u1 = lx.SolveLowerMatrix(c);  // Lx^{-1} C
    const linalg::Matrix g =
        ly.SolveLowerMatrix(u1.Transpose()).Transpose();  // u1 Ly^{-T}
    const linalg::Matrix s = g.MultiplyTranspose(g);

    const size_t d = std::min(d_wanted, n);
    const linalg::TopEigen top = linalg::TopKEigenSymmetric(s, d);

    model.a_ = linalg::Matrix(n, d);
    linalg::Matrix b(n, d);
    model.correlations_.assign(d, 0.0);
    for (size_t cidx = 0; cidx < d; ++cidx) {
      const double sigma = std::sqrt(std::max(top.values[cidx], 0.0));
      model.correlations_[cidx] = std::min(sigma, 1.0);
      const linalg::Vector u = top.vectors.Col(cidx);
      const linalg::Vector a_col = lx.SolveLowerTranspose(u);
      for (size_t i = 0; i < n; ++i) model.a_(i, cidx) = a_col[i];
      // b = My^{-1} C^T a / sigma.
      linalg::Vector cta(n, 0.0);
      for (size_t j = 0; j < n; ++j) {
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) sum += c(i, j) * a_col[i];
        cta[j] = sum;
      }
      linalg::Vector b_col = ly.Solve(cta);
      if (sigma > 1e-12) {
        for (double& v : b_col) v /= sigma;
      }
      for (size_t i = 0; i < n; ++i) b(i, cidx) = b_col[i];
    }

    model.px_ = kx.Multiply(model.a_);
    model.py_ = ky.Multiply(b);
    return model;
  }

  // --- Incomplete-Cholesky path ------------------------------------------
  model.solver_used_ = KccaSolver::kIcd;
  // Raw-pointer oracles: same value as kx_fn(x.Row(i), x.Row(j)) without
  // materializing two Vector copies per evaluated entry (the factorization
  // probes ~rank * n entries).
  const double* xbase = x.data().data();
  const double* ybase = y.data().data();
  const size_t xc = x.cols();
  const size_t yc = y.cols();
  const auto kx_oracle = [&](size_t i, size_t j) {
    return i == j ? 1.0
                  : GaussianRaw(xbase + i * xc, xbase + j * xc, xc,
                                kx_fn.tau);
  };
  const auto ky_oracle = [&](size_t i, size_t j) {
    return i == j ? 1.0
                  : GaussianRaw(ybase + i * yc, ybase + j * yc, yc,
                                ky_fn.tau);
  };
  const linalg::IncompleteCholeskyResult icx = linalg::IncompleteCholesky(
      n, kx_oracle, options.icd_max_rank, options.icd_tolerance);
  const linalg::IncompleteCholeskyResult icy = linalg::IncompleteCholesky(
      n, ky_oracle, options.icd_max_rank, options.icd_tolerance);
  QPP_CHECK(icx.pivots.size() >= 1 && icy.pivots.size() >= 1);

  // CCA in the induced feature spaces (FitCca centers internally).
  const size_t d =
      std::min({d_wanted, icx.pivots.size(), icy.pivots.size()});
  const CcaModel cca = FitCca(icx.g, icy.g, d, options.kappa);

  model.px_ = cca.ProjectXAll(icx.g);
  model.py_ = cca.ProjectYAll(icy.g);
  model.correlations_ = cca.correlations;

  // Prediction state: map a new point into G_x coordinates via the pivots.
  model.pivot_x_ = linalg::Matrix(icx.pivots.size(), x.cols());
  for (size_t r = 0; r < icx.pivots.size(); ++r) {
    model.pivot_x_.SetRow(r, x.Row(icx.pivots[r]));
  }
  model.lpp_ = linalg::PivotFactor(icx);
  model.lpp_t_ = model.lpp_.Transpose();
  model.pivot_tiles_.resize(model.pivot_x_.rows() * model.pivot_x_.cols());
  PackRowsToTiles(model.pivot_x_.data().data(), model.pivot_x_.rows(),
                  model.pivot_x_.cols(), model.pivot_tiles_.data());
  model.gx_means_ = cca.mean_x;
  model.wx_ = cca.wx;
  return model;
}

linalg::Vector KccaModel::ProjectX(const linalg::Vector& x) const {
  const GaussianKernel kernel{tau_x_};
  const bool use_simd = simd::Enabled();
  if (solver_used_ == KccaSolver::kExact) {
    QPP_CHECK(!train_x_.empty());
    const linalg::Vector k_star = KernelVector(train_x_, x, kernel);
    const linalg::Vector centered =
        CenterKernelVector(k_star, kx_row_means_, kx_grand_mean_);
    // projection = centered^T A. The SIMD form accumulates row-major over
    // A (one AxpyRow per training row): each out[c] still sums in
    // ascending i, so both forms are bit-identical.
    const size_t d = a_.cols();
    linalg::Vector out(d, 0.0);
    if (use_simd) {
      const double* abase = a_.data().data();
      for (size_t i = 0; i < centered.size(); ++i) {
        simd::AxpyRow(out.data(), centered[i], abase + i * d, d);
      }
    } else {
      for (size_t c = 0; c < d; ++c) {
        double s = 0.0;
        for (size_t i = 0; i < centered.size(); ++i) {
          s += centered[i] * a_(i, c);
        }
        out[c] = s;
      }
    }
    return out;
  }
  // ICD: g = Lpp^{-1} k(P, x); project via the CCA directions.
  QPP_CHECK(!pivot_x_.empty());
  QPP_CHECK(x.size() == pivot_x_.cols());
  const size_t m = lpp_.rows();
  linalg::Vector gvec(m);
  if (use_simd) {
    // Pivot kernel values from the tiled copy of pivot_x_ — same doubles,
    // contiguous loads (GaussianKernelTiles is bit-identical to
    // KernelVector(pivot_x_, ...)).
    GaussianKernelTiles(pivot_tiles_.data(), m, pivot_x_.cols(), x.data(),
                        tau_x_, true, gvec.data());
    ForwardSubstColumns(lpp_t_.data().data(), m, gvec.data());
  } else {
    // Scalar oracle: the literal row-major kernel vector and row-oriented
    // forward substitution with lpp_ the tiled/column-oriented forms are
    // pinned against.
    const linalg::Vector kp = KernelVector(pivot_x_, x, kernel);
    for (size_t i = 0; i < m; ++i) {
      double s = kp[i];
      for (size_t j = 0; j < i; ++j) s -= lpp_(i, j) * gvec[j];
      gvec[i] = s / lpp_(i, i);
    }
  }
  const size_t d = wx_.cols();
  linalg::Vector out(d, 0.0);
  if (use_simd) {
    const double* wbase = wx_.data().data();
    for (size_t j = 0; j < m; ++j) {
      simd::AxpyRow(out.data(), gvec[j] - gx_means_[j], wbase + j * d, d);
    }
  } else {
    for (size_t c = 0; c < d; ++c) {
      double s = 0.0;
      for (size_t j = 0; j < m; ++j) s += (gvec[j] - gx_means_[j]) * wx_(j, c);
      out[c] = s;
    }
  }
  return out;
}

linalg::Matrix KccaModel::ProjectXBatch(const linalg::Matrix& xs) const {
  QPP_CHECK(tau_x_ > 0.0);
  const size_t b = xs.rows();
  const size_t dims = xs.cols();
  const double* xbase = xs.data().data();

  if (solver_used_ == KccaSolver::kExact) {
    QPP_CHECK(!train_x_.empty());
    QPP_CHECK(dims == train_x_.cols());
    const size_t n = train_x_.rows();
    const size_t d = a_.cols();
    const double* tbase = train_x_.data().data();
    const double* abase = a_.data().data();
    linalg::Matrix out(b, d);
    // Rows are independent (disjoint output rows, read-only model state):
    // chunks of the batch run in parallel, each with its own kernel-vector
    // scratch. The per-row arithmetic below is exactly the single-row
    // ProjectX sequence, so batch row i stays bit-identical to
    // ProjectX(xs.Row(i)) at every thread count.
    const bool use_simd = simd::Enabled();
    par::ParallelFor(
        0, b, kProjectGrain,
        [&](size_t r0, size_t r1) {
          linalg::Vector centered(n);
          for (size_t r = r0; r < r1; ++r) {
            const double* xq = xbase + r * dims;
            double* orow = &out.data()[r * d];
            if (use_simd) {
              // Kernel values via the shared row-block kernel, then the
              // mean accumulated from them in ascending i — the same
              // chain as the fused scalar loop below.
              GaussianKernelRows(tbase, n, dims, xq, dims, tau_x_, true,
                                 centered.data());
              double mean_star = 0.0;
              for (size_t i = 0; i < n; ++i) mean_star += centered[i];
              mean_star /= static_cast<double>(n);
              // Centering is elementwise; the lane form keeps the exact
              // ((k* - row_mean) - mean*) + grand_mean association.
              const double* rm = kx_row_means_.data();
              const simd::VecD vmean = simd::Splat(mean_star);
              const simd::VecD vgrand = simd::Splat(kx_grand_mean_);
              size_t i = 0;
              for (; i + simd::kLanes <= n; i += simd::kLanes) {
                simd::StoreU(
                    centered.data() + i,
                    simd::Add(simd::Sub(simd::Sub(
                                            simd::LoadU(centered.data() + i),
                                            simd::LoadU(rm + i)),
                                        vmean),
                              vgrand));
              }
              for (; i < n; ++i) {
                double v = centered[i] - rm[i];
                v = v - mean_star;
                centered[i] = v + kx_grand_mean_;
              }
              for (i = 0; i < n; ++i) {
                simd::AxpyRow(orow, centered[i], abase + i * d, d);
              }
              continue;
            }
            // Kernel vector + centering, fused. Same per-element arithmetic
            // as KernelVector + CenterKernelVector, minus the allocations.
            double mean_star = 0.0;
            for (size_t i = 0; i < n; ++i) {
              const double* ti = tbase + i * dims;
              double sq = 0.0;
              for (size_t j = 0; j < dims; ++j) {
                const double diff = ti[j] - xq[j];
                sq += diff * diff;
              }
              centered[i] = std::exp(-sq / tau_x_);
              mean_star += centered[i];
            }
            mean_star /= static_cast<double>(n);
            for (size_t i = 0; i < n; ++i) {
              // Same association as CenterKernelVector:
              // k*[i] - row_mean[i] - mean* + grand_mean, left to right.
              double v = centered[i] - kx_row_means_[i];
              v = v - mean_star;
              centered[i] = v + kx_grand_mean_;
            }
            // projection = centered^T A, accumulated row-major over A (each
            // output column still sums in ascending i, as ProjectX does).
            for (size_t i = 0; i < n; ++i) {
              const double ci = centered[i];
              const double* arow = abase + i * d;
              for (size_t c = 0; c < d; ++c) orow[c] += ci * arow[c];
            }
          }
        },
        "kcca_project_batch");
    return out;
  }

  // ICD path: the query-blocked pipeline behind ProjectXBatchInto, with a
  // call-local workspace.
  linalg::Matrix out;
  par::Workspace ws;
  ProjectXBatchInto(xs, &ws, &out, nullptr);
  return out;
}

void KccaModel::ProjectXBatchInto(const linalg::Matrix& xs,
                                  par::Workspace* ws, linalg::Matrix* out,
                                  KccaProjectTimes* times) const {
  QPP_CHECK(tau_x_ > 0.0);
  QPP_CHECK(ws != nullptr && out != nullptr);
  const size_t b = xs.rows();
  if (solver_used_ == KccaSolver::kExact) {
    // No blocked form for the dense-kernel path (it is already row-chunk
    // parallel and off the serve hot path at production N).
    *out = ProjectXBatch(xs);
    return;
  }
  QPP_CHECK(!pivot_x_.empty());
  QPP_CHECK(xs.cols() == pivot_x_.cols());
  const size_t dims = xs.cols();
  const size_t m = lpp_.rows();
  const size_t d = wx_.cols();

  ws->Reset();
  out->Reshape(b, d, 0.0);
  if (b == 0) return;

  // All per-batch scratch comes from the arena; the parallel phases below
  // only ever write disjoint ranges of it (column blocks / row blocks), so
  // one workspace serves every pool thread.
  double* s = ws->Alloc(m * b);

  // One context pointer per lambda keeps each phase's std::function inside
  // the small-buffer optimization — a multi-capture closure would heap-
  // allocate per ParallelFor call and fail the zero-allocation gate.
  struct Ctx {
    const KccaModel* model;
    const double* xbase;
    double* s;
    double* obase;
    size_t dims, b, m, d;
    bool use_simd;
  };
  Ctx ctx{this,         xs.data().data(), s, out->data().data(),
          dims,         b,                m, d,
          simd::Enabled()};

  using Clock = std::chrono::steady_clock;
  const auto Sec = [](Clock::time_point a, Clock::time_point bb) {
    return std::chrono::duration<double>(bb - a).count();
  };

  if (b < kBlockedMinBatch) {
    // Small-batch path: per-query kernel rows and the transposed per-query
    // substitution, over a row-major S (query q owns s[q*m .. q*m+m)). Same
    // three phases for the stage breakdown; every chain is the literal
    // per-query ProjectX sequence.
    const auto u0 = Clock::now();
    par::ParallelFor(
        0, b, kProjectGrain,
        [&ctx](size_t q0, size_t q1) {
          const KccaModel& mo = *ctx.model;
          const double* pbase = mo.pivot_x_.data().data();
          for (size_t q = q0; q < q1; ++q) {
            const double* xq = ctx.xbase + q * ctx.dims;
            double* srow = ctx.s + q * ctx.m;
            if (ctx.use_simd) {
              GaussianKernelTiles(mo.pivot_tiles_.data(), ctx.m, ctx.dims,
                                  xq, mo.tau_x_, true, srow);
              continue;
            }
            for (size_t i = 0; i < ctx.m; ++i) {
              const double* pi = pbase + i * ctx.dims;
              double sq = 0.0;
              for (size_t j = 0; j < ctx.dims; ++j) {
                const double diff = pi[j] - xq[j];
                sq += diff * diff;
              }
              srow[i] = std::exp(-sq / mo.tau_x_);
            }
          }
        },
        "kcca_kernel_batch");
    const auto u1 = Clock::now();
    par::ParallelFor(
        0, b, kProjectGrain,
        [&ctx](size_t q0, size_t q1) {
          const KccaModel& mo = *ctx.model;
          for (size_t q = q0; q < q1; ++q) {
            double* srow = ctx.s + q * ctx.m;
            if (ctx.use_simd) {
              ForwardSubstColumns(mo.lpp_t_.data().data(), ctx.m, srow);
              continue;
            }
            // The literal row-oriented scalar substitution (in place: each
            // srow[i] is read before it is overwritten).
            for (size_t i = 0; i < ctx.m; ++i) {
              double v = srow[i];
              for (size_t j = 0; j < i; ++j) v -= mo.lpp_(i, j) * srow[j];
              srow[i] = v / mo.lpp_(i, i);
            }
          }
        },
        "kcca_solve_batch");
    const auto u2 = Clock::now();
    par::ParallelFor(
        0, b, kProjectGrain,
        [&ctx](size_t q0, size_t q1) {
          const KccaModel& mo = *ctx.model;
          const double* wbase = mo.wx_.data().data();
          const double* means = mo.gx_means_.data();
          for (size_t q = q0; q < q1; ++q) {
            const double* srow = ctx.s + q * ctx.m;
            double* orow = ctx.obase + q * ctx.d;
            if (ctx.use_simd) {
              for (size_t j = 0; j < ctx.m; ++j) {
                simd::AxpyRow(orow, srow[j] - means[j], wbase + j * ctx.d,
                              ctx.d);
              }
            } else {
              for (size_t j = 0; j < ctx.m; ++j) {
                const double gj = srow[j] - means[j];
                const double* wrow = wbase + j * ctx.d;
                for (size_t c = 0; c < ctx.d; ++c) orow[c] += gj * wrow[c];
              }
            }
          }
        },
        "kcca_project_batch");
    if (times != nullptr) {
      const auto u3 = Clock::now();
      times->kernel_s += Sec(u0, u1);
      times->solve_s += Sec(u1, u2);
      times->project_s += Sec(u2, u3);
    }
    return;
  }

  const auto t0 = Clock::now();

  // Phase 1 — pivot-kernel right-hand side: S(i, q) = k(pivot_i, x_q),
  // query-chunked. The tiled batch form keeps each packed pivot tile hot
  // across the chunk's queries; each (i, q) value is the exact per-query
  // chain (strided stores only), so S column q == the gvec the per-query
  // path would start from.
  par::ParallelFor(
      0, b, kProjectGrain,
      [&ctx](size_t q0, size_t q1) {
        const KccaModel& mo = *ctx.model;
        if (ctx.use_simd) {
          GaussianKernelTilesBatch(mo.pivot_tiles_.data(), ctx.m, ctx.dims,
                                   ctx.xbase + q0 * ctx.dims, q1 - q0,
                                   ctx.dims, mo.tau_x_, true, ctx.s + q0,
                                   ctx.b);
          return;
        }
        // Scalar oracle: the literal fused kernel loop of the per-query
        // path, written into S's columns.
        const double* pbase = mo.pivot_x_.data().data();
        for (size_t q = q0; q < q1; ++q) {
          const double* xq = ctx.xbase + q * ctx.dims;
          for (size_t i = 0; i < ctx.m; ++i) {
            const double* pi = pbase + i * ctx.dims;
            double sq = 0.0;
            for (size_t j = 0; j < ctx.dims; ++j) {
              const double diff = pi[j] - xq[j];
              sq += diff * diff;
            }
            ctx.s[i * ctx.b + q] = std::exp(-sq / mo.tau_x_);
          }
        }
      },
      "kcca_kernel_batch");
  const auto t1 = Clock::now();

  // Phase 2 — blocked forward substitution over disjoint column ranges of
  // S. The factor is read once per column block instead of once per query;
  // each column's arithmetic chain is exactly ForwardSubstColumns'.
  par::ParallelFor(
      0, b, kSolveColGrain,
      [&ctx](size_t c0, size_t c1) {
        linalg::ForwardSubstBlocked(ctx.model->lpp_.data().data(), ctx.m,
                                    ctx.s + c0, c1 - c0, ctx.b,
                                    ctx.use_simd);
      },
      "kcca_solve_batch");
  const auto t2 = Clock::now();

  // Phase 3 — projection through the CCA directions, query-chunked. Same
  // ascending-j accumulation per output element as the per-query path.
  par::ParallelFor(
      0, b, kProjectGrain,
      [&ctx](size_t q0, size_t q1) {
        const KccaModel& mo = *ctx.model;
        const double* wbase = mo.wx_.data().data();
        const double* means = mo.gx_means_.data();
        for (size_t q = q0; q < q1; ++q) {
          double* orow = ctx.obase + q * ctx.d;
          if (ctx.use_simd) {
            for (size_t j = 0; j < ctx.m; ++j) {
              simd::AxpyRow(orow, ctx.s[j * ctx.b + q] - means[j],
                            wbase + j * ctx.d, ctx.d);
            }
          } else {
            for (size_t j = 0; j < ctx.m; ++j) {
              const double gj = ctx.s[j * ctx.b + q] - means[j];
              const double* wrow = wbase + j * ctx.d;
              for (size_t c = 0; c < ctx.d; ++c) orow[c] += gj * wrow[c];
            }
          }
        }
      },
      "kcca_project_batch");
  const auto t3 = Clock::now();

  if (times != nullptr) {
    times->kernel_s += Sec(t0, t1);
    times->solve_s += Sec(t1, t2);
    times->project_s += Sec(t2, t3);
  }
}

void KccaModel::Save(BinaryWriter* w) const {
  w->WriteU32(solver_used_ == KccaSolver::kExact ? 0u : 1u);
  w->WriteU64(options_.num_dims);
  w->WriteDouble(options_.kappa);
  w->WriteDouble(options_.tau_factor_x);
  w->WriteDouble(options_.tau_factor_y);
  w->WriteDouble(tau_x_);
  linalg::WriteMatrix(w, px_);
  linalg::WriteMatrix(w, py_);
  w->WriteDoubles(correlations_);
  linalg::WriteMatrix(w, train_x_);
  linalg::WriteMatrix(w, a_);
  w->WriteDoubles(kx_row_means_);
  w->WriteDouble(kx_grand_mean_);
  linalg::WriteMatrix(w, pivot_x_);
  linalg::WriteMatrix(w, lpp_);
  w->WriteDoubles(gx_means_);
  linalg::WriteMatrix(w, wx_);
}

KccaModel KccaModel::Load(BinaryReader* r) {
  KccaModel m;
  m.solver_used_ =
      r->ReadU32() == 0 ? KccaSolver::kExact : KccaSolver::kIcd;
  m.options_.num_dims = static_cast<size_t>(r->ReadU64());
  m.options_.kappa = r->ReadDouble();
  m.options_.tau_factor_x = r->ReadDouble();
  m.options_.tau_factor_y = r->ReadDouble();
  m.tau_x_ = r->ReadDouble();
  m.px_ = linalg::ReadMatrix(r);
  m.py_ = linalg::ReadMatrix(r);
  m.correlations_ = r->ReadDoubles();
  m.train_x_ = linalg::ReadMatrix(r);
  m.a_ = linalg::ReadMatrix(r);
  m.kx_row_means_ = r->ReadDoubles();
  m.kx_grand_mean_ = r->ReadDouble();
  m.pivot_x_ = linalg::ReadMatrix(r);
  m.lpp_ = linalg::ReadMatrix(r);
  // lpp_t_ and pivot_tiles_ are derived state, deliberately not part of
  // the model format.
  m.lpp_t_ = m.lpp_.Transpose();
  m.pivot_tiles_.resize(m.pivot_x_.rows() * m.pivot_x_.cols());
  PackRowsToTiles(m.pivot_x_.data().data(), m.pivot_x_.rows(),
                  m.pivot_x_.cols(), m.pivot_tiles_.data());
  m.gx_means_ = r->ReadDoubles();
  m.wx_ = linalg::ReadMatrix(r);
  return m;
}

}  // namespace qpp::ml
