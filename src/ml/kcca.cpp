#include "ml/kcca.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/incomplete_cholesky.h"
#include "linalg/serde.h"
#include "par/parallel_for.h"

namespace qpp::ml {

namespace {

/// Batch-projection rows per parallel chunk (fixed: the chunking must not
/// depend on the thread count; see par/thread_pool.h).
constexpr size_t kProjectGrain = 8;

linalg::Vector RowMeans(const linalg::Matrix& k, double* grand) {
  const size_t n = k.rows();
  linalg::Vector means(n, 0.0);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < n; ++j) s += k(i, j);
    means[i] = s / static_cast<double>(n);
    total += s;
  }
  if (grand != nullptr) {
    *grand = total / static_cast<double>(n * n);
  }
  return means;
}

}  // namespace

KccaModel KccaModel::Train(const linalg::Matrix& x, const linalg::Matrix& y,
                           const KccaOptions& options) {
  QPP_CHECK(x.rows() == y.rows() && x.rows() >= 4);
  const size_t n = x.rows();

  KccaModel model;
  model.options_ = options;
  model.tau_x_ = GaussianScaleFromNorms(x, options.tau_factor_x);
  const double tau_y = GaussianScaleFromNorms(y, options.tau_factor_y);
  const GaussianKernel kx_fn{model.tau_x_};
  const GaussianKernel ky_fn{tau_y};

  const bool exact =
      options.solver == KccaSolver::kExact ||
      (options.solver == KccaSolver::kAuto && n <= options.exact_threshold);

  const size_t d_wanted = std::max<size_t>(options.num_dims, 1);

  if (exact) {
    model.solver_used_ = KccaSolver::kExact;
    model.train_x_ = x;

    linalg::Matrix kx = KernelMatrix(x, kx_fn);
    linalg::Matrix ky = KernelMatrix(y, ky_fn);
    model.kx_row_means_ = RowMeans(kx, &model.kx_grand_mean_);
    CenterKernelMatrix(&kx);
    CenterKernelMatrix(&ky);

    // Regularized generalized eigenproblem reduced to one symmetric
    // problem:  S = Lx^{-1} (Kx Ky) My^{-1} (Ky Kx) Lx^{-T}
    // with Mx = Kx Kx + kappa_x Kx + eps I = Lx Lx^T (My analogous).
    const double kappa_x =
        options.kappa * kx.FrobeniusNorm() / std::sqrt(static_cast<double>(n));
    const double kappa_y =
        options.kappa * ky.FrobeniusNorm() / std::sqrt(static_cast<double>(n));

    linalg::Matrix mx = kx.Multiply(kx);
    {
      const linalg::Matrix reg = kx.Scale(kappa_x);
      mx = mx.Add(reg);
    }
    mx.AddToDiagonal(1e-8 * std::max(mx.MaxAbs(), 1.0));
    linalg::Matrix my = ky.Multiply(ky);
    {
      const linalg::Matrix reg = ky.Scale(kappa_y);
      my = my.Add(reg);
    }
    my.AddToDiagonal(1e-8 * std::max(my.MaxAbs(), 1.0));

    const linalg::Cholesky lx(mx, 1e-2);
    const linalg::Cholesky ly(my, 1e-2);
    QPP_CHECK_MSG(lx.ok() && ly.ok(), "KCCA kernel system not SPD");

    const linalg::Matrix c = kx.Multiply(ky);          // N x N
    const linalg::Matrix u1 = lx.SolveLowerMatrix(c);  // Lx^{-1} C
    const linalg::Matrix g =
        ly.SolveLowerMatrix(u1.Transpose()).Transpose();  // u1 Ly^{-T}
    const linalg::Matrix s = g.MultiplyTranspose(g);

    const size_t d = std::min(d_wanted, n);
    const linalg::TopEigen top = linalg::TopKEigenSymmetric(s, d);

    model.a_ = linalg::Matrix(n, d);
    linalg::Matrix b(n, d);
    model.correlations_.assign(d, 0.0);
    for (size_t cidx = 0; cidx < d; ++cidx) {
      const double sigma = std::sqrt(std::max(top.values[cidx], 0.0));
      model.correlations_[cidx] = std::min(sigma, 1.0);
      const linalg::Vector u = top.vectors.Col(cidx);
      const linalg::Vector a_col = lx.SolveLowerTranspose(u);
      for (size_t i = 0; i < n; ++i) model.a_(i, cidx) = a_col[i];
      // b = My^{-1} C^T a / sigma.
      linalg::Vector cta(n, 0.0);
      for (size_t j = 0; j < n; ++j) {
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) sum += c(i, j) * a_col[i];
        cta[j] = sum;
      }
      linalg::Vector b_col = ly.Solve(cta);
      if (sigma > 1e-12) {
        for (double& v : b_col) v /= sigma;
      }
      for (size_t i = 0; i < n; ++i) b(i, cidx) = b_col[i];
    }

    model.px_ = kx.Multiply(model.a_);
    model.py_ = ky.Multiply(b);
    return model;
  }

  // --- Incomplete-Cholesky path ------------------------------------------
  model.solver_used_ = KccaSolver::kIcd;
  const auto kx_oracle = [&](size_t i, size_t j) {
    return i == j ? 1.0 : kx_fn(x.Row(i), x.Row(j));
  };
  const auto ky_oracle = [&](size_t i, size_t j) {
    return i == j ? 1.0 : ky_fn(y.Row(i), y.Row(j));
  };
  const linalg::IncompleteCholeskyResult icx = linalg::IncompleteCholesky(
      n, kx_oracle, options.icd_max_rank, options.icd_tolerance);
  const linalg::IncompleteCholeskyResult icy = linalg::IncompleteCholesky(
      n, ky_oracle, options.icd_max_rank, options.icd_tolerance);
  QPP_CHECK(icx.pivots.size() >= 1 && icy.pivots.size() >= 1);

  // CCA in the induced feature spaces (FitCca centers internally).
  const size_t d =
      std::min({d_wanted, icx.pivots.size(), icy.pivots.size()});
  const CcaModel cca = FitCca(icx.g, icy.g, d, options.kappa);

  model.px_ = cca.ProjectXAll(icx.g);
  model.py_ = cca.ProjectYAll(icy.g);
  model.correlations_ = cca.correlations;

  // Prediction state: map a new point into G_x coordinates via the pivots.
  model.pivot_x_ = linalg::Matrix(icx.pivots.size(), x.cols());
  for (size_t r = 0; r < icx.pivots.size(); ++r) {
    model.pivot_x_.SetRow(r, x.Row(icx.pivots[r]));
  }
  model.lpp_ = linalg::PivotFactor(icx);
  model.gx_means_ = cca.mean_x;
  model.wx_ = cca.wx;
  return model;
}

linalg::Vector KccaModel::ProjectX(const linalg::Vector& x) const {
  const GaussianKernel kernel{tau_x_};
  if (solver_used_ == KccaSolver::kExact) {
    QPP_CHECK(!train_x_.empty());
    const linalg::Vector k_star = KernelVector(train_x_, x, kernel);
    const linalg::Vector centered =
        CenterKernelVector(k_star, kx_row_means_, kx_grand_mean_);
    // projection = centered^T A.
    linalg::Vector out(a_.cols(), 0.0);
    for (size_t c = 0; c < a_.cols(); ++c) {
      double s = 0.0;
      for (size_t i = 0; i < centered.size(); ++i) s += centered[i] * a_(i, c);
      out[c] = s;
    }
    return out;
  }
  // ICD: g = Lpp^{-1} k(P, x); project via the CCA directions.
  QPP_CHECK(!pivot_x_.empty());
  const linalg::Vector kp = KernelVector(pivot_x_, x, kernel);
  // Forward substitution with lpp_.
  const size_t m = lpp_.rows();
  linalg::Vector gvec(m, 0.0);
  for (size_t i = 0; i < m; ++i) {
    double s = kp[i];
    for (size_t j = 0; j < i; ++j) s -= lpp_(i, j) * gvec[j];
    gvec[i] = s / lpp_(i, i);
  }
  linalg::Vector out(wx_.cols(), 0.0);
  for (size_t c = 0; c < wx_.cols(); ++c) {
    double s = 0.0;
    for (size_t j = 0; j < m; ++j) s += (gvec[j] - gx_means_[j]) * wx_(j, c);
    out[c] = s;
  }
  return out;
}

linalg::Matrix KccaModel::ProjectXBatch(const linalg::Matrix& xs) const {
  QPP_CHECK(tau_x_ > 0.0);
  const size_t b = xs.rows();
  const size_t dims = xs.cols();
  const double* xbase = xs.data().data();

  if (solver_used_ == KccaSolver::kExact) {
    QPP_CHECK(!train_x_.empty());
    QPP_CHECK(dims == train_x_.cols());
    const size_t n = train_x_.rows();
    const size_t d = a_.cols();
    const double* tbase = train_x_.data().data();
    const double* abase = a_.data().data();
    linalg::Matrix out(b, d);
    // Rows are independent (disjoint output rows, read-only model state):
    // chunks of the batch run in parallel, each with its own kernel-vector
    // scratch. The per-row arithmetic below is exactly the single-row
    // ProjectX sequence, so batch row i stays bit-identical to
    // ProjectX(xs.Row(i)) at every thread count.
    par::ParallelFor(
        0, b, kProjectGrain,
        [&](size_t r0, size_t r1) {
          linalg::Vector centered(n);
          for (size_t r = r0; r < r1; ++r) {
            const double* xq = xbase + r * dims;
            // Kernel vector + centering, fused. Same per-element arithmetic
            // as KernelVector + CenterKernelVector, minus the allocations.
            double mean_star = 0.0;
            for (size_t i = 0; i < n; ++i) {
              const double* ti = tbase + i * dims;
              double sq = 0.0;
              for (size_t j = 0; j < dims; ++j) {
                const double diff = ti[j] - xq[j];
                sq += diff * diff;
              }
              centered[i] = std::exp(-sq / tau_x_);
              mean_star += centered[i];
            }
            mean_star /= static_cast<double>(n);
            for (size_t i = 0; i < n; ++i) {
              // Same association as CenterKernelVector:
              // k*[i] - row_mean[i] - mean* + grand_mean, left to right.
              double v = centered[i] - kx_row_means_[i];
              v = v - mean_star;
              centered[i] = v + kx_grand_mean_;
            }
            // projection = centered^T A, accumulated row-major over A (each
            // output column still sums in ascending i, as ProjectX does).
            double* orow = &out.data()[r * d];
            for (size_t i = 0; i < n; ++i) {
              const double ci = centered[i];
              const double* arow = abase + i * d;
              for (size_t c = 0; c < d; ++c) orow[c] += ci * arow[c];
            }
          }
        },
        "kcca_project_batch");
    return out;
  }

  // ICD path: g = Lpp^{-1} k(P, x) per row, then the CCA directions.
  QPP_CHECK(!pivot_x_.empty());
  QPP_CHECK(dims == pivot_x_.cols());
  const size_t m = lpp_.rows();
  const size_t d = wx_.cols();
  const double* pbase = pivot_x_.data().data();
  const double* wbase = wx_.data().data();
  linalg::Matrix out(b, d);
  // Same chunk-parallel shape as the exact path: per-chunk forward-
  // substitution scratch, per-row arithmetic identical to ProjectX.
  par::ParallelFor(
      0, b, kProjectGrain,
      [&](size_t r0, size_t r1) {
        linalg::Vector gvec(m);
        for (size_t r = r0; r < r1; ++r) {
          const double* xq = xbase + r * dims;
          for (size_t i = 0; i < m; ++i) {
            const double* pi = pbase + i * dims;
            double sq = 0.0;
            for (size_t j = 0; j < dims; ++j) {
              const double diff = pi[j] - xq[j];
              sq += diff * diff;
            }
            double s = std::exp(-sq / tau_x_);
            for (size_t j = 0; j < i; ++j) s -= lpp_(i, j) * gvec[j];
            gvec[i] = s / lpp_(i, i);
          }
          double* orow = &out.data()[r * d];
          for (size_t j = 0; j < m; ++j) {
            const double gj = gvec[j] - gx_means_[j];
            const double* wrow = wbase + j * d;
            for (size_t c = 0; c < d; ++c) orow[c] += gj * wrow[c];
          }
        }
      },
      "kcca_project_batch");
  return out;
}

void KccaModel::Save(BinaryWriter* w) const {
  w->WriteU32(solver_used_ == KccaSolver::kExact ? 0u : 1u);
  w->WriteU64(options_.num_dims);
  w->WriteDouble(options_.kappa);
  w->WriteDouble(options_.tau_factor_x);
  w->WriteDouble(options_.tau_factor_y);
  w->WriteDouble(tau_x_);
  linalg::WriteMatrix(w, px_);
  linalg::WriteMatrix(w, py_);
  w->WriteDoubles(correlations_);
  linalg::WriteMatrix(w, train_x_);
  linalg::WriteMatrix(w, a_);
  w->WriteDoubles(kx_row_means_);
  w->WriteDouble(kx_grand_mean_);
  linalg::WriteMatrix(w, pivot_x_);
  linalg::WriteMatrix(w, lpp_);
  w->WriteDoubles(gx_means_);
  linalg::WriteMatrix(w, wx_);
}

KccaModel KccaModel::Load(BinaryReader* r) {
  KccaModel m;
  m.solver_used_ =
      r->ReadU32() == 0 ? KccaSolver::kExact : KccaSolver::kIcd;
  m.options_.num_dims = static_cast<size_t>(r->ReadU64());
  m.options_.kappa = r->ReadDouble();
  m.options_.tau_factor_x = r->ReadDouble();
  m.options_.tau_factor_y = r->ReadDouble();
  m.tau_x_ = r->ReadDouble();
  m.px_ = linalg::ReadMatrix(r);
  m.py_ = linalg::ReadMatrix(r);
  m.correlations_ = r->ReadDoubles();
  m.train_x_ = linalg::ReadMatrix(r);
  m.a_ = linalg::ReadMatrix(r);
  m.kx_row_means_ = r->ReadDoubles();
  m.kx_grand_mean_ = r->ReadDouble();
  m.pivot_x_ = linalg::ReadMatrix(r);
  m.lpp_ = linalg::ReadMatrix(r);
  m.gx_means_ = r->ReadDoubles();
  m.wx_ = linalg::ReadMatrix(r);
  return m;
}

}  // namespace qpp::ml
