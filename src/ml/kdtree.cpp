#include "ml/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "par/simd.h"
#include "par/simd_lanes.h"

namespace qpp::ml {

namespace {

constexpr size_t kLeafSentinel = std::numeric_limits<size_t>::max();
/// Points per leaf: one 4-way-interleaved SIMD tile
/// (simd::SquaredDistanceTile4), so a full leaf scans at peak throughput
/// with no scalar tail. Small enough that the tree still prunes most of
/// the set. Leaf size changes the tree shape but never the result — the
/// search is exact under the strict (distance, index) order regardless.
constexpr size_t kLeafSize = simd::kTileRows;

/// The exact brute-force chain over one column-major tile row: ascending-j
/// sum of squared differences, reading element (r, j) at tile[j*rows + r].
/// Same values in the same order as the row-major scalar scan — only the
/// address arithmetic differs.
double SquaredDistanceTileRow(const double* tile, size_t rows, size_t r,
                              const double* q, size_t dims) {
  double s = 0.0;
  for (size_t j = 0; j < dims; ++j) {
    const double d = tile[j * rows + r] - q[j];
    s += d * d;
  }
  return s;
}

}  // namespace

/// Top-k state under the strict total order (distance, index). Unlike the
/// brute-force fused scan — whose ascending-index visit order lets it drop
/// any tie — the tree visits candidates in arbitrary order, so every
/// equal-distance case must fall through to the index comparison.
struct KdTree::Kept {
  double* d;    ///< ascending (distance, index)
  double* sq;   ///< squared distance of the same entries
  size_t* idx;  ///< original row indices
  size_t kk;    ///< capacity (the effective k)
  size_t count = 0;

  double WorstDistance() const { return d[count - 1]; }

  void Insert(size_t i, double dist, double s) {
    size_t pos = count;
    while (pos > 0 &&
           (d[pos - 1] > dist || (d[pos - 1] == dist && idx[pos - 1] > i))) {
      d[pos] = d[pos - 1];
      sq[pos] = sq[pos - 1];
      idx[pos] = idx[pos - 1];
      --pos;
    }
    d[pos] = dist;
    sq[pos] = s;
    idx[pos] = i;
    ++count;
  }

  /// Offers candidate (original index i, squared distance s). The sqrt is
  /// skipped only when the candidate provably loses: s > worst.sq implies
  /// dist >= worst.distance, which settles it outright unless the
  /// candidate could win an exact distance tie by index (i < worst index)
  /// — that rare case pays for the sqrt and checks.
  void Consider(size_t i, double s) {
    if (count == kk) {
      const double worst_d = d[count - 1];
      const size_t worst_i = idx[count - 1];
      if (s > sq[count - 1]) {
        if (i > worst_i) return;
        const double dist = std::sqrt(s);
        if (dist > worst_d || (dist == worst_d && i > worst_i)) return;
        --count;
        Insert(i, dist, s);
        return;
      }
      const double dist = std::sqrt(s);
      if (dist > worst_d || (dist == worst_d && i > worst_i)) return;
      --count;
      Insert(i, dist, s);
    } else {
      Insert(i, std::sqrt(s), s);
    }
  }
};

void KdTree::Clear() {
  n_ = 0;
  dims_ = 0;
  pts_.clear();
  idx_.clear();
  nodes_.clear();
  leaves_.clear();
}

void KdTree::Build(const linalg::Matrix& points) {
  Clear();
  if (points.rows() == 0) return;
  n_ = points.rows();
  dims_ = points.cols();
  QPP_CHECK(dims_ > 0);
  const double* src = points.data().data();
  std::vector<size_t> perm(n_);
  for (size_t i = 0; i < n_; ++i) perm[i] = i;
  nodes_.reserve(2 * (n_ / kLeafSize + 1));
  BuildRange(src, &perm, 0, n_);
  // Materialize the rows in tree order, each leaf stored as one
  // column-major tile (simd::kTileRows layout): leaf [lo, hi) occupies
  // pts_[lo*dims .. hi*dims) with element (r, j) at
  // pts_[lo*dims + j*(hi-lo) + (r-lo)]. The leaf scan then runs on
  // contiguous full-width vector loads instead of strided gathers.
  pts_.resize(n_ * dims_);
  for (const Node& node : nodes_) {
    if (node.axis != kLeafSentinel) continue;
    const size_t count = node.right - node.left;
    double* tile = pts_.data() + node.left * dims_;
    for (size_t r = 0; r < count; ++r) {
      const double* row = src + perm[node.left + r] * dims_;
      for (size_t j = 0; j < dims_; ++j) tile[j * count + r] = row[j];
    }
    // nodes_ is in preorder with the left subtree built first, so the
    // leaves come out in ascending [lo, hi) storage order here.
    leaves_.emplace_back(node.left, node.right);
  }
  idx_ = std::move(perm);
}

size_t KdTree::BuildRange(const double* src, std::vector<size_t>* perm,
                          size_t lo, size_t hi) {
  const size_t node_id = nodes_.size();
  nodes_.emplace_back();
  if (hi - lo <= kLeafSize) {
    nodes_[node_id].axis = kLeafSentinel;
    nodes_[node_id].left = lo;
    nodes_[node_id].right = hi;
    return node_id;
  }
  // Widest-extent axis, ties to the lowest axis index.
  size_t axis = 0;
  double best_extent = -1.0;
  for (size_t a = 0; a < dims_; ++a) {
    double mn = src[(*perm)[lo] * dims_ + a];
    double mx = mn;
    for (size_t r = lo + 1; r < hi; ++r) {
      const double v = src[(*perm)[r] * dims_ + a];
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    const double extent = mx - mn;
    if (extent > best_extent) {
      best_extent = extent;
      axis = a;
    }
  }
  // Median under the strict (coordinate, original index) order: unique
  // pivot, so the split is always balanced even when every coordinate is
  // identical (duplicates degrade to index order, not to a degenerate
  // one-sided recursion).
  const size_t mid = lo + (hi - lo) / 2;
  std::nth_element(perm->begin() + static_cast<ptrdiff_t>(lo),
                   perm->begin() + static_cast<ptrdiff_t>(mid),
                   perm->begin() + static_cast<ptrdiff_t>(hi),
                   [&](size_t a, size_t b) {
                     const double ca = src[a * dims_ + axis];
                     const double cb = src[b * dims_ + axis];
                     return ca < cb || (ca == cb && a < b);
                   });
  const double split = src[(*perm)[mid] * dims_ + axis];
  // Left rows satisfy coord <= split, right rows coord >= split (the
  // median itself goes right) — the invariant the query bound relies on.
  const size_t left = BuildRange(src, perm, lo, mid);
  const size_t right = BuildRange(src, perm, mid, hi);
  nodes_[node_id].axis = axis;
  nodes_[node_id].split = split;
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

void KdTree::ScanLeaf(size_t lo, size_t hi, const double* query,
                      bool use_simd, Kept* kept) const {
  const double* tile = pts_.data() + lo * dims_;
  const size_t count = hi - lo;
  size_t r = 0;
  if (use_simd) {
    for (; r + 4 * simd::kLanes <= count; r += 4 * simd::kLanes) {
      simd::VecD acc[4];
      simd::SquaredDistanceTile4(tile, count, r, query, dims_, acc);
      if (kept->count == kept->kk) {
        // Whole-block reject. Unlike the brute scan's gate (ascending
        // visit order, ties always lose), a lane with s > worst.sq can
        // still win here: sqrt may round s onto exactly worst.distance,
        // and a smaller original index then wins the tie. So a block is
        // skipped only when no lane beats the worst squared distance AND
        // no lane's index could win such a tie.
        const simd::VecD worst = simd::Splat(kept->sq[kept->count - 1]);
        unsigned any = 0;
        for (size_t c = 0; c < 4; ++c) any |= simd::MaskLE(acc[c], worst);
        if (any == 0) {
          const size_t worst_i = kept->idx[kept->count - 1];
          bool tie_possible = false;
          for (size_t l = 0; l < 4 * simd::kLanes; ++l) {
            if (idx_[lo + r + l] < worst_i) {
              tie_possible = true;
              break;
            }
          }
          if (!tie_possible) continue;
        }
      }
      double sq[4 * simd::kLanes];
      for (size_t c = 0; c < 4; ++c) {
        simd::StoreU(sq + c * simd::kLanes, acc[c]);
      }
      for (size_t l = 0; l < 4 * simd::kLanes; ++l) {
        kept->Consider(idx_[lo + r + l], sq[l]);
      }
    }
    for (; r + simd::kLanes <= count; r += simd::kLanes) {
      double sq[simd::kLanes];
      simd::StoreU(sq,
                   simd::SquaredDistanceTile(tile, count, r, query, dims_));
      for (size_t l = 0; l < simd::kLanes; ++l) {
        kept->Consider(idx_[lo + r + l], sq[l]);
      }
    }
  }
  for (; r < count; ++r) {
    kept->Consider(idx_[lo + r],
                   SquaredDistanceTileRow(tile, count, r, query, dims_));
  }
}

void KdTree::Search(size_t node_id, const double* query, size_t kk,
                    bool use_simd, Kept* kept,
                    double* off) const {
  const Node& node = nodes_[node_id];
  if (node.axis == kLeafSentinel) {
    ScanLeaf(node.left, node.right, query, use_simd, kept);
    return;
  }
  const double delta = query[node.axis] - node.split;
  const size_t near = delta <= 0.0 ? node.left : node.right;
  const size_t far = delta <= 0.0 ? node.right : node.left;
  Search(near, query, kk, use_simd, kept, off);
  // Lower bound on any far-subtree distance: the per-axis offsets from
  // every split crossed so far, squared and summed in ascending axis
  // order — the exact shape of the distance chain itself, so each term
  // (and, by monotonicity of rounding, each partial sum and the final
  // sqrt) is dominated by the corresponding computed value for any point
  // in the far subtree. Pruning on bound > worst therefore only discards
  // strict distance losers; ties are never pruned and fall through to the
  // index comparison in Consider.
  const double old_off = off[node.axis];
  off[node.axis] = delta <= 0.0 ? -delta : delta;
  if (kept->count < kk) {
    Search(far, query, kk, use_simd, kept, off);
  } else {
    double bsq = 0.0;
    for (size_t a = 0; a < dims_; ++a) bsq += off[a] * off[a];
    if (!(std::sqrt(bsq) > kept->WorstDistance())) {
      Search(far, query, kk, use_simd, kept, off);
    }
  }
  off[node.axis] = old_off;
}

KdTree::SearchMode KdTree::auto_mode() const {
  // Branch-and-bound pays only when axis pruning discards most leaves,
  // which needs n large relative to 2^dims (the classic kd-tree regime).
  // Below that, the gated linear sweep over the leaf tiles wins: it
  // streams the same tiles the descent would touch anyway, without the
  // per-node bound arithmetic or the recursion. Either mode returns
  // byte-identical neighbors, so this is purely a latency heuristic.
  const size_t shift = std::min(dims_, size_t{48});
  return n_ >= (size_t{1} << shift) ? SearchMode::kDescent : SearchMode::kFlat;
}

void KdTree::FindNearestRaw(const double* query, size_t k,
                            std::vector<Neighbor>* out,
                            SearchMode mode) const {
  QPP_CHECK(n_ > 0 && k >= 1);
  if (mode == SearchMode::kAuto) mode = auto_mode();
  const size_t kk = std::min(k, n_);
  // Per-query state lives on the stack for the common shapes (the paper's
  // operating points are k = 3..7 in a 16-dim projection); only oversized
  // k or dims fall back to heap buffers. Zero allocations on the hot path.
  constexpr size_t kStackK = 32;
  constexpr size_t kStackDims = 64;
  double dbuf[kStackK];
  double sqbuf[kStackK];
  size_t ibuf[kStackK];
  double offbuf[kStackDims];
  std::vector<double> dheap, sqheap, offheap;
  std::vector<size_t> iheap;
  Kept kept{dbuf, sqbuf, ibuf, kk};
  if (kk > kStackK) {
    dheap.resize(kk);
    sqheap.resize(kk);
    iheap.resize(kk);
    kept.d = dheap.data();
    kept.sq = sqheap.data();
    kept.idx = iheap.data();
  }
  const bool use_simd = simd::Enabled();
  if (mode == SearchMode::kFlat) {
    // Gated linear sweep: every leaf tile in storage order. Exact for the
    // same reason the descent is — ScanLeaf offers every candidate a
    // whole-block gate cannot prove a strict loser.
    for (const auto& [lo, hi] : leaves_) {
      ScanLeaf(lo, hi, query, use_simd, &kept);
    }
  } else {
    double* off = offbuf;
    if (dims_ > kStackDims) {
      offheap.resize(dims_);
      off = offheap.data();
    }
    for (size_t a = 0; a < dims_; ++a) off[a] = 0.0;
    Search(0, query, kk, use_simd, &kept, off);
  }
  out->resize(kept.count);
  for (size_t j = 0; j < kept.count; ++j) {
    (*out)[j].index = kept.idx[j];
    (*out)[j].distance = kept.d[j];
  }
}

std::vector<Neighbor> KdTree::FindNearest(const linalg::Vector& query,
                                          size_t k, SearchMode mode) const {
  QPP_CHECK(query.size() == dims_);
  std::vector<Neighbor> out;
  FindNearestRaw(query.data(), k, &out, mode);
  return out;
}

}  // namespace qpp::ml
