#include "ml/kmeans.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"

namespace qpp::ml {

size_t NearestCentroid(const linalg::Matrix& centroids,
                       const linalg::Vector& point) {
  QPP_CHECK(centroids.rows() > 0);
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.rows(); ++c) {
    const double d = linalg::SquaredDistance(centroids.Row(c), point);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

KMeansResult KMeans(const linalg::Matrix& x, size_t k, uint64_t seed,
                    size_t max_iters) {
  const size_t n = x.rows();
  const size_t p = x.cols();
  QPP_CHECK(k >= 1 && n >= k);
  Rng rng(seed);

  // k-means++ seeding.
  linalg::Matrix centroids(k, p);
  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
  size_t first = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
  centroids.SetRow(0, x.Row(first));
  for (size_t c = 1; c < k; ++c) {
    for (size_t i = 0; i < n; ++i) {
      min_d2[i] = std::min(min_d2[i],
                           linalg::SquaredDistance(x.Row(i),
                                                   centroids.Row(c - 1)));
    }
    double total = 0.0;
    for (double d : min_d2) total += d;
    size_t pick = 0;
    if (total > 0.0) {
      double u = rng.NextDouble() * total;
      for (size_t i = 0; i < n; ++i) {
        u -= min_d2[i];
        if (u <= 0.0) {
          pick = i;
          break;
        }
      }
    } else {
      pick = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    }
    centroids.SetRow(c, x.Row(pick));
  }

  KMeansResult result;
  result.assignment.assign(n, 0);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    result.iterations = iter + 1;
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      const size_t c = NearestCentroid(centroids, x.Row(i));
      if (c != result.assignment[i]) {
        result.assignment[i] = c;
        changed = true;
      }
    }
    // Recompute centroids; empty clusters keep their previous position.
    linalg::Matrix sums(k, p);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = result.assignment[i];
      counts[c] += 1;
      for (size_t j = 0; j < p; ++j) sums(c, j) += x(i, j);
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (size_t j = 0; j < p; ++j) {
        centroids(c, j) = sums(c, j) / static_cast<double>(counts[c]);
      }
    }
    if (!changed && iter > 0) break;
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia += linalg::SquaredDistance(
        x.Row(i), centroids.Row(result.assignment[i]));
  }
  result.centroids = std::move(centroids);
  return result;
}

double RandIndex(const std::vector<size_t>& a, const std::vector<size_t>& b) {
  QPP_CHECK(a.size() == b.size());
  const size_t n = a.size();
  if (n < 2) return 1.0;
  size_t agree = 0;
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const bool same_a = a[i] == a[j];
      const bool same_b = b[i] == b[j];
      if (same_a == same_b) ++agree;
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace qpp::ml
