#include "ml/kernel.h"

#include <cmath>

#include "common/check.h"
#include "par/parallel_for.h"

namespace qpp::ml {

namespace {
/// Rows per parallel chunk. Fixed constants: the chunking is part of the
/// deterministic-reduce contract (par/parallel_for.h), so results are
/// bit-identical across thread counts.
constexpr size_t kNormGrain = 256;
constexpr size_t kKernelRowGrain = 8;
}  // namespace

double GaussianKernel::operator()(const linalg::Vector& a,
                                  const linalg::Vector& b) const {
  QPP_CHECK(tau > 0.0);
  return std::exp(-linalg::SquaredDistance(a, b) / tau);
}

double GaussianScaleFromNorms(const linalg::Matrix& x, double factor) {
  QPP_CHECK(x.rows() > 0 && factor > 0.0);
  const size_t n = x.rows();
  // Two-pass variance: the one-pass E[X^2] - E[X]^2 form cancels
  // catastrophically when the norms are large and nearly constant (both
  // terms ~norm^2, their difference ~variance), silently collapsing tau to
  // 0 — or below — and kicking in the pairwise-distance fallback for data
  // that has a perfectly good norm variance. Mean first, then centered
  // squares. Both passes reduce over fixed row chunks in ascending chunk
  // order, so the value is bit-identical at every thread count.
  const auto combine = [](double a, double b) { return a + b; };
  const double sum = par::DeterministicReduce<double>(
      0, n, kNormGrain, 0.0,
      [&](size_t r0, size_t r1) {
        double s = 0.0;
        for (size_t i = r0; i < r1; ++i) s += linalg::Norm(x.Row(i));
        return s;
      },
      combine, "norm_sum");
  const double mean = sum / static_cast<double>(n);
  const double sq_sum = par::DeterministicReduce<double>(
      0, n, kNormGrain, 0.0,
      [&](size_t r0, size_t r1) {
        double s = 0.0;
        for (size_t i = r0; i < r1; ++i) {
          const double d = linalg::Norm(x.Row(i)) - mean;
          s += d * d;
        }
        return s;
      },
      combine, "norm_var");
  const double var = sq_sum / static_cast<double>(n);
  double tau = factor * var;
  if (!(tau > 1e-12)) {
    tau = factor * MeanSquaredPairwiseDistance(x);
  }
  return tau > 1e-12 ? tau : 1.0;
}

double MeanSquaredPairwiseDistance(const linalg::Matrix& x,
                                   size_t max_pairs) {
  const size_t n = x.rows();
  if (n < 2) return 1.0;
  // Deterministic stride sampling over the upper triangle.
  const size_t total = n * (n - 1) / 2;
  const size_t stride = total > max_pairs ? total / max_pairs : 1;
  double sum = 0.0;
  size_t count = 0;
  size_t index = 0;
  for (size_t i = 0; i < n && count < max_pairs; ++i) {
    for (size_t j = i + 1; j < n && count < max_pairs; ++j) {
      if (index++ % stride != 0) continue;
      sum += linalg::SquaredDistance(x.Row(i), x.Row(j));
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 1.0;
}

linalg::Matrix KernelMatrix(const linalg::Matrix& x,
                            const GaussianKernel& kernel) {
  const size_t n = x.rows();
  linalg::Matrix k(n, n);
  // Upper-triangle row strips with symmetric fill. Strips write disjoint
  // cells — strip rows i write (i, j>i) and mirror (j>i, i), and two
  // distinct strips can never produce the same (row, col) pair — so the
  // row-parallel form computes exactly the entries the serial loop did.
  // Small grain: row i carries n-i-1 kernel evaluations, so fine-grained
  // round-robin chunks balance the triangle across threads.
  par::ParallelFor(
      0, n, kKernelRowGrain,
      [&](size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i) {
          k(i, i) = 1.0;
          const linalg::Vector ri = x.Row(i);
          for (size_t j = i + 1; j < n; ++j) {
            const double v = kernel(ri, x.Row(j));
            k(i, j) = v;
            k(j, i) = v;
          }
        }
      },
      "kernel_matrix");
  return k;
}

linalg::Vector KernelVector(const linalg::Matrix& x,
                            const linalg::Vector& point,
                            const GaussianKernel& kernel) {
  linalg::Vector out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) out[i] = kernel(x.Row(i), point);
  return out;
}

void CenterKernelMatrix(linalg::Matrix* k) {
  QPP_CHECK(k != nullptr && k->rows() == k->cols());
  const size_t n = k->rows();
  if (n == 0) return;
  linalg::Vector row_mean(n, 0.0);
  double grand = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < n; ++j) s += (*k)(i, j);
    row_mean[i] = s / static_cast<double>(n);
    grand += s;
  }
  grand /= static_cast<double>(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      (*k)(i, j) += grand - row_mean[i] - row_mean[j];
    }
  }
}

linalg::Vector CenterKernelVector(const linalg::Vector& k_star,
                                  const linalg::Vector& row_means,
                                  double grand_mean) {
  QPP_CHECK(k_star.size() == row_means.size());
  const size_t n = k_star.size();
  double mean_star = 0.0;
  for (double v : k_star) mean_star += v;
  mean_star /= static_cast<double>(n);
  linalg::Vector out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = k_star[i] - row_means[i] - mean_star + grand_mean;
  }
  return out;
}

}  // namespace qpp::ml
