#include "ml/kernel.h"

#include <cmath>

#include "common/check.h"
#include "par/parallel_for.h"
#include "par/simd.h"
#include "par/simd_lanes.h"

namespace qpp::ml {

namespace {
/// Rows per parallel chunk. Fixed constants: the chunking is part of the
/// deterministic-reduce contract (par/parallel_for.h), so results are
/// bit-identical across thread counts.
constexpr size_t kNormGrain = 256;
constexpr size_t kKernelRowGrain = 8;

/// ||p||: the exact linalg::Norm(x.Row(i)) chain over a raw row pointer
/// (ascending-j self dot, then sqrt) without materializing a Vector.
double RowNorm(const double* p, size_t dims) {
  double s = 0.0;
  for (size_t j = 0; j < dims; ++j) s += p[j] * p[j];
  return std::sqrt(s);
}

}  // namespace

// The SIMD path evaluates kLanes rows per step: each lane carries one
// row's full ascending-j squared-distance chain
// (simd::SquaredDistanceRows), then the exp is taken per lane in scalar —
// bit-identical to GaussianKernel::operator() row by row. The scalar
// tail/path is the literal original chain.
void GaussianKernelRows(const double* rows, size_t count, size_t stride,
                        const double* point, size_t dims, double tau,
                        bool use_simd, double* out) {
  size_t r = 0;
  if (use_simd) {
    // 4-way interleaved blocks first (latency-bound otherwise; see
    // simd::SquaredDistanceRows4), then single blocks.
    for (; r + 4 * simd::kLanes <= count; r += 4 * simd::kLanes) {
      simd::VecD acc[4];
      simd::SquaredDistanceRows4(rows + r * stride, stride, point, dims, acc);
      double sq[4 * simd::kLanes];
      for (size_t c = 0; c < 4; ++c) {
        simd::StoreU(sq + c * simd::kLanes, acc[c]);
      }
      for (size_t l = 0; l < 4 * simd::kLanes; ++l) {
        out[r + l] = std::exp(-sq[l] / tau);
      }
    }
    for (; r + simd::kLanes <= count; r += simd::kLanes) {
      double sq[simd::kLanes];
      simd::StoreU(
          sq, simd::SquaredDistanceRows(rows + r * stride, stride, point,
                                        dims));
      for (size_t l = 0; l < simd::kLanes; ++l) {
        out[r + l] = std::exp(-sq[l] / tau);
      }
    }
  }
  for (; r < count; ++r) {
    const double* p = rows + r * stride;
    double s = 0.0;
    for (size_t j = 0; j < dims; ++j) {
      const double d = p[j] - point[j];
      s += d * d;
    }
    out[r] = std::exp(-s / tau);
  }
}

void PackRowsToTiles(const double* rows, size_t count, size_t dims,
                     double* tiles) {
  for (size_t t0 = 0; t0 < count; t0 += simd::kTileRows) {
    const size_t rows_in_tile = std::min(simd::kTileRows, count - t0);
    double* tile = tiles + t0 * dims;
    for (size_t r = 0; r < rows_in_tile; ++r) {
      const double* row = rows + (t0 + r) * dims;
      for (size_t j = 0; j < dims; ++j) tile[j * rows_in_tile + r] = row[j];
    }
  }
}

void GaussianKernelTiles(const double* tiles, size_t count, size_t dims,
                         const double* point, double tau, bool use_simd,
                         double* out) {
  for (size_t t0 = 0; t0 < count; t0 += simd::kTileRows) {
    const size_t rows_in_tile = std::min(simd::kTileRows, count - t0);
    const double* tile = tiles + t0 * dims;
    size_t r = 0;
    if (use_simd) {
      for (; r + 4 * simd::kLanes <= rows_in_tile; r += 4 * simd::kLanes) {
        simd::VecD acc[4];
        simd::SquaredDistanceTile4(tile, rows_in_tile, r, point, dims, acc);
        double sq[4 * simd::kLanes];
        for (size_t c = 0; c < 4; ++c) {
          simd::StoreU(sq + c * simd::kLanes, acc[c]);
        }
        for (size_t l = 0; l < 4 * simd::kLanes; ++l) {
          out[t0 + r + l] = std::exp(-sq[l] / tau);
        }
      }
      for (; r + simd::kLanes <= rows_in_tile; r += simd::kLanes) {
        double sq[simd::kLanes];
        simd::StoreU(sq, simd::SquaredDistanceTile(tile, rows_in_tile, r,
                                                   point, dims));
        for (size_t l = 0; l < simd::kLanes; ++l) {
          out[t0 + r + l] = std::exp(-sq[l] / tau);
        }
      }
    }
    for (; r < rows_in_tile; ++r) {
      double s = 0.0;
      for (size_t j = 0; j < dims; ++j) {
        const double d = tile[j * rows_in_tile + r] - point[j];
        s += d * d;
      }
      out[t0 + r] = std::exp(-s / tau);
    }
  }
}

void GaussianKernelTilesBatch(const double* tiles, size_t count, size_t dims,
                              const double* queries, size_t num_queries,
                              size_t query_stride, double tau, bool use_simd,
                              double* out, size_t out_stride) {
  for (size_t t0 = 0; t0 < count; t0 += simd::kTileRows) {
    const size_t rows_in_tile = std::min(simd::kTileRows, count - t0);
    const double* tile = tiles + t0 * dims;
    for (size_t q = 0; q < num_queries; ++q) {
      const double* point = queries + q * query_stride;
      double* col = out + t0 * out_stride + q;
      size_t r = 0;
      if (use_simd) {
        for (; r + 4 * simd::kLanes <= rows_in_tile; r += 4 * simd::kLanes) {
          simd::VecD acc[4];
          simd::SquaredDistanceTile4(tile, rows_in_tile, r, point, dims, acc);
          double sq[4 * simd::kLanes];
          for (size_t c = 0; c < 4; ++c) {
            simd::StoreU(sq + c * simd::kLanes, acc[c]);
          }
          for (size_t l = 0; l < 4 * simd::kLanes; ++l) {
            col[(r + l) * out_stride] = std::exp(-sq[l] / tau);
          }
        }
        for (; r + simd::kLanes <= rows_in_tile; r += simd::kLanes) {
          double sq[simd::kLanes];
          simd::StoreU(sq, simd::SquaredDistanceTile(tile, rows_in_tile, r,
                                                     point, dims));
          for (size_t l = 0; l < simd::kLanes; ++l) {
            col[(r + l) * out_stride] = std::exp(-sq[l] / tau);
          }
        }
      }
      for (; r < rows_in_tile; ++r) {
        double s = 0.0;
        for (size_t j = 0; j < dims; ++j) {
          const double d = tile[j * rows_in_tile + r] - point[j];
          s += d * d;
        }
        col[r * out_stride] = std::exp(-s / tau);
      }
    }
  }
}

double GaussianKernel::operator()(const linalg::Vector& a,
                                  const linalg::Vector& b) const {
  QPP_CHECK(tau > 0.0);
  return std::exp(-linalg::SquaredDistance(a, b) / tau);
}

double GaussianScaleFromNorms(const linalg::Matrix& x, double factor) {
  QPP_CHECK(x.rows() > 0 && factor > 0.0);
  const size_t n = x.rows();
  // Two-pass variance: the one-pass E[X^2] - E[X]^2 form cancels
  // catastrophically when the norms are large and nearly constant (both
  // terms ~norm^2, their difference ~variance), silently collapsing tau to
  // 0 — or below — and kicking in the pairwise-distance fallback for data
  // that has a perfectly good norm variance. Mean first, then centered
  // squares. Both passes reduce over fixed row chunks in ascending chunk
  // order, so the value is bit-identical at every thread count.
  // Per-row norms run over raw row pointers (same ascending-j chain as
  // linalg::Norm(x.Row(i)), minus the Vector copy); the SIMD form puts one
  // row's chain in each lane and adds the lane norms back into the chunk
  // sum in ascending row order, so both passes stay bit-identical to the
  // scalar loop. Hardware lane sqrt is correctly rounded (== std::sqrt).
  const double* base = x.data().data();
  const size_t dims = x.cols();
  const bool use_simd = simd::Enabled();
  const auto combine = [](double a, double b) { return a + b; };
  const double sum = par::DeterministicReduce<double>(
      0, n, kNormGrain, 0.0,
      [&](size_t r0, size_t r1) {
        double s = 0.0;
        size_t i = r0;
        if (use_simd) {
          for (; i + simd::kLanes <= r1; i += simd::kLanes) {
            double norms[simd::kLanes];
            simd::StoreU(norms, simd::Sqrt(simd::SelfDotRows(
                                    base + i * dims, dims, dims)));
            for (size_t l = 0; l < simd::kLanes; ++l) s += norms[l];
          }
        }
        for (; i < r1; ++i) s += RowNorm(base + i * dims, dims);
        return s;
      },
      combine, "norm_sum");
  const double mean = sum / static_cast<double>(n);
  const double sq_sum = par::DeterministicReduce<double>(
      0, n, kNormGrain, 0.0,
      [&](size_t r0, size_t r1) {
        double s = 0.0;
        size_t i = r0;
        if (use_simd) {
          for (; i + simd::kLanes <= r1; i += simd::kLanes) {
            double norms[simd::kLanes];
            simd::StoreU(norms, simd::Sqrt(simd::SelfDotRows(
                                    base + i * dims, dims, dims)));
            for (size_t l = 0; l < simd::kLanes; ++l) {
              const double d = norms[l] - mean;
              s += d * d;
            }
          }
        }
        for (; i < r1; ++i) {
          const double d = RowNorm(base + i * dims, dims) - mean;
          s += d * d;
        }
        return s;
      },
      combine, "norm_var");
  const double var = sq_sum / static_cast<double>(n);
  double tau = factor * var;
  if (!(tau > 1e-12)) {
    tau = factor * MeanSquaredPairwiseDistance(x);
  }
  return tau > 1e-12 ? tau : 1.0;
}

double MeanSquaredPairwiseDistance(const linalg::Matrix& x,
                                   size_t max_pairs) {
  const size_t n = x.rows();
  if (n < 2) return 1.0;
  // Deterministic stride sampling over the upper triangle.
  const size_t total = n * (n - 1) / 2;
  const size_t stride = total > max_pairs ? total / max_pairs : 1;
  double sum = 0.0;
  size_t count = 0;
  size_t index = 0;
  for (size_t i = 0; i < n && count < max_pairs; ++i) {
    for (size_t j = i + 1; j < n && count < max_pairs; ++j) {
      if (index++ % stride != 0) continue;
      sum += linalg::SquaredDistance(x.Row(i), x.Row(j));
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 1.0;
}

linalg::Matrix KernelMatrix(const linalg::Matrix& x,
                            const GaussianKernel& kernel) {
  const size_t n = x.rows();
  linalg::Matrix k(n, n);
  // Upper-triangle row strips with symmetric fill. Strips write disjoint
  // cells — strip rows i write (i, j>i) and mirror (j>i, i), and two
  // distinct strips can never produce the same (row, col) pair — so the
  // row-parallel form computes exactly the entries the serial loop did.
  // Small grain: row i carries n-i-1 kernel evaluations, so fine-grained
  // round-robin chunks balance the triangle across threads.
  QPP_CHECK(kernel.tau > 0.0);
  const double* base = x.data().data();
  const size_t dims = x.cols();
  const bool use_simd = simd::Enabled();
  par::ParallelFor(
      0, n, kKernelRowGrain,
      [&](size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i) {
          k(i, i) = 1.0;
          if (i + 1 >= n) continue;
          // Row i's strip (i, j > i) is contiguous in k; evaluate the
          // Gaussian over the raw row block and mirror afterwards.
          GaussianKernelRows(base + (i + 1) * dims, n - i - 1, dims,
                             base + i * dims, dims, kernel.tau, use_simd,
                             &k(i, i + 1));
          for (size_t j = i + 1; j < n; ++j) k(j, i) = k(i, j);
        }
      },
      "kernel_matrix");
  return k;
}

linalg::Vector KernelVector(const linalg::Matrix& x,
                            const linalg::Vector& point,
                            const GaussianKernel& kernel) {
  QPP_CHECK(kernel.tau > 0.0);
  QPP_CHECK(x.cols() == point.size());
  linalg::Vector out(x.rows());
  GaussianKernelRows(x.data().data(), x.rows(), x.cols(), point.data(),
                     x.cols(), kernel.tau, simd::Enabled(), out.data());
  return out;
}

void CenterKernelMatrix(linalg::Matrix* k) {
  QPP_CHECK(k != nullptr && k->rows() == k->cols());
  const size_t n = k->rows();
  if (n == 0) return;
  linalg::Vector row_mean(n, 0.0);
  double grand = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < n; ++j) s += (*k)(i, j);
    row_mean[i] = s / static_cast<double>(n);
    grand += s;
  }
  grand /= static_cast<double>(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      (*k)(i, j) += grand - row_mean[i] - row_mean[j];
    }
  }
}

linalg::Vector CenterKernelVector(const linalg::Vector& k_star,
                                  const linalg::Vector& row_means,
                                  double grand_mean) {
  QPP_CHECK(k_star.size() == row_means.size());
  const size_t n = k_star.size();
  double mean_star = 0.0;
  for (double v : k_star) mean_star += v;
  mean_star /= static_cast<double>(n);
  linalg::Vector out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = k_star[i] - row_means[i] - mean_star + grand_mean;
  }
  return out;
}

}  // namespace qpp::ml
