#include "ml/kernel.h"

#include <cmath>

#include "common/check.h"

namespace qpp::ml {

double GaussianKernel::operator()(const linalg::Vector& a,
                                  const linalg::Vector& b) const {
  QPP_CHECK(tau > 0.0);
  return std::exp(-linalg::SquaredDistance(a, b) / tau);
}

double GaussianScaleFromNorms(const linalg::Matrix& x, double factor) {
  QPP_CHECK(x.rows() > 0 && factor > 0.0);
  const size_t n = x.rows();
  double sum = 0.0;
  double sumsq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double norm = linalg::Norm(x.Row(i));
    sum += norm;
    sumsq += norm * norm;
  }
  const double mean = sum / static_cast<double>(n);
  const double var = sumsq / static_cast<double>(n) - mean * mean;
  double tau = factor * var;
  if (!(tau > 1e-12)) {
    tau = factor * MeanSquaredPairwiseDistance(x);
  }
  return tau > 1e-12 ? tau : 1.0;
}

double MeanSquaredPairwiseDistance(const linalg::Matrix& x,
                                   size_t max_pairs) {
  const size_t n = x.rows();
  if (n < 2) return 1.0;
  // Deterministic stride sampling over the upper triangle.
  const size_t total = n * (n - 1) / 2;
  const size_t stride = total > max_pairs ? total / max_pairs : 1;
  double sum = 0.0;
  size_t count = 0;
  size_t index = 0;
  for (size_t i = 0; i < n && count < max_pairs; ++i) {
    for (size_t j = i + 1; j < n && count < max_pairs; ++j) {
      if (index++ % stride != 0) continue;
      sum += linalg::SquaredDistance(x.Row(i), x.Row(j));
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 1.0;
}

linalg::Matrix KernelMatrix(const linalg::Matrix& x,
                            const GaussianKernel& kernel) {
  const size_t n = x.rows();
  linalg::Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    const linalg::Vector ri = x.Row(i);
    for (size_t j = i + 1; j < n; ++j) {
      const double v = kernel(ri, x.Row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

linalg::Vector KernelVector(const linalg::Matrix& x,
                            const linalg::Vector& point,
                            const GaussianKernel& kernel) {
  linalg::Vector out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) out[i] = kernel(x.Row(i), point);
  return out;
}

void CenterKernelMatrix(linalg::Matrix* k) {
  QPP_CHECK(k != nullptr && k->rows() == k->cols());
  const size_t n = k->rows();
  if (n == 0) return;
  linalg::Vector row_mean(n, 0.0);
  double grand = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < n; ++j) s += (*k)(i, j);
    row_mean[i] = s / static_cast<double>(n);
    grand += s;
  }
  grand /= static_cast<double>(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      (*k)(i, j) += grand - row_mean[i] - row_mean[j];
    }
  }
}

linalg::Vector CenterKernelVector(const linalg::Vector& k_star,
                                  const linalg::Vector& row_means,
                                  double grand_mean) {
  QPP_CHECK(k_star.size() == row_means.size());
  const size_t n = k_star.size();
  double mean_star = 0.0;
  for (double v : k_star) mean_star += v;
  mean_star /= static_cast<double>(n);
  linalg::Vector out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = k_star[i] - row_means[i] - mean_star + grand_mean;
  }
  return out;
}

}  // namespace qpp::ml
