// Accuracy metrics, led by the paper's "predictive risk" (Section VI-C):
//
//   risk = 1 - Σ(pred_i - actual_i)^2 / Σ(actual_i - mean(actual))^2
//
// computed on TEST points (unlike training R²), so values can be negative.
// 1 means near-perfect prediction; <= 0 means no better than predicting the
// test mean. When the actuals are constant (e.g. disk I/O identically zero
// on memory-rich configurations) the denominator vanishes and the paper
// reports "Null" — we model that as NaN with IsNullRisk().
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace qpp::ml {

/// Predictive risk on a test set; NaN ("Null") when the actuals have zero
/// variance.
double PredictiveRisk(const linalg::Vector& predicted,
                      const linalg::Vector& actual);

/// True for the NaN sentinel produced on degenerate metrics.
bool IsNullRisk(double risk);

/// "Null" / formatted value, as the paper's Fig. 16 prints it.
std::string FormatRisk(double risk);

/// Fraction of test points with |pred - actual| <= rel_tol * |actual|.
/// The paper's headline: elapsed time within 20% for >= 85% of queries.
double FractionWithinRelative(const linalg::Vector& predicted,
                              const linalg::Vector& actual, double rel_tol);

/// Mean absolute relative error (guarding zero actuals with `floor`).
double MeanRelativeError(const linalg::Vector& predicted,
                         const linalg::Vector& actual, double floor = 1e-9);

/// Predictive risk after dropping the `drop_worst` largest squared-error
/// points — the paper repeatedly reports "removing the top one or two
/// outliers improved the risk significantly".
double PredictiveRiskDroppingOutliers(const linalg::Vector& predicted,
                                      const linalg::Vector& actual,
                                      size_t drop_worst);

/// Count of predictions below zero (Figures 3 and 4 call these out for the
/// regression baseline).
size_t CountNegative(const linalg::Vector& predicted);

}  // namespace qpp::ml
