// Feature preprocessing: log1p + per-dimension standardization.
//
// The paper does not spell out preprocessing, but a Gaussian kernel over raw
// cardinality sums spanning 1e0..1e9 degenerates (every pairwise distance is
// dominated by the one largest dimension and the kernel matrix approaches
// identity). log1p compresses the dynamic range and standardization puts
// counts and cardinality sums on one scale. Documented as an inferred
// implementation detail in DESIGN.md; both steps can be disabled for the
// ablation bench.
#pragma once

#include "common/serde.h"
#include "linalg/matrix.h"

namespace qpp::ml {

class Preprocessor {
 public:
  Preprocessor(bool use_log1p = true, bool use_standardize = true)
      : log1p_(use_log1p), standardize_(use_standardize) {}

  /// Learns per-dimension mean/stddev on (optionally log1p'd) data.
  void Fit(const linalg::Matrix& x);

  bool fitted() const { return fitted_; }
  size_t dims() const { return mean_.size(); }

  linalg::Matrix Transform(const linalg::Matrix& x) const;
  linalg::Vector TransformRow(const linalg::Vector& v) const;
  /// TransformRow into caller-owned storage (`out` must hold dims()
  /// doubles). Same arithmetic; the allocation-free form the batch
  /// prediction hot path writes matrix rows through.
  void TransformRowTo(const linalg::Vector& v, double* out) const;

  void Save(BinaryWriter* w) const;
  static Preprocessor Load(BinaryReader* r);

 private:
  bool log1p_;
  bool standardize_;
  bool fitted_ = false;
  linalg::Vector mean_;
  linalg::Vector stddev_;
};

}  // namespace qpp::ml
