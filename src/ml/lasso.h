// L1-penalized least squares via cyclic coordinate descent.
//
// Used to reproduce the paper's Section V-A observation that regression
// "did not use all of the covariates" — e.g. assigning a zero coefficient
// to hashgroupby cardinalities when predicting elapsed time — and that the
// discarded features differ per target metric, defeating a unified model.
#pragma once

#include "linalg/matrix.h"

namespace qpp::ml {

class Lasso {
 public:
  /// Fits with L1 penalty `lambda` (on standardized features internally);
  /// `max_iters` full coordinate sweeps, stopping early at `tol` coefficient
  /// movement.
  void Fit(const linalg::Matrix& x, const linalg::Vector& y, double lambda,
           size_t max_iters = 200, double tol = 1e-7);

  double Predict(const linalg::Vector& x) const;

  const linalg::Vector& coefficients() const { return beta_; }
  double intercept() const { return intercept_; }
  /// Indices of features whose coefficient was driven to exactly zero.
  std::vector<size_t> DiscardedFeatures() const;

 private:
  linalg::Vector beta_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace qpp::ml
