#include "ml/knn.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qpp::ml {

const char* DistanceKindName(DistanceKind d) {
  switch (d) {
    case DistanceKind::kEuclidean: return "euclidean";
    case DistanceKind::kCosine: return "cosine";
  }
  return "?";
}

const char* NeighborWeightingName(NeighborWeighting w) {
  switch (w) {
    case NeighborWeighting::kEqual: return "equal";
    case NeighborWeighting::kRankRatio: return "rank-ratio";
    case NeighborWeighting::kInverseDistance: return "inverse-distance";
  }
  return "?";
}

std::vector<Neighbor> FindNearest(const linalg::Matrix& points,
                                  const linalg::Vector& query, size_t k,
                                  DistanceKind metric) {
  QPP_CHECK(points.rows() > 0 && k >= 1);
  const size_t n = points.rows();
  std::vector<Neighbor> all(n);
  for (size_t i = 0; i < n; ++i) {
    const linalg::Vector row = points.Row(i);
    all[i].index = i;
    all[i].distance = metric == DistanceKind::kEuclidean
                          ? std::sqrt(linalg::SquaredDistance(row, query))
                          : linalg::CosineDistance(row, query);
  }
  const size_t kk = std::min(k, n);
  std::partial_sort(all.begin(), all.begin() + static_cast<ptrdiff_t>(kk),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance ||
                             (a.distance == b.distance && a.index < b.index);
                    });
  all.resize(kk);
  return all;
}

linalg::Vector NeighborWeights(const std::vector<Neighbor>& neighbors,
                               NeighborWeighting weighting) {
  QPP_CHECK(!neighbors.empty());
  const size_t k = neighbors.size();
  linalg::Vector w(k, 1.0);
  switch (weighting) {
    case NeighborWeighting::kEqual:
      break;
    case NeighborWeighting::kRankRatio:
      for (size_t i = 0; i < k; ++i) w[i] = static_cast<double>(k - i);
      break;
    case NeighborWeighting::kInverseDistance: {
      constexpr double kEps = 1e-9;
      for (size_t i = 0; i < k; ++i) w[i] = 1.0 / (neighbors[i].distance + kEps);
      break;
    }
  }
  double total = 0.0;
  for (double v : w) total += v;
  for (double& v : w) v /= total;
  return w;
}

linalg::Vector WeightedAverage(const std::vector<Neighbor>& neighbors,
                               const linalg::Matrix& values,
                               NeighborWeighting weighting) {
  QPP_CHECK(!neighbors.empty());
  const linalg::Vector w = NeighborWeights(neighbors, weighting);
  linalg::Vector out(values.cols(), 0.0);
  for (size_t i = 0; i < neighbors.size(); ++i) {
    QPP_CHECK(neighbors[i].index < values.rows());
    const linalg::Vector row = values.Row(neighbors[i].index);
    for (size_t j = 0; j < out.size(); ++j) out[j] += w[i] * row[j];
  }
  return out;
}

}  // namespace qpp::ml
