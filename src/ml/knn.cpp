#include "ml/knn.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qpp::ml {

const char* DistanceKindName(DistanceKind d) {
  switch (d) {
    case DistanceKind::kEuclidean: return "euclidean";
    case DistanceKind::kCosine: return "cosine";
  }
  return "?";
}

const char* NeighborWeightingName(NeighborWeighting w) {
  switch (w) {
    case NeighborWeighting::kEqual: return "equal";
    case NeighborWeighting::kRankRatio: return "rank-ratio";
    case NeighborWeighting::kInverseDistance: return "inverse-distance";
  }
  return "?";
}

namespace {

// Row-pointer forms of linalg::SquaredDistance / Dot with the same
// element order, so the allocation-free paths below match the Row()-copy
// arithmetic bit for bit.
double SquaredDistanceRaw(const double* a, const double* b, size_t dims) {
  double s = 0.0;
  for (size_t j = 0; j < dims; ++j) {
    const double d = a[j] - b[j];
    s += d * d;
  }
  return s;
}

double DotRaw(const double* a, const double* b, size_t dims) {
  double s = 0.0;
  for (size_t j = 0; j < dims; ++j) s += a[j] * b[j];
  return s;
}

// Distances from one query row to every point row, without materializing
// row copies. `point_norms` (cosine only) carries the query-independent
// Norm(points.Row(i)) values so a batch computes them once.
void DistancesToAll(const linalg::Matrix& points, const double* query,
                    double query_norm, DistanceKind metric,
                    const linalg::Vector& point_norms,
                    std::vector<Neighbor>* all) {
  const size_t n = points.rows();
  const size_t dims = points.cols();
  const double* base = points.data().data();
  for (size_t i = 0; i < n; ++i) {
    const double* row = base + i * dims;
    (*all)[i].index = i;
    if (metric == DistanceKind::kEuclidean) {
      (*all)[i].distance = std::sqrt(SquaredDistanceRaw(row, query, dims));
    } else {
      // Mirrors linalg::CosineDistance(row, query) exactly, with both norms
      // hoisted out of the pairwise loop.
      const double na = point_norms[i];
      (*all)[i].distance = na == 0.0 || query_norm == 0.0
                               ? 1.0
                               : 1.0 - DotRaw(row, query, dims) /
                                           (na * query_norm);
    }
  }
}

void KeepNearestK(std::vector<Neighbor>* all, size_t k) {
  const size_t kk = std::min(k, all->size());
  std::partial_sort(all->begin(), all->begin() + static_cast<ptrdiff_t>(kk),
                    all->end(), [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance ||
                             (a.distance == b.distance && a.index < b.index);
                    });
  all->resize(kk);
}

linalg::Vector PointNorms(const linalg::Matrix& points, DistanceKind metric) {
  linalg::Vector norms;
  if (metric != DistanceKind::kCosine) return norms;
  const size_t dims = points.cols();
  const double* base = points.data().data();
  norms.resize(points.rows());
  for (size_t i = 0; i < points.rows(); ++i) {
    norms[i] = std::sqrt(DotRaw(base + i * dims, base + i * dims, dims));
  }
  return norms;
}

}  // namespace

std::vector<Neighbor> FindNearest(const linalg::Matrix& points,
                                  const linalg::Vector& query, size_t k,
                                  DistanceKind metric) {
  QPP_CHECK(points.rows() > 0 && k >= 1);
  QPP_CHECK(points.cols() == query.size());
  const linalg::Vector point_norms = PointNorms(points, metric);
  const double query_norm =
      metric == DistanceKind::kCosine
          ? std::sqrt(DotRaw(query.data(), query.data(), query.size()))
          : 0.0;
  std::vector<Neighbor> all(points.rows());
  DistancesToAll(points, query.data(), query_norm, metric, point_norms, &all);
  KeepNearestK(&all, k);
  return all;
}

std::vector<std::vector<Neighbor>> FindNearestBatch(
    const linalg::Matrix& points, const linalg::Matrix& queries, size_t k,
    DistanceKind metric) {
  QPP_CHECK(points.rows() > 0 && k >= 1);
  QPP_CHECK(points.cols() == queries.cols());
  const linalg::Vector point_norms = PointNorms(points, metric);
  std::vector<std::vector<Neighbor>> out(queries.rows());
  std::vector<Neighbor> all(points.rows());
  const size_t dims = queries.cols();
  const double* qbase = queries.data().data();
  for (size_t r = 0; r < queries.rows(); ++r) {
    const double* query = qbase + r * dims;
    const double query_norm = metric == DistanceKind::kCosine
                                  ? std::sqrt(DotRaw(query, query, dims))
                                  : 0.0;
    all.resize(points.rows());
    DistancesToAll(points, query, query_norm, metric, point_norms, &all);
    KeepNearestK(&all, k);
    out[r] = all;
  }
  return out;
}

linalg::Vector NeighborWeights(const std::vector<Neighbor>& neighbors,
                               NeighborWeighting weighting) {
  QPP_CHECK(!neighbors.empty());
  const size_t k = neighbors.size();
  linalg::Vector w(k, 1.0);
  switch (weighting) {
    case NeighborWeighting::kEqual:
      break;
    case NeighborWeighting::kRankRatio:
      for (size_t i = 0; i < k; ++i) w[i] = static_cast<double>(k - i);
      break;
    case NeighborWeighting::kInverseDistance: {
      constexpr double kEps = 1e-9;
      for (size_t i = 0; i < k; ++i) w[i] = 1.0 / (neighbors[i].distance + kEps);
      break;
    }
  }
  double total = 0.0;
  for (double v : w) total += v;
  for (double& v : w) v /= total;
  return w;
}

linalg::Vector WeightedAverage(const std::vector<Neighbor>& neighbors,
                               const linalg::Matrix& values,
                               NeighborWeighting weighting) {
  QPP_CHECK(!neighbors.empty());
  const linalg::Vector w = NeighborWeights(neighbors, weighting);
  linalg::Vector out(values.cols(), 0.0);
  for (size_t i = 0; i < neighbors.size(); ++i) {
    QPP_CHECK(neighbors[i].index < values.rows());
    const linalg::Vector row = values.Row(neighbors[i].index);
    for (size_t j = 0; j < out.size(); ++j) out[j] += w[i] * row[j];
  }
  return out;
}

}  // namespace qpp::ml
