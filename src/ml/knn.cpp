#include "ml/knn.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "par/parallel_for.h"
#include "par/simd.h"
#include "par/simd_lanes.h"

namespace qpp::ml {

const char* DistanceKindName(DistanceKind d) {
  switch (d) {
    case DistanceKind::kEuclidean: return "euclidean";
    case DistanceKind::kCosine: return "cosine";
  }
  return "?";
}

const char* NeighborWeightingName(NeighborWeighting w) {
  switch (w) {
    case NeighborWeighting::kEqual: return "equal";
    case NeighborWeighting::kRankRatio: return "rank-ratio";
    case NeighborWeighting::kInverseDistance: return "inverse-distance";
  }
  return "?";
}

namespace {

// Row-pointer forms of linalg::SquaredDistance / Dot with the same
// element order, so the allocation-free paths below match the Row()-copy
// arithmetic bit for bit.
double SquaredDistanceRaw(const double* a, const double* b, size_t dims) {
  double s = 0.0;
  for (size_t j = 0; j < dims; ++j) {
    const double d = a[j] - b[j];
    s += d * d;
  }
  return s;
}

double DotRaw(const double* a, const double* b, size_t dims) {
  double s = 0.0;
  for (size_t j = 0; j < dims; ++j) s += a[j] * b[j];
  return s;
}

// Training rows per parallel chunk, and the row x dims element count below
// which a single query's distance pass stays inline (per-query dispatch is
// not worth it for typical N ~ 1000 training sets; the serving batch path
// parallelizes over queries instead).
constexpr size_t kPointGrain = 512;
constexpr size_t kParMinDistanceWork = size_t{1} << 17;
// Queries per parallel chunk in the batch path.
constexpr size_t kQueryGrain = 4;
// Largest k served by the fused top-k scan (fixed-size kept arrays). The
// paper's operating points are k = 3..7; anything larger falls back to the
// full distance pass + KeepNearestK, which handles any k.
constexpr size_t kFusedMaxK = 32;

/// QPP_VERIFY_KNN=1 makes FindNearestBatch re-run every query through
/// FindNearest and assert bitwise-identical neighbors — the documented
/// batch ≡ row-wise contract (knn.h) as an executable check instead of a
/// comment. Off by default: it doubles the work.
bool VerifyKnnEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("QPP_VERIFY_KNN");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
  }();
  return enabled;
}

/// Bitwise equality of two neighbor lists: same length, same indices, and
/// byte-equal distances (stricter than ==, which would conflate 0.0/-0.0
/// and miss NaNs).
bool SameNeighbors(const std::vector<Neighbor>& a,
                   const std::vector<Neighbor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].index != b[i].index) return false;
    if (std::memcmp(&a[i].distance, &b[i].distance, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// Distances from one query row to every point row, without materializing
// row copies. `point_norms` (cosine only) carries the query-independent
// Norm(points.Row(i)) values so a batch computes them once. Each slot of
// `all` is written independently, so for very large training sets the row
// loop runs row-parallel with identical per-row arithmetic (inline when
// already inside a batch-parallel region — see par::ThreadPool nesting).
void DistancesToAll(const linalg::Matrix& points, const double* query,
                    double query_norm, DistanceKind metric,
                    const linalg::Vector& point_norms, bool use_simd,
                    std::vector<Neighbor>* all) {
  const size_t n = points.rows();
  const size_t dims = points.cols();
  const double* base = points.data().data();
  auto fill_rows = [&](size_t i0, size_t i1) {
    size_t i = i0;
    if (use_simd) {
      // kLanes rows per step; lane L carries row i+L's full ascending-j
      // chain (simd::SquaredDistanceRows / DotRows), and lane sqrt is
      // correctly rounded, so every distance matches the scalar loop bit
      // for bit. The cosine epilogue (norm test + divide) stays scalar
      // per lane.
      if (metric == DistanceKind::kEuclidean) {
        for (; i + 4 * simd::kLanes <= i1; i += 4 * simd::kLanes) {
          simd::VecD acc[4];
          simd::SquaredDistanceRows4(base + i * dims, dims, query, dims, acc);
          double d[4 * simd::kLanes];
          for (size_t c = 0; c < 4; ++c) {
            simd::StoreU(d + c * simd::kLanes, simd::Sqrt(acc[c]));
          }
          for (size_t l = 0; l < 4 * simd::kLanes; ++l) {
            (*all)[i + l].index = i + l;
            (*all)[i + l].distance = d[l];
          }
        }
        for (; i + simd::kLanes <= i1; i += simd::kLanes) {
          double d[simd::kLanes];
          simd::StoreU(d, simd::Sqrt(simd::SquaredDistanceRows(
                              base + i * dims, dims, query, dims)));
          for (size_t l = 0; l < simd::kLanes; ++l) {
            (*all)[i + l].index = i + l;
            (*all)[i + l].distance = d[l];
          }
        }
      } else {
        for (; i + simd::kLanes <= i1; i += simd::kLanes) {
          double dot[simd::kLanes];
          simd::StoreU(
              dot, simd::DotRows(base + i * dims, dims, query, dims));
          for (size_t l = 0; l < simd::kLanes; ++l) {
            const double na = point_norms[i + l];
            (*all)[i + l].index = i + l;
            (*all)[i + l].distance =
                na == 0.0 || query_norm == 0.0
                    ? 1.0
                    : 1.0 - dot[l] / (na * query_norm);
          }
        }
      }
    }
    for (; i < i1; ++i) {
      const double* row = base + i * dims;
      (*all)[i].index = i;
      if (metric == DistanceKind::kEuclidean) {
        (*all)[i].distance = std::sqrt(SquaredDistanceRaw(row, query, dims));
      } else {
        // Mirrors linalg::CosineDistance(row, query) exactly, with both
        // norms hoisted out of the pairwise loop.
        const double na = point_norms[i];
        (*all)[i].distance = na == 0.0 || query_norm == 0.0
                                 ? 1.0
                                 : 1.0 - DotRaw(row, query, dims) /
                                             (na * query_norm);
      }
    }
  };
  if (n * dims < kParMinDistanceWork) {
    fill_rows(0, n);
  } else {
    par::ParallelFor(0, n, kPointGrain, fill_rows, "knn_distances");
  }
}

// Keeps the k nearest candidates in ascending (distance, index) order.
// nth_element partitions in O(n), then only the k survivors are sorted —
// O(n + k log k) instead of the O(n log k) heap-based partial_sort over
// the full candidate set. The comparator is a strict total order (indices
// are unique), so the surviving set and its order are identical to a full
// sort's first k entries, ties broken by index.
void KeepNearestK(std::vector<Neighbor>* all, size_t k) {
  const size_t kk = std::min(k, all->size());
  const auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.index < b.index);
  };
  if (kk > 0 && kk < all->size()) {
    std::nth_element(all->begin(),
                     all->begin() + static_cast<ptrdiff_t>(kk - 1),
                     all->end(), cmp);
  }
  std::sort(all->begin(), all->begin() + static_cast<ptrdiff_t>(kk), cmp);
  all->resize(kk);
}

linalg::Vector PointNorms(const linalg::Matrix& points, DistanceKind metric,
                          bool use_simd) {
  linalg::Vector norms;
  if (metric != DistanceKind::kCosine) return norms;
  const size_t n = points.rows();
  const size_t dims = points.cols();
  const double* base = points.data().data();
  norms.resize(n);
  size_t i = 0;
  if (use_simd) {
    for (; i + simd::kLanes <= n; i += simd::kLanes) {
      simd::StoreU(norms.data() + i,
                   simd::Sqrt(simd::SelfDotRows(base + i * dims, dims, dims)));
    }
  }
  for (; i < n; ++i) {
    norms[i] = std::sqrt(DotRaw(base + i * dims, base + i * dims, dims));
  }
  return norms;
}

// Exact fused top-k for the Euclidean metric. Scans rows in ascending
// index order keeping the k best (distance, index) pairs insertion-sorted
// in fixed-size arrays, and gates each candidate on its *squared* distance
// before paying for the sqrt. The gate only ever rejects: sq > worst.sq
// implies sqrt(sq) >= worst.distance (sqrt is monotone), and on distance
// equality the candidate — whose index exceeds every kept index, because
// the scan is ascending — loses the (distance, index) tie anyway. Kept
// distances are std::sqrt of the identical squared sum (lane sqrt is
// correctly rounded), so the surviving set, its order, and every reported
// distance are bit-identical to DistancesToAll + KeepNearestK.
void FusedNearestEuclidean(const double* base, size_t n, size_t dims,
                           const double* query, size_t k,
                           std::vector<Neighbor>* out) {
  const size_t kk = std::min(k, n);
  double kd[kFusedMaxK];   // kept distances, ascending (distance, index)
  double ksq[kFusedMaxK];  // squared distance of the same kept entries
  size_t ki[kFusedMaxK];   // their row indices
  size_t kept = 0;
  auto insert = [&](size_t idx, double d, double sq) {
    size_t pos = kept;
    // Strict > keeps equal-distance entries in index order: the candidate
    // (largest index so far) lands after them, exactly as KeepNearestK
    // sorts ties.
    while (pos > 0 && kd[pos - 1] > d) {
      kd[pos] = kd[pos - 1];
      ksq[pos] = ksq[pos - 1];
      ki[pos] = ki[pos - 1];
      --pos;
    }
    kd[pos] = d;
    ksq[pos] = sq;
    ki[pos] = idx;
    ++kept;
  };
  auto consider = [&](size_t idx, double sq) {
    if (kept == kk) {
      if (sq > ksq[kept - 1]) return;
      const double d = std::sqrt(sq);
      if (d >= kd[kept - 1]) return;
      --kept;  // drop the current worst
      insert(idx, d, sq);
    } else {
      insert(idx, std::sqrt(sq), sq);
    }
  };
  size_t i = 0;
  // 4-way interleaved blocks first (the scan is latency-bound on each
  // accumulator's dependent add chain; see simd::SquaredDistanceRows4),
  // then single blocks, then the scalar tail — every row's chain is the
  // same in all three.
  for (; i + 4 * simd::kLanes <= n; i += 4 * simd::kLanes) {
    simd::VecD acc[4];
    simd::SquaredDistanceRows4(base + i * dims, dims, query, dims, acc);
    if (kept == kk) {
      // Whole-block reject: when no lane's squared distance is <= the
      // current worst kept squared distance, every lane fails consider()'s
      // first gate (sq > worst.sq rejects outright here — on a distance
      // tie the candidate's larger index loses anyway), so the block
      // contributes nothing. The worst only improves as candidates are
      // accepted, so the verdict cannot be invalidated later. This turns
      // the common no-op block into four compares and one branch.
      const simd::VecD worst = simd::Splat(ksq[kept - 1]);
      unsigned any = 0;
      for (size_t c = 0; c < 4; ++c) any |= simd::MaskLE(acc[c], worst);
      if (any == 0) continue;
    }
    double sq[4 * simd::kLanes];
    for (size_t c = 0; c < 4; ++c) simd::StoreU(sq + c * simd::kLanes, acc[c]);
    for (size_t l = 0; l < 4 * simd::kLanes; ++l) consider(i + l, sq[l]);
  }
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    double sq[simd::kLanes];
    simd::StoreU(sq, simd::SquaredDistanceRows(base + i * dims, dims, query,
                                               dims));
    for (size_t l = 0; l < simd::kLanes; ++l) consider(i + l, sq[l]);
  }
  for (; i < n; ++i) consider(i, SquaredDistanceRaw(base + i * dims, query, dims));
  out->resize(kept);
  for (size_t j = 0; j < kept; ++j) {
    (*out)[j].index = ki[j];
    (*out)[j].distance = kd[j];
  }
}

// One query against all points: the shared implementation behind
// FindNearest and FindNearestBatch (which is what makes the batch ≡
// row-wise bit-identity hold by construction). `scratch` is the reusable
// candidate buffer for the full-distance path.
std::vector<Neighbor> NearestOne(const linalg::Matrix& points,
                                 const double* query, double query_norm,
                                 size_t k, DistanceKind metric,
                                 const linalg::Vector& point_norms,
                                 bool use_simd,
                                 std::vector<Neighbor>* scratch) {
  const size_t n = points.rows();
  const size_t dims = points.cols();
  if (use_simd && metric == DistanceKind::kEuclidean && k <= kFusedMaxK &&
      n * dims < kParMinDistanceWork) {
    std::vector<Neighbor> out;
    FusedNearestEuclidean(points.data().data(), n, dims, query, k, &out);
    return out;
  }
  scratch->resize(n);
  DistancesToAll(points, query, query_norm, metric, point_norms, use_simd,
                 scratch);
  KeepNearestK(scratch, k);
  return *scratch;
}

}  // namespace

std::vector<Neighbor> FindNearest(const linalg::Matrix& points,
                                  const linalg::Vector& query, size_t k,
                                  DistanceKind metric) {
  QPP_CHECK(points.rows() > 0 && k >= 1);
  QPP_CHECK(points.cols() == query.size());
  const bool use_simd = simd::Enabled();
  const linalg::Vector point_norms = PointNorms(points, metric, use_simd);
  const double query_norm =
      metric == DistanceKind::kCosine
          ? std::sqrt(DotRaw(query.data(), query.data(), query.size()))
          : 0.0;
  std::vector<Neighbor> scratch;
  return NearestOne(points, query.data(), query_norm, k, metric, point_norms,
                    use_simd, &scratch);
}

std::vector<std::vector<Neighbor>> FindNearestBatch(
    const linalg::Matrix& points, const linalg::Matrix& queries, size_t k,
    DistanceKind metric) {
  QPP_CHECK(points.rows() > 0 && k >= 1);
  QPP_CHECK(points.cols() == queries.cols());
  const bool use_simd = simd::Enabled();
  const linalg::Vector point_norms = PointNorms(points, metric, use_simd);
  std::vector<std::vector<Neighbor>> out(queries.rows());
  const size_t dims = queries.cols();
  const double* qbase = queries.data().data();
  const bool verify = VerifyKnnEnabled();
  // Queries are independent (disjoint out slots, read-only shared state),
  // so the serving batch path fans out over query chunks; each chunk keeps
  // its own candidate buffer, reused across its queries exactly as the
  // serial loop reused one. Per-query work goes through NearestOne — the
  // same implementation FindNearest runs — preserving the bit-identity
  // with FindNearest at any thread count (assertable via QPP_VERIFY_KNN).
  par::ParallelFor(
      0, queries.rows(), kQueryGrain,
      [&](size_t r0, size_t r1) {
        std::vector<Neighbor> scratch;
        for (size_t r = r0; r < r1; ++r) {
          const double* query = qbase + r * dims;
          const double query_norm = metric == DistanceKind::kCosine
                                        ? std::sqrt(DotRaw(query, query, dims))
                                        : 0.0;
          out[r] = NearestOne(points, query, query_norm, k, metric,
                              point_norms, use_simd, &scratch);
          if (verify) {
            QPP_CHECK_MSG(
                SameNeighbors(out[r],
                              FindNearest(points, queries.Row(r), k, metric)),
                "FindNearestBatch: batch result differs from row-wise "
                "FindNearest (QPP_VERIFY_KNN)");
          }
        }
      },
      "knn_batch");
  return out;
}

linalg::Vector NeighborWeights(const std::vector<Neighbor>& neighbors,
                               NeighborWeighting weighting) {
  QPP_CHECK(!neighbors.empty());
  const size_t k = neighbors.size();
  linalg::Vector w(k, 1.0);
  switch (weighting) {
    case NeighborWeighting::kEqual:
      break;
    case NeighborWeighting::kRankRatio:
      for (size_t i = 0; i < k; ++i) w[i] = static_cast<double>(k - i);
      break;
    case NeighborWeighting::kInverseDistance: {
      constexpr double kEps = 1e-9;
      for (size_t i = 0; i < k; ++i) w[i] = 1.0 / (neighbors[i].distance + kEps);
      break;
    }
  }
  double total = 0.0;
  for (double v : w) total += v;
  for (double& v : w) v /= total;
  return w;
}

linalg::Vector WeightedAverage(const std::vector<Neighbor>& neighbors,
                               const linalg::Matrix& values,
                               NeighborWeighting weighting) {
  linalg::Vector out(values.cols());
  WeightedAverageTo(neighbors, values, weighting, out.data());
  return out;
}

void WeightedAverageTo(const std::vector<Neighbor>& neighbors,
                       const linalg::Matrix& values,
                       NeighborWeighting weighting, double* out) {
  QPP_CHECK(!neighbors.empty());
  const size_t k = neighbors.size();
  // Weights on the stack for the practical k range (config default is 3,
  // paper sweeps 3..7); heap only above kStackK. Same chains as
  // NeighborWeights: raw weights, ascending-order sum, normalize.
  constexpr size_t kStackK = 32;
  double wbuf[kStackK];
  std::vector<double> wheap;
  double* w = wbuf;
  if (k > kStackK) {
    wheap.resize(k);
    w = wheap.data();
  }
  for (size_t i = 0; i < k; ++i) w[i] = 1.0;
  switch (weighting) {
    case NeighborWeighting::kEqual:
      break;
    case NeighborWeighting::kRankRatio:
      for (size_t i = 0; i < k; ++i) w[i] = static_cast<double>(k - i);
      break;
    case NeighborWeighting::kInverseDistance: {
      constexpr double kEps = 1e-9;
      for (size_t i = 0; i < k; ++i) w[i] = 1.0 / (neighbors[i].distance + kEps);
      break;
    }
  }
  double total = 0.0;
  for (size_t i = 0; i < k; ++i) total += w[i];
  for (size_t i = 0; i < k; ++i) w[i] /= total;
  const size_t cols = values.cols();
  for (size_t j = 0; j < cols; ++j) out[j] = 0.0;
  for (size_t i = 0; i < k; ++i) {
    QPP_CHECK(neighbors[i].index < values.rows());
    // Raw row pointer instead of a Row() copy: same elements in the same
    // ascending-j order, minus the per-neighbor Vector allocation.
    const double* row =
        values.data().data() + neighbors[i].index * values.cols();
    for (size_t j = 0; j < cols; ++j) out[j] += w[i] * row[j];
  }
}

}  // namespace qpp::ml
