#include "ml/knn.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "par/parallel_for.h"

namespace qpp::ml {

const char* DistanceKindName(DistanceKind d) {
  switch (d) {
    case DistanceKind::kEuclidean: return "euclidean";
    case DistanceKind::kCosine: return "cosine";
  }
  return "?";
}

const char* NeighborWeightingName(NeighborWeighting w) {
  switch (w) {
    case NeighborWeighting::kEqual: return "equal";
    case NeighborWeighting::kRankRatio: return "rank-ratio";
    case NeighborWeighting::kInverseDistance: return "inverse-distance";
  }
  return "?";
}

namespace {

// Row-pointer forms of linalg::SquaredDistance / Dot with the same
// element order, so the allocation-free paths below match the Row()-copy
// arithmetic bit for bit.
double SquaredDistanceRaw(const double* a, const double* b, size_t dims) {
  double s = 0.0;
  for (size_t j = 0; j < dims; ++j) {
    const double d = a[j] - b[j];
    s += d * d;
  }
  return s;
}

double DotRaw(const double* a, const double* b, size_t dims) {
  double s = 0.0;
  for (size_t j = 0; j < dims; ++j) s += a[j] * b[j];
  return s;
}

// Training rows per parallel chunk, and the row x dims element count below
// which a single query's distance pass stays inline (per-query dispatch is
// not worth it for typical N ~ 1000 training sets; the serving batch path
// parallelizes over queries instead).
constexpr size_t kPointGrain = 512;
constexpr size_t kParMinDistanceWork = size_t{1} << 17;
// Queries per parallel chunk in the batch path.
constexpr size_t kQueryGrain = 4;

// Distances from one query row to every point row, without materializing
// row copies. `point_norms` (cosine only) carries the query-independent
// Norm(points.Row(i)) values so a batch computes them once. Each slot of
// `all` is written independently, so for very large training sets the row
// loop runs row-parallel with identical per-row arithmetic (inline when
// already inside a batch-parallel region — see par::ThreadPool nesting).
void DistancesToAll(const linalg::Matrix& points, const double* query,
                    double query_norm, DistanceKind metric,
                    const linalg::Vector& point_norms,
                    std::vector<Neighbor>* all) {
  const size_t n = points.rows();
  const size_t dims = points.cols();
  const double* base = points.data().data();
  auto fill_rows = [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      const double* row = base + i * dims;
      (*all)[i].index = i;
      if (metric == DistanceKind::kEuclidean) {
        (*all)[i].distance = std::sqrt(SquaredDistanceRaw(row, query, dims));
      } else {
        // Mirrors linalg::CosineDistance(row, query) exactly, with both
        // norms hoisted out of the pairwise loop.
        const double na = point_norms[i];
        (*all)[i].distance = na == 0.0 || query_norm == 0.0
                                 ? 1.0
                                 : 1.0 - DotRaw(row, query, dims) /
                                             (na * query_norm);
      }
    }
  };
  if (n * dims < kParMinDistanceWork) {
    fill_rows(0, n);
  } else {
    par::ParallelFor(0, n, kPointGrain, fill_rows, "knn_distances");
  }
}

// Keeps the k nearest candidates in ascending (distance, index) order.
// nth_element partitions in O(n), then only the k survivors are sorted —
// O(n + k log k) instead of the O(n log k) heap-based partial_sort over
// the full candidate set. The comparator is a strict total order (indices
// are unique), so the surviving set and its order are identical to a full
// sort's first k entries, ties broken by index.
void KeepNearestK(std::vector<Neighbor>* all, size_t k) {
  const size_t kk = std::min(k, all->size());
  const auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.index < b.index);
  };
  if (kk > 0 && kk < all->size()) {
    std::nth_element(all->begin(),
                     all->begin() + static_cast<ptrdiff_t>(kk - 1),
                     all->end(), cmp);
  }
  std::sort(all->begin(), all->begin() + static_cast<ptrdiff_t>(kk), cmp);
  all->resize(kk);
}

linalg::Vector PointNorms(const linalg::Matrix& points, DistanceKind metric) {
  linalg::Vector norms;
  if (metric != DistanceKind::kCosine) return norms;
  const size_t dims = points.cols();
  const double* base = points.data().data();
  norms.resize(points.rows());
  for (size_t i = 0; i < points.rows(); ++i) {
    norms[i] = std::sqrt(DotRaw(base + i * dims, base + i * dims, dims));
  }
  return norms;
}

}  // namespace

std::vector<Neighbor> FindNearest(const linalg::Matrix& points,
                                  const linalg::Vector& query, size_t k,
                                  DistanceKind metric) {
  QPP_CHECK(points.rows() > 0 && k >= 1);
  QPP_CHECK(points.cols() == query.size());
  const linalg::Vector point_norms = PointNorms(points, metric);
  const double query_norm =
      metric == DistanceKind::kCosine
          ? std::sqrt(DotRaw(query.data(), query.data(), query.size()))
          : 0.0;
  std::vector<Neighbor> all(points.rows());
  DistancesToAll(points, query.data(), query_norm, metric, point_norms, &all);
  KeepNearestK(&all, k);
  return all;
}

std::vector<std::vector<Neighbor>> FindNearestBatch(
    const linalg::Matrix& points, const linalg::Matrix& queries, size_t k,
    DistanceKind metric) {
  QPP_CHECK(points.rows() > 0 && k >= 1);
  QPP_CHECK(points.cols() == queries.cols());
  const linalg::Vector point_norms = PointNorms(points, metric);
  std::vector<std::vector<Neighbor>> out(queries.rows());
  const size_t dims = queries.cols();
  const double* qbase = queries.data().data();
  // Queries are independent (disjoint out slots, read-only shared state),
  // so the serving batch path fans out over query chunks; each chunk keeps
  // its own candidate buffer, reused across its queries exactly as the
  // serial loop reused one. Per-query arithmetic is unchanged, preserving
  // the bit-identity with FindNearest at any thread count.
  par::ParallelFor(
      0, queries.rows(), kQueryGrain,
      [&](size_t r0, size_t r1) {
        std::vector<Neighbor> all(points.rows());
        for (size_t r = r0; r < r1; ++r) {
          const double* query = qbase + r * dims;
          const double query_norm = metric == DistanceKind::kCosine
                                        ? std::sqrt(DotRaw(query, query, dims))
                                        : 0.0;
          all.resize(points.rows());
          DistancesToAll(points, query, query_norm, metric, point_norms, &all);
          KeepNearestK(&all, k);
          out[r] = all;
        }
      },
      "knn_batch");
  return out;
}

linalg::Vector NeighborWeights(const std::vector<Neighbor>& neighbors,
                               NeighborWeighting weighting) {
  QPP_CHECK(!neighbors.empty());
  const size_t k = neighbors.size();
  linalg::Vector w(k, 1.0);
  switch (weighting) {
    case NeighborWeighting::kEqual:
      break;
    case NeighborWeighting::kRankRatio:
      for (size_t i = 0; i < k; ++i) w[i] = static_cast<double>(k - i);
      break;
    case NeighborWeighting::kInverseDistance: {
      constexpr double kEps = 1e-9;
      for (size_t i = 0; i < k; ++i) w[i] = 1.0 / (neighbors[i].distance + kEps);
      break;
    }
  }
  double total = 0.0;
  for (double v : w) total += v;
  for (double& v : w) v /= total;
  return w;
}

linalg::Vector WeightedAverage(const std::vector<Neighbor>& neighbors,
                               const linalg::Matrix& values,
                               NeighborWeighting weighting) {
  QPP_CHECK(!neighbors.empty());
  const linalg::Vector w = NeighborWeights(neighbors, weighting);
  linalg::Vector out(values.cols(), 0.0);
  for (size_t i = 0; i < neighbors.size(); ++i) {
    QPP_CHECK(neighbors[i].index < values.rows());
    const linalg::Vector row = values.Row(neighbors[i].index);
    for (size_t j = 0; j < out.size(); ++j) out[j] += w[i] * row[j];
  }
  return out;
}

}  // namespace qpp::ml
