#include "ml/cca.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"

namespace qpp::ml {

namespace {

linalg::Vector ColumnMeans(const linalg::Matrix& m) {
  linalg::Vector mean(m.cols(), 0.0);
  for (size_t j = 0; j < m.cols(); ++j) {
    double s = 0.0;
    for (size_t i = 0; i < m.rows(); ++i) s += m(i, j);
    mean[j] = s / static_cast<double>(m.rows());
  }
  return mean;
}

linalg::Matrix CenterColumns(const linalg::Matrix& m,
                             const linalg::Vector& mean) {
  linalg::Matrix out(m.rows(), m.cols());
  for (size_t i = 0; i < m.rows(); ++i)
    for (size_t j = 0; j < m.cols(); ++j) out(i, j) = m(i, j) - mean[j];
  return out;
}

void AddRelativeRidge(linalg::Matrix* c, double reg) {
  double mean_diag = 0.0;
  for (size_t i = 0; i < c->rows(); ++i) mean_diag += (*c)(i, i);
  mean_diag /= std::max<double>(static_cast<double>(c->rows()), 1.0);
  if (mean_diag <= 0.0) mean_diag = 1.0;
  c->AddToDiagonal(reg * mean_diag + 1e-12);
}

}  // namespace

CcaModel FitCca(const linalg::Matrix& x, const linalg::Matrix& y,
                size_t num_dims, double reg) {
  QPP_CHECK(x.rows() == y.rows() && x.rows() >= 2);
  const size_t n = x.rows();
  const size_t p = x.cols();
  const size_t q = y.cols();
  const size_t d = std::min({num_dims, p, q});
  QPP_CHECK(d >= 1);

  CcaModel model;
  model.mean_x = ColumnMeans(x);
  model.mean_y = ColumnMeans(y);
  const linalg::Matrix xc = CenterColumns(x, model.mean_x);
  const linalg::Matrix yc = CenterColumns(y, model.mean_y);

  const double inv_n = 1.0 / static_cast<double>(n - 1);
  linalg::Matrix cxx = xc.TransposeMultiply(xc).Scale(inv_n);
  linalg::Matrix cyy = yc.TransposeMultiply(yc).Scale(inv_n);
  const linalg::Matrix cxy = xc.TransposeMultiply(yc).Scale(inv_n);
  AddRelativeRidge(&cxx, reg);
  AddRelativeRidge(&cyy, reg);

  const linalg::Cholesky lx(cxx, 1e-3);
  const linalg::Cholesky ly(cyy, 1e-3);
  QPP_CHECK_MSG(lx.ok() && ly.ok(), "CCA covariance not positive definite");

  // M = Lx^{-1} Cxy Ly^{-T}  (p x q);  S = M M^T  (p x p, symmetric PSD).
  const linalg::Matrix u1 = lx.SolveLowerMatrix(cxy);              // p x q
  const linalg::Matrix m = ly.SolveLowerMatrix(u1.Transpose()).Transpose();
  const linalg::Matrix s = m.MultiplyTranspose(m);

  const linalg::TopEigen top = linalg::TopKEigenSymmetric(s, d);

  model.wx = linalg::Matrix(p, d);
  model.wy = linalg::Matrix(q, d);
  model.correlations.assign(d, 0.0);
  for (size_t c = 0; c < d; ++c) {
    const double sigma = std::sqrt(std::max(top.values[c], 0.0));
    model.correlations[c] = std::min(sigma, 1.0);
    // wx = Lx^{-T} u.
    const linalg::Vector u = top.vectors.Col(c);
    const linalg::Vector wx_col = lx.SolveLowerTranspose(u);
    for (size_t j = 0; j < p; ++j) model.wx(j, c) = wx_col[j];
    // v = M^T u / sigma; wy = Ly^{-T} v.
    linalg::Vector v(q, 0.0);
    for (size_t j = 0; j < q; ++j) {
      double sum = 0.0;
      for (size_t i = 0; i < p; ++i) sum += m(i, j) * u[i];
      v[j] = sigma > 1e-12 ? sum / sigma : sum;
    }
    const linalg::Vector wy_col = ly.SolveLowerTranspose(v);
    for (size_t j = 0; j < q; ++j) model.wy(j, c) = wy_col[j];
  }
  return model;
}

linalg::Vector CcaModel::ProjectX(const linalg::Vector& x) const {
  QPP_CHECK(x.size() == mean_x.size());
  linalg::Vector out(wx.cols(), 0.0);
  for (size_t c = 0; c < wx.cols(); ++c) {
    double s = 0.0;
    for (size_t j = 0; j < x.size(); ++j) {
      s += (x[j] - mean_x[j]) * wx(j, c);
    }
    out[c] = s;
  }
  return out;
}

linalg::Vector CcaModel::ProjectY(const linalg::Vector& y) const {
  QPP_CHECK(y.size() == mean_y.size());
  linalg::Vector out(wy.cols(), 0.0);
  for (size_t c = 0; c < wy.cols(); ++c) {
    double s = 0.0;
    for (size_t j = 0; j < y.size(); ++j) {
      s += (y[j] - mean_y[j]) * wy(j, c);
    }
    out[c] = s;
  }
  return out;
}

linalg::Matrix CcaModel::ProjectXAll(const linalg::Matrix& x) const {
  linalg::Matrix out(x.rows(), wx.cols());
  for (size_t i = 0; i < x.rows(); ++i) out.SetRow(i, ProjectX(x.Row(i)));
  return out;
}

linalg::Matrix CcaModel::ProjectYAll(const linalg::Matrix& y) const {
  linalg::Matrix out(y.rows(), wy.cols());
  for (size_t i = 0; i < y.rows(); ++i) out.SetRow(i, ProjectY(y.Row(i)));
  return out;
}

namespace {
void SaveMatrix(BinaryWriter* w, const linalg::Matrix& m) {
  w->WriteU64(m.rows());
  w->WriteU64(m.cols());
  w->WriteDoubles(m.data());
}

linalg::Matrix LoadMatrix(BinaryReader* r) {
  const size_t rows = static_cast<size_t>(r->ReadU64());
  const size_t cols = static_cast<size_t>(r->ReadU64());
  linalg::Matrix m(rows, cols);
  m.data() = r->ReadDoubles();
  QPP_CHECK(m.data().size() == rows * cols);
  return m;
}
}  // namespace

void CcaModel::Save(BinaryWriter* w) const {
  w->WriteDoubles(mean_x);
  w->WriteDoubles(mean_y);
  SaveMatrix(w, wx);
  SaveMatrix(w, wy);
  w->WriteDoubles(correlations);
}

CcaModel CcaModel::Load(BinaryReader* r) {
  CcaModel m;
  m.mean_x = r->ReadDoubles();
  m.mean_y = r->ReadDoubles();
  m.wx = LoadMatrix(r);
  m.wy = LoadMatrix(r);
  m.correlations = r->ReadDoubles();
  return m;
}

}  // namespace qpp::ml
