// Exact k-d tree over the rows of a matrix, for Euclidean nearest-neighbor
// queries in the projected KCCA subspace (paper Section VI-E picks k = 3
// Euclidean neighbors there; the projection keeps num_dims ~ 16 of the
// canonical directions, low enough for axis-aligned splitting to prune).
//
// "Exact" is meant bitwise: FindNearest returns the same neighbors, in the
// same (distance, index) order, with byte-identical distances, as the
// brute-force ml::FindNearest over the same matrix. That holds because
//  * the k-nearest result set is uniquely determined by the strict total
//    order (distance, index) — indices are unique — so any algorithm that
//    visits every non-losing candidate and compares with that order
//    reproduces it exactly, regardless of visit order;
//  * candidate distances are std::sqrt of the identical ascending-j
//    squared-sum chain the brute kernel computes (SIMD lane sqrt is
//    correctly rounded, so the lane form matches too);
//  * subtree pruning is conservative under floating point: the region
//    lower bound is accumulated with the same ascending-axis s += t*t
//    chain, and each axis term is dominated, in computed arithmetic, by
//    the corresponding term of any subtree point's distance chain
//    (rounding is monotone), so computed bound <= computed distance holds
//    exactly and a subtree is skipped only when every point in it would
//    lose *strictly* on distance (bound > current worst — never on ties,
//    which must fall through to the index comparison).
//
// tests/kdtree_test.cpp pins this equivalence against the brute oracle
// over randomized point sets with duplicates and exact ties.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "ml/knn.h"

namespace qpp::ml {

class KdTree {
 public:
  /// How FindNearest walks the points. Both modes are exact and return
  /// byte-identical results (the candidate set order never matters under
  /// the strict (distance, index) comparison); the choice is purely a
  /// latency knob, pinned against each other by tests/kdtree_test.cpp.
  ///  * kDescent — classic branch-and-bound tree walk. Sublinear when the
  ///    dimensionality is low relative to log2(n) (axis pruning pays).
  ///  * kFlat    — gated linear sweep over the leaf tiles in storage
  ///    order: contiguous SIMD loads, no recursion, whole blocks rejected
  ///    against the current worst by one vector compare. Wins when axis
  ///    pruning cannot (n << 2^dims, the paper's operating regime).
  ///  * kAuto    — kDescent iff n >= 2^dims, else kFlat.
  enum class SearchMode { kAuto, kDescent, kFlat };

  KdTree() = default;

  /// Builds the tree over a copy of the rows of `points` (row-major;
  /// reordered internally, with a map back to original row indices).
  /// Deterministic: splits the widest-extent axis (ties to the lowest
  /// axis) at the median under the strict (coordinate, row index) order.
  /// An empty matrix yields an empty tree.
  void Build(const linalg::Matrix& points);

  /// Drops the tree back to empty.
  void Clear();

  bool empty() const { return n_ == 0; }
  size_t size() const { return n_; }
  size_t dims() const { return dims_; }

  /// The min(k, size()) nearest rows to `query`, ascending by
  /// (distance, index) — bit-identical to
  /// ml::FindNearest(points, query, k, DistanceKind::kEuclidean),
  /// whichever search mode runs.
  /// Requires a non-empty tree, k >= 1, and query.size() == dims().
  std::vector<Neighbor> FindNearest(const linalg::Vector& query, size_t k,
                                    SearchMode mode = SearchMode::kAuto) const;

  /// Raw-pointer form for hot paths (query must have dims() elements);
  /// result is appended into *out after a clear.
  void FindNearestRaw(const double* query, size_t k,
                      std::vector<Neighbor>* out,
                      SearchMode mode = SearchMode::kAuto) const;

  /// The mode kAuto resolves to for this tree's (n, dims).
  SearchMode auto_mode() const;

 private:
  struct Node {
    size_t axis = 0;     ///< split axis; kLeafSentinel marks a leaf
    double split = 0.0;  ///< splitting coordinate on `axis`
    size_t left = 0;     ///< internal: child node ids; leaf: [begin, end)
    size_t right = 0;    ///< into the reordered point storage
  };
  struct Kept;  // the (distance, sq, index) top-k state, in kdtree.cpp

  size_t BuildRange(const double* src, std::vector<size_t>* perm, size_t lo,
                    size_t hi);
  void ScanLeaf(size_t lo, size_t hi, const double* query, bool use_simd,
                Kept* kept) const;
  void Search(size_t node_id, const double* query, size_t kk, bool use_simd,
              Kept* kept, double* off) const;

  size_t n_ = 0;
  size_t dims_ = 0;
  /// Rows in tree order, one column-major tile per leaf (element (r, j) of
  /// a leaf [lo, hi) at [lo*dims_ + j*(hi-lo) + (r-lo)]) so the leaf scan
  /// runs on contiguous vector loads. Same doubles as the row-major form —
  /// the layout never changes a result.
  std::vector<double> pts_;
  std::vector<size_t> idx_;   ///< tree-order row -> original row index
  std::vector<Node> nodes_;   ///< nodes_[0] is the root when n_ > 0
  /// Leaf [lo, hi) ranges in ascending storage order (they partition
  /// [0, n)); the kFlat sweep walks these without touching nodes_.
  std::vector<std::pair<size_t, size_t>> leaves_;
};

}  // namespace qpp::ml
