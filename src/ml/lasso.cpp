#include "ml/lasso.h"

#include <cmath>

#include "common/check.h"

namespace qpp::ml {

namespace {
double SoftThreshold(double z, double g) {
  if (z > g) return z - g;
  if (z < -g) return z + g;
  return 0.0;
}
}  // namespace

void Lasso::Fit(const linalg::Matrix& x, const linalg::Vector& y,
                double lambda, size_t max_iters, double tol) {
  QPP_CHECK(x.rows() == y.size() && x.rows() > 0);
  QPP_CHECK(lambda >= 0.0);
  const size_t n = x.rows();
  const size_t p = x.cols();

  // Standardize internally; coefficients are mapped back at the end.
  linalg::Vector mean(p, 0.0), scale(p, 1.0);
  for (size_t j = 0; j < p; ++j) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) s += x(i, j);
    mean[j] = s / static_cast<double>(n);
    double ss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = x(i, j) - mean[j];
      ss += d * d;
    }
    scale[j] = std::sqrt(ss / static_cast<double>(n));
    if (scale[j] < 1e-12) scale[j] = 1.0;
  }
  double y_mean = 0.0;
  for (double v : y) y_mean += v;
  y_mean /= static_cast<double>(n);

  linalg::Matrix xs(n, p);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < p; ++j) xs(i, j) = (x(i, j) - mean[j]) / scale[j];

  linalg::Vector beta(p, 0.0);
  linalg::Vector residual(n);
  for (size_t i = 0; i < n; ++i) residual[i] = y[i] - y_mean;

  // Column squared norms (constant across sweeps).
  linalg::Vector col_sq(p, 0.0);
  for (size_t j = 0; j < p; ++j) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) s += xs(i, j) * xs(i, j);
    col_sq[j] = s > 1e-12 ? s : 1e-12;
  }

  const double gamma = lambda * static_cast<double>(n);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    double max_delta = 0.0;
    for (size_t j = 0; j < p; ++j) {
      // rho = x_j . (residual + x_j beta_j)
      double rho = 0.0;
      for (size_t i = 0; i < n; ++i) rho += xs(i, j) * residual[i];
      rho += col_sq[j] * beta[j];
      const double new_beta = SoftThreshold(rho, gamma) / col_sq[j];
      const double delta = new_beta - beta[j];
      if (delta != 0.0) {
        for (size_t i = 0; i < n; ++i) residual[i] -= delta * xs(i, j);
        beta[j] = new_beta;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    if (max_delta < tol) break;
  }

  // Map back to the raw feature scale.
  beta_.assign(p, 0.0);
  intercept_ = y_mean;
  for (size_t j = 0; j < p; ++j) {
    beta_[j] = beta[j] / scale[j];
    intercept_ -= beta_[j] * mean[j];
  }
  fitted_ = true;
}

double Lasso::Predict(const linalg::Vector& x) const {
  QPP_CHECK(fitted_ && x.size() == beta_.size());
  return intercept_ + linalg::Dot(beta_, x);
}

std::vector<size_t> Lasso::DiscardedFeatures() const {
  QPP_CHECK(fitted_);
  std::vector<size_t> out;
  for (size_t j = 0; j < beta_.size(); ++j) {
    if (beta_[j] == 0.0) out.push_back(j);
  }
  return out;
}

}  // namespace qpp::ml
