// Nearest-neighbor lookup in the KCCA projection space (paper Section VI-E).
//
// Three design knobs, each swept by a table in the paper:
//  * distance metric (Table I): Euclidean vs cosine — Euclidean wins;
//  * neighbor count k (Table II): 3..7 — negligible differences, 3 chosen;
//  * neighbor weighting (Table III): equal vs 3:2:1 vs distance-
//    proportional — no consistent winner, equal chosen.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace qpp::ml {

enum class DistanceKind { kEuclidean, kCosine };
enum class NeighborWeighting { kEqual, kRankRatio, kInverseDistance };

const char* DistanceKindName(DistanceKind d);
const char* NeighborWeightingName(NeighborWeighting w);

struct Neighbor {
  size_t index = 0;
  double distance = 0.0;
};

/// The k nearest rows of `points` to `query`, ascending by distance.
std::vector<Neighbor> FindNearest(const linalg::Matrix& points,
                                  const linalg::Vector& query, size_t k,
                                  DistanceKind metric);

/// Batch form: the k nearest rows of `points` for every row of `queries`.
/// Result i is bit-identical to FindNearest(points, queries.Row(i), ...) —
/// both run the same single-query implementation (including the SIMD
/// dispatch), the batch only amortizes the per-row vector allocations,
/// reuses one candidate buffer per chunk of queries, and hoists the
/// query-independent point norms out of the loop (cosine). Query chunks
/// run in parallel on the qpp::par pool (deterministic: identical results
/// at every thread count). Setting QPP_VERIFY_KNN=1 turns the contract
/// into a runtime assert: every batch result is re-derived via FindNearest
/// and compared bitwise (tests/knn_oracle_test.cpp exercises this). Used
/// by the serving micro-batcher (serve::PredictionService) via
/// core::Predictor::PredictBatch.
std::vector<std::vector<Neighbor>> FindNearestBatch(
    const linalg::Matrix& points, const linalg::Matrix& queries, size_t k,
    DistanceKind metric);

/// Neighbor weights under a scheme, normalized to sum 1. kRankRatio gives
/// k : k-1 : ... : 1 by nearness (the paper's 3:2:1 for k = 3);
/// kInverseDistance uses 1/(d + eps).
linalg::Vector NeighborWeights(const std::vector<Neighbor>& neighbors,
                               NeighborWeighting weighting);

/// Weighted average of the value rows selected by the neighbors.
linalg::Vector WeightedAverage(const std::vector<Neighbor>& neighbors,
                               const linalg::Matrix& values,
                               NeighborWeighting weighting);

/// WeightedAverage into caller-owned storage (`out` must hold
/// values.cols() doubles). Identical arithmetic (WeightedAverage is this
/// plus a Vector wrapper); the allocation-free form the batch prediction
/// assembly uses — weights live on the stack for k <= 32.
void WeightedAverageTo(const std::vector<Neighbor>& neighbors,
                       const linalg::Matrix& values,
                       NeighborWeighting weighting, double* out);

}  // namespace qpp::ml
