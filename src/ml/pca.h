// Principal Component Analysis (paper Section V-C).
//
// Evaluated and rejected: PCA finds directions of maximal variance within
// ONE dataset, so it cannot expose correlations BETWEEN the query features
// and the performance features — the motivation for moving to (K)CCA.
#pragma once

#include "linalg/matrix.h"

namespace qpp::ml {

class Pca {
 public:
  /// Fits on the rows of x, keeping `num_components` directions.
  void Fit(const linalg::Matrix& x, size_t num_components);

  /// Projects rows onto the principal subspace (n x k).
  linalg::Matrix Transform(const linalg::Matrix& x) const;
  linalg::Vector TransformRow(const linalg::Vector& v) const;

  /// p x k matrix of principal directions (columns, unit length).
  const linalg::Matrix& components() const { return components_; }
  /// Variance captured by each kept component, descending.
  const linalg::Vector& explained_variance() const { return variance_; }
  /// Fraction of total variance captured by the kept components.
  double ExplainedVarianceRatio() const;

 private:
  linalg::Vector mean_;
  linalg::Matrix components_;
  linalg::Vector variance_;
  double total_variance_ = 0.0;
  bool fitted_ = false;
};

}  // namespace qpp::ml
