// Gaussian kernel machinery (paper Section VI-A, equation (1)).
//
//   k(x_i, x_j) = exp(-||x_i - x_j||^2 / tau)
//
// The paper sets the scale tau to "a fixed fraction of the empirical
// variance of the norms of the data points" — 0.1 for query vectors, 0.2
// for performance vectors. When that variance collapses (all rows at equal
// norm) we fall back to the mean pairwise squared distance, which keeps the
// kernel well-conditioned.
#pragma once

#include "linalg/matrix.h"

namespace qpp::ml {

struct GaussianKernel {
  double tau = 1.0;

  double operator()(const linalg::Vector& a, const linalg::Vector& b) const;
};

/// Paper heuristic: tau = factor * Var(||x_i||), with a mean-pairwise-
/// squared-distance fallback when the variance is degenerate. The variance
/// uses the numerically stable two-pass (centered) formula, so
/// near-constant large norms yield their true small variance instead of a
/// catastrophically cancelled zero. Deterministic across thread counts.
double GaussianScaleFromNorms(const linalg::Matrix& x, double factor);

/// Mean squared pairwise distance over (a sample of) the rows of x.
double MeanSquaredPairwiseDistance(const linalg::Matrix& x,
                                   size_t max_pairs = 20000);

/// Dense kernel matrix K(i, j) = kernel(row i, row j). Symmetric, unit
/// diagonal.
linalg::Matrix KernelMatrix(const linalg::Matrix& x,
                            const GaussianKernel& kernel);

/// Kernel vector of a new point against every row of x.
linalg::Vector KernelVector(const linalg::Matrix& x,
                            const linalg::Vector& point,
                            const GaussianKernel& kernel);

/// In-place double centering: K <- H K H with H = I - 11^T/N.
void CenterKernelMatrix(linalg::Matrix* k);

/// Centers a new point's kernel vector consistently with a centered training
/// kernel: k̃* = k* - rowmean(K) - mean(k*)·1 + grandmean(K).
/// `row_means` and `grand_mean` must come from the UNcentered training K.
linalg::Vector CenterKernelVector(const linalg::Vector& k_star,
                                  const linalg::Vector& row_means,
                                  double grand_mean);

}  // namespace qpp::ml
