// Gaussian kernel machinery (paper Section VI-A, equation (1)).
//
//   k(x_i, x_j) = exp(-||x_i - x_j||^2 / tau)
//
// The paper sets the scale tau to "a fixed fraction of the empirical
// variance of the norms of the data points" — 0.1 for query vectors, 0.2
// for performance vectors. When that variance collapses (all rows at equal
// norm) we fall back to the mean pairwise squared distance, which keeps the
// kernel well-conditioned.
#pragma once

#include "linalg/matrix.h"

namespace qpp::ml {

struct GaussianKernel {
  double tau = 1.0;

  double operator()(const linalg::Vector& a, const linalg::Vector& b) const;
};

/// Paper heuristic: tau = factor * Var(||x_i||), with a mean-pairwise-
/// squared-distance fallback when the variance is degenerate. The variance
/// uses the numerically stable two-pass (centered) formula, so
/// near-constant large norms yield their true small variance instead of a
/// catastrophically cancelled zero. Deterministic across thread counts.
double GaussianScaleFromNorms(const linalg::Matrix& x, double factor);

/// Mean squared pairwise distance over (a sample of) the rows of x.
double MeanSquaredPairwiseDistance(const linalg::Matrix& x,
                                   size_t max_pairs = 20000);

/// Dense kernel matrix K(i, j) = kernel(row i, row j). Symmetric, unit
/// diagonal.
linalg::Matrix KernelMatrix(const linalg::Matrix& x,
                            const GaussianKernel& kernel);

/// Kernel vector of a new point against every row of x.
linalg::Vector KernelVector(const linalg::Matrix& x,
                            const linalg::Vector& point,
                            const GaussianKernel& kernel);

/// Raw row-block form of the Gaussian evaluation behind KernelVector /
/// KernelMatrix: out[r] = exp(-||row_r - point||^2 / tau) for r in
/// [0, count), where row_r starts at rows + r*stride. With use_simd the
/// squared distances are computed kLanes rows at a time, one row's full
/// ascending-j chain per lane, so the values are bit-identical to the
/// scalar loop (which is the literal GaussianKernel::operator() chain).
/// Hot-path building block for ml::KccaModel projection.
void GaussianKernelRows(const double* rows, size_t count, size_t stride,
                        const double* point, size_t dims, double tau,
                        bool use_simd, double* out);

/// Packs `count` row-major rows into the column-major tile layout the
/// tiled distance kernels consume (simd::kTileRows rows per tile, element
/// (r, j) of tile t at tiles[t*kTileRows*dims + j*rows_in_tile + r']).
/// `tiles` must hold count*dims doubles. The packed copy holds the same
/// doubles — layout alone never changes a result; it exists because the
/// distance scan is throughput-bound on strided gathers in the row-major
/// form. Derived state: owners rebuild it on Train/Load, never serialize.
void PackRowsToTiles(const double* rows, size_t count, size_t dims,
                     double* tiles);

/// GaussianKernelRows over a PackRowsToTiles layout: out[r] =
/// exp(-||row_r - point||^2 / tau). Bit-identical to the row-major form —
/// each row keeps its ascending-j chain; only the loads are contiguous
/// (simd::SquaredDistanceTile4) instead of strided. This is the serving
/// hot path for the KCCA pivot kernel vector.
void GaussianKernelTiles(const double* tiles, size_t count, size_t dims,
                         const double* point, double tau, bool use_simd,
                         double* out);

/// GaussianKernelTiles for a block of queries: out[r*out_stride + q] =
/// exp(-||row_r - query_q||^2 / tau) for r in [0, count) and q in
/// [0, num_queries), where query_q starts at queries + q*query_stride.
/// Iterates tile-major so each packed tile (a few KB) stays hot in L1
/// across the whole query block instead of streaming all tiles once per
/// query — the batch-path amortization bench_timing_batch_predict
/// measures. Each (row, query) value keeps the exact single-query chain,
/// so the block is bit-identical to num_queries GaussianKernelTiles calls.
void GaussianKernelTilesBatch(const double* tiles, size_t count, size_t dims,
                              const double* queries, size_t num_queries,
                              size_t query_stride, double tau, bool use_simd,
                              double* out, size_t out_stride);

/// In-place double centering: K <- H K H with H = I - 11^T/N.
void CenterKernelMatrix(linalg::Matrix* k);

/// Centers a new point's kernel vector consistently with a centered training
/// kernel: k̃* = k* - rowmean(K) - mean(k*)·1 + grandmean(K).
/// `row_means` and `grand_mean` must come from the UNcentered training K.
linalg::Vector CenterKernelVector(const linalg::Vector& k_star,
                                  const linalg::Vector& row_means,
                                  double grand_mean);

}  // namespace qpp::ml
