#include "ml/linear_regression.h"

#include "common/check.h"
#include "linalg/cholesky.h"

namespace qpp::ml {

void LinearRegression::Fit(const linalg::Matrix& x, const linalg::Vector& y,
                           double ridge) {
  QPP_CHECK(x.rows() == y.size() && x.rows() > 0);
  const size_t n = x.rows();
  const size_t p = x.cols();

  // Center targets and features so the intercept falls out.
  linalg::Vector x_mean(p, 0.0);
  for (size_t j = 0; j < p; ++j) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) s += x(i, j);
    x_mean[j] = s / static_cast<double>(n);
  }
  double y_mean = 0.0;
  for (double v : y) y_mean += v;
  y_mean /= static_cast<double>(n);

  linalg::Matrix xc(n, p);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < p; ++j) xc(i, j) = x(i, j) - x_mean[j];

  linalg::Matrix xtx = xc.TransposeMultiply(xc);
  xtx.AddToDiagonal(ridge);
  linalg::Vector xty(p, 0.0);
  for (size_t j = 0; j < p; ++j) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) s += xc(i, j) * (y[i] - y_mean);
    xty[j] = s;
  }
  linalg::Cholesky chol(xtx, /*max_jitter=*/1e-4);
  QPP_CHECK_MSG(chol.ok(), "normal equations not solvable");
  beta_ = chol.Solve(xty);
  intercept_ = y_mean;
  for (size_t j = 0; j < p; ++j) intercept_ -= beta_[j] * x_mean[j];
  fitted_ = true;
}

double LinearRegression::Predict(const linalg::Vector& x) const {
  QPP_CHECK(fitted_ && x.size() == beta_.size());
  return intercept_ + linalg::Dot(beta_, x);
}

linalg::Vector LinearRegression::PredictAll(const linalg::Matrix& x) const {
  linalg::Vector out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) out[i] = Predict(x.Row(i));
  return out;
}

void LinearRegression::Save(BinaryWriter* w) const {
  w->WriteU32(fitted_ ? 1 : 0);
  w->WriteDouble(intercept_);
  w->WriteDoubles(beta_);
}

LinearRegression LinearRegression::Load(BinaryReader* r) {
  LinearRegression m;
  m.fitted_ = r->ReadU32() != 0;
  m.intercept_ = r->ReadDouble();
  m.beta_ = r->ReadDoubles();
  return m;
}

void MultiOutputRegression::Fit(const linalg::Matrix& x,
                                const linalg::Matrix& y, double ridge) {
  QPP_CHECK(x.rows() == y.rows());
  models_.assign(y.cols(), LinearRegression());
  for (size_t m = 0; m < y.cols(); ++m) {
    models_[m].Fit(x, y.Col(m), ridge);
  }
}

linalg::Vector MultiOutputRegression::Predict(const linalg::Vector& x) const {
  linalg::Vector out(models_.size());
  for (size_t m = 0; m < models_.size(); ++m) out[m] = models_[m].Predict(x);
  return out;
}

}  // namespace qpp::ml
