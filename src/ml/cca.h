// Classical (linear) Canonical Correlation Analysis (paper Section V-D).
//
// Finds direction pairs (wx, wy) maximizing corr(X wx, Y wy). Directly
// usable on its own (and benchmarked as such), and the workhorse inside the
// incomplete-Cholesky KCCA path, where it runs on the low-rank kernel
// feature maps.
#pragma once

#include "common/serde.h"
#include "linalg/matrix.h"

namespace qpp::ml {

struct CcaModel {
  linalg::Vector mean_x;         ///< column means of X
  linalg::Vector mean_y;
  linalg::Matrix wx;             ///< p x d canonical directions for X
  linalg::Matrix wy;             ///< q x d canonical directions for Y
  linalg::Vector correlations;   ///< d canonical correlations, descending

  /// Projects a (raw, uncentered) X-row into the canonical space.
  linalg::Vector ProjectX(const linalg::Vector& x) const;
  linalg::Vector ProjectY(const linalg::Vector& y) const;

  /// Projects all rows (n x d).
  linalg::Matrix ProjectXAll(const linalg::Matrix& x) const;
  linalg::Matrix ProjectYAll(const linalg::Matrix& y) const;

  void Save(BinaryWriter* w) const;
  static CcaModel Load(BinaryReader* r);
};

/// Fits CCA between the rows of x (n x p) and y (n x q), keeping
/// `num_dims` direction pairs. `reg` is a relative ridge added to both
/// covariance matrices (scaled by their mean diagonal) — required when
/// p or q approaches n, and always healthy for kernel feature maps.
CcaModel FitCca(const linalg::Matrix& x, const linalg::Matrix& y,
                size_t num_dims, double reg = 1e-3);

}  // namespace qpp::ml
