#include "ml/risk.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/str_util.h"

namespace qpp::ml {

double PredictiveRisk(const linalg::Vector& predicted,
                      const linalg::Vector& actual) {
  QPP_CHECK(predicted.size() == actual.size() && !actual.empty());
  const size_t n = actual.size();
  double mean = 0.0;
  for (double v : actual) mean += v;
  mean /= static_cast<double>(n);
  double sse = 0.0;
  double sst = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sse += (predicted[i] - actual[i]) * (predicted[i] - actual[i]);
    sst += (actual[i] - mean) * (actual[i] - mean);
  }
  if (sst <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return 1.0 - sse / sst;
}

bool IsNullRisk(double risk) { return std::isnan(risk); }

std::string FormatRisk(double risk) {
  if (IsNullRisk(risk)) return "Null";
  return StrFormat("%.2f", risk);
}

double FractionWithinRelative(const linalg::Vector& predicted,
                              const linalg::Vector& actual, double rel_tol) {
  QPP_CHECK(predicted.size() == actual.size() && !actual.empty());
  size_t within = 0;
  for (size_t i = 0; i < actual.size(); ++i) {
    if (std::abs(predicted[i] - actual[i]) <=
        rel_tol * std::abs(actual[i])) {
      ++within;
    }
  }
  return static_cast<double>(within) / static_cast<double>(actual.size());
}

double MeanRelativeError(const linalg::Vector& predicted,
                         const linalg::Vector& actual, double floor) {
  QPP_CHECK(predicted.size() == actual.size() && !actual.empty());
  double sum = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    sum += std::abs(predicted[i] - actual[i]) /
           std::max(std::abs(actual[i]), floor);
  }
  return sum / static_cast<double>(actual.size());
}

double PredictiveRiskDroppingOutliers(const linalg::Vector& predicted,
                                      const linalg::Vector& actual,
                                      size_t drop_worst) {
  QPP_CHECK(predicted.size() == actual.size());
  if (drop_worst == 0 || actual.size() <= drop_worst + 1) {
    return PredictiveRisk(predicted, actual);
  }
  std::vector<size_t> idx(actual.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    const double ea = (predicted[a] - actual[a]) * (predicted[a] - actual[a]);
    const double eb = (predicted[b] - actual[b]) * (predicted[b] - actual[b]);
    return ea > eb;
  });
  linalg::Vector p, a;
  for (size_t k = drop_worst; k < idx.size(); ++k) {
    p.push_back(predicted[idx[k]]);
    a.push_back(actual[idx[k]]);
  }
  return PredictiveRisk(p, a);
}

size_t CountNegative(const linalg::Vector& predicted) {
  size_t n = 0;
  for (double v : predicted) {
    if (v < 0.0) ++n;
  }
  return n;
}

}  // namespace qpp::ml
