// Ordinary least squares — the paper's baseline (Section V-A).
//
// Fit by normal equations with a tiny ridge jitter for rank-deficient
// feature matrices. The paper's Figures 3 and 4 show this baseline failing:
// predictions off by orders of magnitude and even negative elapsed times.
// Nothing here prevents negative predictions — that IS the reproduced
// behavior.
#pragma once

#include "common/serde.h"
#include "linalg/matrix.h"

namespace qpp::ml {

class LinearRegression {
 public:
  /// Fits y ≈ X beta + intercept. `ridge` is an absolute L2 penalty on the
  /// coefficients (0 keeps pure OLS up to numerical jitter).
  void Fit(const linalg::Matrix& x, const linalg::Vector& y,
           double ridge = 0.0);

  double Predict(const linalg::Vector& x) const;
  linalg::Vector PredictAll(const linalg::Matrix& x) const;

  const linalg::Vector& coefficients() const { return beta_; }
  double intercept() const { return intercept_; }
  bool fitted() const { return fitted_; }

  void Save(BinaryWriter* w) const;
  static LinearRegression Load(BinaryReader* r);

 private:
  linalg::Vector beta_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

/// Independent per-metric regressions over a multi-output target — the
/// paper's observation that "each dependent variable is predicted from a
/// different set of chosen features" makes a joint model impossible with
/// this technique.
class MultiOutputRegression {
 public:
  void Fit(const linalg::Matrix& x, const linalg::Matrix& y,
           double ridge = 0.0);
  linalg::Vector Predict(const linalg::Vector& x) const;  ///< one row of ys
  const std::vector<LinearRegression>& models() const { return models_; }
  /// Reinstalls deserialized per-metric models (model reload path).
  void set_models(std::vector<LinearRegression> models) {
    models_ = std::move(models);
  }

 private:
  std::vector<LinearRegression> models_;
};

}  // namespace qpp::ml
