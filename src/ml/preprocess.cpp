#include "ml/preprocess.h"

#include <cmath>

#include "common/check.h"

namespace qpp::ml {

namespace {
// Signed log1p: compresses magnitude while preserving sign (regression
// predictions and profit-like columns can be negative).
double SignedLog1p(double v) {
  return v >= 0.0 ? std::log1p(v) : -std::log1p(-v);
}
}  // namespace

void Preprocessor::Fit(const linalg::Matrix& x) {
  QPP_CHECK(x.rows() > 0);
  const size_t n = x.rows();
  const size_t p = x.cols();
  mean_.assign(p, 0.0);
  stddev_.assign(p, 1.0);
  for (size_t j = 0; j < p; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += log1p_ ? SignedLog1p(x(i, j)) : x(i, j);
    }
    const double mu = sum / static_cast<double>(n);
    double ss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double v = (log1p_ ? SignedLog1p(x(i, j)) : x(i, j)) - mu;
      ss += v * v;
    }
    mean_[j] = mu;
    const double sd = std::sqrt(ss / static_cast<double>(n));
    stddev_[j] = sd > 1e-12 ? sd : 1.0;  // constant dims pass through
  }
  fitted_ = true;
}

linalg::Matrix Preprocessor::Transform(const linalg::Matrix& x) const {
  QPP_CHECK(fitted_ && x.cols() == mean_.size());
  linalg::Matrix out(x.rows(), x.cols());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      double v = log1p_ ? SignedLog1p(x(i, j)) : x(i, j);
      if (standardize_) v = (v - mean_[j]) / stddev_[j];
      out(i, j) = v;
    }
  }
  return out;
}

linalg::Vector Preprocessor::TransformRow(const linalg::Vector& v) const {
  linalg::Vector out(v.size());
  TransformRowTo(v, out.data());
  return out;
}

void Preprocessor::TransformRowTo(const linalg::Vector& v,
                                  double* out) const {
  QPP_CHECK(fitted_ && v.size() == mean_.size());
  for (size_t j = 0; j < v.size(); ++j) {
    double x = log1p_ ? SignedLog1p(v[j]) : v[j];
    if (standardize_) x = (x - mean_[j]) / stddev_[j];
    out[j] = x;
  }
}

void Preprocessor::Save(BinaryWriter* w) const {
  w->WriteU32(log1p_ ? 1 : 0);
  w->WriteU32(standardize_ ? 1 : 0);
  w->WriteU32(fitted_ ? 1 : 0);
  w->WriteDoubles(mean_);
  w->WriteDoubles(stddev_);
}

Preprocessor Preprocessor::Load(BinaryReader* r) {
  Preprocessor p;
  p.log1p_ = r->ReadU32() != 0;
  p.standardize_ = r->ReadU32() != 0;
  p.fitted_ = r->ReadU32() != 0;
  p.mean_ = r->ReadDoubles();
  p.stddev_ = r->ReadDoubles();
  return p;
}

}  // namespace qpp::ml
