// K-means clustering (Lloyd's algorithm with k-means++ seeding).
//
// Evaluated and rejected by the paper (Section V-B): clustering the query
// features and the performance features independently produces unrelated
// partitions, so there is no principled way to predict one from the other.
// We keep the implementation both to demonstrate that negative result and
// as a utility (e.g. projection-space diagnostics).
#pragma once

#include <cstdint>

#include "linalg/matrix.h"

namespace qpp::ml {

struct KMeansResult {
  linalg::Matrix centroids;        ///< k x p
  std::vector<size_t> assignment;  ///< n labels
  double inertia = 0.0;            ///< sum of squared distances to centroid
  size_t iterations = 0;
};

/// Clusters the rows of `x` into `k` groups. Deterministic under `seed`.
KMeansResult KMeans(const linalg::Matrix& x, size_t k, uint64_t seed,
                    size_t max_iters = 100);

/// Index of the nearest centroid to `point`.
size_t NearestCentroid(const linalg::Matrix& centroids,
                       const linalg::Vector& point);

/// Agreement between two clusterings of the same points: the Rand index
/// (fraction of point pairs on which the partitions agree). The paper's
/// argument predicts a low value between query-feature and performance-
/// feature clusterings.
double RandIndex(const std::vector<size_t>& a, const std::vector<size_t>& b);

}  // namespace qpp::ml
