// The parallel shared-nothing execution simulator.
//
// This substitutes for the HP Neoview hardware the paper measured (see
// DESIGN.md §2). Given a physical plan annotated with TRUE cardinalities and
// a SystemConfig, it produces the six performance metrics. The model is a
// resource-time simulation, not a discrete-event engine:
//
//   elapsed = startup + Σ_op max(cpu_op, io_op, net_op) * noise
//
// where each operator's resource times are computed from its true input /
// output cardinalities, divided by the effective parallelism (nodes_used
// discounted by a deterministic per-query skew factor). The important
// properties for the reproduction are that metrics are
//   (a) deterministic per (query, configuration),
//   (b) strongly nonlinear in the plan feature vector — nested-loop joins
//       cost outer*inner, sorts n·log n, hash joins and sorts step up when
//       they spill past working memory, and the max() composition defeats
//       any linear model — exactly why the paper's regression baseline
//       fails while KCCA's neighbor interpolation succeeds.
#pragma once

#include "catalog/catalog.h"
#include "engine/metrics.h"
#include "engine/system_config.h"
#include "fault/fault_injector.h"
#include "obs/trace.h"
#include "optimizer/physical_plan.h"

namespace qpp::engine {

class ExecutionSimulator {
 public:
  ExecutionSimulator(const catalog::Catalog* catalog, SystemConfig config);

  /// Runs the plan; deterministic for a given (plan.query_hash, config).
  ///
  /// When `trace` is non-null, the run additionally emits profiling spans
  /// in *simulated* time onto the recorder's timeline (pid kSimulatorPid):
  /// a whole-query span containing one span per operator (laid out along
  /// the simulated critical path, pre-noise), plus cpu/io/net resource
  /// lanes showing each operator's per-resource time so the max() that
  /// decided its elapsed contribution is visible. Each traced call takes a
  /// fresh group of tracks, so successive queries never interleave.
  /// Tracing does not change the returned metrics.
  ///
  /// When `faults` is non-null and its plan enables engine faults, the run
  /// suffers the injected faults — disk stalls, message loss with
  /// retransmits, straggler nodes, node failures with work re-partitioning,
  /// buffer-pool pressure — sampled deterministically per
  /// (fault seed, query_hash, operator), so a faulted run is exactly as
  /// replayable as a clean one. Faults only ever slow the query down:
  /// every faulted metric is >= its clean value. A null injector (or a
  /// disabled plan) leaves the metrics bit-identical to the pre-fault
  /// code path.
  QueryMetrics Execute(const optimizer::PhysicalPlan& plan,
                       obs::TraceRecorder* trace = nullptr,
                       const fault::FaultInjector* faults = nullptr) const;

  const SystemConfig& config() const { return config_; }

 private:
  struct OpCosts {
    double cpu_seconds = 0.0;   // total across nodes
    double io_pages = 0.0;      // total pages
    double net_bytes = 0.0;
    double net_messages = 0.0;
    double working_bytes = 0.0; // operator working set
  };

  /// `nodes` and `work_mem_bytes` default to the configured values; fault
  /// injection passes survivors-after-failure and pressured working memory.
  OpCosts CostOf(const optimizer::PhysicalNode& node, int nodes,
                 double work_mem_bytes) const;

  const catalog::Catalog* catalog_;
  SystemConfig config_;
};

}  // namespace qpp::engine
