#include "engine/metrics.h"

#include "common/check.h"
#include "common/str_util.h"

namespace qpp::engine {

linalg::Vector QueryMetrics::ToVector() const {
  return {elapsed_seconds, records_accessed, records_used,
          disk_ios,        message_count,    message_bytes};
}

QueryMetrics QueryMetrics::FromVector(const linalg::Vector& v) {
  QPP_CHECK(v.size() == kNumMetrics);
  return FromArray(v.data());
}

QueryMetrics QueryMetrics::FromArray(const double* v) {
  QueryMetrics m;
  m.elapsed_seconds = v[0];
  m.records_accessed = v[1];
  m.records_used = v[2];
  m.disk_ios = v[3];
  m.message_count = v[4];
  m.message_bytes = v[5];
  return m;
}

std::array<std::string, QueryMetrics::kNumMetrics>
QueryMetrics::MetricNames() {
  return {"elapsed_time",  "records_accessed", "records_used",
          "disk_io",       "message_count",    "message_bytes"};
}

std::string QueryMetrics::ToString() const {
  return StrFormat(
      "elapsed=%s recs_acc=%s recs_used=%s disk_io=%s msgs=%s msg_bytes=%s",
      FormatDuration(elapsed_seconds).c_str(),
      FormatG(records_accessed).c_str(), FormatG(records_used).c_str(),
      FormatG(disk_ios).c_str(), FormatG(message_count).c_str(),
      FormatG(message_bytes).c_str());
}

}  // namespace qpp::engine
