#include "engine/simulator.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "obs/json_util.h"

namespace qpp::engine {

namespace {
constexpr double kUs = 1e-6;
constexpr double kNs = 1e-9;
}  // namespace

ExecutionSimulator::ExecutionSimulator(const catalog::Catalog* catalog,
                                       SystemConfig config)
    : catalog_(catalog), config_(std::move(config)) {
  QPP_CHECK(catalog != nullptr);
}

ExecutionSimulator::OpCosts ExecutionSimulator::CostOf(
    const optimizer::PhysicalNode& n, int nodes,
    double work_mem_bytes) const {
  using optimizer::PhysOp;
  OpCosts c;
  const double out_rows = std::max(n.true_rows, 0.0);
  const double width = std::max(n.row_width, 1.0);
  const double page_bytes = config_.page_kb * 1024.0;
  const int P = nodes;

  // OS version 2 shifted join/sort costs (the paper's upgrade anecdote).
  const double os_join = config_.os_version >= 2 ? 1.25 : 1.0;
  const double os_scan = config_.os_version >= 2 ? 0.9 : 1.0;

  switch (n.op) {
    case PhysOp::kFileScan: {
      const double in_rows = std::max(n.true_input_rows, 0.0);
      c.cpu_seconds =
          in_rows *
          (config_.cpu_tuple_us * os_scan +
           config_.cpu_pred_us * static_cast<double>(n.num_predicates)) *
          kUs;
      const catalog::Table* t = catalog_->FindTable(n.table);
      const double table_bytes =
          t != nullptr ? t->row_count * t->RowWidthBytes() : in_rows * width;
      if (!config_.TableCached(table_bytes)) {
        c.io_pages = table_bytes / page_bytes;
      }
      break;
    }
    case PhysOp::kPartitionAccess:
      c.cpu_seconds = out_rows * 0.05 * kUs;
      break;
    case PhysOp::kExchange: {
      const double bytes = out_rows * width;
      c.cpu_seconds = out_rows * 0.3 * kUs;
      c.net_bytes = bytes;
      c.net_messages = std::ceil(bytes / (config_.msg_size_kb * 1024.0)) +
                       static_cast<double>(P) * std::max(P - 1, 1);
      break;
    }
    case PhysOp::kSplit: {
      // Broadcast: every node receives a full copy.
      const double bytes = out_rows * width * P;
      c.cpu_seconds = out_rows * P * 0.1 * kUs;
      c.net_bytes = bytes;
      c.net_messages =
          std::ceil(bytes / (config_.msg_size_kb * 1024.0)) + P;
      c.working_bytes = out_rows * width;  // materialized copy per node
      break;
    }
    case PhysOp::kNestedJoin: {
      QPP_CHECK(n.children.size() == 2);
      const double outer = std::max(n.children[0]->true_rows, 0.0);
      const double inner = std::max(n.children[1]->true_rows, 0.0);
      c.cpu_seconds = outer * std::max(inner, 1.0) * config_.nlj_pair_ns *
                      os_join * kNs;
      const double inner_bytes = inner * n.children[1]->row_width;
      c.working_bytes = inner_bytes;
      if (inner_bytes > work_mem_bytes) {
        // Inner does not fit: one materialization round-trip.
        c.io_pages += 2.0 * inner_bytes / page_bytes;
      }
      break;
    }
    case PhysOp::kHashJoin: {
      QPP_CHECK(n.children.size() == 2);
      const double probe = std::max(n.children[0]->true_rows, 0.0);
      const double build = std::max(n.children[1]->true_rows, 0.0);
      c.cpu_seconds = (build * config_.hash_build_us +
                       probe * config_.hash_probe_us) *
                      os_join * kUs;
      const double build_bytes = build * n.children[1]->row_width;
      const double probe_bytes = probe * n.children[0]->row_width;
      c.working_bytes = build_bytes / P;
      if (build_bytes / P > work_mem_bytes) {
        // Grace hash join: spill both inputs once (write + read).
        c.io_pages += 2.0 * (build_bytes + probe_bytes) / page_bytes;
        c.cpu_seconds *= 1.6;  // re-partitioning passes
      }
      break;
    }
    case PhysOp::kMergeJoin: {
      QPP_CHECK(n.children.size() == 2);
      const double l = std::max(n.children[0]->true_rows, 0.0);
      const double r = std::max(n.children[1]->true_rows, 0.0);
      c.cpu_seconds = (l + r) * 0.4 * os_join * kUs;
      break;
    }
    case PhysOp::kSort:
    case PhysOp::kTopN: {
      const double in_rows = std::max(n.true_input_rows, 0.0);
      const double log_n = std::log2(std::max(
          n.op == PhysOp::kTopN ? std::max(out_rows, 2.0) : in_rows, 2.0));
      c.cpu_seconds = in_rows * log_n * config_.sort_cmp_us * os_join * kUs;
      const double bytes = in_rows * width;
      c.working_bytes = bytes / P;
      if (n.op == PhysOp::kSort && bytes / P > work_mem_bytes) {
        // External sort: one spill-and-merge pass.
        c.io_pages += 2.0 * bytes / page_bytes;
      }
      break;
    }
    case PhysOp::kHashGroupBy:
    case PhysOp::kSortGroupBy: {
      const double in_rows = std::max(n.true_input_rows, 0.0);
      c.cpu_seconds =
          in_rows *
          (config_.agg_row_us + 0.1 * static_cast<double>(n.num_aggs)) * kUs;
      const double ht_bytes = out_rows * width;
      c.working_bytes = ht_bytes / P;
      if (ht_bytes / P > work_mem_bytes) {
        c.io_pages += 2.0 * in_rows * width / page_bytes;
        c.cpu_seconds *= 1.5;
      }
      break;
    }
    case PhysOp::kScalarAgg: {
      // Scalar aggregates are evaluated inline as rows stream by; per-row
      // cost is nanoseconds, not the hash-table microseconds of GROUP BY.
      const double in_rows = std::max(n.true_input_rows, 0.0);
      c.cpu_seconds = in_rows * 0.01 * kUs;
      break;
    }
    case PhysOp::kFilter: {
      const double in_rows = std::max(n.true_input_rows, 0.0);
      c.cpu_seconds = in_rows * config_.cpu_pred_us *
                      std::max<double>(static_cast<double>(n.num_predicates), 1.0) * kUs;
      break;
    }
    case PhysOp::kRoot:
      c.cpu_seconds = out_rows * 0.2 * kUs;
      break;
  }
  return c;
}

QueryMetrics ExecutionSimulator::Execute(const optimizer::PhysicalPlan& plan,
                                         obs::TraceRecorder* trace,
                                         const fault::FaultInjector* faults)
    const {
  QPP_CHECK(plan.root != nullptr);

  // Deterministic per (query, configuration) randomness. Fault decisions
  // draw from their own (fault seed, query_hash)-keyed streams inside the
  // injector, so injecting faults never perturbs the skew/noise draws —
  // a faulted run differs from the clean run only by the fault effects.
  Rng rng(SplitMix64(plan.query_hash ^ config_.Fingerprint()));
  const double skew = rng.Uniform(0.0, 0.05);
  const double noise = std::exp(config_.noise_sigma * rng.Gaussian());

  fault::FaultInjector::QueryFaults qf;
  const bool faulted = faults != nullptr && faults->engine_enabled();
  if (faulted) qf = faults->SampleQuery(plan.query_hash, config_.nodes_used);

  // Node failure re-partitions the failed nodes' work over the survivors:
  // fewer processors per operator, fewer network endpoints, smaller
  // aggregate working memory — plus a one-time failover cost.
  const int live_nodes = std::max(1, config_.nodes_used - qf.failed_nodes);
  const double work_mem = config_.WorkMemBytes() * qf.work_mem_multiplier;
  const double eff_nodes = std::max(1.0, live_nodes * (1.0 - skew));
  // I/O parallelism: data spans all disks of the machine.
  const double eff_disks = std::max(1, config_.total_nodes);
  const double net_bw =
      config_.net_mb_per_s * 1024.0 * 1024.0 * live_nodes;
  const double retransmit_factor =
      faulted ? std::max(1.0, faults->plan().engine.retransmit_cost_factor)
              : 1.0;

  QueryMetrics m;
  double elapsed = config_.startup_seconds + qf.repartition_seconds;
  double peak_mem = 0.0;

  // Profiling lanes for this query: operators on `tid0`, the cpu/io/net
  // resource breakdown on the three tracks after it. Spans are placed at
  // the query's position on the recorder's wall-clock timeline, but extend
  // in simulated time — so the trace shows the simulated critical path
  // "as if" it started now.
  const uint64_t base_us = trace != nullptr ? trace->NowMicros() : 0;
  const uint32_t tid0 = trace != nullptr ? trace->AllocateTrackIds(4) : 0;
  const auto emit = [&](const char* name, uint32_t lane, double start_s,
                        double dur_s,
                        std::vector<std::pair<std::string, std::string>>
                            args = {}) {
    obs::TraceEvent e;
    e.name = name;
    e.category = "simulator";
    e.pid = obs::TraceRecorder::kSimulatorPid;
    e.tid = tid0 + lane;
    e.ts_us = base_us + static_cast<uint64_t>(start_s * 1e6);
    e.dur_us = static_cast<uint64_t>(std::max(dur_s, 0.0) * 1e6);
    e.args = std::move(args);
    trace->Add(std::move(e));
  };
  if (trace != nullptr && config_.startup_seconds > 0.0) {
    emit("startup", 0, 0.0, config_.startup_seconds);
  }
  if (trace != nullptr && qf.repartition_seconds > 0.0) {
    std::vector<std::pair<std::string, std::string>> args;
    args.emplace_back("failed_nodes",
                      obs::JsonNumber(static_cast<uint64_t>(qf.failed_nodes)));
    emit("fault:node_failover", 0, config_.startup_seconds,
         qf.repartition_seconds, std::move(args));
  }

  size_t op_index = 0;
  plan.Visit([&](const optimizer::PhysicalNode& n) {
    const OpCosts c = CostOf(n, live_nodes, work_mem);
    fault::FaultInjector::OpFaults of;
    if (faulted) of = faults->SampleOp(qf, op_index, c.net_messages);
    ++op_index;
    // Lost messages are retransmitted: the payload crosses the wire again
    // and each loss costs retransmit_factor sent-message equivalents
    // (timeout + resend). Both land in the observable message counters.
    const double extra_messages =
        c.net_messages * of.message_loss * retransmit_factor;
    const double extra_bytes = c.net_bytes * of.message_loss;
    const double net_messages = c.net_messages + extra_messages;
    const double net_bytes = c.net_bytes + extra_bytes;
    const double cpu_t = c.cpu_seconds * qf.cpu_multiplier / eff_nodes;
    const double io_t = c.io_pages * of.io_multiplier *
                        config_.disk_page_ms * 1e-3 / eff_disks;
    const double net_t = net_bytes / net_bw +
                         net_messages * config_.msg_overhead_us * kUs /
                             live_nodes;
    const double op_t = std::max({cpu_t, io_t, net_t});
    if (trace != nullptr) {
      std::vector<std::pair<std::string, std::string>> args;
      args.emplace_back("cpu_s", obs::JsonNumber(cpu_t));
      args.emplace_back("io_s", obs::JsonNumber(io_t));
      args.emplace_back("net_s", obs::JsonNumber(net_t));
      args.emplace_back("rows", obs::JsonNumber(n.true_rows));
      if (!n.table.empty()) {
        args.emplace_back("table", obs::JsonString(n.table));
      }
      if (of.io_multiplier > 1.0) {
        args.emplace_back("fault_io_stall", obs::JsonNumber(of.io_multiplier));
      }
      if (extra_messages > 0.0) {
        args.emplace_back("fault_retransmits", obs::JsonNumber(extra_messages));
      }
      emit(optimizer::PhysOpName(n.op), 0, elapsed, op_t, std::move(args));
      if (cpu_t > 0.0) emit("cpu", 1, elapsed, cpu_t);
      if (io_t > 0.0) emit("io", 2, elapsed, io_t);
      if (net_t > 0.0) emit("net", 3, elapsed, net_t);
    }
    elapsed += op_t;
    m.cpu_seconds += c.cpu_seconds;
    m.disk_ios += c.io_pages;
    m.message_bytes += net_bytes;
    m.message_count += net_messages;
    peak_mem = std::max(peak_mem, c.working_bytes);
  });
  if (trace != nullptr) {
    std::vector<std::pair<std::string, std::string>> args;
    args.emplace_back("query_hash", obs::JsonNumber(plan.query_hash));
    args.emplace_back("elapsed_s_prenoise", obs::JsonNumber(elapsed));
    args.emplace_back("noise_factor", obs::JsonNumber(noise));
    obs::TraceEvent e;
    e.name = "query";
    e.category = "simulator";
    e.pid = obs::TraceRecorder::kSimulatorPid;
    e.tid = tid0;
    e.ts_us = base_us;
    e.dur_us = static_cast<uint64_t>(elapsed * 1e6);
    e.args = std::move(args);
    trace->Add(std::move(e));
  }

  m.elapsed_seconds = elapsed * noise;
  m.records_accessed = plan.TrueRecordsAccessed();
  m.records_used = plan.TrueRecordsUsed();
  m.peak_memory_bytes = peak_mem;
  // Round the counters the way a real instrumentation layer reports them.
  m.disk_ios = std::floor(m.disk_ios);
  m.message_count = std::floor(m.message_count);
  m.message_bytes = std::floor(m.message_bytes);
  m.records_accessed = std::floor(m.records_accessed);
  m.records_used = std::floor(m.records_used);
  return m;
}

}  // namespace qpp::engine
