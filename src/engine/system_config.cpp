#include "engine/system_config.h"

#include "common/check.h"
#include "common/rng.h"
#include "common/str_util.h"

namespace qpp::engine {

double SystemConfig::CacheBytes() const {
  return nodes_used * mem_per_node_mb * 1024.0 * 1024.0 *
         buffer_pool_fraction;
}

double SystemConfig::WorkMemBytes() const {
  return mem_per_node_mb * 1024.0 * 1024.0 * work_mem_fraction;
}

bool SystemConfig::TableCached(double bytes) const {
  return bytes <= cache_share * CacheBytes();
}

uint64_t SystemConfig::Fingerprint() const {
  uint64_t h = HashString64(name);
  h = SplitMix64(h ^ static_cast<uint64_t>(total_nodes));
  h = SplitMix64(h ^ static_cast<uint64_t>(nodes_used));
  h = SplitMix64(h ^ static_cast<uint64_t>(mem_per_node_mb));
  h = SplitMix64(h ^ static_cast<uint64_t>(os_version));
  return h;
}

SystemConfig SystemConfig::Neoview4() {
  SystemConfig c;
  c.name = "neoview4";
  c.total_nodes = 4;
  c.nodes_used = 4;
  c.mem_per_node_mb = 1024.0;
  return c;
}

SystemConfig SystemConfig::Neoview32(int nodes_used) {
  QPP_CHECK(nodes_used >= 1 && nodes_used <= 32);
  SystemConfig c;
  c.name = StrFormat("neoview32/%d", nodes_used);
  c.total_nodes = 32;
  c.nodes_used = nodes_used;
  // The production machine allots less memory per node; with only 4 of 32
  // nodes in use the big TPC-DS tables no longer fit in the pool.
  c.mem_per_node_mb = 256.0;
  // Production-grade disks and interconnect; operators get a larger share
  // of the (smaller) node memory for working space, so spills are rare —
  // the configuration's I/O comes from buffer-pool misses, as the paper
  // describes for the 4-of-32 case.
  c.disk_page_ms = 0.06;
  c.net_mb_per_s = 120.0;
  c.work_mem_fraction = 0.15;
  return c;
}

}  // namespace qpp::engine
