// Simulated parallel system configurations.
//
// Two families mirror the paper's hardware:
//  * Neoview4()      — the 4-processor research system used for most
//                      training/testing. Enough memory that TPC-DS SF-1
//                      tables are cached (most queries do zero disk I/O).
//  * Neoview32(n)    — the 32-node production system configured to run
//                      queries on n ∈ {4, 8, 16, 32} processors. Data stays
//                      partitioned across all 32 disks regardless of n, and
//                      memory scales with n — the 4-of-32 configuration is
//                      memory-starved and incurs real disk I/O, as the paper
//                      observed (Fig. 16's Null columns).
//
// `os_version` reproduces the paper's anecdote that an OS upgrade shifted
// the performance of later bowling-ball runs: version 2 perturbs the cost
// constants by ~15-25%.
#pragma once

#include <cstdint>
#include <string>

namespace qpp::engine {

struct SystemConfig {
  std::string name = "neoview4";
  int total_nodes = 4;    ///< nodes in the machine == disks data spans
  int nodes_used = 4;     ///< processors executing each query
  double mem_per_node_mb = 1024.0;
  int os_version = 1;

  // --- physical cost constants ------------------------------------------
  double cpu_tuple_us = 0.8;     ///< per-row baseline CPU
  double cpu_pred_us = 0.15;     ///< per-row per-predicate CPU
  double nlj_pair_ns = 12.0;     ///< nested-loop join per row pair
  double hash_build_us = 1.2;
  double hash_probe_us = 0.6;
  double sort_cmp_us = 0.25;     ///< per row * log2(rows)
  double agg_row_us = 0.7;
  double page_kb = 32.0;
  double disk_page_ms = 0.08;    ///< per page, one disk
  double net_mb_per_s = 80.0;    ///< per-node network bandwidth
  double msg_size_kb = 8.0;
  double msg_overhead_us = 40.0;
  double buffer_pool_fraction = 0.5;  ///< memory share caching base tables
  double cache_share = 0.3;     ///< max pool fraction one table may occupy
  double work_mem_fraction = 0.05;    ///< per-node operator working memory
  double startup_seconds = 0.05;      ///< compile/dispatch floor
  double noise_sigma = 0.03;          ///< lognormal run-to-run noise

  /// Bytes of buffer pool available for caching base tables.
  double CacheBytes() const;
  /// Per-node operator working memory in bytes.
  double WorkMemBytes() const;
  /// True if a table of `bytes` is resident in the buffer pool.
  bool TableCached(double bytes) const;
  /// Stable hash of the configuration (seeds per-query noise).
  uint64_t Fingerprint() const;

  static SystemConfig Neoview4();
  static SystemConfig Neoview32(int nodes_used);
};

}  // namespace qpp::engine
