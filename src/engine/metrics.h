// The six performance metrics the paper predicts, plus auxiliary detail.
//
// Paper order (Section VI-D): elapsed time, records accessed, records used,
// disk I/Os, message count, message bytes. ToVector()/FromVector() use that
// order everywhere (feature matrices, models, reports).
#pragma once

#include <array>
#include <string>

#include "linalg/matrix.h"

namespace qpp::engine {

struct QueryMetrics {
  double elapsed_seconds = 0.0;
  double records_accessed = 0.0;  ///< file-scan input cardinality sum
  double records_used = 0.0;      ///< file-scan output cardinality sum
  double disk_ios = 0.0;          ///< pages read/written
  double message_count = 0.0;
  double message_bytes = 0.0;

  // Auxiliary detail, not part of the paper's 6-metric vector.
  double cpu_seconds = 0.0;
  double peak_memory_bytes = 0.0;

  static constexpr size_t kNumMetrics = 6;

  /// Fixed paper-order vector of the six predicted metrics.
  linalg::Vector ToVector() const;

  /// Inverse of ToVector() (auxiliary fields zeroed).
  static QueryMetrics FromVector(const linalg::Vector& v);

  /// FromVector from a raw pointer to kNumMetrics doubles — the
  /// allocation-free form used by the batch prediction hot path.
  static QueryMetrics FromArray(const double* v);

  /// Metric names in ToVector() order.
  static std::array<std::string, kNumMetrics> MetricNames();

  /// One-line human-readable summary.
  std::string ToString() const;
};

}  // namespace qpp::engine
