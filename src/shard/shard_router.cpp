#include "shard/shard_router.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/str_util.h"
#include "obs/request_context.h"
#include "serve/cost_fallback.h"

namespace qpp::shard {

namespace {

/// Same FNV-1a-over-bit-patterns the service cache uses, but returning the
/// full 64-bit value for replica selection under hash routing.
uint64_t FeatureBits(const linalg::Vector& v) {
  return static_cast<uint64_t>(
      serve::PredictionService::FeatureHash{}(v));
}

obs::TraceEvent InstantEvent(obs::TraceRecorder* trace, const char* name) {
  obs::TraceEvent e;
  e.phase = 'i';
  e.name = name;
  e.category = "shard";
  e.pid = obs::TraceRecorder::kServicePid;
  e.tid = trace->CurrentThreadTid();
  e.ts_us = trace->NowMicros();
  // Submit installs the request's context before any routing work, so
  // escalation/exhausted instants correlate with the request's spans.
  const obs::RequestContext& ctx = obs::CurrentRequestContext();
  if (ctx.valid()) {
    e.args.emplace_back("trace_id",
                        "\"" + obs::TraceIdHex(ctx.trace_id) + "\"");
  }
  return e;
}

}  // namespace

const char* RoutingPolicyName(RoutingPolicy p) {
  switch (p) {
    case RoutingPolicy::kClassifier: return "classifier";
    case RoutingPolicy::kOptimizerCost: return "optimizer-cost";
    case RoutingPolicy::kHash: return "hash";
  }
  return "?";
}

ShardRouterConfig MakePerPoolConfig(serve::ServiceConfig base) {
  ShardRouterConfig config;
  for (const workload::QueryType type :
       {workload::QueryType::kFeather, workload::QueryType::kGolfBall,
        workload::QueryType::kBowlingBall,
        workload::QueryType::kWreckingBall}) {
    ShardSpec spec;
    spec.name = workload::QueryTypeName(type);
    spec.pools = {type};
    spec.service = base;
    config.shards.push_back(std::move(spec));
  }
  ShardSpec catch_all;
  catch_all.name = "one-model";
  catch_all.service = base;
  config.shards.push_back(std::move(catch_all));
  return config;
}

std::string ShardStatsSnapshot::ToString() const {
  std::string out = StrFormat(
      "router: classified %llu | route-cache hits %llu | escalations "
      "dead %llu open %llu overloaded %llu | exhausted-fallbacks %llu\n",
      static_cast<unsigned long long>(classified),
      static_cast<unsigned long long>(route_cache_hits),
      static_cast<unsigned long long>(escalations_dead),
      static_cast<unsigned long long>(escalations_open),
      static_cast<unsigned long long>(escalations_overloaded),
      static_cast<unsigned long long>(fallback_exhausted));
  for (const PerShard& s : shards) {
    out += StrFormat(
        "  %-14s gen %llu  routed %llu  absorbed %llu  cache %llu  "
        "model %llu  fallbacks %llu\n",
        (s.name + (s.catch_all ? "*" : "")).c_str(),
        static_cast<unsigned long long>(s.generation),
        static_cast<unsigned long long>(s.routed),
        static_cast<unsigned long long>(s.absorbed),
        static_cast<unsigned long long>(s.service.cache_hits),
        static_cast<unsigned long long>(s.service.model_predictions),
        static_cast<unsigned long long>(s.service.fallbacks()));
  }
  return out;
}

ShardRouter::ShardRouter(ShardRouterConfig config,
                         serve::CostCalibration calibration)
    : policy_(config.policy),
      open_probe_every_(std::max<size_t>(1, config.open_probe_every)),
      calibration_(calibration),
      trace_(config.trace),
      faults_(config.faults),
      route_cache_(config.route_cache_capacity) {
  QPP_CHECK_MSG(!config.shards.empty(), "router needs at least one shard");
  classified_ = metrics_.GetCounter("qpp_shard_classified_total");
  route_cache_hits_ = metrics_.GetCounter("qpp_shard_route_cache_hits_total");
  fallback_exhausted_ =
      metrics_.GetCounter("qpp_shard_fallback_exhausted_total");
  for (ShardSpec& spec : config.shards) {
    auto shard = std::make_unique<Shard>();
    shard->spec = std::move(spec);
    for (const auto& other : shards_) {
      QPP_CHECK_MSG(other->spec.name != shard->spec.name,
                    "duplicate shard name: " << shard->spec.name);
    }
    shard->registry = std::make_unique<serve::ModelRegistry>();
    serve::ServiceConfig service_config = shard->spec.service;
    service_config.shard_label = shard->spec.name;
    if (service_config.trace == nullptr) service_config.trace = trace_;
    if (service_config.faults == nullptr) service_config.faults = faults_;
    if (service_config.shadow == nullptr) service_config.shadow = config.shadow;
    shard->service = std::make_unique<serve::PredictionService>(
        shard->registry.get(), service_config, calibration_);
    const obs::Labels labels = {{"shard", shard->spec.name}};
    shard->routed = metrics_.GetCounter("qpp_shard_requests_total", labels);
    shard->absorbed = metrics_.GetCounter("qpp_shard_absorbed_total", labels);
    shard->escalated_dead = metrics_.GetCounter(
        "qpp_shard_escalations_total",
        {{"shard", shard->spec.name}, {"reason", "dead"}});
    shard->escalated_open = metrics_.GetCounter(
        "qpp_shard_escalations_total",
        {{"shard", shard->spec.name}, {"reason", "circuit-open"}});
    shard->escalated_overloaded = metrics_.GetCounter(
        "qpp_shard_escalations_total",
        {{"shard", shard->spec.name}, {"reason", "overloaded"}});
    if (shard->spec.pools.empty()) {
      QPP_CHECK_MSG(catch_all_ == nullptr,
                    "more than one catch-all shard configured");
      catch_all_ = shard.get();
    } else {
      experts_.push_back(shard.get());
    }
    shards_.push_back(std::move(shard));
  }
  QPP_CHECK_MSG(catch_all_ != nullptr,
                "router needs a catch-all shard (one spec with empty pools)");
  if (faults_ != nullptr && faults_->plan().serve.shard_targeted() &&
      registry(faults_->plan().serve.target_shard) != nullptr) {
    // Default kill semantics: the targeted shard loses its model. The
    // harness may overwrite this hook with its own.
    serve::ModelRegistry* target =
        registry(faults_->plan().serve.target_shard);
    faults_->set_shard_kill_hook([target] { target->Unpublish(); });
  }
}

ShardRouter::~ShardRouter() { Shutdown(); }

void ShardRouter::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    for (auto& shard : shards_) shard->service->Shutdown();
  });
}

serve::ModelRegistry* ShardRouter::registry(const std::string& shard_name) {
  for (auto& shard : shards_) {
    if (shard->spec.name == shard_name) return shard->registry.get();
  }
  return nullptr;
}

serve::PredictionService* ShardRouter::service(
    const std::string& shard_name) {
  for (auto& shard : shards_) {
    if (shard->spec.name == shard_name) return shard->service.get();
  }
  return nullptr;
}

const std::string& ShardRouter::catch_all_name() const {
  return catch_all_->spec.name;
}

ShardRouter::Shard* ShardRouter::ExpertFor(workload::QueryType pool,
                                           const linalg::Vector& features) {
  Shard* first = nullptr;
  size_t replicas = 0;
  for (Shard* expert : experts_) {
    for (const workload::QueryType p : expert->spec.pools) {
      if (p != pool) continue;
      if (first == nullptr) first = expert;
      ++replicas;
      break;
    }
  }
  if (replicas <= 1) return first;  // may be null: no expert for this pool
  // Replicated pool: pick by feature bits, a pure function of the request,
  // so replica choice never depends on arrival order or thread count.
  size_t pick = FeatureBits(features) % replicas;
  for (Shard* expert : experts_) {
    for (const workload::QueryType p : expert->spec.pools) {
      if (p != pool) continue;
      if (pick == 0) return expert;
      --pick;
      break;
    }
  }
  return first;
}

ShardRouter::Shard* ShardRouter::Route(const serve::ServeRequest& request) {
  switch (policy_) {
    case RoutingPolicy::kHash: {
      if (experts_.empty()) return catch_all_;
      return experts_[FeatureBits(request.features) % experts_.size()];
    }
    case RoutingPolicy::kOptimizerCost: {
      if (request.optimizer_cost < 0.0) return catch_all_;
      const workload::QueryType pool = workload::ClassifyElapsed(
          calibration_.EstimateSeconds(request.optimizer_cost));
      Shard* expert = ExpertFor(pool, request.features);
      return expert != nullptr ? expert : catch_all_;
    }
    case RoutingPolicy::kClassifier:
      break;
  }
  const serve::ModelRegistry::Snapshot snap = catch_all_->registry->Acquire();
  if (!snap.valid()) {
    // No classifier: the one-model shard owns the request (and will answer
    // with its own labeled no-model fallback).
    return catch_all_;
  }
  RouteVerdict verdict;
  bool cached = false;
  if (route_cache_.capacity() > 0) {
    std::lock_guard<std::mutex> lock(route_cache_mu_);
    cached = route_cache_.Get(request.features, &verdict) &&
             verdict.classifier_generation == snap.generation;
  }
  if (cached) {
    route_cache_hits_->Inc();
  } else {
    {
      obs::Span span(trace_, "classify", "shard");
      verdict.pool = snap.model->Predict(request.features).predicted_type;
    }
    verdict.classifier_generation = snap.generation;
    classified_->Inc();
    if (route_cache_.capacity() > 0) {
      std::lock_guard<std::mutex> lock(route_cache_mu_);
      route_cache_.Put(request.features, verdict);
    }
  }
  Shard* expert = ExpertFor(verdict.pool, request.features);
  return expert != nullptr ? expert : catch_all_;
}

void ShardRouter::TraceEscalation(const Shard& from, const char* reason) {
  if (trace_ == nullptr) return;
  obs::TraceEvent e = InstantEvent(trace_, "escalate");
  e.args.emplace_back("shard",
                      std::string("\"") + from.spec.name + "\"");
  e.args.emplace_back("reason", std::string("\"") + reason + "\"");
  trace_->Add(std::move(e));
}

std::future<serve::ServeResponse> ShardRouter::InlineFallback(
    const serve::ServeRequest& request) {
  fallback_exhausted_->Inc();
  if (trace_ != nullptr) {
    trace_->Add(InstantEvent(trace_, "exhausted"));
  }
  std::promise<serve::ServeResponse> promise;
  std::future<serve::ServeResponse> future = promise.get_future();
  serve::ServeResponse response;
  response.prediction = serve::FallbackPrediction(
      calibration_, request.optimizer_cost, /*anomalous=*/false);
  response.source = serve::ResponseSource::kOptimizerFallback;
  response.degraded_reason = "shards-exhausted";
  response.trace_id = request.ctx.trace_id;
  promise.set_value(std::move(response));
  return future;
}

std::future<serve::ServeResponse> ShardRouter::Submit(
    serve::ServeRequest request) {
  // Routing (classify span, escalations, shard-kill faults) runs under the
  // request's correlation scope so every event it emits carries the id.
  obs::ScopedRequestContext scope(request.ctx);
  Shard* target = Route(request);
  if (faults_ != nullptr && faults_->serve_enabled() &&
      faults_->NextShardKill(target->spec.name)) {
    // Fires before the health check below so the Nth routed request is
    // also the first one the dead shard escalates.
    faults_->FireShardKill();
  }
  std::future<serve::ServeResponse> future;
  if (target != catch_all_) {
    const char* escalation = nullptr;
    if (!target->registry->has_model()) {
      escalation = "dead";
      target->escalated_dead->Inc();
    } else if (target->spec.service.breaker.enabled &&
               target->service->breaker().state() ==
                   serve::CircuitBreaker::State::kOpen &&
               target->open_diversions.fetch_add(
                   1, std::memory_order_relaxed) %
                       open_probe_every_ !=
                   open_probe_every_ - 1) {
      // Divert while open, but let every Nth request through as a probe so
      // the shard's breaker can walk its half-open recovery path.
      escalation = "circuit-open";
      target->escalated_open->Inc();
    } else if (target->service->TrySubmit(request, &future)) {
      target->routed->Inc();
      return future;
    } else {
      escalation = "overloaded";
      target->escalated_overloaded->Inc();
    }
    TraceEscalation(*target, escalation);
    catch_all_->absorbed->Inc();
  } else {
    catch_all_->routed->Inc();
  }
  if (catch_all_->service->TrySubmit(request, &future)) return future;
  // Bottom of the ladder: even the one-model shard refused (queue full or
  // reject storm) — answer inline with the calibrated optimizer estimate.
  return InlineFallback(request);
}

ShardStatsSnapshot ShardRouter::stats() const {
  ShardStatsSnapshot out;
  out.classified = classified_->value();
  out.route_cache_hits = route_cache_hits_->value();
  out.fallback_exhausted = fallback_exhausted_->value();
  for (const auto& shard : shards_) {
    ShardStatsSnapshot::PerShard s;
    s.name = shard->spec.name;
    s.catch_all = shard.get() == catch_all_;
    s.routed = shard->routed->value();
    s.absorbed = shard->absorbed->value();
    s.generation = shard->registry->generation();
    s.service = shard->service->stats();
    out.shards.push_back(std::move(s));
    out.escalations_dead += shard->escalated_dead->value();
    out.escalations_open += shard->escalated_open->value();
    out.escalations_overloaded += shard->escalated_overloaded->value();
  }
  return out;
}

size_t PublishTwoStep(const core::TwoStepPredictor& two_step,
                      ShardRouter* router) {
  QPP_CHECK(router != nullptr && two_step.trained());
  size_t published = 0;
  serve::ModelRegistry* catch_all = router->registry(router->catch_all_name());
  QPP_CHECK(catch_all != nullptr);
  catch_all->Publish(two_step.base());
  ++published;
  for (const workload::QueryType type :
       {workload::QueryType::kFeather, workload::QueryType::kGolfBall,
        workload::QueryType::kBowlingBall,
        workload::QueryType::kWreckingBall}) {
    const core::Predictor* expert = two_step.CategoryModel(type);
    if (expert == nullptr) continue;
    const auto model = std::make_shared<const core::Predictor>(*expert);
    for (size_t i = 0; i < router->num_shards(); ++i) {
      const ShardSpec& spec = router->shard_spec(i);
      if (std::find(spec.pools.begin(), spec.pools.end(), type) ==
          spec.pools.end()) {
        continue;
      }
      router->registry(spec.name)->Publish(model);
      ++published;
    }
  }
  return published;
}

}  // namespace qpp::shard
