// Sharded per-pool expert serving: the paper's two-step design (classify a
// query as feather / golf ball / bowling ball, then predict with a
// pool-specific expert model — Experiment 3, Fig. 14) lifted from the
// offline core::TwoStepPredictor into the serving layer, in the shape of a
// mixture-of-experts / model-selection router (Jacobs et al.; Crankshaw et
// al., NSDI'17).
//
//   client ──Submit()──▶ route (step-1 classify, cached) ──▶ expert shard
//                                                              │ dead/open/
//                                                              │ overloaded?
//                                                              ▼
//                                                     one-model shard
//                                                              │ refused?
//                                                              ▼
//                                                optimizer-cost fallback
//
// Each shard is a full serve::PredictionService with its own ModelRegistry
// generation, bounded queue, micro-batcher, circuit breaker, and labeled
// stats; shards hot-swap independently (publish to registry("feather")
// and only feather traffic moves to the new generation). Every escalation
// down the ladder is counted (qpp_shard_escalations_total{shard,reason})
// and traced (category "shard").
//
// Determinism contract: for a fixed set of published models, every routed
// response's prediction is bit-identical to the equivalent offline
// TwoStepPredictor::Predict — regardless of shard count, worker threads,
// client threads, batching, or the routing cache. Routing is a pure
// function of (request, published models): the step-1 classifier is the
// catch-all shard's model, the cache only memoizes its verdicts (keyed by
// exact feature bits + classifier generation), and replica selection under
// hash routing depends only on the feature bits. The only deliberate
// deviation is `Prediction::predicted_type`, which carries the answering
// expert's own neighbor vote rather than the step-1 vote; the step-1 pool
// is what `ServeResponse::shard` reports. See docs/SHARDING.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/two_step.h"
#include "fault/fault_injector.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "serve/lru_cache.h"
#include "serve/model_registry.h"
#include "serve/prediction_service.h"
#include "workload/pools.h"

namespace qpp::shard {

enum class RoutingPolicy {
  /// Step-1 classify with the catch-all shard's model (neighbor vote on
  /// elapsed time), route to that pool's expert. The default; the only
  /// policy that reproduces TwoStepPredictor bit-for-bit.
  kClassifier,
  /// Classify the calibrated optimizer-cost estimate instead (no model
  /// call on the routing path; the pre-paper baseline as a router).
  kOptimizerCost,
  /// Feature-hash across the expert shards, ignoring pools: for replicated
  /// same-pool deployments where every expert serves the same model.
  kHash,
};

const char* RoutingPolicyName(RoutingPolicy p);

struct ShardSpec {
  std::string name;
  /// Pools this expert serves; empty marks the catch-all one-model shard
  /// (exactly one per router).
  std::vector<workload::QueryType> pools;
  /// Per-shard queue/batch/cache/breaker settings. `trace`, `faults`, and
  /// `shard_label` are stamped by the router; leave them unset.
  serve::ServiceConfig service;
};

struct ShardRouterConfig {
  /// Must contain exactly one catch-all spec (empty `pools`).
  std::vector<ShardSpec> shards;
  RoutingPolicy policy = RoutingPolicy::kClassifier;
  /// Step-1 verdict memo (exact feature match, classifier-generation
  /// tagged): the classifier runs once per distinct plan per generation,
  /// not once per request. 0 disables.
  size_t route_cache_capacity = 4096;
  /// While an expert's breaker is open the router diverts its traffic, so
  /// the breaker would never see the probes it needs to recover; every
  /// Nth diverted request is sent through anyway as a recovery probe.
  size_t open_probe_every = 32;
  /// Optional sinks, shared by all shards; must outlive the router.
  obs::TraceRecorder* trace = nullptr;
  fault::FaultInjector* faults = nullptr;
  /// Shadow lane shared by every shard service (serve/shadow_observer.h):
  /// a per-shard spec's own `service.shadow` wins over this default.
  serve::ShadowObserver* shadow = nullptr;
};

/// The paper's pool layout: one expert per Fig. 2 category (named by
/// workload::QueryTypeName) plus the "one-model" catch-all, all using
/// `base` as their service config.
ShardRouterConfig MakePerPoolConfig(serve::ServiceConfig base = {});

struct ShardStatsSnapshot {
  struct PerShard {
    std::string name;
    bool catch_all = false;
    uint64_t routed = 0;    ///< requests dispatched here as first choice
    uint64_t absorbed = 0;  ///< requests escalated into this shard
    uint64_t generation = 0;
    serve::ServiceStatsSnapshot service;
  };
  std::vector<PerShard> shards;
  uint64_t classified = 0;        ///< step-1 classifier model calls
  uint64_t route_cache_hits = 0;
  uint64_t escalations_dead = 0;        ///< expert had no model published
  uint64_t escalations_open = 0;        ///< expert breaker open
  uint64_t escalations_overloaded = 0;  ///< expert queue refused
  uint64_t fallback_exhausted = 0;  ///< catch-all refused too: inline cost

  uint64_t escalations() const {
    return escalations_dead + escalations_open + escalations_overloaded;
  }
  std::string ToString() const;
};

class ShardRouter {
 public:
  /// The calibration backs both the optimizer-cost routing policy and the
  /// final fallback rung. If `config.faults` carries a shard-targeted
  /// plan naming one of our shards, a default kill hook (unpublish that
  /// shard's registry) is installed unless the harness set its own.
  explicit ShardRouter(ShardRouterConfig config,
                       serve::CostCalibration calibration = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Routes and enqueues one request; the future resolves when the
  /// answering shard (or the inline fallback) responds. Never blocks on a
  /// full expert queue — that is an escalation, not backpressure — and
  /// never returns a broken future.
  std::future<serve::ServeResponse> Submit(serve::ServeRequest request);

  /// Stops every shard (each drains its queue first). Idempotent.
  void Shutdown();

  /// Per-shard hot-swap surface: publish/unpublish through this. Null for
  /// unknown names.
  serve::ModelRegistry* registry(const std::string& shard_name);
  serve::PredictionService* service(const std::string& shard_name);

  size_t num_shards() const { return shards_.size(); }
  /// Shard specs in configuration order (publishing helpers walk these to
  /// find every shard serving a pool).
  const ShardSpec& shard_spec(size_t index) const {
    return shards_[index]->spec;
  }
  const std::string& catch_all_name() const;
  ShardStatsSnapshot stats() const;
  /// Router-level qpp_shard_* metrics (per-shard serve metrics live in
  /// each shard's own service registry).
  obs::MetricsRegistry* metrics() { return &metrics_; }

 private:
  struct Shard {
    ShardSpec spec;
    // Registry declared before the service: workers acquire snapshots
    // until Shutdown, so destruction must tear the service down first.
    std::unique_ptr<serve::ModelRegistry> registry;
    std::unique_ptr<serve::PredictionService> service;
    obs::Counter* routed = nullptr;
    obs::Counter* absorbed = nullptr;
    obs::Counter* escalated_dead = nullptr;
    obs::Counter* escalated_open = nullptr;
    obs::Counter* escalated_overloaded = nullptr;
    std::atomic<uint64_t> open_diversions{0};
  };

  struct RouteVerdict {
    workload::QueryType pool = workload::QueryType::kFeather;
    uint64_t classifier_generation = 0;
  };

  Shard* Route(const serve::ServeRequest& request);
  Shard* ExpertFor(workload::QueryType pool, const linalg::Vector& features);
  void TraceEscalation(const Shard& from, const char* reason);
  std::future<serve::ServeResponse> InlineFallback(
      const serve::ServeRequest& request);

  const RoutingPolicy policy_;
  const size_t open_probe_every_;
  const serve::CostCalibration calibration_;
  obs::TraceRecorder* const trace_;
  fault::FaultInjector* const faults_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Shard*> experts_;  ///< shards_ minus the catch-all
  Shard* catch_all_ = nullptr;
  obs::MetricsRegistry metrics_;
  obs::Counter* classified_ = nullptr;
  obs::Counter* route_cache_hits_ = nullptr;
  obs::Counter* fallback_exhausted_ = nullptr;
  std::mutex route_cache_mu_;
  serve::LruCache<linalg::Vector, RouteVerdict,
                  serve::PredictionService::FeatureHash>
      route_cache_;
  std::once_flag shutdown_once_;
};

/// Publishes a trained TwoStepPredictor across the router's shards: the
/// base model into the catch-all (where it doubles as the step-1
/// classifier) and each per-category expert into every shard listing that
/// pool. Pools whose category fell back to the base model publish nothing
/// — their shards stay dead and the router escalates to the catch-all,
/// which is exactly TwoStepPredictor's own fallback. Returns the number of
/// publishes performed.
size_t PublishTwoStep(const core::TwoStepPredictor& two_step,
                      ShardRouter* router);

}  // namespace qpp::shard
