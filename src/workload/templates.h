// Query template machinery.
//
// The paper generates thousands of queries by instantiating TPC-DS query
// templates plus hand-written "problem query" templates with random
// constants, then pools them by measured runtime. A QueryTemplate here is a
// named function from a seeded Rng to SQL text; the same template can
// produce a millisecond feather or an hours-long bowling ball depending on
// which constants are drawn — reproducing the paper's observation that the
// SQL-text shape alone cannot predict performance.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace qpp::workload {

struct QueryTemplate {
  std::string name;
  /// Template family: "tpcds" (benchmark-shaped), "problem" (extended
  /// long-running), "retailbank" (customer schema).
  std::string family;
  /// Draws constants and renders SQL.
  std::function<std::string(Rng&)> instantiate;
};

// --- shared constant-drawing helpers ------------------------------------

/// TPC-DS sales date-sk domain (5 years).
constexpr int64_t kSalesDateLo = 2450815;
constexpr int64_t kSalesDateHi = 2452654;

/// Draws a [lo, lo+width] date-sk window inside the sales domain.
/// Width is drawn log-uniformly in [min_days, max_days] so that narrow and
/// wide windows are both well represented.
struct DateWindow {
  int64_t lo;
  int64_t hi;
};
DateWindow DrawDateWindow(Rng& rng, int64_t min_days, int64_t max_days);

/// Log-uniform integer in [lo, hi].
int64_t DrawLogUniform(Rng& rng, int64_t lo, int64_t hi);

}  // namespace qpp::workload
