// TPC-DS-shaped query templates (mostly feathers at SF 1, a few golf balls
// when wide parameter windows are drawn).
#pragma once

#include <vector>

#include "workload/templates.h"

namespace qpp::workload {

/// The benchmark-shaped template set over the tpcds catalog.
std::vector<QueryTemplate> TpcdsTemplates();

}  // namespace qpp::workload
