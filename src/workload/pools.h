// Query pools: run candidate queries on a calibration configuration and
// categorize them by elapsed time, exactly as the paper's Fig. 2 does.
//
// Boundaries follow the paper:
//   feather       elapsed < 3 minutes
//   golf ball     3 minutes <= elapsed < 30 minutes
//   bowling ball  30 minutes <= elapsed <= 2 hours
//   wrecking ball longer than 2 hours (excluded from training/test pools)
//
// The paper stresses that these boundaries are arbitrary conveniences, not
// something the approach depends on; we keep them for report parity.
#pragma once

#include <string>
#include <vector>

#include "engine/metrics.h"
#include "engine/simulator.h"
#include "optimizer/optimizer.h"
#include "workload/generator.h"

namespace qpp::workload {

enum class QueryType { kFeather, kGolfBall, kBowlingBall, kWreckingBall };

const char* QueryTypeName(QueryType t);

/// Elapsed-time classification per the Fig. 2 boundaries.
QueryType ClassifyElapsed(double seconds);

/// A fully-prepared query: SQL, plan, measured (simulated) metrics, type.
struct PooledQuery {
  GeneratedQuery query;
  optimizer::PhysicalPlan plan;
  engine::QueryMetrics metrics;
  QueryType type = QueryType::kFeather;
};

/// Per-category summary in the shape of the paper's Fig. 2 table.
struct PoolSummary {
  QueryType type;
  size_t count = 0;
  double mean_elapsed = 0.0;
  double min_elapsed = 0.0;
  double max_elapsed = 0.0;
};

struct QueryPools {
  std::vector<PooledQuery> queries;  ///< all (incl. wrecking balls)

  std::vector<const PooledQuery*> OfType(QueryType t) const;
  std::vector<PoolSummary> Summaries() const;
  /// Fig. 2-style table rendering.
  std::string ToTable() const;
};

/// Plans and "runs" every generated query; queries that fail to plan (none
/// should, with shipped templates) are skipped with a count reported via
/// `num_failed`.
QueryPools BuildPools(const std::vector<GeneratedQuery>& queries,
                      const optimizer::Optimizer& opt,
                      const engine::ExecutionSimulator& sim,
                      size_t* num_failed = nullptr);

/// Draws a train/test mix by type, paper-style: e.g. Experiment 1 trains on
/// 767 feathers + 230 golf balls + 30 bowling balls and tests on 45/7/9.
/// Returns indices into pools.queries. Deterministic under `seed`; training
/// and test sets are disjoint.
struct TrainTestSplit {
  std::vector<size_t> train;
  std::vector<size_t> test;
};
TrainTestSplit SampleSplit(const QueryPools& pools, size_t train_feathers,
                           size_t train_golf, size_t train_bowling,
                           size_t test_feathers, size_t test_golf,
                           size_t test_bowling, uint64_t seed);

}  // namespace qpp::workload
