#include "workload/tpcds_templates.h"

#include "common/str_util.h"

namespace qpp::workload {

namespace {

const char* PickEducation(Rng& rng) {
  static const char* kEd[] = {"Primary",        "Secondary", "College",
                              "2 yr Degree",    "4 yr Degree",
                              "Advanced Degree", "Unknown"};
  return kEd[rng.UniformInt(0, 6)];
}

const char* PickBuyPotential(Rng& rng) {
  static const char* kBp[] = {"0-500",      "501-1000",  "1001-5000",
                              "5001-10000", ">10000",    "Unknown"};
  return kBp[rng.UniformInt(0, 5)];
}

}  // namespace

std::vector<QueryTemplate> TpcdsTemplates() {
  std::vector<QueryTemplate> out;

  out.push_back({"tpcds_q03_category_month", "tpcds", [](Rng& rng) {
    const int year = static_cast<int>(rng.UniformInt(1998, 2002));
    const int moy = static_cast<int>(rng.UniformInt(1, 12));
    const int cat = static_cast<int>(rng.UniformInt(1, 10));
    return StrFormat(
        "SELECT i_brand_id, i_brand, SUM(ss_ext_sales_price) "
        "FROM store_sales, item, date_dim "
        "WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk "
        "AND d_year = %d AND d_moy = %d AND i_category_id = %d "
        "GROUP BY i_brand_id, i_brand ORDER BY i_brand_id LIMIT 100",
        year, moy, cat);
  }});

  out.push_back({"tpcds_q07_demographics", "tpcds", [](Rng& rng) {
    const char* ed = PickEducation(rng);
    const char* gender = rng.Bernoulli(0.5) ? "M" : "F";
    const int qlo = static_cast<int>(rng.UniformInt(1, 50));
    const int qhi = qlo + static_cast<int>(rng.UniformInt(5, 40));
    return StrFormat(
        "SELECT i_class, AVG(ss_quantity), AVG(ss_list_price), "
        "AVG(ss_sales_price) "
        "FROM store_sales, customer_demographics, item "
        "WHERE ss_cdemo_sk = cd_demo_sk AND ss_item_sk = i_item_sk "
        "AND cd_gender = '%s' AND cd_education_status = '%s' "
        "AND ss_quantity BETWEEN %d AND %d "
        "GROUP BY i_class ORDER BY i_class",
        gender, ed, qlo, qhi);
  }});

  out.push_back({"tpcds_q12_web_window", "tpcds", [](Rng& rng) {
    const DateWindow w = DrawDateWindow(rng, 7, 120);
    const int cat = static_cast<int>(rng.UniformInt(1, 10));
    return StrFormat(
        "SELECT i_item_sk, i_category, SUM(ws_ext_sales_price) "
        "FROM web_sales, item, date_dim "
        "WHERE ws_item_sk = i_item_sk AND ws_sold_date_sk = d_date_sk "
        "AND i_category_id = %d AND d_date_sk BETWEEN %lld AND %lld "
        "GROUP BY i_item_sk, i_category ORDER BY i_item_sk LIMIT 100",
        cat, static_cast<long long>(w.lo), static_cast<long long>(w.hi));
  }});

  out.push_back({"tpcds_q15_catalog_zip", "tpcds", [](Rng& rng) {
    const DateWindow w = DrawDateWindow(rng, 30, 180);
    const double amt = rng.Uniform(400.0, 900.0);
    return StrFormat(
        "SELECT ca_state, SUM(cs_sales_price) "
        "FROM catalog_sales, customer, customer_address, date_dim "
        "WHERE cs_bill_customer_sk = c_customer_sk "
        "AND c_current_addr_sk = ca_address_sk "
        "AND cs_sold_date_sk = d_date_sk "
        "AND d_date_sk BETWEEN %lld AND %lld AND cs_sales_price > %.2f "
        "GROUP BY ca_state ORDER BY ca_state",
        static_cast<long long>(w.lo), static_cast<long long>(w.hi), amt);
  }});

  out.push_back({"tpcds_q19_brand_manager", "tpcds", [](Rng& rng) {
    const int manager = static_cast<int>(rng.UniformInt(1, 100));
    const int year = static_cast<int>(rng.UniformInt(1998, 2002));
    const int moy = static_cast<int>(rng.UniformInt(1, 12));
    return StrFormat(
        "SELECT i_brand_id, i_brand, SUM(ss_ext_sales_price) "
        "FROM store_sales, item, date_dim, customer, customer_address "
        "WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk "
        "AND ss_customer_sk = c_customer_sk "
        "AND c_current_addr_sk = ca_address_sk "
        "AND i_manager_id = %d AND d_year = %d AND d_moy = %d "
        "GROUP BY i_brand_id, i_brand ORDER BY i_brand_id LIMIT 100",
        manager, year, moy);
  }});

  out.push_back({"tpcds_q26_promo", "tpcds", [](Rng& rng) {
    const char* gender = rng.Bernoulli(0.5) ? "M" : "F";
    const char* ms[] = {"S", "M", "D", "W", "U"};
    return StrFormat(
        "SELECT i_item_sk, AVG(cs_quantity), AVG(cs_list_price) "
        "FROM catalog_sales, customer_demographics, item, promotion "
        "WHERE cs_bill_cdemo_sk = cd_demo_sk AND cs_item_sk = i_item_sk "
        "AND cs_promo_sk = p_promo_sk AND cd_gender = '%s' "
        "AND cd_marital_status = '%s' AND p_channel_email = 'N' "
        "GROUP BY i_item_sk ORDER BY i_item_sk LIMIT 100",
        gender, ms[rng.UniformInt(0, 4)]);
  }});

  out.push_back({"tpcds_q42_year_category", "tpcds", [](Rng& rng) {
    const int year = static_cast<int>(rng.UniformInt(1998, 2002));
    const int moy = static_cast<int>(rng.UniformInt(1, 12));
    return StrFormat(
        "SELECT d_year, i_category_id, i_category, SUM(ss_ext_sales_price) "
        "FROM store_sales, item, date_dim "
        "WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk "
        "AND d_year = %d AND d_moy = %d "
        "GROUP BY d_year, i_category_id, i_category "
        "ORDER BY d_year LIMIT 100",
        year, moy);
  }});

  out.push_back({"tpcds_q52_brand_window", "tpcds", [](Rng& rng) {
    const DateWindow w = DrawDateWindow(rng, 7, 90);
    return StrFormat(
        "SELECT i_brand_id, SUM(ss_ext_sales_price) "
        "FROM store_sales, item, date_dim "
        "WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk "
        "AND d_date_sk BETWEEN %lld AND %lld "
        "GROUP BY i_brand_id ORDER BY i_brand_id LIMIT 100",
        static_cast<long long>(w.lo), static_cast<long long>(w.hi));
  }});

  out.push_back({"tpcds_q55_manager_count", "tpcds", [](Rng& rng) {
    const int manager = static_cast<int>(rng.UniformInt(1, 100));
    const DateWindow w = DrawDateWindow(rng, 14, 60);
    return StrFormat(
        "SELECT i_brand, COUNT(*), SUM(ss_ext_sales_price) "
        "FROM store_sales, item, date_dim "
        "WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk "
        "AND i_manager_id = %d AND d_date_sk BETWEEN %lld AND %lld "
        "GROUP BY i_brand ORDER BY i_brand",
        manager, static_cast<long long>(w.lo), static_cast<long long>(w.hi));
  }});

  out.push_back({"tpcds_inventory_position", "tpcds", [](Rng& rng) {
    const DateWindow w = DrawDateWindow(rng, 7, 60);
    const int cls = static_cast<int>(rng.UniformInt(1, 16));
    return StrFormat(
        "SELECT w_state, AVG(inv_quantity_on_hand) "
        "FROM inventory, warehouse, item "
        "WHERE inv_warehouse_sk = w_warehouse_sk "
        "AND inv_item_sk = i_item_sk AND i_class_id = %d "
        "AND inv_date_sk BETWEEN %lld AND %lld "
        "GROUP BY w_state ORDER BY w_state",
        cls, static_cast<long long>(w.lo), static_cast<long long>(w.hi));
  }});

  out.push_back({"tpcds_returns_reason", "tpcds", [](Rng& rng) {
    const int q = static_cast<int>(rng.UniformInt(1, 80));
    return StrFormat(
        "SELECT r_reason_desc, COUNT(*), SUM(sr_return_amt) "
        "FROM store_returns, reason "
        "WHERE sr_reason_sk = r_reason_sk AND sr_return_quantity > %d "
        "GROUP BY r_reason_desc ORDER BY r_reason_desc",
        q);
  }});

  out.push_back({"tpcds_customer_in_category", "tpcds", [](Rng& rng) {
    const int cat = static_cast<int>(rng.UniformInt(1, 10));
    const int by = static_cast<int>(rng.UniformInt(1930, 1985));
    return StrFormat(
        "SELECT COUNT(*) FROM customer "
        "WHERE c_birth_year > %d AND c_customer_sk IN "
        "(SELECT ss_customer_sk FROM store_sales, item "
        "WHERE ss_item_sk = i_item_sk AND i_category_id = %d)",
        by, cat);
  }});

  out.push_back({"tpcds_items_with_returns", "tpcds", [](Rng& rng) {
    const int q = static_cast<int>(rng.UniformInt(10, 95));
    const double price = rng.Uniform(10.0, 90.0);
    return StrFormat(
        "SELECT COUNT(*) FROM item WHERE i_current_price > %.2f "
        "AND EXISTS (SELECT sr_ticket_number FROM store_returns "
        "WHERE sr_item_sk = i_item_sk AND sr_return_quantity > %d)",
        price, q);
  }});

  out.push_back({"tpcds_store_state_sales", "tpcds", [](Rng& rng) {
    const DateWindow w = DrawDateWindow(rng, 30, 365);
    return StrFormat(
        "SELECT s_state, COUNT(*), SUM(ss_net_profit) "
        "FROM store_sales, store, date_dim "
        "WHERE ss_store_sk = s_store_sk AND ss_sold_date_sk = d_date_sk "
        "AND d_date_sk BETWEEN %lld AND %lld "
        "GROUP BY s_state ORDER BY s_state",
        static_cast<long long>(w.lo), static_cast<long long>(w.hi));
  }});

  out.push_back({"tpcds_hdemo_potential", "tpcds", [](Rng& rng) {
    const char* bp = PickBuyPotential(rng);
    const int dep = static_cast<int>(rng.UniformInt(0, 9));
    return StrFormat(
        "SELECT hd_income_band_sk, COUNT(*) "
        "FROM store_sales, household_demographics "
        "WHERE ss_hdemo_sk = hd_demo_sk AND hd_buy_potential = '%s' "
        "AND hd_dep_count > %d "
        "GROUP BY hd_income_band_sk ORDER BY hd_income_band_sk",
        bp, dep);
  }});

  out.push_back({"tpcds_top_customers", "tpcds", [](Rng& rng) {
    const DateWindow w = DrawDateWindow(rng, 30, 180);
    const int limit = static_cast<int>(rng.UniformInt(10, 100));
    return StrFormat(
        "SELECT c_customer_sk, SUM(ss_net_paid) "
        "FROM store_sales, customer, date_dim "
        "WHERE ss_customer_sk = c_customer_sk "
        "AND ss_sold_date_sk = d_date_sk "
        "AND d_date_sk BETWEEN %lld AND %lld "
        "GROUP BY c_customer_sk ORDER BY c_customer_sk DESC LIMIT %d",
        static_cast<long long>(w.lo), static_cast<long long>(w.hi), limit);
  }});

  out.push_back({"tpcds_dim_lookup", "tpcds", [](Rng& rng) {
    const int year = static_cast<int>(rng.UniformInt(1990, 2005));
    return StrFormat(
        "SELECT d_moy, COUNT(*) FROM date_dim WHERE d_year = %d "
        "GROUP BY d_moy ORDER BY d_moy",
        year);
  }});

  out.push_back({"tpcds_item_listing", "tpcds", [](Rng& rng) {
    const double lo = rng.Uniform(1.0, 50.0);
    const double hi = lo + rng.Uniform(5.0, 45.0);
    return StrFormat(
        "SELECT i_item_sk, i_brand, i_current_price FROM item "
        "WHERE i_current_price BETWEEN %.2f AND %.2f "
        "ORDER BY i_current_price LIMIT 200",
        lo, hi);
  }});

  out.push_back({"tpcds_cross_channel_items", "tpcds", [](Rng& rng) {
    const DateWindow w = DrawDateWindow(rng, 14, 120);
    return StrFormat(
        "SELECT ws_item_sk, COUNT(*) "
        "FROM web_sales, catalog_sales, date_dim "
        "WHERE ws_item_sk = cs_item_sk AND ws_sold_date_sk = d_date_sk "
        "AND d_date_sk BETWEEN %lld AND %lld "
        "GROUP BY ws_item_sk ORDER BY ws_item_sk LIMIT 100",
        static_cast<long long>(w.lo), static_cast<long long>(w.hi));
  }});

  out.push_back({"tpcds_sales_returns_match", "tpcds", [](Rng& rng) {
    const DateWindow w = DrawDateWindow(rng, 30, 365);
    return StrFormat(
        "SELECT COUNT(*), SUM(sr_return_amt) "
        "FROM store_sales, store_returns, date_dim "
        "WHERE ss_ticket_number = sr_ticket_number "
        "AND ss_item_sk = sr_item_sk AND ss_sold_date_sk = d_date_sk "
        "AND d_date_sk BETWEEN %lld AND %lld",
        static_cast<long long>(w.lo), static_cast<long long>(w.hi));
  }});

  out.push_back({"tpcds_address_gmt", "tpcds", [](Rng& rng) {
    const int off = static_cast<int>(rng.UniformInt(-10, -5));
    return StrFormat(
        "SELECT ca_state, COUNT(*) FROM customer, customer_address "
        "WHERE c_current_addr_sk = ca_address_sk AND ca_gmt_offset = %d "
        "GROUP BY ca_state ORDER BY ca_state",
        off);
  }});


  out.push_back({"tpcds_q96_hour_traffic", "tpcds", [](Rng& rng) {
    const int hour = static_cast<int>(rng.UniformInt(8, 20));
    const int dep = static_cast<int>(rng.UniformInt(0, 9));
    return StrFormat(
        "SELECT COUNT(*) FROM store_sales, household_demographics, time_dim "
        "WHERE ss_hdemo_sk = hd_demo_sk AND ss_sold_time_sk = t_time_sk "
        "AND t_hour = %d AND hd_dep_count = %d",
        hour, dep);
  }});

  out.push_back({"tpcds_q98_class_revenue", "tpcds", [](Rng& rng) {
    const DateWindow w = DrawDateWindow(rng, 14, 90);
    const int cat = static_cast<int>(rng.UniformInt(1, 10));
    return StrFormat(
        "SELECT i_class, SUM(ss_ext_sales_price), COUNT(*) "
        "FROM store_sales, item, date_dim "
        "WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk "
        "AND i_category_id = %d AND d_date_sk BETWEEN %lld AND %lld "
        "GROUP BY i_class ORDER BY i_class",
        cat, static_cast<long long>(w.lo), static_cast<long long>(w.hi));
  }});

  out.push_back({"tpcds_web_return_rate", "tpcds", [](Rng& rng) {
    const DateWindow w = DrawDateWindow(rng, 30, 365);
    return StrFormat(
        "SELECT wp_type, COUNT(*), SUM(wr_return_amt) "
        "FROM web_sales, web_returns, web_page, date_dim "
        "WHERE ws_order_number = wr_order_number "
        "AND ws_item_sk = wr_item_sk AND ws_web_page_sk = wp_web_page_sk "
        "AND ws_sold_date_sk = d_date_sk "
        "AND d_date_sk BETWEEN %lld AND %lld "
        "GROUP BY wp_type ORDER BY wp_type",
        static_cast<long long>(w.lo), static_cast<long long>(w.hi));
  }});

  out.push_back({"tpcds_q82_stock_items", "tpcds", [](Rng& rng) {
    const double lo = rng.Uniform(10.0, 60.0);
    const int qlo = static_cast<int>(rng.UniformInt(100, 500));
    const DateWindow w = DrawDateWindow(rng, 14, 60);
    return StrFormat(
        "SELECT i_item_sk, i_current_price FROM item, inventory "
        "WHERE inv_item_sk = i_item_sk "
        "AND i_current_price BETWEEN %.2f AND %.2f "
        "AND inv_quantity_on_hand BETWEEN %d AND %d "
        "AND inv_date_sk BETWEEN %lld AND %lld "
        "ORDER BY i_item_sk LIMIT 100",
        lo, lo + 30.0, qlo, qlo + 200,
        static_cast<long long>(w.lo), static_cast<long long>(w.hi));
  }});

  out.push_back({"tpcds_catalog_promo_lift", "tpcds", [](Rng& rng) {
    const DateWindow w = DrawDateWindow(rng, 30, 180);
    const char* tv = rng.Bernoulli(0.5) ? "Y" : "N";
    return StrFormat(
        "SELECT i_category, SUM(cs_ext_sales_price) "
        "FROM catalog_sales, promotion, item, date_dim "
        "WHERE cs_promo_sk = p_promo_sk AND cs_item_sk = i_item_sk "
        "AND cs_sold_date_sk = d_date_sk AND p_channel_tv = '%s' "
        "AND d_date_sk BETWEEN %lld AND %lld "
        "GROUP BY i_category ORDER BY i_category",
        tv, static_cast<long long>(w.lo), static_cast<long long>(w.hi));
  }});

  out.push_back({"tpcds_multichannel_customers", "tpcds", [](Rng& rng) {
    const int cat = static_cast<int>(rng.UniformInt(1, 10));
    const int by = static_cast<int>(rng.UniformInt(1940, 1980));
    return StrFormat(
        "SELECT COUNT(*) FROM customer WHERE c_birth_year BETWEEN %d AND %d "
        "AND c_customer_sk IN (SELECT ws_bill_customer_sk FROM web_sales, "
        "item WHERE ws_item_sk = i_item_sk AND i_category_id = %d) "
        "AND c_customer_sk IN (SELECT ss_customer_sk FROM store_sales)",
        by, by + 10, cat);
  }});

  out.push_back({"tpcds_ship_mode_lag", "tpcds", [](Rng& rng) {
    const DateWindow w = DrawDateWindow(rng, 30, 365);
    return StrFormat(
        "SELECT sm_type, COUNT(*) FROM catalog_sales, ship_mode, call_center "
        "WHERE cs_ship_mode_sk = sm_ship_mode_sk "
        "AND cs_call_center_sk = cc_call_center_sk "
        "AND cs_ship_date_sk BETWEEN %lld AND %lld "
        "AND cs_ship_date_sk > cs_sold_date_sk "
        "GROUP BY sm_type ORDER BY sm_type",
        static_cast<long long>(w.lo), static_cast<long long>(w.hi));
  }});

  out.push_back({"tpcds_store_returns_customers", "tpcds", [](Rng& rng) {
    const int q = static_cast<int>(rng.UniformInt(2, 40));
    return StrFormat(
        "SELECT COUNT(DISTINCT sr_customer_sk) "
        "FROM store_returns, store "
        "WHERE sr_store_sk = s_store_sk AND s_market_id = %d "
        "AND sr_return_quantity > %d",
        static_cast<int>(rng.UniformInt(1, 10)), q);
  }});

  return out;
}

}  // namespace qpp::workload
