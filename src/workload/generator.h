// Workload generation: instantiate templates into concrete SQL queries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/templates.h"

namespace qpp::workload {

struct GeneratedQuery {
  std::string sql;
  std::string template_name;
  std::string family;
  uint64_t seed = 0;  ///< the per-query instantiation seed (reproducible)
};

/// Instantiates `count` queries by cycling the template set round-robin with
/// per-query seeds derived from `seed`. Deterministic.
std::vector<GeneratedQuery> GenerateWorkload(
    const std::vector<QueryTemplate>& templates, size_t count, uint64_t seed);

}  // namespace qpp::workload
