// Customer ("retailbank") workload templates for Experiment 4: a different
// schema and database than the training queries. Dominated by very
// short-running queries, matching the customer traces the paper had.
#pragma once

#include <vector>

#include "workload/templates.h"

namespace qpp::workload {

std::vector<QueryTemplate> RetailBankTemplates();

}  // namespace qpp::workload
