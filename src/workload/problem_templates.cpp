#include "workload/problem_templates.h"

#include "common/str_util.h"

namespace qpp::workload {

std::vector<QueryTemplate> ProblemTemplates() {
  std::vector<QueryTemplate> out;

  // Returns-lag audit: which sales might explain which returns. Non-equi
  // price comparison forces a nested-loop join between two fact slices.
  out.push_back({"problem_returns_lag", "problem", [](Rng& rng) {
    const DateWindow ws = DrawDateWindow(rng, 3, 1800);
    const DateWindow wr = DrawDateWindow(rng, 3, 1800);
    return StrFormat(
        "SELECT COUNT(*) FROM store_sales, store_returns "
        "WHERE ss_sold_date_sk BETWEEN %lld AND %lld "
        "AND sr_returned_date_sk BETWEEN %lld AND %lld "
        "AND ss_ext_sales_price > sr_return_amt",
        static_cast<long long>(ws.lo), static_cast<long long>(ws.hi),
        static_cast<long long>(wr.lo), static_cast<long long>(wr.hi));
  }});

  // Cross-channel price-band comparison: store vs catalog sales.
  out.push_back({"problem_price_band_channels", "problem", [](Rng& rng) {
    const DateWindow ws = DrawDateWindow(rng, 3, 1800);
    const DateWindow wc = DrawDateWindow(rng, 3, 1800);
    const int q = static_cast<int>(rng.UniformInt(1, 90));
    return StrFormat(
        "SELECT COUNT(*), AVG(ss_list_price) "
        "FROM store_sales, catalog_sales "
        "WHERE ss_sold_date_sk BETWEEN %lld AND %lld "
        "AND cs_sold_date_sk BETWEEN %lld AND %lld "
        "AND ss_quantity > %d AND ss_list_price < cs_list_price",
        static_cast<long long>(ws.lo), static_cast<long long>(ws.hi),
        static_cast<long long>(wc.lo), static_cast<long long>(wc.hi), q);
  }});

  // Store-sales self band join: the biggest cross products (source of
  // wrecking balls when both windows are wide).
  out.push_back({"problem_self_band", "problem", [](Rng& rng) {
    const DateWindow w1 = DrawDateWindow(rng, 3, 1300);
    const DateWindow w2 = DrawDateWindow(rng, 3, 1300);
    return StrFormat(
        "SELECT COUNT(*) FROM store_sales a, store_sales b "
        "WHERE a.ss_sold_date_sk BETWEEN %lld AND %lld "
        "AND b.ss_sold_date_sk BETWEEN %lld AND %lld "
        "AND a.ss_net_paid > b.ss_net_paid "
        "AND a.ss_store_sk = b.ss_store_sk",
        static_cast<long long>(w1.lo), static_cast<long long>(w1.hi),
        static_cast<long long>(w2.lo), static_cast<long long>(w2.hi));
  }});

  // Inventory imbalance: same item, different snapshots, quantity skew.
  out.push_back({"problem_inventory_drift", "problem", [](Rng& rng) {
    const DateWindow w1 = DrawDateWindow(rng, 2, 400);
    const DateWindow w2 = DrawDateWindow(rng, 2, 400);
    return StrFormat(
        "SELECT COUNT(*) FROM inventory a, inventory b "
        "WHERE a.inv_item_sk = b.inv_item_sk "
        "AND a.inv_date_sk BETWEEN %lld AND %lld "
        "AND b.inv_date_sk BETWEEN %lld AND %lld "
        "AND a.inv_quantity_on_hand < b.inv_quantity_on_hand",
        static_cast<long long>(w1.lo), static_cast<long long>(w1.hi),
        static_cast<long long>(w2.lo), static_cast<long long>(w2.hi));
  }});

  // Triple-fact join chain with aggregation: large intermediate results,
  // spilling hash joins and a heavyweight exchange/aggregation pipeline.
  out.push_back({"problem_triple_fact_chain", "problem", [](Rng& rng) {
    const DateWindow ws = DrawDateWindow(rng, 30, 1800);
    const DateWindow wc = DrawDateWindow(rng, 30, 1800);
    const DateWindow ww = DrawDateWindow(rng, 30, 1800);
    return StrFormat(
        "SELECT ss_item_sk, COUNT(*) "
        "FROM store_sales, catalog_sales, web_sales "
        "WHERE ss_item_sk = cs_item_sk AND cs_item_sk = ws_item_sk "
        "AND ss_sold_date_sk BETWEEN %lld AND %lld "
        "AND cs_sold_date_sk BETWEEN %lld AND %lld "
        "AND ws_sold_date_sk BETWEEN %lld AND %lld "
        "GROUP BY ss_item_sk ORDER BY ss_item_sk LIMIT 1000",
        static_cast<long long>(ws.lo), static_cast<long long>(ws.hi),
        static_cast<long long>(wc.lo), static_cast<long long>(wc.hi),
        static_cast<long long>(ww.lo), static_cast<long long>(ww.hi));
  }});

  // Returns matching across channels with a band condition.
  out.push_back({"problem_returns_cross_band", "problem", [](Rng& rng) {
    const int q = static_cast<int>(rng.UniformInt(1, 60));
    const DateWindow w = DrawDateWindow(rng, 10, 1900);
    return StrFormat(
        "SELECT COUNT(*) FROM catalog_returns, web_returns "
        "WHERE cr_returned_date_sk BETWEEN %lld AND %lld "
        "AND cr_return_amount > wr_return_amt "
        "AND wr_return_quantity > %d",
        static_cast<long long>(w.lo), static_cast<long long>(w.hi), q);
  }});

  // Global sort of a fact slice (no limit): external sort territory.
  out.push_back({"problem_global_sort", "problem", [](Rng& rng) {
    const DateWindow w = DrawDateWindow(rng, 30, 1840);
    return StrFormat(
        "SELECT ss_customer_sk, ss_net_paid, ss_sold_date_sk "
        "FROM store_sales WHERE ss_sold_date_sk BETWEEN %lld AND %lld "
        "ORDER BY ss_net_paid DESC, ss_customer_sk",
        static_cast<long long>(w.lo), static_cast<long long>(w.hi));
  }});

  // Demographic cross-shopping: wide hash-join pipeline over the big
  // cross-product demographics table plus a fact self-reference.
  out.push_back({"problem_demo_fanout", "problem", [](Rng& rng) {
    const DateWindow w = DrawDateWindow(rng, 30, 1800);
    const int pe = static_cast<int>(rng.UniformInt(1, 20)) * 500;
    return StrFormat(
        "SELECT cd_education_status, COUNT(*), SUM(ss_net_profit) "
        "FROM store_sales, customer_demographics, customer "
        "WHERE ss_cdemo_sk = cd_demo_sk "
        "AND ss_customer_sk = c_customer_sk "
        "AND cd_purchase_estimate > %d "
        "AND ss_sold_date_sk BETWEEN %lld AND %lld "
        "GROUP BY cd_education_status ORDER BY cd_education_status",
        pe, static_cast<long long>(w.lo), static_cast<long long>(w.hi));
  }});

  return out;
}

}  // namespace qpp::workload
