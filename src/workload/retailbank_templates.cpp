#include "workload/retailbank_templates.h"

#include "common/str_util.h"

namespace qpp::workload {

namespace {
constexpr int64_t kTxDateLo = 2454100;
constexpr int64_t kTxDateHi = 2455194;

const char* PickSegment(Rng& rng) {
  static const char* kSeg[] = {"retail", "premier", "private", "student",
                               "business"};
  return kSeg[rng.UniformInt(0, 4)];
}

const char* PickChannel(Rng& rng) {
  static const char* kCh[] = {"atm", "web", "branch", "mobile", "phone"};
  return kCh[rng.UniformInt(0, 4)];
}
}  // namespace

std::vector<QueryTemplate> RetailBankTemplates() {
  std::vector<QueryTemplate> out;

  out.push_back({"bank_account_activity", "retailbank", [](Rng& rng) {
    const int64_t acct = rng.UniformInt(1, 400000);
    const int64_t lo = rng.UniformInt(kTxDateLo, kTxDateHi - 90);
    return StrFormat(
        "SELECT COUNT(*), SUM(tx_amount) FROM transactions "
        "WHERE tx_account_id = %lld AND tx_date BETWEEN %lld AND %lld",
        static_cast<long long>(acct), static_cast<long long>(lo),
        static_cast<long long>(lo + 90));
  }});

  out.push_back({"bank_branch_balances", "retailbank", [](Rng& rng) {
    const double bal = rng.Uniform(1000.0, 100000.0);
    return StrFormat(
        "SELECT a_branch_id, COUNT(*), AVG(a_balance) FROM accounts "
        "WHERE a_balance > %.2f GROUP BY a_branch_id "
        "ORDER BY a_branch_id LIMIT 50",
        bal);
  }});

  out.push_back({"bank_segment_clients", "retailbank", [](Rng& rng) {
    const char* seg = PickSegment(rng);
    const int by = static_cast<int>(rng.UniformInt(1930, 1990));
    return StrFormat(
        "SELECT b_region_id, COUNT(*) FROM clients, branches "
        "WHERE cl_home_branch_id = b_branch_id AND cl_segment = '%s' "
        "AND cl_birth_year > %d GROUP BY b_region_id ORDER BY b_region_id",
        seg, by);
  }});

  out.push_back({"bank_channel_volume", "retailbank", [](Rng& rng) {
    const char* ch = PickChannel(rng);
    const int64_t lo = rng.UniformInt(kTxDateLo, kTxDateHi - 30);
    return StrFormat(
        "SELECT COUNT(*), AVG(tx_amount) FROM transactions "
        "WHERE tx_channel = '%s' AND tx_date BETWEEN %lld AND %lld",
        ch, static_cast<long long>(lo), static_cast<long long>(lo + 30));
  }});

  out.push_back({"bank_merchant_category", "retailbank", [](Rng& rng) {
    const int64_t lo = rng.UniformInt(kTxDateLo, kTxDateHi - 14);
    const double amt = rng.Uniform(50.0, 2000.0);
    return StrFormat(
        "SELECT m_state, COUNT(*) FROM transactions, merchants "
        "WHERE tx_merchant_id = m_merchant_id AND tx_amount > %.2f "
        "AND tx_date BETWEEN %lld AND %lld "
        "GROUP BY m_state ORDER BY m_state",
        amt, static_cast<long long>(lo), static_cast<long long>(lo + 14));
  }});

  out.push_back({"bank_swipe_approval", "retailbank", [](Rng& rng) {
    const int64_t lo = rng.UniformInt(kTxDateLo, kTxDateHi - 7);
    return StrFormat(
        "SELECT sw_approved, COUNT(*) FROM card_swipes "
        "WHERE sw_date BETWEEN %lld AND %lld AND sw_amount > %.2f "
        "GROUP BY sw_approved",
        static_cast<long long>(lo), static_cast<long long>(lo + 7),
        rng.Uniform(10.0, 500.0));
  }});

  out.push_back({"bank_loan_book", "retailbank", [](Rng& rng) {
    const int rate = static_cast<int>(rng.UniformInt(200, 900));
    return StrFormat(
        "SELECT l_product, COUNT(*), SUM(l_principal) FROM loans "
        "WHERE l_rate_bps > %d GROUP BY l_product ORDER BY l_product",
        rate);
  }});

  out.push_back({"bank_card_network", "retailbank", [](Rng& rng) {
    const int year = static_cast<int>(rng.UniformInt(2008, 2015));
    return StrFormat(
        "SELECT cd_network, COUNT(*) FROM cards, accounts "
        "WHERE cd_account_id = a_account_id AND cd_expiry_year = %d "
        "AND a_status = 'open' GROUP BY cd_network ORDER BY cd_network",
        year);
  }});

  out.push_back({"bank_dormant_clients", "retailbank", [](Rng& rng) {
    const double bal = rng.Uniform(50000.0, 500000.0);
    return StrFormat(
        "SELECT COUNT(*) FROM clients WHERE cl_risk_score > %d "
        "AND cl_client_id IN (SELECT a_client_id FROM accounts "
        "WHERE a_balance > %.2f)",
        static_cast<int>(rng.UniformInt(500, 820)), bal);
  }});

  out.push_back({"bank_regional_loans", "retailbank", [](Rng& rng) {
    const double principal = rng.Uniform(10000.0, 800000.0);
    return StrFormat(
        "SELECT b_region_id, COUNT(*), AVG(l_rate_bps) "
        "FROM loans, branches WHERE l_branch_id = b_branch_id "
        "AND l_principal > %.2f GROUP BY b_region_id ORDER BY b_region_id",
        principal);
  }});

  return out;
}

}  // namespace qpp::workload
