#include "workload/pools.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/str_util.h"

namespace qpp::workload {

const char* QueryTypeName(QueryType t) {
  switch (t) {
    case QueryType::kFeather: return "feather";
    case QueryType::kGolfBall: return "golf ball";
    case QueryType::kBowlingBall: return "bowling ball";
    case QueryType::kWreckingBall: return "wrecking ball";
  }
  return "?";
}

QueryType ClassifyElapsed(double seconds) {
  if (seconds < 180.0) return QueryType::kFeather;
  if (seconds < 1800.0) return QueryType::kGolfBall;
  if (seconds <= 7200.0) return QueryType::kBowlingBall;
  return QueryType::kWreckingBall;
}

std::vector<const PooledQuery*> QueryPools::OfType(QueryType t) const {
  std::vector<const PooledQuery*> out;
  for (const PooledQuery& q : queries) {
    if (q.type == t) out.push_back(&q);
  }
  return out;
}

std::vector<PoolSummary> QueryPools::Summaries() const {
  std::vector<PoolSummary> out;
  for (QueryType t : {QueryType::kFeather, QueryType::kGolfBall,
                      QueryType::kBowlingBall, QueryType::kWreckingBall}) {
    PoolSummary s;
    s.type = t;
    s.min_elapsed = std::numeric_limits<double>::infinity();
    double total = 0.0;
    for (const PooledQuery& q : queries) {
      if (q.type != t) continue;
      s.count += 1;
      total += q.metrics.elapsed_seconds;
      s.min_elapsed = std::min(s.min_elapsed, q.metrics.elapsed_seconds);
      s.max_elapsed = std::max(s.max_elapsed, q.metrics.elapsed_seconds);
    }
    if (s.count == 0) s.min_elapsed = 0.0;
    s.mean_elapsed = s.count > 0 ? total / static_cast<double>(s.count) : 0.0;
    out.push_back(s);
  }
  return out;
}

std::string QueryPools::ToTable() const {
  std::ostringstream os;
  os << StrFormat("%-14s %9s %14s %14s %14s\n", "query type", "instances",
                  "mean", "minimum", "maximum");
  for (const PoolSummary& s : Summaries()) {
    os << StrFormat("%-14s %9zu %14s %14s %14s\n", QueryTypeName(s.type),
                    s.count, FormatDuration(s.mean_elapsed).c_str(),
                    FormatDuration(s.min_elapsed).c_str(),
                    FormatDuration(s.max_elapsed).c_str());
  }
  return os.str();
}

QueryPools BuildPools(const std::vector<GeneratedQuery>& queries,
                      const optimizer::Optimizer& opt,
                      const engine::ExecutionSimulator& sim,
                      size_t* num_failed) {
  QueryPools pools;
  size_t failed = 0;
  for (const GeneratedQuery& q : queries) {
    Result<optimizer::PhysicalPlan> plan = opt.Plan(q.sql);
    if (!plan.ok()) {
      ++failed;
      continue;
    }
    PooledQuery pq;
    pq.query = q;
    pq.plan = std::move(plan).value();
    pq.metrics = sim.Execute(pq.plan);
    pq.type = ClassifyElapsed(pq.metrics.elapsed_seconds);
    pools.queries.push_back(std::move(pq));
  }
  if (num_failed != nullptr) *num_failed = failed;
  return pools;
}

TrainTestSplit SampleSplit(const QueryPools& pools, size_t train_feathers,
                           size_t train_golf, size_t train_bowling,
                           size_t test_feathers, size_t test_golf,
                           size_t test_bowling, uint64_t seed) {
  Rng rng(seed);
  TrainTestSplit split;

  const auto sample = [&](QueryType type, size_t n_train, size_t n_test) {
    std::vector<size_t> indices;
    for (size_t i = 0; i < pools.queries.size(); ++i) {
      if (pools.queries[i].type == type) indices.push_back(i);
    }
    QPP_CHECK_MSG(indices.size() >= n_train + n_test,
                  "pool too small for requested split: "
                      << QueryTypeName(type) << " has " << indices.size()
                      << ", need " << (n_train + n_test));
    const std::vector<size_t> perm = rng.Permutation(indices.size());
    for (size_t k = 0; k < n_train; ++k) {
      split.train.push_back(indices[perm[k]]);
    }
    for (size_t k = 0; k < n_test; ++k) {
      split.test.push_back(indices[perm[n_train + k]]);
    }
  };

  sample(QueryType::kFeather, train_feathers, test_feathers);
  sample(QueryType::kGolfBall, train_golf, test_golf);
  sample(QueryType::kBowlingBall, train_bowling, test_bowling);
  return split;
}

}  // namespace qpp::workload
