#include "workload/templates.h"

#include <cmath>

#include "common/check.h"

namespace qpp::workload {

int64_t DrawLogUniform(Rng& rng, int64_t lo, int64_t hi) {
  QPP_CHECK(lo >= 1 && lo <= hi);
  const double u =
      rng.Uniform(std::log(static_cast<double>(lo)),
                  std::log(static_cast<double>(hi) + 1.0));
  int64_t v = static_cast<int64_t>(std::exp(u));
  return std::min(hi, std::max(lo, v));
}

DateWindow DrawDateWindow(Rng& rng, int64_t min_days, int64_t max_days) {
  const int64_t width = DrawLogUniform(rng, std::max<int64_t>(min_days, 1),
                                       std::max<int64_t>(max_days, 1));
  const int64_t span = kSalesDateHi - kSalesDateLo;
  const int64_t lo =
      kSalesDateLo + rng.UniformInt(0, std::max<int64_t>(span - width, 1));
  return {lo, lo + width};
}

}  // namespace qpp::workload
