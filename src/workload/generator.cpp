#include "workload/generator.h"

#include "common/check.h"

namespace qpp::workload {

std::vector<GeneratedQuery> GenerateWorkload(
    const std::vector<QueryTemplate>& templates, size_t count,
    uint64_t seed) {
  QPP_CHECK(!templates.empty());
  std::vector<GeneratedQuery> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const QueryTemplate& t = templates[i % templates.size()];
    GeneratedQuery q;
    q.seed = SplitMix64(seed ^ (0x9E3779B97F4A7C15ull * (i + 1)));
    Rng rng(q.seed);
    q.sql = t.instantiate(rng);
    q.template_name = t.name;
    q.family = t.family;
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace qpp::workload
