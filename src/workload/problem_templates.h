// Extended "problem query" templates.
//
// The paper wrote new templates against the TPC-DS database modeled on real
// customer queries that ran for 4+ hours, because plain TPC-DS at SF 1
// yields almost exclusively feathers. These templates follow that playbook:
// non-equi (band) joins between fact tables that force nested-loop plans,
// multi-fact join chains with spilling hash joins, and large sorts. Their
// date-window parameters are drawn log-uniformly, so each template spans
// feathers through bowling balls (and occasional wrecking balls) depending
// on the constants — the paper's own experience.
#pragma once

#include <vector>

#include "workload/templates.h"

namespace qpp::workload {

std::vector<QueryTemplate> ProblemTemplates();

}  // namespace qpp::workload
