// The black-box flight recorder: a fixed-capacity ring of compact
// structured events that is always on, costs nanoseconds per event, and is
// dumped as a JSON "black box" when something goes wrong (SLO breach,
// chaos invariant failure, `qpp_tool obs --flight-dump`).
//
// Where the TraceRecorder answers "what did this request do, microsecond
// by microsecond" (and is therefore opt-in and bounded by max_events), the
// flight recorder answers "what were the last few thousand *decisions*
// the fabric took before this failure" — admission verdicts, replica
// picks, escalations, hot swaps, fault injections, breaker transitions —
// and is cheap enough to leave running in production and in every soak.
//
// Concurrency: a multi-writer seqlock ring. Writers claim a slot with one
// fetch_add on the ticket counter, invalidate the slot, write the payload
// as individual relaxed atomics, then publish by storing the ticket into
// the slot's seq with release ordering. Readers accept a slot only when
// its seq reads the same expected ticket before AND after copying the
// payload, so an in-progress or lapped write is skipped, never blocked on,
// and never a data race (every field is atomic). In deterministic
// sequential harnesses there is no tearing at all and Snapshot()/
// DumpJson() are byte-replayable functions of the event history.
//
// Determinism: the recorder itself stores nothing time-derived. Events
// carry (ticket, trace id, kind, code, value, 23-char detail); whether a
// dump is byte-identical across runs is decided entirely by what callers
// put in `value` — the deterministic harnesses only record virtual-time /
// request-count quantities.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace qpp::obs {

/// What happened. Names (FlightEventKindName) appear verbatim in dumps.
enum class FlightEventKind : uint8_t {
  kAdmissionAdmit = 0,   ///< code = pool
  kAdmissionShed,        ///< code = pool; value = queue depth at decision
  kAdmissionDefer,       ///< code = pool; value = queue depth at decision
  kDeferDrained,         ///< a parked request was dispatched
  kDeferOverflow,        ///< defer buffer full: degraded to shed
  kSloBreach,            ///< admission saw a breached signal; value = p99
  kSloAlert,             ///< an SloEngine rule fired; detail = rule name
  kSloWindow,            ///< an SLO window closed; value = rule value
  kPick,                 ///< P2C dispatch; detail = replica label
  kEscalation,           ///< detail = "label/reason"
  kFallback,             ///< labeled degraded response; detail = reason
  kFault,                ///< injected fault; detail = kind name
  kBreakerTransition,    ///< code = new state; detail = replica label
  kSwap,                 ///< DrainSwapRevive completed; detail = label
  kHealthChange,         ///< code = new ReplicaHealth; detail = label
  kInvariantFailure,     ///< chaos invariant failed; detail = which
  kNote,                 ///< free-form marker (tools, tests)
  kCandidateRegistered,  ///< lifecycle candidate enters shadow; detail = label
  kShadowWindow,         ///< lifecycle window closed; detail = gate verdict
  kPromotion,            ///< challenger promoted; code = candidate index
  kRollback,             ///< watchdog demoted a promotion; value = risk
};

const char* FlightEventKindName(FlightEventKind kind);

/// One decoded ring entry. `ticket` is the 1-based global sequence number
/// of the event — dumps report both the window captured and how much
/// history was overwritten.
struct FlightEvent {
  uint64_t ticket = 0;
  uint64_t trace_id = 0;  ///< 0 = not tied to one request
  FlightEventKind kind = FlightEventKind::kNote;
  int32_t code = 0;       ///< kind-specific small integer
  double value = 0.0;     ///< kind-specific measure (depth, p99, ...)
  std::string detail;     ///< short label, truncated to 23 chars
};

struct FlightRecorderOptions {
  /// Ring capacity; rounded up to a power of two, minimum 16.
  size_t capacity = 4096;
};

class FlightRecorder {
 public:
  /// Longest detail string stored (bytes 24..31 of the slot hold len+pad).
  static constexpr size_t kDetailCapacity = 23;

  explicit FlightRecorder(FlightRecorderOptions options = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event; wait-free apart from the slot stores. `detail` is
  /// truncated to kDetailCapacity bytes. Safe from any thread.
  void Record(FlightEventKind kind, uint64_t trace_id = 0, int32_t code = 0,
              double value = 0.0, std::string_view detail = {});

  size_t capacity() const { return slots_.size(); }
  /// Events ever recorded (>= capacity() means the ring has lapped).
  uint64_t total_recorded() const {
    return next_ticket_.load(std::memory_order_relaxed);
  }

  /// The currently held window, oldest first. Slots being rewritten while
  /// the snapshot runs are skipped (never under sequential driving).
  std::vector<FlightEvent> Snapshot() const;

  /// The black-box document:
  /// {"reason":..., "capacity":..., "total_recorded":..., "dropped":...,
  ///  "events":[{"ticket":..,"kind":"..","trace_id":"<hex>","code":..,
  ///             "value":..,"detail":".."}, ...]}.
  /// Byte-identical across runs whenever the recorded history is.
  std::string DumpJson(std::string_view reason) const;

 private:
  // 24 bytes of detail packed into three word-sized atomics so the whole
  // payload is individually-atomic (seqlock readers may race writers).
  struct Slot {
    std::atomic<uint64_t> seq{0};  ///< 0 = empty, else the owning ticket
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint32_t> kind{0};
    std::atomic<uint32_t> code{0};
    std::atomic<uint64_t> value_bits{0};
    std::atomic<uint64_t> detail_words[3] = {};
  };

  std::vector<Slot> slots_;  // size is a power of two
  size_t mask_ = 0;
  std::atomic<uint64_t> next_ticket_{0};
};

}  // namespace qpp::obs
