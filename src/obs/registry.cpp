#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "obs/json_util.h"

namespace qpp::obs {

namespace {

void SortLabels(Labels* labels) {
  std::sort(labels->begin(), labels->end());
}

/// `{k="v",k2="v2"}`, or "" when unlabeled; `extra` appends one more pair
/// (used for quantile labels on histogram lines).
std::string RenderLabels(const Labels& labels,
                         const std::pair<std::string, std::string>* extra =
                             nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + v + "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ',';
    out += extra->first + "=\"" + extra->second + "\"";
  }
  out += '}';
  return out;
}

std::string LabelsJson(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += JsonString(k) + ":" + JsonString(v);
  }
  out += '}';
  return out;
}

}  // namespace

std::string MetricsRegistry::Key(const std::string& name,
                                 const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x01';
    key += k;
    key += '\x02';
    key += v;
  }
  return key;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, Labels labels) {
  SortLabels(&labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = counters_[Key(name, labels)];
  if (entry.metric == nullptr) {
    entry.name = name;
    entry.labels = std::move(labels);
    entry.metric = std::make_unique<Counter>();
  }
  return entry.metric.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Labels labels) {
  SortLabels(&labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = gauges_[Key(name, labels)];
  if (entry.metric == nullptr) {
    entry.name = name;
    entry.labels = std::move(labels);
    entry.metric = std::make_unique<Gauge>();
  }
  return entry.metric.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         Labels labels,
                                         HistogramOptions options) {
  SortLabels(&labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = histograms_[Key(name, labels)];
  if (entry.metric == nullptr) {
    entry.name = name;
    entry.labels = std::move(labels);
    entry.metric = std::make_unique<Histogram>(options);
  } else {
    QPP_CHECK_MSG(entry.metric->options() == options,
                  "histogram '" << name
                                << "' re-registered with a different layout");
  }
  return entry.metric.get();
}

std::string MetricsRegistry::StatszText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [key, e] : counters_) {
    (void)key;
    out += e.name + RenderLabels(e.labels) + " " +
           JsonNumber(e.metric->value()) + "\n";
  }
  for (const auto& [key, e] : gauges_) {
    (void)key;
    out += e.name + RenderLabels(e.labels) + " " +
           JsonNumber(e.metric->value()) + "\n";
  }
  for (const auto& [key, e] : histograms_) {
    (void)key;
    const HistogramSnapshot s = e.metric->Snapshot();
    const std::string labels = RenderLabels(e.labels);
    out += e.name + "_count" + labels + " " + JsonNumber(s.count()) + "\n";
    out += e.name + "_underflow" + labels + " " + JsonNumber(s.underflow) +
           "\n";
    out += e.name + "_overflow" + labels + " " + JsonNumber(s.overflow) +
           "\n";
    out += e.name + "_min" + labels + " " + JsonNumber(s.min) + "\n";
    out += e.name + "_max" + labels + " " + JsonNumber(s.max) + "\n";
    for (const double q : {0.5, 0.95, 0.99}) {
      const std::pair<std::string, std::string> quantile = {
          "quantile", JsonNumber(q)};
      out += e.name + RenderLabels(e.labels, &quantile) + " " +
             JsonNumber(s.Quantile(q)) + "\n";
    }
  }
  return out;
}

void MetricsRegistry::SetHelp(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[name] = help;
}

namespace {

/// Upper bucket boundary (`le`) of bucket `i` under `options`.
double BucketUpperBound(const HistogramOptions& options, size_t i) {
  return std::pow(10.0, options.min_exponent +
                            (static_cast<double>(i) + 1.0) /
                                static_cast<double>(
                                    options.buckets_per_decade));
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string current_family;
  const auto header = [&](const std::string& name, const char* type) {
    if (name == current_family) return;  // label variants share one header
    current_family = name;
    const auto it = help_.find(name);
    out += "# HELP " + name + " " +
           (it != help_.end() ? it->second
                              : std::string("qpp metric (see "
                                            "docs/OBSERVABILITY.md)")) +
           "\n";
    out += "# TYPE " + name + " " + type + "\n";
  };
  for (const auto& [key, e] : counters_) {
    (void)key;
    header(e.name, "counter");
    out += e.name + RenderLabels(e.labels) + " " +
           JsonNumber(e.metric->value()) + "\n";
  }
  current_family.clear();
  for (const auto& [key, e] : gauges_) {
    (void)key;
    header(e.name, "gauge");
    out += e.name + RenderLabels(e.labels) + " " +
           JsonNumber(e.metric->value()) + "\n";
  }
  current_family.clear();
  for (const auto& [key, e] : histograms_) {
    (void)key;
    header(e.name, "histogram");
    const HistogramSnapshot s = e.metric->Snapshot();
    // Exemplars indexed by bucket for the cumulative walk below.
    size_t next_exemplar = 0;
    uint64_t cumulative = s.underflow;  // below every boundary => in-range
    for (size_t i = 0; i < s.buckets.size(); ++i) {
      cumulative += s.buckets[i];
      const std::pair<std::string, std::string> le = {
          "le", JsonNumber(BucketUpperBound(s.options, i))};
      out += e.name + "_bucket" + RenderLabels(e.labels, &le) + " " +
             JsonNumber(cumulative);
      while (next_exemplar < s.exemplars.size() &&
             s.exemplars[next_exemplar].bucket < i) {
        ++next_exemplar;
      }
      if (next_exemplar < s.exemplars.size() &&
          s.exemplars[next_exemplar].bucket == i) {
        const HistogramExemplar& ex = s.exemplars[next_exemplar];
        char hex[17];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(ex.trace_id));
        out += std::string(" # {trace_id=\"") + hex + "\"} " +
               JsonNumber(ex.value);
      }
      out += "\n";
    }
    const std::pair<std::string, std::string> inf = {"le", "+Inf"};
    out += e.name + "_bucket" + RenderLabels(e.labels, &inf) + " " +
           JsonNumber(s.count()) + "\n";
    out += e.name + "_sum" + RenderLabels(e.labels) + " " +
           JsonNumber(s.sum) + "\n";
    out += e.name + "_count" + RenderLabels(e.labels) + " " +
           JsonNumber(s.count()) + "\n";
  }
  out += "# EOF\n";
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& [key, e] : counters_) {
    (void)key;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":" + JsonString(e.name) +
           ",\"labels\":" + LabelsJson(e.labels) +
           ",\"value\":" + JsonNumber(e.metric->value()) + "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& [key, e] : gauges_) {
    (void)key;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":" + JsonString(e.name) +
           ",\"labels\":" + LabelsJson(e.labels) +
           ",\"value\":" + JsonNumber(e.metric->value()) + "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& [key, e] : histograms_) {
    (void)key;
    if (!first) out += ',';
    first = false;
    const HistogramSnapshot s = e.metric->Snapshot();
    out += "{\"name\":" + JsonString(e.name) +
           ",\"labels\":" + LabelsJson(e.labels) +
           ",\"count\":" + JsonNumber(s.count()) +
           ",\"underflow\":" + JsonNumber(s.underflow) +
           ",\"overflow\":" + JsonNumber(s.overflow) +
           ",\"min\":" + JsonNumber(s.min) + ",\"max\":" + JsonNumber(s.max) +
           ",\"p50\":" + JsonNumber(s.Quantile(0.5)) +
           ",\"p95\":" + JsonNumber(s.Quantile(0.95)) +
           ",\"p99\":" + JsonNumber(s.Quantile(0.99)) + "}";
  }
  out += "]}";
  return out;
}

size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace qpp::obs
