#include "obs/registry.h"

#include <algorithm>

#include "common/check.h"
#include "obs/json_util.h"

namespace qpp::obs {

namespace {

void SortLabels(Labels* labels) {
  std::sort(labels->begin(), labels->end());
}

/// `{k="v",k2="v2"}`, or "" when unlabeled; `extra` appends one more pair
/// (used for quantile labels on histogram lines).
std::string RenderLabels(const Labels& labels,
                         const std::pair<std::string, std::string>* extra =
                             nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + v + "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ',';
    out += extra->first + "=\"" + extra->second + "\"";
  }
  out += '}';
  return out;
}

std::string LabelsJson(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += JsonString(k) + ":" + JsonString(v);
  }
  out += '}';
  return out;
}

}  // namespace

std::string MetricsRegistry::Key(const std::string& name,
                                 const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x01';
    key += k;
    key += '\x02';
    key += v;
  }
  return key;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, Labels labels) {
  SortLabels(&labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = counters_[Key(name, labels)];
  if (entry.metric == nullptr) {
    entry.name = name;
    entry.labels = std::move(labels);
    entry.metric = std::make_unique<Counter>();
  }
  return entry.metric.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Labels labels) {
  SortLabels(&labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = gauges_[Key(name, labels)];
  if (entry.metric == nullptr) {
    entry.name = name;
    entry.labels = std::move(labels);
    entry.metric = std::make_unique<Gauge>();
  }
  return entry.metric.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         Labels labels,
                                         HistogramOptions options) {
  SortLabels(&labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = histograms_[Key(name, labels)];
  if (entry.metric == nullptr) {
    entry.name = name;
    entry.labels = std::move(labels);
    entry.metric = std::make_unique<Histogram>(options);
  } else {
    QPP_CHECK_MSG(entry.metric->options() == options,
                  "histogram '" << name
                                << "' re-registered with a different layout");
  }
  return entry.metric.get();
}

std::string MetricsRegistry::StatszText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [key, e] : counters_) {
    (void)key;
    out += e.name + RenderLabels(e.labels) + " " +
           JsonNumber(e.metric->value()) + "\n";
  }
  for (const auto& [key, e] : gauges_) {
    (void)key;
    out += e.name + RenderLabels(e.labels) + " " +
           JsonNumber(e.metric->value()) + "\n";
  }
  for (const auto& [key, e] : histograms_) {
    (void)key;
    const HistogramSnapshot s = e.metric->Snapshot();
    const std::string labels = RenderLabels(e.labels);
    out += e.name + "_count" + labels + " " + JsonNumber(s.count()) + "\n";
    out += e.name + "_underflow" + labels + " " + JsonNumber(s.underflow) +
           "\n";
    out += e.name + "_overflow" + labels + " " + JsonNumber(s.overflow) +
           "\n";
    out += e.name + "_min" + labels + " " + JsonNumber(s.min) + "\n";
    out += e.name + "_max" + labels + " " + JsonNumber(s.max) + "\n";
    for (const double q : {0.5, 0.95, 0.99}) {
      const std::pair<std::string, std::string> quantile = {
          "quantile", JsonNumber(q)};
      out += e.name + RenderLabels(e.labels, &quantile) + " " +
             JsonNumber(s.Quantile(q)) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& [key, e] : counters_) {
    (void)key;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":" + JsonString(e.name) +
           ",\"labels\":" + LabelsJson(e.labels) +
           ",\"value\":" + JsonNumber(e.metric->value()) + "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& [key, e] : gauges_) {
    (void)key;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":" + JsonString(e.name) +
           ",\"labels\":" + LabelsJson(e.labels) +
           ",\"value\":" + JsonNumber(e.metric->value()) + "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& [key, e] : histograms_) {
    (void)key;
    if (!first) out += ',';
    first = false;
    const HistogramSnapshot s = e.metric->Snapshot();
    out += "{\"name\":" + JsonString(e.name) +
           ",\"labels\":" + LabelsJson(e.labels) +
           ",\"count\":" + JsonNumber(s.count()) +
           ",\"underflow\":" + JsonNumber(s.underflow) +
           ",\"overflow\":" + JsonNumber(s.overflow) +
           ",\"min\":" + JsonNumber(s.min) + ",\"max\":" + JsonNumber(s.max) +
           ",\"p50\":" + JsonNumber(s.Quantile(0.5)) +
           ",\"p95\":" + JsonNumber(s.Quantile(0.95)) +
           ",\"p99\":" + JsonNumber(s.Quantile(0.99)) + "}";
  }
  out += "]}";
  return out;
}

size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace qpp::obs
