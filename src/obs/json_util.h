// Tiny JSON emission helpers shared by the metrics registry and the trace
// exporter. Emission only — the exported files are consumed by
// chrome://tracing, Perfetto, and external dashboards. (The one place qpp
// reads JSON back is the golden-results suite's flat {"key": number}
// files, which carry their own minimal parser in bench/golden_metrics.)
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace qpp::obs {

/// Appends `s` to `*out` with JSON string escaping (quotes not included).
inline void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// `"s"` with escaping.
inline std::string JsonString(std::string_view s) {
  std::string out = "\"";
  AppendJsonEscaped(&out, s);
  out += '"';
  return out;
}

/// A double as a JSON number token. NaN/inf are not representable in JSON;
/// they render as 0 (snapshots normalize empty min/max before export, so
/// this is a belt-and-suspenders guard, not a data path).
inline std::string JsonNumber(double v) {
  if (!(v == v) || v > 1.7e308 || v < -1.7e308) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

inline std::string JsonNumber(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace qpp::obs
