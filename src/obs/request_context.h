// Request-scoped correlation: one deterministic trace id per request,
// carried from the fabric's front door down to the predictor's innermost
// span.
//
// The id is derived from (seed, sequence) with splitmix64 — never from the
// wall clock or an address — so a seeded run assigns the same id to the
// same request every time, and two same-seed runs produce byte-identical
// flight-recorder dumps and trace args. Zero is reserved as "no context".
//
// Propagation is two-layer:
//  * explicitly, as `obs::RequestContext` riding on serve::ServeRequest
//    (the fabric stamps it at Submit; anything holding the request can
//    read it);
//  * implicitly, as a thread-local current context (ScopedRequestContext)
//    for the stretches where the request identity cannot travel by value —
//    the predictor's internal spans, fault-injection draws, and escalation
//    instants all read CurrentRequestContext() instead of growing a
//    parameter. Span's destructor auto-tags every enabled span with the
//    current trace id (see trace.h), which is what makes "show me request
//    X's whole chain" a text search over the Chrome trace.
//
// Cost model: with no scope installed the thread-local holds {0} and every
// consumer's check is one load + compare; installing a scope is two stores.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/rng.h"

namespace qpp::obs {

/// The identity one request carries through the stack.
struct RequestContext {
  uint64_t trace_id = 0;  ///< 0 = no context assigned
  bool valid() const { return trace_id != 0; }
};

/// The trace id of the `sequence`-th request (0-based) of a run keyed by
/// `seed`. Pure, collision-resistant across sequences, and never 0.
inline uint64_t DeriveTraceId(uint64_t seed, uint64_t sequence) {
  const uint64_t id = SplitMix64(SplitMix64(seed ^ 0x0B5E11D5ull) + sequence);
  return id != 0 ? id : 0x0B5E11D5ull;  // keep 0 meaning "no context"
}

/// `trace_id` as the 16-char lowercase hex string used in trace args,
/// flight dumps, and exemplar labels. Hex (not a JSON number) because
/// 64-bit ids do not survive the double round-trip JSON viewers apply.
inline std::string TraceIdHex(uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

/// Mints RequestContexts for a run: ids are DeriveTraceId(seed, 0), (seed,
/// 1), ... in claim order. Thread-safe; under sequential driving the
/// request-to-id assignment replays exactly.
class TraceIdGenerator {
 public:
  explicit TraceIdGenerator(uint64_t seed) : seed_(seed) {}

  RequestContext Next() {
    return {DeriveTraceId(seed_,
                          next_.fetch_add(1, std::memory_order_relaxed))};
  }

  uint64_t issued() const { return next_.load(std::memory_order_relaxed); }

 private:
  const uint64_t seed_;
  std::atomic<uint64_t> next_{0};
};

namespace detail {
inline thread_local RequestContext tls_request_context{};
}  // namespace detail

/// The context installed on this thread; {0} when none.
inline const RequestContext& CurrentRequestContext() {
  return detail::tls_request_context;
}

/// RAII scope installing `ctx` as the thread's current context. Nests:
/// the previous context is restored at scope exit. Installing an invalid
/// context is allowed and simply masks the outer one.
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(const RequestContext& ctx)
      : prev_(detail::tls_request_context) {
    detail::tls_request_context = ctx;
  }
  ~ScopedRequestContext() { detail::tls_request_context = prev_; }

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  const RequestContext prev_;
};

}  // namespace qpp::obs
