// Metric primitives: counters, gauges, and log-bucketed histograms with
// lock-free hot-path recording.
//
// These generalize the one-off latency histogram the serving layer started
// with (PR 1's serve::LatencyHistogram is now an alias of obs::Histogram).
// Everything on the record path is a relaxed std::atomic operation — the
// values are monotonic tallies or last-write-wins gauges, not
// synchronization, and a snapshot taken under traffic may be a few events
// stale. Instances are created and owned by obs::MetricsRegistry (see
// registry.h); the returned pointers are stable for the registry's
// lifetime, so call sites resolve a metric once and record through the
// pointer forever.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace qpp::obs {

/// Monotonic event tally. Inc() is wait-free.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (drift EWMAs, queue depths, shares).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket layout of a log-spaced histogram: `buckets_per_decade` buckets
/// per power of ten across [10^min_exponent, 10^max_exponent). Values
/// outside the range land in explicit underflow/overflow buckets instead
/// of being silently clamped into the edge buckets.
struct HistogramOptions {
  int min_exponent = -7;  ///< 100 ns (the serving latency default)
  int max_exponent = 2;   ///< 100 s
  size_t buckets_per_decade = 8;
  /// Keep one exemplar (last recorded value + trace id) per bucket, so a
  /// tail bucket in an exposition links straight to the Chrome trace of a
  /// request that landed there. Off by default: two extra relaxed stores
  /// per Record when on, zero cost when off.
  bool exemplars = false;

  size_t num_buckets() const {
    return buckets_per_decade * static_cast<size_t>(max_exponent -
                                                    min_exponent);
  }
  bool operator==(const HistogramOptions&) const = default;
};

/// One sampled (value, trace id) pair pinned to a bucket; trace_id 0 means
/// the sample carried no request context.
struct HistogramExemplar {
  size_t bucket = 0;  ///< index into HistogramSnapshot::buckets
  double value = 0.0;
  uint64_t trace_id = 0;
};

/// One consistent-enough read of a Histogram, safe to keep, merge, and
/// query after the source histogram moved on (or was destroyed).
struct HistogramSnapshot {
  HistogramOptions options;
  std::vector<uint64_t> buckets;
  uint64_t underflow = 0;  ///< samples below 10^min_exponent (incl. <= 0)
  uint64_t overflow = 0;   ///< samples >= 10^max_exponent
  /// Exact extreme values observed (not bucket estimates); 0 when empty.
  double min = 0.0;
  double max = 0.0;
  /// Running sum of every recorded value (Prometheus `_sum`; NaN excluded).
  double sum = 0.0;
  /// Per-bucket exemplars (only when options.exemplars), sorted by bucket;
  /// buckets that never saw a sample have no entry.
  std::vector<HistogramExemplar> exemplars;

  uint64_t count() const;

  /// Value at quantile q in [0, 1]; 0 when empty.
  ///
  /// Bucket-boundary semantics (nearest-rank): the estimate targets the
  /// rank-max(ceil(q * count), 1) sample in sorted order, i.e. the smallest
  /// recorded value v such that at least that many samples are <= v. The
  /// bucket containing that rank is found by a cumulative walk
  /// (underflow, then buckets low to high, then overflow); in-range ranks
  /// resolve to the geometric midpoint of their bucket (<= ~15% relative
  /// error at 8 buckets/decade — see QuantileBounds for the exact
  /// bracket), ranks landing in the underflow/overflow buckets resolve to
  /// the exact observed min/max. A sample recorded exactly on a bucket
  /// boundary 10^(min_exponent + i/buckets_per_decade) counts toward the
  /// bucket ABOVE the boundary (Record truncates the log-index).
  double Quantile(double q) const;

  /// Exact bracket for the nearest-rank sample Quantile(q) estimates: the
  /// true sample value lies in [lower, upper]. For in-range ranks these
  /// are the containing bucket's boundaries (upper exclusive in Record's
  /// terms, but the true sample can equal `upper` only by landing in the
  /// next bucket, so the closed interval is always safe); for ranks in
  /// the underflow/overflow buckets both bounds collapse to the exact
  /// observed min/max. Empty histogram => {0, 0}.
  struct QuantileBracket {
    double lower = 0.0;
    double upper = 0.0;
  };
  QuantileBracket QuantileBounds(double q) const;

  /// Accumulates `other` into this snapshot. Layouts must match.
  void Merge(const HistogramSnapshot& other);

  /// Rewinds this snapshot by an `earlier` snapshot of the SAME histogram,
  /// leaving the tumbling-window delta the SLO engine evaluates (counts
  /// and sum subtract; layouts must match). min/max describe the full
  /// lifetime, not the window, and are kept as-is; exemplars are filtered
  /// to buckets the window actually touched (the "last sample" exemplar of
  /// a touched bucket is by construction a window sample under sequential
  /// recording).
  void Subtract(const HistogramSnapshot& earlier);
};

/// Log-spaced histogram. Record() is wait-free; Snapshot() walks the
/// buckets with relaxed loads.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value) { Record(value, 0); }
  /// Records `value` and, when exemplars are enabled and trace_id != 0,
  /// remembers (value, trace_id) as the bucket's exemplar (last write
  /// wins). Still wait-free.
  void Record(double value, uint64_t trace_id);

  HistogramSnapshot Snapshot() const;
  const HistogramOptions& options() const { return options_; }

  // Conveniences over a fresh snapshot (the shape of the original
  // serve::LatencyHistogram API, kept so existing call sites read the same).
  uint64_t count() const { return Snapshot().count(); }
  double Quantile(double q) const { return Snapshot().Quantile(q); }

 private:
  void UpdateExtremes(double value);

  // Exemplar slot: last (trace id, value bits) recorded into the bucket.
  // Two independent relaxed atomics — a torn pair under contention is two
  // real samples' fields mixed, acceptable for a debugging pointer.
  struct ExemplarSlot {
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> value_bits{0};
  };

  HistogramOptions options_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> underflow_{0};
  std::atomic<uint64_t> overflow_{0};
  std::atomic<double> sum_{0.0};
  // Observed extremes as CAS-updated double bit patterns (+inf / -inf
  // sentinels until the first sample).
  std::atomic<uint64_t> min_bits_;
  std::atomic<uint64_t> max_bits_;
  std::vector<ExemplarSlot> exemplars_;  ///< empty unless options.exemplars
};

}  // namespace qpp::obs
