// Online prediction-drift monitoring.
//
// The paper trains once and predicts forever; production does not work
// that way — data grows, configurations change, OS upgrades shift operator
// costs (the paper's own Section VII anecdote), and the model quietly
// rots. The LinkedIn evaluation of learned QPP models (PAPERS.md) found
// that operational value hinges on tracking prediction error continuously;
// Kleerekoper et al.'s optimizer-cost study motivates watching the
// calibrated-cost fallback path with the same instrument rather than
// trusting either predictor blindly.
//
// DriftMonitor compares served predictions against observed metrics (from
// the execution simulator standing in for the real system) and maintains
// exponentially weighted moving averages of per-metric relative error —
// overall and per query pool (feather / golf ball / bowling ball), and
// separately for the model path vs the optimizer-cost fallback path (the
// fallback only predicts elapsed time, so only elapsed is compared there).
//
// Outputs:
//  * gauges in a MetricsRegistry (qpp_drift_relerr_ewma{metric=...,pool=...},
//    qpp_drift_fallback_share, ...) so /statsz exposes drift;
//  * a drift hook fired when any model-path metric EWMA crosses the
//    threshold — wire it to core::SlidingWindowPredictor::Retrain() (or
//    any retraining trigger) to close the loop:
//
//      drift.set_drift_hook([&] { sliding.Retrain(); });
//
// Thread safety: Observe() and all readers are safe from any thread (one
// mutex; observation rates are per-query, not per-instruction). The hook
// runs on the observing thread, outside the monitor's lock.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "engine/metrics.h"
#include "obs/registry.h"
#include "workload/pools.h"

namespace qpp::obs {

struct DriftMonitorOptions {
  /// EWMA smoothing: weight of the newest observation.
  double alpha = 0.1;
  /// Any model-path metric EWMA above this (once warm) signals drift.
  double relative_error_threshold = 0.5;
  /// Observations before the first signal can fire (EWMA warm-up).
  size_t min_observations = 32;
  /// Model-path observations between consecutive drift signals, so a
  /// sustained drift does not fire the retrain hook per query.
  size_t refire_interval = 32;
};

class DriftMonitor {
 public:
  /// Which serving path produced the prediction being scored.
  enum class Source {
    kModel,     ///< KCCA model (or cache of it)
    kFallback,  ///< calibrated optimizer-cost estimate
  };

  using Options = DriftMonitorOptions;

  /// `registry` (optional) receives drift gauges, updated on every
  /// Observe; it must outlive the monitor.
  explicit DriftMonitor(Options options = {},
                        MetricsRegistry* registry = nullptr);

  /// Scores one served prediction against the observed metrics. The query
  /// pool is derived from the observed elapsed time (the paper's Fig. 2
  /// boundaries). Returns true when this observation raised a drift
  /// signal (and fired the hook, if set).
  bool Observe(Source source, const engine::QueryMetrics& predicted,
               const engine::QueryMetrics& actual);

  /// Model-path relative-error EWMA for metric index m (paper order,
  /// engine::QueryMetrics::MetricNames()); 0 before any observation.
  double MetricEwma(size_t m) const;
  double PoolMetricEwma(workload::QueryType pool, size_t m) const;
  /// Fallback-path elapsed-time relative-error EWMA.
  double FallbackElapsedEwma() const;

  uint64_t model_observations() const;
  uint64_t fallback_observations() const;
  /// Fraction of scored responses answered by the fallback path.
  double fallback_share() const;

  /// True when any model-path metric EWMA currently exceeds the threshold
  /// (and the monitor is warm).
  bool drifted() const;

  using DriftHook = std::function<void()>;
  void set_drift_hook(DriftHook hook);

  /// Multi-line report block: per-metric EWMAs with pool breakdown, plus
  /// the fallback-vs-model share and error comparison (printed by
  /// `qpp_tool serve` under the latency block).
  std::string ToString() const;

 private:
  struct Ewma {
    double value = 0.0;
    uint64_t n = 0;
    void Update(double x, double alpha) {
      value = n == 0 ? x : alpha * x + (1.0 - alpha) * value;
      ++n;
    }
  };

  static constexpr size_t kNumMetrics = engine::QueryMetrics::kNumMetrics;
  static constexpr size_t kNumPools = 4;  // feather/golf/bowling/wrecking

  void ExportLocked();

  const Options options_;
  MetricsRegistry* const registry_;

  mutable std::mutex mu_;
  Ewma overall_[kNumMetrics];
  Ewma per_pool_[kNumPools][kNumMetrics];
  Ewma fallback_elapsed_;
  uint64_t model_obs_ = 0;
  uint64_t fallback_obs_ = 0;
  uint64_t since_signal_ = 0;
  DriftHook hook_;

  // Gauge/counter pointers resolved once at construction (null without a
  // registry).
  Gauge* overall_gauges_[kNumMetrics] = {};
  Gauge* pool_gauges_[kNumPools][kNumMetrics] = {};
  Gauge* fallback_share_gauge_ = nullptr;
  Gauge* fallback_elapsed_gauge_ = nullptr;
  Counter* model_obs_counter_ = nullptr;
  Counter* fallback_obs_counter_ = nullptr;
  Counter* signals_counter_ = nullptr;
};

}  // namespace qpp::obs
