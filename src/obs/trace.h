// Per-request span tracing with Chrome trace_event JSON export.
//
// A TraceRecorder collects timestamped spans from any number of threads;
// WriteChromeTrace() emits a file loadable in chrome://tracing or
// https://ui.perfetto.dev. Two kinds of producers feed it:
//
//  * RAII spans (obs::Span) measured against the wall clock — the serve
//    pipeline stages (batch assembly, cache lookup, predict, respond) and
//    the predictor's internal stages (preprocess, kcca_project, knn, ...).
//  * Manually timed complete events — queue-wait intervals whose endpoints
//    were observed on different threads, and the execution simulator's
//    per-operator spans, which live in *simulated* time but are placed on
//    the recorder's timeline so a simulated query's critical path renders
//    next to the service's own latency (separate pid / track group).
//
// Cost model: tracing must be free when disabled. Every recording helper
// takes a `TraceRecorder*` that is null when tracing is off, and bails on
// one pointer test before touching the clock — a Span on a null recorder
// compiles down to two branches and no stores. The serve throughput gate
// (bench_serve_throughput) runs with tracing off and verifies the hot path
// stayed intact.
//
// Thread safety: all members are safe to call concurrently; event append
// takes a mutex (one lock per span *end*, never on the disabled path).
//
// Capacity: the recorder keeps at most TraceRecorderOptions::max_events
// events; later Adds are counted (dropped_count, plus the optional
// qpp_trace_dropped_events_total counter) and discarded, so a
// tracing-enabled million-request soak degrades to a truncated trace
// instead of an OOM. Request-scoped correlation: every span recorded while
// an obs::RequestContext scope is installed is auto-tagged with a
// `trace_id` arg (see request_context.h).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace qpp::obs {

/// One Chrome trace_event. `args` values are pre-encoded JSON tokens
/// (quoted strings or bare numbers) — see Span::AddArg.
struct TraceEvent {
  /// 'X' = complete span, 'b'/'e' = async begin/end (overlap-safe, used
  /// for queue waits), 'M' = metadata, 'i' = instant.
  char phase = 'X';
  std::string name;
  std::string category;
  uint32_t pid = 1;
  uint32_t tid = 0;
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;  ///< complete events only
  uint64_t id = 0;      ///< async events only
  std::vector<std::pair<std::string, std::string>> args;
};

struct TraceRecorderOptions {
  /// Hard cap on buffered events; Adds past it are dropped (and counted).
  /// The default holds ~100 MB of traced soak comfortably while bounding
  /// the worst case; tests use small caps to pin the drop behavior.
  size_t max_events = 1u << 20;
  /// Optional registry counter (qpp_trace_dropped_events_total by
  /// convention) bumped once per dropped event; must outlive the recorder.
  Counter* dropped_counter = nullptr;
};

class TraceRecorder {
 public:
  /// Track groups (Chrome "processes") the stack records into.
  static constexpr uint32_t kServicePid = 1;    ///< serve pipeline wall time
  static constexpr uint32_t kSimulatorPid = 2;  ///< simulated query time

  explicit TraceRecorder(TraceRecorderOptions options = {});
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since the recorder was created (monotonic clock).
  uint64_t NowMicros() const;
  /// The same timeline for an externally captured steady_clock instant
  /// (clamped to 0 for instants predating the recorder).
  uint64_t MicrosAt(std::chrono::steady_clock::time_point tp) const;

  /// Small stable id for the calling thread (1, 2, ... in first-seen
  /// order), used as the Chrome tid.
  uint32_t CurrentThreadTid();

  /// Reserves `n` consecutive track ids for manually timed spans (the
  /// simulator takes one group of lanes per traced query so queries never
  /// interleave on a track). Independent of thread tids only across pids —
  /// callers use these with pid != kServicePid.
  uint32_t AllocateTrackIds(uint32_t n);

  /// Unique id for async ('b'/'e') event pairing.
  uint64_t NextAsyncId();

  /// Appends `event`, or drops it (counted) once max_events is buffered.
  void Add(TraceEvent event);

  size_t event_count() const;
  /// Events discarded by the max_events cap so far.
  uint64_t dropped_count() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  const TraceRecorderOptions& options() const { return options_; }
  std::vector<TraceEvent> Events() const;  ///< snapshot copy (tests/tools)

  /// The full Chrome trace JSON document:
  /// {"displayTimeUnit":"ms","traceEvents":[...]}.
  std::string ToJson() const;
  void WriteChromeTrace(std::ostream* os) const;

 private:
  const TraceRecorderOptions options_;
  const std::chrono::steady_clock::time_point origin_;
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, uint32_t> thread_tids_;
  uint32_t next_thread_tid_ = 1;
  uint32_t next_track_id_ = 1;
  uint64_t next_async_id_ = 1;
};

/// RAII complete-event span. Constructed against a possibly-null recorder:
/// null means tracing is disabled and every member function is an inert
/// branch (no clock read, no allocation).
///
/// When the span closes while an obs::RequestContext scope is installed on
/// the thread (and no explicit "trace_id" arg was added), the current
/// trace id is appended as a `trace_id` arg — request correlation with no
/// signature changes anywhere a Span already exists.
///
///   obs::Span span(trace, "predict");      // trace may be nullptr
///   span.AddArg("batch", batch.size());
///   ...                                     // span closes at scope exit
class Span {
 public:
  Span(TraceRecorder* recorder, const char* name,
       const char* category = "serve");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void AddArg(const char* key, double value);
  void AddArg(const char* key, uint64_t value);
  void AddArg(const char* key, const char* value);

 private:
  TraceRecorder* const recorder_;
  const char* const name_;
  const char* const category_;
  uint64_t start_us_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace qpp::obs
