// The unified metrics registry: named + labeled counters, gauges, and
// histograms with a snapshot/export API.
//
// Registration (GetCounter/GetGauge/GetHistogram) takes a mutex and
// returns a stable pointer — resolve once, then record through the pointer
// with zero registry involvement (the metric primitives themselves are
// lock-free, see metrics.h). Re-requesting the same (name, labels) returns
// the same instance, so independent components can share a metric.
//
// Exports:
//   StatszText()     — plaintext exposition, one `name{labels} value` line
//                      per sample in deterministic order (the /statsz page
//                      of the service).
//   PrometheusText() — Prometheus/OpenMetrics text exposition with
//                      `# HELP`/`# TYPE` headers, cumulative
//                      `_bucket{le="..."}` series per histogram, and
//                      OpenMetrics exemplar comments linking tail buckets
//                      to request trace ids.
//   ToJson()         — the same data as a JSON document for dashboards.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace qpp::obs {

/// Metric labels as key/value pairs; sorted by key at registration time so
/// label order never distinguishes metrics.
using Labels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates; the pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name, Labels labels = {});
  Gauge* GetGauge(const std::string& name, Labels labels = {});
  /// The histogram's layout is fixed at first registration; re-requesting
  /// with different options is a programming error (QPP_CHECK).
  Histogram* GetHistogram(const std::string& name, Labels labels = {},
                          HistogramOptions options = {});

  /// Plaintext dump. Histograms expand into _count/_underflow/_overflow/
  /// _min/_max samples plus quantile-labeled value lines.
  std::string StatszText() const;

  /// Registers the `# HELP` text PrometheusText() emits for `name` (all
  /// label variants of a metric share one help string). Optional; metrics
  /// without one get a generic line.
  void SetHelp(const std::string& name, const std::string& help);

  /// Prometheus text exposition. Counters/gauges render as one sample per
  /// label set under a shared `# HELP`/`# TYPE` header; histograms render
  /// as cumulative `_bucket{le="..."}` series (underflow counts into every
  /// bucket, `le="+Inf"` adds overflow) plus `_sum`/`_count`, with
  /// OpenMetrics `# {trace_id="..."} value` exemplar suffixes on buckets
  /// that carry one. Deterministic order; ends with `# EOF`.
  std::string PrometheusText() const;

  /// {"counters": [...], "gauges": [...], "histograms": [...]}.
  std::string ToJson() const;

  size_t num_metrics() const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> metric;
  };

  static std::string Key(const std::string& name, const Labels& labels);

  mutable std::mutex mu_;
  // std::map keeps export order deterministic (sorted by name + labels).
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
  std::map<std::string, std::string> help_;  // metric name -> # HELP text
};

}  // namespace qpp::obs
