// The deterministic windowed SLO engine: tumbling windows over registry
// metrics, keyed on observation count (one Tick per unit of work — a
// response, a request, a virtual-time step), never on the wall clock.
//
// Rules are declarative:
//   * histogram-quantile — "p99 of this latency histogram over the last
//     window must stay under the SLO";
//   * counter-ratio — "fallback share of responses over the window must
//     stay under X" (burn-rate style: numerator delta / denominator delta);
//   * gauge-threshold — "the drift EWMA must stay under X" (instantaneous;
//     gauges are already windowed by their producer).
//
// Every window close evaluates every rule against the window's metric
// *delta* (baseline snapshots are advanced per window), publishes the
// value into qpp_slo_* metrics, and emits one counted alert + flight-
// recorder event + trace instant per breaching rule. Because windows are
// tick-counted and the evaluated values come from deterministic inputs in
// the seeded harnesses, two same-seed runs fire byte-identical alerts.
//
// The engine is the single source of SLO truth: fabric::AdmissionController
// consumes its windowed p99 instead of keeping a private latency ring, the
// flight recorder dumps on its breaches, and tests assert on its counters
// — one rule set, three consumers.
//
// Eager startup: a tumbling window says nothing until the first window
// closes. Consumers that steer live traffic (admission) can set
// `eager_refresh_every` to also evaluate over the partial first-ish window
// every N ticks, matching the "refresh eagerly while filling" behavior the
// admission controller always had. Eager evaluations update rule values
// and alerts but do not advance window baselines or the window index.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace qpp::obs {

struct SloRule {
  enum class Kind {
    kHistogramQuantile,  ///< value = window-delta Quantile(quantile)
    kCounterRatio,       ///< value = Δnumerator / Δdenominator
    kGaugeThreshold,     ///< value = gauge->value() at evaluation
  };

  std::string name;  ///< alert label ("admission_p99", "fallback_share")
  Kind kind = Kind::kHistogramQuantile;
  /// value > threshold ⇒ the rule breaches.
  double threshold = 0.0;
  /// Windows with fewer samples than this never breach (Δdenominator for
  /// ratio rules, window count for quantile rules; gauges ignore it).
  uint64_t min_samples = 1;

  // Exactly one of the following groups, per kind. The metrics must
  // outlive the engine.
  const Histogram* histogram = nullptr;
  double quantile = 0.99;
  const Counter* numerator = nullptr;
  const Counter* denominator = nullptr;
  const Gauge* gauge = nullptr;
};

/// One rule's verdict at one evaluation.
struct SloRuleOutcome {
  std::string rule;
  double value = 0.0;
  double threshold = 0.0;
  uint64_t samples = 0;
  bool breached = false;
};

struct SloEvaluation {
  uint64_t window_index = 0;  ///< windows closed so far (eager: next index)
  bool eager = false;         ///< partial-window refresh, not a close
  std::vector<SloRuleOutcome> rules;

  bool any_breached() const {
    for (const SloRuleOutcome& r : rules) {
      if (r.breached) return true;
    }
    return false;
  }
};

struct SloEngineOptions {
  /// Ticks per tumbling window.
  uint64_t window_ticks = 256;
  /// 0 = pure tumbling windows; N > 0 also evaluates every N ticks while
  /// the current window is still open (see file comment).
  uint64_t eager_refresh_every = 0;
  /// Optional sinks; must outlive the engine. `registry` receives the
  /// qpp_slo_* self-metrics, `flight` one event per window close and per
  /// alert, `trace` one instant per alert (category "slo").
  MetricsRegistry* registry = nullptr;
  FlightRecorder* flight = nullptr;
  TraceRecorder* trace = nullptr;
};

class SloEngine {
 public:
  explicit SloEngine(SloEngineOptions options = {});

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Registers a rule; its baseline is the metric's state at this call.
  /// Add rules before ticking starts (registration takes the same lock).
  void AddRule(SloRule rule);

  /// Advances virtual time by one observation. Returns the evaluation when
  /// this tick closed a window (or hit an eager refresh), nullopt
  /// otherwise. Thread-safe; under sequential driving fully deterministic.
  std::optional<SloEvaluation> Tick();

  /// Evaluates all rules against the current partial window without
  /// advancing anything (tools, tests, dump triggers).
  SloEvaluation EvaluateNow() const;

  /// True while the latest evaluation had at least one breaching rule.
  bool burning() const;
  /// Latest computed value of `rule` (0 before its first evaluation).
  double RuleValue(const std::string& rule) const;

  uint64_t ticks() const;
  uint64_t windows_closed() const;
  uint64_t alerts_total() const;
  const SloEngineOptions& options() const { return options_; }

 private:
  struct RuleState {
    SloRule rule;
    // Window baselines, advanced at every window close.
    HistogramSnapshot histogram_base;
    uint64_t numerator_base = 0;
    uint64_t denominator_base = 0;
    double last_value = 0.0;
    Counter* alerts = nullptr;    ///< qpp_slo_alerts_total{rule=...}
    Gauge* value_gauge = nullptr; ///< qpp_slo_rule_value{rule=...}
  };

  SloRuleOutcome EvaluateRuleLocked(const RuleState& state) const;
  SloEvaluation EvaluateLocked(bool eager, uint64_t window_index) const;
  void PublishLocked(const SloEvaluation& eval);

  const SloEngineOptions options_;
  mutable std::mutex mu_;
  std::vector<RuleState> rules_;
  uint64_t ticks_ = 0;
  uint64_t ticks_in_window_ = 0;
  uint64_t windows_closed_ = 0;
  uint64_t alerts_total_ = 0;
  bool burning_ = false;
  Counter* windows_counter_ = nullptr;
  Counter* evaluations_counter_ = nullptr;
  Counter* alerts_counter_ = nullptr;
  Gauge* burning_gauge_ = nullptr;
};

}  // namespace qpp::obs
