#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace qpp::obs {

uint64_t HistogramSnapshot::count() const {
  uint64_t total = underflow + overflow;
  for (const uint64_t b : buckets) total += b;
  return total;
}

namespace {

// Locates the bucket holding the nearest-rank sample for quantile q:
// -1 = underflow, buckets.size() = overflow, otherwise the bucket index.
// Returns false when the snapshot is empty.
bool LocateQuantileBucket(const HistogramSnapshot& s, double q,
                          ptrdiff_t* bucket) {
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t total = s.count();
  if (total == 0) return false;
  const uint64_t rank = std::max<uint64_t>(
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))), 1);
  if (rank <= s.underflow) {
    *bucket = -1;
    return true;
  }
  uint64_t seen = s.underflow;
  for (size_t i = 0; i < s.buckets.size(); ++i) {
    seen += s.buckets[i];
    if (seen >= rank) {
      *bucket = static_cast<ptrdiff_t>(i);
      return true;
    }
  }
  *bucket = static_cast<ptrdiff_t>(s.buckets.size());  // overflow
  return true;
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  ptrdiff_t bucket = 0;
  if (!LocateQuantileBucket(*this, q, &bucket)) return 0.0;
  if (bucket < 0) return min;
  if (bucket >= static_cast<ptrdiff_t>(buckets.size())) return max;
  const double exp = options.min_exponent +
                     (static_cast<double>(bucket) + 0.5) /
                         static_cast<double>(options.buckets_per_decade);
  return std::pow(10.0, exp);
}

HistogramSnapshot::QuantileBracket HistogramSnapshot::QuantileBounds(
    double q) const {
  ptrdiff_t bucket = 0;
  if (!LocateQuantileBucket(*this, q, &bucket)) return {};
  if (bucket < 0) return {min, min};
  if (bucket >= static_cast<ptrdiff_t>(buckets.size())) return {max, max};
  const double denom = static_cast<double>(options.buckets_per_decade);
  return {std::pow(10.0, options.min_exponent +
                             static_cast<double>(bucket) / denom),
          std::pow(10.0, options.min_exponent +
                             (static_cast<double>(bucket) + 1.0) / denom)};
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  QPP_CHECK_MSG(options == other.options,
                "cannot merge histograms with different bucket layouts");
  if (other.count() == 0) return;
  const bool was_empty = count() == 0;
  for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  underflow += other.underflow;
  overflow += other.overflow;
  sum += other.sum;
  min = was_empty ? other.min : std::min(min, other.min);
  max = was_empty ? other.max : std::max(max, other.max);
  // Adopt the other side's exemplar for buckets where we have none (an
  // exemplar is a pointer to *a* representative sample, not a statistic).
  for (const HistogramExemplar& e : other.exemplars) {
    const auto it =
        std::find_if(exemplars.begin(), exemplars.end(),
                     [&](const HistogramExemplar& m) {
                       return m.bucket == e.bucket;
                     });
    if (it == exemplars.end()) exemplars.push_back(e);
  }
  std::sort(exemplars.begin(), exemplars.end(),
            [](const HistogramExemplar& a, const HistogramExemplar& b) {
              return a.bucket < b.bucket;
            });
}

void HistogramSnapshot::Subtract(const HistogramSnapshot& earlier) {
  QPP_CHECK_MSG(options == earlier.options,
                "cannot subtract histograms with different bucket layouts");
  // Each slot is monotonic on the source histogram, but two relaxed
  // snapshots can be skewed a few events under concurrent recording;
  // saturate instead of wrapping.
  const auto sat_sub = [](uint64_t a, uint64_t b) {
    return a >= b ? a - b : 0;
  };
  for (size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] = sat_sub(buckets[i], earlier.buckets[i]);
  }
  underflow = sat_sub(underflow, earlier.underflow);
  overflow = sat_sub(overflow, earlier.overflow);
  sum = std::max(0.0, sum - earlier.sum);
  // Keep only exemplars whose bucket gained samples in this window.
  std::vector<HistogramExemplar> kept;
  for (const HistogramExemplar& e : exemplars) {
    if (e.bucket < buckets.size() && buckets[e.bucket] > 0) kept.push_back(e);
  }
  exemplars = std::move(kept);
}

Histogram::Histogram(HistogramOptions options)
    : options_(options),
      buckets_(options.num_buckets()),
      min_bits_(std::bit_cast<uint64_t>(
          std::numeric_limits<double>::infinity())),
      max_bits_(std::bit_cast<uint64_t>(
          -std::numeric_limits<double>::infinity())),
      exemplars_(options.exemplars ? options.num_buckets() : 0) {
  QPP_CHECK(options.max_exponent > options.min_exponent &&
            options.buckets_per_decade >= 1);
}

void Histogram::UpdateExtremes(double value) {
  uint64_t cur = min_bits_.load(std::memory_order_relaxed);
  while (value < std::bit_cast<double>(cur) &&
         !min_bits_.compare_exchange_weak(
             cur, std::bit_cast<uint64_t>(value), std::memory_order_relaxed)) {
  }
  cur = max_bits_.load(std::memory_order_relaxed);
  while (value > std::bit_cast<double>(cur) &&
         !max_bits_.compare_exchange_weak(
             cur, std::bit_cast<uint64_t>(value), std::memory_order_relaxed)) {
  }
}

void Histogram::Record(double value, uint64_t trace_id) {
  UpdateExtremes(value);
  if (value == value) {  // NaN must not poison the running sum
    sum_.fetch_add(value, std::memory_order_relaxed);
  }
  if (!(value >= std::pow(10.0, options_.min_exponent))) {
    // <= 0, NaN, and sub-range values are all "below the first bucket".
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const double idx_f =
      (std::log10(value) - options_.min_exponent) *
      static_cast<double>(options_.buckets_per_decade);
  if (idx_f >= static_cast<double>(buckets_.size())) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const size_t idx = static_cast<size_t>(idx_f);
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  if (!exemplars_.empty() && trace_id != 0) {
    exemplars_[idx].trace_id.store(trace_id, std::memory_order_relaxed);
    exemplars_[idx].value_bits.store(std::bit_cast<uint64_t>(value),
                                     std::memory_order_relaxed);
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.options = options_;
  s.buckets.resize(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.underflow = underflow_.load(std::memory_order_relaxed);
  s.overflow = overflow_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < exemplars_.size(); ++i) {
    const uint64_t trace_id =
        exemplars_[i].trace_id.load(std::memory_order_relaxed);
    if (trace_id == 0) continue;
    s.exemplars.push_back(
        {i,
         std::bit_cast<double>(
             exemplars_[i].value_bits.load(std::memory_order_relaxed)),
         trace_id});
  }
  const double min_v =
      std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
  const double max_v =
      std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  const bool has_samples = s.count() > 0;
  s.min = has_samples && std::isfinite(min_v) ? min_v : 0.0;
  s.max = has_samples && std::isfinite(max_v) ? max_v : 0.0;
  return s;
}

}  // namespace qpp::obs
