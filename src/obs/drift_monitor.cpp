#include "obs/drift_monitor.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace qpp::obs {

namespace {

/// |predicted - actual| relative to the observed magnitude, clamped so one
/// absurd pair cannot poison the EWMA forever. Zero-actual/zero-predicted
/// pairs (a metric genuinely absent, e.g. no disk I/O) score 0.
double RelativeError(double predicted, double actual) {
  const double denom = std::max(std::abs(actual), 1e-9);
  const double err = std::abs(predicted - actual) / denom;
  return std::min(err, 1e6);
}

size_t PoolIndex(workload::QueryType t) { return static_cast<size_t>(t); }

/// "golf ball" -> "golf_ball" for label values.
std::string PoolLabel(workload::QueryType t) {
  std::string s = workload::QueryTypeName(t);
  std::replace(s.begin(), s.end(), ' ', '_');
  return s;
}

}  // namespace

DriftMonitor::DriftMonitor(Options options, MetricsRegistry* registry)
    : options_(options), registry_(registry) {
  if (registry_ == nullptr) return;
  const auto names = engine::QueryMetrics::MetricNames();
  for (size_t m = 0; m < kNumMetrics; ++m) {
    overall_gauges_[m] =
        registry_->GetGauge("qpp_drift_relerr_ewma", {{"metric", names[m]}});
    for (size_t p = 0; p < kNumPools; ++p) {
      pool_gauges_[p][m] = registry_->GetGauge(
          "qpp_drift_relerr_ewma",
          {{"metric", names[m]},
           {"pool", PoolLabel(static_cast<workload::QueryType>(p))}});
    }
  }
  fallback_share_gauge_ = registry_->GetGauge("qpp_drift_fallback_share");
  fallback_elapsed_gauge_ =
      registry_->GetGauge("qpp_drift_fallback_elapsed_relerr_ewma");
  model_obs_counter_ = registry_->GetCounter("qpp_drift_observations_total",
                                             {{"source", "model"}});
  fallback_obs_counter_ = registry_->GetCounter(
      "qpp_drift_observations_total", {{"source", "fallback"}});
  signals_counter_ = registry_->GetCounter("qpp_drift_signals_total");
}

bool DriftMonitor::Observe(Source source,
                           const engine::QueryMetrics& predicted,
                           const engine::QueryMetrics& actual) {
  DriftHook hook_to_fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (source == Source::kFallback) {
      // The fallback only estimates elapsed time (the other five metrics
      // are "unknown", reported as zero); score what it actually claims.
      fallback_elapsed_.Update(
          RelativeError(predicted.elapsed_seconds, actual.elapsed_seconds),
          options_.alpha);
      ++fallback_obs_;
      if (fallback_obs_counter_ != nullptr) fallback_obs_counter_->Inc();
      ExportLocked();
      return false;
    }

    const size_t pool =
        PoolIndex(workload::ClassifyElapsed(actual.elapsed_seconds));
    const linalg::Vector pv = predicted.ToVector();
    const linalg::Vector av = actual.ToVector();
    for (size_t m = 0; m < kNumMetrics; ++m) {
      const double err = RelativeError(pv[m], av[m]);
      overall_[m].Update(err, options_.alpha);
      per_pool_[pool][m].Update(err, options_.alpha);
    }
    ++model_obs_;
    ++since_signal_;
    if (model_obs_counter_ != nullptr) model_obs_counter_->Inc();
    ExportLocked();

    const bool warm = model_obs_ >= options_.min_observations;
    const bool rearmed = since_signal_ >= options_.refire_interval;
    bool over = false;
    for (size_t m = 0; m < kNumMetrics; ++m) {
      over = over || overall_[m].value > options_.relative_error_threshold;
    }
    if (!(warm && rearmed && over)) return false;
    since_signal_ = 0;
    if (signals_counter_ != nullptr) signals_counter_->Inc();
    hook_to_fire = hook_;
  }
  if (hook_to_fire) hook_to_fire();
  return true;
}

double DriftMonitor::MetricEwma(size_t m) const {
  std::lock_guard<std::mutex> lock(mu_);
  return overall_[m].value;
}

double DriftMonitor::PoolMetricEwma(workload::QueryType pool,
                                    size_t m) const {
  std::lock_guard<std::mutex> lock(mu_);
  return per_pool_[PoolIndex(pool)][m].value;
}

double DriftMonitor::FallbackElapsedEwma() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fallback_elapsed_.value;
}

uint64_t DriftMonitor::model_observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return model_obs_;
}

uint64_t DriftMonitor::fallback_observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fallback_obs_;
}

double DriftMonitor::fallback_share() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t total = model_obs_ + fallback_obs_;
  return total > 0 ? static_cast<double>(fallback_obs_) /
                         static_cast<double>(total)
                   : 0.0;
}

bool DriftMonitor::drifted() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (model_obs_ < options_.min_observations) return false;
  for (size_t m = 0; m < kNumMetrics; ++m) {
    if (overall_[m].value > options_.relative_error_threshold) return true;
  }
  return false;
}

void DriftMonitor::set_drift_hook(DriftHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  hook_ = std::move(hook);
}

void DriftMonitor::ExportLocked() {
  if (registry_ == nullptr) return;
  for (size_t m = 0; m < kNumMetrics; ++m) {
    overall_gauges_[m]->Set(overall_[m].value);
    for (size_t p = 0; p < kNumPools; ++p) {
      pool_gauges_[p][m]->Set(per_pool_[p][m].value);
    }
  }
  const uint64_t total = model_obs_ + fallback_obs_;
  fallback_share_gauge_->Set(
      total > 0
          ? static_cast<double>(fallback_obs_) / static_cast<double>(total)
          : 0.0);
  fallback_elapsed_gauge_->Set(fallback_elapsed_.value);
}

std::string DriftMonitor::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto names = engine::QueryMetrics::MetricNames();
  std::string out =
      "drift (relative-error EWMA over model-served responses):\n";
  if (model_obs_ == 0) {
    out += "  (no scored model responses)\n";
  }
  for (size_t m = 0; m < kNumMetrics && model_obs_ > 0; ++m) {
    out += StrFormat("  %-18s %.3f", names[m].c_str(), overall_[m].value);
    std::string pools;
    for (size_t p = 0; p < kNumPools; ++p) {
      if (per_pool_[p][m].n == 0) continue;
      if (!pools.empty()) pools += ", ";
      pools += StrFormat(
          "%s %.3f",
          workload::QueryTypeName(static_cast<workload::QueryType>(p)),
          per_pool_[p][m].value);
    }
    if (!pools.empty()) out += "  [" + pools + "]";
    out += '\n';
  }
  const uint64_t total = model_obs_ + fallback_obs_;
  const double share =
      total > 0
          ? static_cast<double>(fallback_obs_) / static_cast<double>(total)
          : 0.0;
  out += StrFormat(
      "fallback vs KCCA:    model %.1f%% (n=%llu), fallback %.1f%% "
      "(n=%llu)\n",
      100.0 * (1.0 - share), static_cast<unsigned long long>(model_obs_),
      100.0 * share, static_cast<unsigned long long>(fallback_obs_));
  if (fallback_obs_ > 0 && model_obs_ > 0) {
    out += StrFormat(
        "  elapsed rel-err:   model EWMA %.3f vs fallback EWMA %.3f\n",
        overall_[0].value, fallback_elapsed_.value);
  }
  return out;
}

}  // namespace qpp::obs
