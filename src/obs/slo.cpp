#include "obs/slo.h"

#include "common/check.h"
#include "obs/json_util.h"
#include "obs/request_context.h"

namespace qpp::obs {

SloEngine::SloEngine(SloEngineOptions options) : options_(options) {
  QPP_CHECK(options_.window_ticks >= 1);
  if (options_.registry != nullptr) {
    windows_counter_ = options_.registry->GetCounter("qpp_slo_windows_total");
    evaluations_counter_ =
        options_.registry->GetCounter("qpp_slo_evaluations_total");
    alerts_counter_ = options_.registry->GetCounter("qpp_slo_alerts_total");
    burning_gauge_ = options_.registry->GetGauge("qpp_slo_burning");
  }
}

void SloEngine::AddRule(SloRule rule) {
  switch (rule.kind) {
    case SloRule::Kind::kHistogramQuantile:
      QPP_CHECK_MSG(rule.histogram != nullptr,
                    "quantile rule needs a histogram");
      break;
    case SloRule::Kind::kCounterRatio:
      QPP_CHECK_MSG(rule.numerator != nullptr && rule.denominator != nullptr,
                    "ratio rule needs numerator and denominator");
      break;
    case SloRule::Kind::kGaugeThreshold:
      QPP_CHECK_MSG(rule.gauge != nullptr, "gauge rule needs a gauge");
      break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  RuleState state;
  state.rule = std::move(rule);
  if (state.rule.kind == SloRule::Kind::kHistogramQuantile) {
    state.histogram_base = state.rule.histogram->Snapshot();
  } else if (state.rule.kind == SloRule::Kind::kCounterRatio) {
    state.numerator_base = state.rule.numerator->value();
    state.denominator_base = state.rule.denominator->value();
  }
  if (options_.registry != nullptr) {
    state.alerts = options_.registry->GetCounter(
        "qpp_slo_rule_alerts_total", {{"rule", state.rule.name}});
    state.value_gauge = options_.registry->GetGauge(
        "qpp_slo_rule_value", {{"rule", state.rule.name}});
  }
  rules_.push_back(std::move(state));
}

SloRuleOutcome SloEngine::EvaluateRuleLocked(const RuleState& state) const {
  const SloRule& rule = state.rule;
  SloRuleOutcome out;
  out.rule = rule.name;
  out.threshold = rule.threshold;
  switch (rule.kind) {
    case SloRule::Kind::kHistogramQuantile: {
      HistogramSnapshot window = rule.histogram->Snapshot();
      window.Subtract(state.histogram_base);
      out.samples = window.count();
      out.value = window.Quantile(rule.quantile);
      break;
    }
    case SloRule::Kind::kCounterRatio: {
      const uint64_t num = rule.numerator->value() - state.numerator_base;
      const uint64_t den =
          rule.denominator->value() - state.denominator_base;
      out.samples = den;
      out.value = den > 0 ? static_cast<double>(num) /
                                static_cast<double>(den)
                          : 0.0;
      break;
    }
    case SloRule::Kind::kGaugeThreshold:
      out.samples = 1;
      out.value = rule.gauge->value();
      break;
  }
  out.breached =
      out.samples >= rule.min_samples && out.value > rule.threshold;
  return out;
}

SloEvaluation SloEngine::EvaluateLocked(bool eager,
                                        uint64_t window_index) const {
  SloEvaluation eval;
  eval.window_index = window_index;
  eval.eager = eager;
  eval.rules.reserve(rules_.size());
  for (const RuleState& state : rules_) {
    eval.rules.push_back(EvaluateRuleLocked(state));
  }
  return eval;
}

void SloEngine::PublishLocked(const SloEvaluation& eval) {
  burning_ = eval.any_breached();
  if (evaluations_counter_ != nullptr) evaluations_counter_->Inc();
  if (burning_gauge_ != nullptr) burning_gauge_->Set(burning_ ? 1.0 : 0.0);
  size_t breached = 0;
  for (size_t i = 0; i < eval.rules.size(); ++i) {
    const SloRuleOutcome& out = eval.rules[i];
    RuleState& state = rules_[i];
    state.last_value = out.value;
    if (state.value_gauge != nullptr) state.value_gauge->Set(out.value);
    if (!out.breached) continue;
    ++breached;
    ++alerts_total_;
    if (alerts_counter_ != nullptr) alerts_counter_->Inc();
    if (state.alerts != nullptr) state.alerts->Inc();
    if (options_.flight != nullptr) {
      options_.flight->Record(FlightEventKind::kSloAlert, /*trace_id=*/0,
                              static_cast<int32_t>(i), out.value,
                              out.rule);
    }
    if (options_.trace != nullptr) {
      TraceEvent e;
      e.phase = 'i';
      e.name = "slo_alert";
      e.category = "slo";
      e.pid = TraceRecorder::kServicePid;
      e.tid = options_.trace->CurrentThreadTid();
      e.ts_us = options_.trace->NowMicros();
      e.args.emplace_back("rule", JsonString(out.rule));
      e.args.emplace_back("value", JsonNumber(out.value));
      e.args.emplace_back("threshold", JsonNumber(out.threshold));
      const RequestContext& ctx = CurrentRequestContext();
      if (ctx.valid()) {
        e.args.emplace_back("trace_id",
                            JsonString(TraceIdHex(ctx.trace_id)));
      }
      options_.trace->Add(std::move(e));
    }
  }
  if (!eval.eager && options_.flight != nullptr) {
    options_.flight->Record(FlightEventKind::kSloWindow, /*trace_id=*/0,
                            static_cast<int32_t>(breached),
                            static_cast<double>(eval.window_index),
                            "window_close");
  }
}

std::optional<SloEvaluation> SloEngine::Tick() {
  std::lock_guard<std::mutex> lock(mu_);
  ++ticks_;
  ++ticks_in_window_;
  const bool close = ticks_in_window_ >= options_.window_ticks;
  const bool eager = !close && options_.eager_refresh_every > 0 &&
                     ticks_in_window_ % options_.eager_refresh_every == 0;
  if (!close && !eager) return std::nullopt;
  SloEvaluation eval = EvaluateLocked(eager, windows_closed_ + (close ? 1 : 0));
  PublishLocked(eval);
  if (close) {
    ++windows_closed_;
    if (windows_counter_ != nullptr) windows_counter_->Inc();
    ticks_in_window_ = 0;
    // Advance every rule's baseline to "now": the next window measures
    // only what happens after this close.
    for (RuleState& state : rules_) {
      if (state.rule.kind == SloRule::Kind::kHistogramQuantile) {
        state.histogram_base = state.rule.histogram->Snapshot();
      } else if (state.rule.kind == SloRule::Kind::kCounterRatio) {
        state.numerator_base = state.rule.numerator->value();
        state.denominator_base = state.rule.denominator->value();
      }
    }
  }
  return eval;
}

SloEvaluation SloEngine::EvaluateNow() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EvaluateLocked(/*eager=*/true, windows_closed_ + 1);
}

bool SloEngine::burning() const {
  std::lock_guard<std::mutex> lock(mu_);
  return burning_;
}

double SloEngine::RuleValue(const std::string& rule) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const RuleState& state : rules_) {
    if (state.rule.name == rule) return state.last_value;
  }
  return 0.0;
}

uint64_t SloEngine::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

uint64_t SloEngine::windows_closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_closed_;
}

uint64_t SloEngine::alerts_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_total_;
}

}  // namespace qpp::obs
