#include "obs/trace.h"

#include <ostream>
#include <sstream>

#include "obs/json_util.h"
#include "obs/request_context.h"

namespace qpp::obs {

TraceRecorder::TraceRecorder(TraceRecorderOptions options)
    : options_(options), origin_(std::chrono::steady_clock::now()) {}

uint64_t TraceRecorder::NowMicros() const {
  return MicrosAt(std::chrono::steady_clock::now());
}

uint64_t TraceRecorder::MicrosAt(
    std::chrono::steady_clock::time_point tp) const {
  if (tp <= origin_) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(tp - origin_)
          .count());
}

uint32_t TraceRecorder::CurrentThreadTid() {
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = thread_tids_.try_emplace(self, next_thread_tid_);
  if (inserted) ++next_thread_tid_;
  return it->second;
}

uint32_t TraceRecorder::AllocateTrackIds(uint32_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t start = next_track_id_;
  next_track_id_ += n;
  return start;
}

uint64_t TraceRecorder::NextAsyncId() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_async_id_++;
}

void TraceRecorder::Add(TraceEvent event) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() < options_.max_events) {
      events_.push_back(std::move(event));
      return;
    }
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  if (options_.dropped_counter != nullptr) options_.dropped_counter->Inc();
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string TraceRecorder::ToJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Process-name metadata so Perfetto labels the track groups.
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":"
         "{\"name\":\"qpp serve\"}},";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"args\":"
         "{\"name\":\"qpp simulator (simulated time)\"}}";
  for (const TraceEvent& e : events) {
    out += ",{\"name\":" + JsonString(e.name);
    if (!e.category.empty()) out += ",\"cat\":" + JsonString(e.category);
    out += ",\"ph\":\"";
    out += e.phase;
    out += "\",\"ts\":" + JsonNumber(e.ts_us);
    if (e.phase == 'X') out += ",\"dur\":" + JsonNumber(e.dur_us);
    if (e.phase == 'b' || e.phase == 'e') {
      out += ",\"id\":" + JsonNumber(e.id);
    }
    out += ",\"pid\":" + JsonNumber(static_cast<uint64_t>(e.pid)) +
           ",\"tid\":" + JsonNumber(static_cast<uint64_t>(e.tid));
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first = true;
      for (const auto& [k, v] : e.args) {
        if (!first) out += ',';
        first = false;
        out += JsonString(k) + ":" + v;
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void TraceRecorder::WriteChromeTrace(std::ostream* os) const {
  *os << ToJson();
}

Span::Span(TraceRecorder* recorder, const char* name, const char* category)
    : recorder_(recorder), name_(name), category_(category) {
  if (recorder_ == nullptr) return;
  start_us_ = recorder_->NowMicros();
}

Span::~Span() {
  if (recorder_ == nullptr) return;
  TraceEvent e;
  e.phase = 'X';
  e.name = name_;
  e.category = category_;
  e.pid = TraceRecorder::kServicePid;
  e.tid = recorder_->CurrentThreadTid();
  e.ts_us = start_us_;
  e.dur_us = recorder_->NowMicros() - start_us_;
  e.args = std::move(args_);
  const RequestContext& ctx = CurrentRequestContext();
  if (ctx.valid()) {
    bool tagged = false;
    for (const auto& [k, v] : e.args) {
      if (k == "trace_id") {
        tagged = true;
        break;
      }
    }
    if (!tagged) {
      e.args.emplace_back("trace_id", JsonString(TraceIdHex(ctx.trace_id)));
    }
  }
  recorder_->Add(std::move(e));
}

void Span::AddArg(const char* key, double value) {
  if (recorder_ == nullptr) return;
  args_.emplace_back(key, JsonNumber(value));
}

void Span::AddArg(const char* key, uint64_t value) {
  if (recorder_ == nullptr) return;
  args_.emplace_back(key, JsonNumber(value));
}

void Span::AddArg(const char* key, const char* value) {
  if (recorder_ == nullptr) return;
  args_.emplace_back(key, JsonString(value));
}

}  // namespace qpp::obs
