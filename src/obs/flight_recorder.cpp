#include "obs/flight_recorder.h"

#include <algorithm>
#include <bit>

#include "obs/json_util.h"
#include "obs/request_context.h"

namespace qpp::obs {

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kAdmissionAdmit: return "admission_admit";
    case FlightEventKind::kAdmissionShed: return "admission_shed";
    case FlightEventKind::kAdmissionDefer: return "admission_defer";
    case FlightEventKind::kDeferDrained: return "defer_drained";
    case FlightEventKind::kDeferOverflow: return "defer_overflow";
    case FlightEventKind::kSloBreach: return "slo_breach";
    case FlightEventKind::kSloAlert: return "slo_alert";
    case FlightEventKind::kSloWindow: return "slo_window";
    case FlightEventKind::kPick: return "pick";
    case FlightEventKind::kEscalation: return "escalation";
    case FlightEventKind::kFallback: return "fallback";
    case FlightEventKind::kFault: return "fault";
    case FlightEventKind::kBreakerTransition: return "breaker_transition";
    case FlightEventKind::kSwap: return "swap";
    case FlightEventKind::kHealthChange: return "health_change";
    case FlightEventKind::kInvariantFailure: return "invariant_failure";
    case FlightEventKind::kNote: return "note";
    case FlightEventKind::kCandidateRegistered: return "candidate_registered";
    case FlightEventKind::kShadowWindow: return "shadow_window";
    case FlightEventKind::kPromotion: return "promotion";
    case FlightEventKind::kRollback: return "rollback";
  }
  return "?";
}

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

// Detail strings travel as three 64-bit words: chars in bytes 0..22,
// length in byte 23.
void PackDetail(std::string_view detail, uint64_t words[3]) {
  char bytes[24] = {};
  const size_t len =
      std::min(detail.size(), FlightRecorder::kDetailCapacity);
  std::memcpy(bytes, detail.data(), len);
  bytes[23] = static_cast<char>(len);
  std::memcpy(words, bytes, sizeof(bytes));
}

std::string UnpackDetail(const uint64_t words[3]) {
  char bytes[24];
  std::memcpy(bytes, words, sizeof(bytes));
  const size_t len = std::min<size_t>(static_cast<unsigned char>(bytes[23]),
                                      FlightRecorder::kDetailCapacity);
  return std::string(bytes, len);
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : slots_(RoundUpPow2(std::max<size_t>(options.capacity, 16))) {
  mask_ = slots_.size() - 1;
}

void FlightRecorder::Record(FlightEventKind kind, uint64_t trace_id,
                            int32_t code, double value,
                            std::string_view detail) {
  if (trace_id == 0) trace_id = CurrentRequestContext().trace_id;
  const uint64_t ticket =
      next_ticket_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(ticket - 1) & mask_];
  // Invalidate, write payload, publish — the release on the final seq
  // store makes all payload stores visible to a reader that observes it.
  slot.seq.store(0, std::memory_order_release);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.kind.store(static_cast<uint32_t>(kind), std::memory_order_relaxed);
  slot.code.store(static_cast<uint32_t>(code), std::memory_order_relaxed);
  slot.value_bits.store(std::bit_cast<uint64_t>(value),
                        std::memory_order_relaxed);
  uint64_t words[3];
  PackDetail(detail, words);
  for (int i = 0; i < 3; ++i) {
    slot.detail_words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(ticket, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  const uint64_t latest = next_ticket_.load(std::memory_order_acquire);
  if (latest == 0) return {};
  const uint64_t capacity = slots_.size();
  const uint64_t first = latest > capacity ? latest - capacity + 1 : 1;
  std::vector<FlightEvent> events;
  events.reserve(static_cast<size_t>(latest - first + 1));
  for (uint64_t ticket = first; ticket <= latest; ++ticket) {
    const Slot& slot = slots_[(ticket - 1) & mask_];
    if (slot.seq.load(std::memory_order_acquire) != ticket) continue;
    FlightEvent e;
    e.ticket = ticket;
    e.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    e.kind = static_cast<FlightEventKind>(
        slot.kind.load(std::memory_order_relaxed));
    e.code = static_cast<int32_t>(slot.code.load(std::memory_order_relaxed));
    e.value = std::bit_cast<double>(
        slot.value_bits.load(std::memory_order_relaxed));
    uint64_t words[3];
    for (int i = 0; i < 3; ++i) {
      words[i] = slot.detail_words[i].load(std::memory_order_relaxed);
    }
    e.detail = UnpackDetail(words);
    // Reject the copy if a concurrent writer lapped or rewrote the slot
    // while we were reading it.
    if (slot.seq.load(std::memory_order_acquire) != ticket) continue;
    events.push_back(std::move(e));
  }
  return events;
}

std::string FlightRecorder::DumpJson(std::string_view reason) const {
  const std::vector<FlightEvent> events = Snapshot();
  const uint64_t total = total_recorded();
  const uint64_t overwritten =
      total > events.size() ? total - events.size() : 0;
  std::string out = "{\"reason\":" + JsonString(reason);
  out += ",\"capacity\":" + JsonNumber(static_cast<uint64_t>(capacity()));
  out += ",\"total_recorded\":" + JsonNumber(total);
  out += ",\"dropped\":" + JsonNumber(overwritten);
  out += ",\"events\":[";
  bool first = true;
  for (const FlightEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"ticket\":" + JsonNumber(e.ticket);
    out += ",\"kind\":" + JsonString(FlightEventKindName(e.kind));
    out += ",\"trace_id\":" + JsonString(TraceIdHex(e.trace_id));
    out += ",\"code\":" + JsonNumber(static_cast<double>(e.code));
    out += ",\"value\":" + JsonNumber(e.value);
    out += ",\"detail\":" + JsonString(e.detail);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace qpp::obs
