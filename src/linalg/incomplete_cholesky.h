// Pivoted incomplete Cholesky decomposition of a kernel (Gram) matrix.
//
// This is the low-rank machinery that makes KCCA tractable at N ~ 1000+
// training queries: instead of factoring the full N-by-N kernel matrices, we
// greedily build K ≈ G G^T with G of rank m << N, then run a small linear
// CCA in the induced feature space. This is the approach of Bach & Jordan,
// "Kernel Independent Component Analysis" (JMLR 2002) — reference [22] of
// the reproduced paper.
//
// A useful identity: the rows of G at the pivot positions form the exact
// lower-triangular Cholesky factor L of K[P,P], so a *new* point x* maps to
// the same feature space via  g(x*) = L^{-1} k(P, x*).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "linalg/matrix.h"

namespace qpp::linalg {

/// Kernel entry oracle: returns K(i, j) for data indices i, j.
using KernelFn = std::function<double(size_t, size_t)>;

struct IncompleteCholeskyResult {
  /// N-by-m feature matrix with K ≈ g g^T.
  Matrix g;
  /// Pivot data indices, in selection order (size m).
  std::vector<size_t> pivots;
  /// Largest residual diagonal entry at termination (approximation error
  /// bound on the trace of K - g g^T per entry).
  double residual = 0.0;
};

/// Runs pivoted incomplete Cholesky on the n-by-n kernel defined by
/// `kernel`, stopping when either `max_rank` columns were produced or the
/// largest residual diagonal falls below `tol`.
IncompleteCholeskyResult IncompleteCholesky(size_t n, const KernelFn& kernel,
                                            size_t max_rank, double tol);

/// Extracts the m-by-m lower-triangular factor L = G[P, :] (rows of `g` at
/// the pivot positions). Satisfies K[P,P] = L L^T exactly.
Matrix PivotFactor(const IncompleteCholeskyResult& icd);

}  // namespace qpp::linalg
