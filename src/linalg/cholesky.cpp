#include "linalg/cholesky.h"

#include <cmath>

#include "common/check.h"
#include "par/parallel_for.h"

namespace qpp::linalg {

namespace {
/// Right-hand-side columns per parallel chunk, and the solve work (n^2 per
/// column x columns) below which the column loop runs inline.
constexpr size_t kColGrain = 8;
constexpr size_t kParMinWork = size_t{1} << 15;
}  // namespace

Cholesky::Cholesky(const Matrix& a, double max_jitter) {
  QPP_CHECK_MSG(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const size_t n = a.rows();
  double mean_diag = 0.0;
  for (size_t i = 0; i < n; ++i) mean_diag += std::abs(a(i, i));
  mean_diag = n > 0 ? mean_diag / static_cast<double>(n) : 0.0;
  if (mean_diag == 0.0) mean_diag = 1.0;

  // Escalating jitter: 0, then 1e-12..max_jitter relative to mean diagonal.
  double rel = 0.0;
  while (true) {
    if (Factorize(a, rel * mean_diag)) {
      ok_ = true;
      jitter_ = rel * mean_diag;
      return;
    }
    rel = (rel == 0.0) ? 1e-12 : rel * 100.0;
    if (rel > max_jitter) break;
  }
  ok_ = false;
}

bool Cholesky::Factorize(const Matrix& a, double jitter) {
  const size_t n = a.rows();
  l_ = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    double d = a(j, j) + jitter;
    for (size_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    l_(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / ljj;
    }
  }
  return true;
}

Vector Cholesky::SolveLower(const Vector& b) const {
  QPP_CHECK(ok_ && b.size() == l_.rows());
  const size_t n = b.size();
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  return y;
}

Vector Cholesky::SolveLowerTranspose(const Vector& b) const {
  QPP_CHECK(ok_ && b.size() == l_.rows());
  const size_t n = b.size();
  Vector x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double s = b[i];
    for (size_t k = i + 1; k < n; ++k) s -= l_(k, i) * x[k];
    x[i] = s / l_(i, i);
  }
  return x;
}

Vector Cholesky::Solve(const Vector& b) const {
  return SolveLowerTranspose(SolveLower(b));
}

// Each right-hand-side column solves independently with the same per-column
// arithmetic as before, so parallelizing the column loop is bit-identical
// at every thread count. These are the N^3/2-flop triangular solves of the
// exact KCCA solver (Lx^{-1} C with N columns).
Matrix Cholesky::Solve(const Matrix& b) const {
  QPP_CHECK(ok_ && b.rows() == l_.rows());
  Matrix x(b.rows(), b.cols());
  auto solve_cols = [&](size_t c0, size_t c1) {
    for (size_t c = c0; c < c1; ++c) {
      const Vector col = Solve(b.Col(c));
      for (size_t r = 0; r < b.rows(); ++r) x(r, c) = col[r];
    }
  };
  if (b.rows() * b.rows() * b.cols() < kParMinWork) {
    solve_cols(0, b.cols());
  } else {
    par::ParallelFor(0, b.cols(), kColGrain, solve_cols, "chol_solve");
  }
  return x;
}

Matrix Cholesky::SolveLowerMatrix(const Matrix& b) const {
  QPP_CHECK(ok_ && b.rows() == l_.rows());
  Matrix y(b.rows(), b.cols());
  auto solve_cols = [&](size_t c0, size_t c1) {
    for (size_t c = c0; c < c1; ++c) {
      const Vector col = SolveLower(b.Col(c));
      for (size_t r = 0; r < b.rows(); ++r) y(r, c) = col[r];
    }
  };
  if (b.rows() * b.rows() * b.cols() < kParMinWork) {
    solve_cols(0, b.cols());
  } else {
    par::ParallelFor(0, b.cols(), kColGrain, solve_cols, "chol_solve_lower");
  }
  return y;
}

double Cholesky::LogDet() const {
  QPP_CHECK(ok_);
  double s = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

}  // namespace qpp::linalg
