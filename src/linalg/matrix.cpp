#include "linalg/matrix.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace qpp::linalg {

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    QPP_CHECK_MSG(rows[r].size() == rows[0].size(), "ragged rows");
    for (size_t c = 0; c < rows[r].size(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::Row(size_t r) const {
  QPP_CHECK(r < rows_);
  return Vector(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<ptrdiff_t>((r + 1) * cols_));
}

Vector Matrix::Col(size_t c) const {
  QPP_CHECK(c < cols_);
  Vector v(rows_);
  for (size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::SetRow(size_t r, const Vector& v) {
  QPP_CHECK(r < rows_ && v.size() == cols_);
  for (size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  QPP_CHECK_MSG(cols_ == other.rows_, "dimension mismatch in Multiply");
  Matrix out(rows_, other.cols_);
  // i-k-j loop order for row-major cache friendliness.
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = &data_[i * cols_];
    double* o = &out.data_[i * other.cols_];
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = a[k];
      if (aik == 0.0) continue;
      const double* b = &other.data_[k * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) o[j] += aik * b[j];
    }
  }
  return out;
}

Matrix Matrix::TransposeMultiply(const Matrix& other) const {
  QPP_CHECK_MSG(rows_ == other.rows_, "dimension mismatch in TransposeMultiply");
  Matrix out(cols_, other.cols_);
  for (size_t k = 0; k < rows_; ++k) {
    const double* a = &data_[k * cols_];
    const double* b = &other.data_[k * other.cols_];
    for (size_t i = 0; i < cols_; ++i) {
      const double aki = a[i];
      if (aki == 0.0) continue;
      double* o = &out.data_[i * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) o[j] += aki * b[j];
    }
  }
  return out;
}

Matrix Matrix::MultiplyTranspose(const Matrix& other) const {
  QPP_CHECK_MSG(cols_ == other.cols_, "dimension mismatch in MultiplyTranspose");
  Matrix out(rows_, other.rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = &data_[i * cols_];
    for (size_t j = 0; j < other.rows_; ++j) {
      const double* b = &other.data_[j * other.cols_];
      double s = 0.0;
      for (size_t k = 0; k < cols_; ++k) s += a[k] * b[k];
      out(i, j) = s;
    }
  }
  return out;
}

Vector Matrix::MultiplyVec(const Vector& v) const {
  QPP_CHECK_MSG(cols_ == v.size(), "dimension mismatch in MultiplyVec");
  Vector out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = &data_[i * cols_];
    double s = 0.0;
    for (size_t k = 0; k < cols_; ++k) s += a[k] * v[k];
    out[i] = s;
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  QPP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  QPP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

void Matrix::AddToDiagonal(double v) {
  QPP_CHECK(rows_ == cols_);
  for (size_t i = 0; i < rows_; ++i) (*this)(i, i) += v;
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

double Dot(const Vector& a, const Vector& b) {
  QPP_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double SquaredDistance(const Vector& a, const Vector& b) {
  QPP_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double Norm(const Vector& a) { return std::sqrt(Dot(a, a)); }

double CosineDistance(const Vector& a, const Vector& b) {
  const double na = Norm(a);
  const double nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 1.0;
  return 1.0 - Dot(a, b) / (na * nb);
}

Vector AddVec(const Vector& a, const Vector& b) {
  QPP_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector ScaleVec(const Vector& a, double s) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

}  // namespace qpp::linalg
