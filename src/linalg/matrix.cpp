#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "par/parallel_for.h"
#include "par/simd.h"
#include "par/simd_lanes.h"

namespace qpp::linalg {

namespace {

// Blocking / dispatch parameters for the product kernels. All are
// compile-time constants: chunk boundaries must not depend on the thread
// count (see par/thread_pool.h), and the k-tile size is part of the loop
// order that the bit-identity guarantee is stated over.
constexpr size_t kRowGrain = 16;  ///< rows per parallel chunk
constexpr size_t kKTile = 64;     ///< inner-dimension tile (L1-resident rows)
/// Multiply-add count below which dispatching to the pool costs more than
/// the loop; small products run the same kernel inline.
constexpr size_t kParMinWork = size_t{1} << 15;

// out rows [r0, r1) of A * B. k-tiled i-k-j: per output element the
// accumulation order over k is ascending (tiles ascending, k within a tile
// ascending), exactly matching reference::Multiply, and the aik == 0 skip
// is preserved — so the result is bit-identical to the reference kernel.
// The tiling keeps a kKTile-row band of B hot across all rows of the block.
// The j loop runs over independent output elements, so the SIMD form
// (simd::AxpyRow: one mul + one add per element, lanes = adjacent j) is
// bit-identical too; `use_simd` is hoisted by the caller.
void MultiplyRowRange(const double* a, const double* b, double* out,
                      size_t acols, size_t bcols, size_t r0, size_t r1,
                      bool use_simd) {
  for (size_t k0 = 0; k0 < acols; k0 += kKTile) {
    const size_t k1 = std::min(acols, k0 + kKTile);
    for (size_t i = r0; i < r1; ++i) {
      const double* arow = a + i * acols;
      double* orow = out + i * bcols;
      for (size_t k = k0; k < k1; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        const double* brow = b + k * bcols;
        if (use_simd) {
          simd::AxpyRow(orow, aik, brow, bcols);
        } else {
          for (size_t j = 0; j < bcols; ++j) orow[j] += aik * brow[j];
        }
      }
    }
  }
}

// out rows [i0, i1) of A^T * B (out is acols x bcols). k stays the outer
// loop exactly as in reference::TransposeMultiply, restricted to the
// columns of A that map to this output-row block; per element the k order
// and the zero skip match the reference bit for bit.
void TransposeMultiplyRowRange(const double* a, const double* b, double* out,
                               size_t arows, size_t acols, size_t bcols,
                               size_t i0, size_t i1, bool use_simd) {
  for (size_t k = 0; k < arows; ++k) {
    const double* arow = a + k * acols;
    const double* brow = b + k * bcols;
    for (size_t i = i0; i < i1; ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* orow = out + i * bcols;
      if (use_simd) {
        simd::AxpyRow(orow, aki, brow, bcols);
      } else {
        for (size_t j = 0; j < bcols; ++j) orow[j] += aki * brow[j];
      }
    }
  }
}

// out rows [r0, r1) of A * B^T: independent dot products, inner loop
// identical to reference::MultiplyTranspose. The SIMD form computes
// kLanes output columns at once — lane L carries the full sequential
// k-ascending dot product against B row j+L (simd::DotRows), so each
// output element's accumulation chain matches the scalar kernel bit for
// bit; only independent chains run side by side.
void MultiplyTransposeRowRange(const double* a, const double* b, double* out,
                               size_t acols, size_t brows, size_t r0,
                               size_t r1, bool use_simd) {
  for (size_t i = r0; i < r1; ++i) {
    const double* arow = a + i * acols;
    double* orow = out + i * brows;
    size_t j = 0;
    if (use_simd) {
      for (; j + simd::kLanes <= brows; j += simd::kLanes) {
        simd::StoreU(orow + j,
                     simd::DotRows(b + j * acols, acols, arow, acols));
      }
    }
    for (; j < brows; ++j) {
      const double* brow = b + j * acols;
      double s = 0.0;
      for (size_t k = 0; k < acols; ++k) s += arow[k] * brow[k];
      orow[j] = s;
    }
  }
}

}  // namespace

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    QPP_CHECK_MSG(rows[r].size() == rows[0].size(), "ragged rows");
    for (size_t c = 0; c < rows[r].size(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::Row(size_t r) const {
  QPP_CHECK(r < rows_);
  return Vector(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<ptrdiff_t>((r + 1) * cols_));
}

Vector Matrix::Col(size_t c) const {
  QPP_CHECK(c < cols_);
  Vector v(rows_);
  for (size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::SetRow(size_t r, const Vector& v) {
  QPP_CHECK(r < rows_ && v.size() == cols_);
  for (size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  QPP_CHECK_MSG(cols_ == other.rows_, "dimension mismatch in Multiply");
  Matrix out(rows_, other.cols_);
  const double* a = data_.data();
  const double* b = other.data_.data();
  double* o = out.data_.data();
  const size_t work = rows_ * cols_ * other.cols_;
  const bool use_simd = simd::Enabled();
  if (work < kParMinWork) {
    MultiplyRowRange(a, b, o, cols_, other.cols_, 0, rows_, use_simd);
  } else {
    par::ParallelFor(
        0, rows_, kRowGrain,
        [&](size_t r0, size_t r1) {
          MultiplyRowRange(a, b, o, cols_, other.cols_, r0, r1, use_simd);
        },
        "matmul");
  }
  return out;
}

Matrix Matrix::TransposeMultiply(const Matrix& other) const {
  QPP_CHECK_MSG(rows_ == other.rows_, "dimension mismatch in TransposeMultiply");
  Matrix out(cols_, other.cols_);
  const double* a = data_.data();
  const double* b = other.data_.data();
  double* o = out.data_.data();
  const size_t work = rows_ * cols_ * other.cols_;
  const bool use_simd = simd::Enabled();
  if (work < kParMinWork) {
    TransposeMultiplyRowRange(a, b, o, rows_, cols_, other.cols_, 0, cols_,
                              use_simd);
  } else {
    par::ParallelFor(
        0, cols_, kRowGrain,
        [&](size_t i0, size_t i1) {
          TransposeMultiplyRowRange(a, b, o, rows_, cols_, other.cols_, i0,
                                    i1, use_simd);
        },
        "matmul_tn");
  }
  return out;
}

Matrix Matrix::MultiplyTranspose(const Matrix& other) const {
  QPP_CHECK_MSG(cols_ == other.cols_, "dimension mismatch in MultiplyTranspose");
  Matrix out(rows_, other.rows_);
  const double* a = data_.data();
  const double* b = other.data_.data();
  double* o = out.data_.data();
  const size_t work = rows_ * cols_ * other.rows_;
  const bool use_simd = simd::Enabled();
  if (work < kParMinWork) {
    MultiplyTransposeRowRange(a, b, o, cols_, other.rows_, 0, rows_, use_simd);
  } else {
    par::ParallelFor(
        0, rows_, kRowGrain,
        [&](size_t r0, size_t r1) {
          MultiplyTransposeRowRange(a, b, o, cols_, other.rows_, r0, r1,
                                    use_simd);
        },
        "matmul_nt");
  }
  return out;
}

Vector Matrix::MultiplyVec(const Vector& v) const {
  QPP_CHECK_MSG(cols_ == v.size(), "dimension mismatch in MultiplyVec");
  Vector out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = &data_[i * cols_];
    double s = 0.0;
    for (size_t k = 0; k < cols_; ++k) s += a[k] * v[k];
    out[i] = s;
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  QPP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  QPP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

void Matrix::AddToDiagonal(double v) {
  QPP_CHECK(rows_ == cols_);
  for (size_t i = 0; i < rows_; ++i) (*this)(i, i) += v;
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

namespace reference {

Matrix Multiply(const Matrix& a, const Matrix& b) {
  QPP_CHECK_MSG(a.cols() == b.rows(), "dimension mismatch in Multiply");
  Matrix out(a.rows(), b.cols());
  // The original single-threaded i-k-j kernel, unchanged.
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.data().data() + i * a.cols();
    double* orow = out.data().data() + i * b.cols();
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.data().data() + k * b.cols();
      for (size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix TransposeMultiply(const Matrix& a, const Matrix& b) {
  QPP_CHECK_MSG(a.rows() == b.rows(),
                "dimension mismatch in TransposeMultiply");
  Matrix out(a.cols(), b.cols());
  for (size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.data().data() + k * a.cols();
    const double* brow = b.data().data() + k * b.cols();
    for (size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* orow = out.data().data() + i * b.cols();
      for (size_t j = 0; j < b.cols(); ++j) orow[j] += aki * brow[j];
    }
  }
  return out;
}

Matrix MultiplyTranspose(const Matrix& a, const Matrix& b) {
  QPP_CHECK_MSG(a.cols() == b.cols(),
                "dimension mismatch in MultiplyTranspose");
  Matrix out(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.data().data() + i * a.cols();
    for (size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.data().data() + j * b.cols();
      double s = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) s += arow[k] * brow[k];
      out(i, j) = s;
    }
  }
  return out;
}

}  // namespace reference

double Dot(const Vector& a, const Vector& b) {
  QPP_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double SquaredDistance(const Vector& a, const Vector& b) {
  QPP_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double Norm(const Vector& a) { return std::sqrt(Dot(a, a)); }

double CosineDistance(const Vector& a, const Vector& b) {
  const double na = Norm(a);
  const double nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 1.0;
  return 1.0 - Dot(a, b) / (na * nb);
}

Vector AddVec(const Vector& a, const Vector& b) {
  QPP_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector ScaleVec(const Vector& a, double s) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

}  // namespace qpp::linalg
