// Binary (de)serialization for linalg types, shared by all model formats.
#pragma once

#include "common/check.h"
#include "common/serde.h"
#include "linalg/matrix.h"

namespace qpp::linalg {

inline void WriteMatrix(BinaryWriter* w, const Matrix& m) {
  w->WriteU64(m.rows());
  w->WriteU64(m.cols());
  w->WriteDoubles(m.data());
}

inline Matrix ReadMatrix(BinaryReader* r) {
  const size_t rows = static_cast<size_t>(r->ReadU64());
  const size_t cols = static_cast<size_t>(r->ReadU64());
  Matrix m(rows, cols);
  m.data() = r->ReadDoubles();
  QPP_CHECK_MSG(m.data().size() == rows * cols, "corrupt matrix payload");
  return m;
}

}  // namespace qpp::linalg
