// Dense symmetric eigendecomposition.
//
// Householder tridiagonalization followed by the implicit-shift QL iteration
// (the classic tred2/tqli pair). O(n^3), adequate for the sizes this library
// meets: covariance matrices (dims ~ 30), reduced KCCA problems (m ~ 200),
// and exact-path kernel problems up to N ~ 1500.
#pragma once

#include "linalg/matrix.h"

namespace qpp::linalg {

/// Result of a symmetric eigendecomposition: A = V diag(values) V^T with
/// eigenvalues sorted ascending and eigenvectors in the matching columns
/// of `vectors`.
struct SymmetricEigen {
  Vector values;    ///< ascending eigenvalues
  Matrix vectors;   ///< column i is the eigenvector for values[i]
  bool converged = false;
};

/// Computes the full eigendecomposition of symmetric matrix `a`.
/// The strictly-lower triangle is trusted; the upper triangle is ignored
/// after symmetrization (a is averaged with its transpose first to absorb
/// round-off asymmetry).
SymmetricEigen EigenSymmetric(const Matrix& a);

/// Convenience: the top-k eigenpairs (largest eigenvalues first) as
/// (values, n-by-k matrix of column eigenvectors).
struct TopEigen {
  Vector values;
  Matrix vectors;
};
TopEigen TopKEigenSymmetric(const Matrix& a, size_t k);

}  // namespace qpp::linalg
