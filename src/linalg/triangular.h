// Blocked triangular solves for multi-query (multi-right-hand-side)
// forward substitution — the batch-prediction form of the per-query
// `ForwardSubstColumns` chain in ml/kcca.cpp.
//
// The per-query solve reads the full m×m triangular factor (256 KB at the
// production ICD rank) once per query, which makes it an L2-bandwidth
// floor at ~8 µs/query (docs/PERFORMANCE.md). Solving a block of B
// right-hand-side columns at once reads the factor once per *block*: the
// pivots are processed in tiles of kSolveTile, and the trailing update for
// a tile touches each remaining row of the RHS exactly once
// (simd::SolveUpdateRow keeps the accumulator in registers across the
// tile), so factor traffic is amortized B ways and RHS traffic drops by a
// factor of kSolveTile versus the naive per-pivot rank-1 form.
//
// Bit-identity contract: column q of the blocked result is byte-for-byte
// the per-query forward substitution of column q — every output element
// keeps its exact scalar chain (subtractions in ascending pivot order,
// separate multiply and subtract, one IEEE division by the diagonal).
// Blocking only reorders *which element* is advanced next, never the
// arithmetic within an element's chain. tests/simd_kernel_test.cpp pins
// this against the column-at-a-time oracle on identity and
// ill-conditioned factors across all B mod kLanes residues.
#pragma once

#include <cstddef>

namespace qpp::linalg {

/// In-place blocked forward substitution: solves L·G = S where L is an
/// m×m lower-triangular factor (row-major, leading dimension m) and S is
/// an m×b right-hand-side block stored row-major with leading dimension
/// `stride` (stride >= b; pass stride == b for a dense block, or point
/// `s` at a column sub-range of a wider block — the parallel batch path
/// solves disjoint column ranges concurrently). On return S holds G.
/// With use_simd the row operations run b columns at a time through the
/// qpp::simd lanes; either way every column reproduces the per-query
/// scalar chain bitwise.
void ForwardSubstBlocked(const double* l, size_t m, double* s, size_t b,
                         size_t stride, bool use_simd);

/// ForwardSubstBlocked with the factor supplied transposed: lt is
/// row-major m×m with lt[j*m + i] == L(i, j) — the cached-transpose
/// layout ml::KccaModel keeps for the per-query solve. Same solve, same
/// bytes; only the factor loads are strided differently.
void ForwardSubstBlockedT(const double* lt, size_t m, double* s, size_t b,
                          size_t stride, bool use_simd);

}  // namespace qpp::linalg
