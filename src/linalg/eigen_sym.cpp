#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "par/parallel_for.h"

namespace qpp::linalg {

namespace {

double Hypot(double a, double b) { return std::hypot(a, b); }

// Householder reduction of a real symmetric matrix to tridiagonal form.
// On exit `a` holds the orthogonal transform Q (accumulated), `d` the
// diagonal, `e` the off-diagonal (e[0] unused). Follows Numerical Recipes
// tred2 with eigenvector accumulation.
void Tred2(Matrix& a, Vector& d, Vector& e) {
  const size_t n = a.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  if (n == 0) return;
  for (size_t i = n - 1; i >= 1; --i) {
    const size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (i > 1) {
      for (size_t k = 0; k <= l; ++k) scale += std::abs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (size_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = (f >= 0.0 ? -std::sqrt(h) : std::sqrt(h));
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (size_t j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;
          g = 0.0;
          for (size_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (size_t k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (size_t j = 0; j <= l; ++j) {
          f = a(i, j);
          e[j] = g = e[j] - hh * f;
          for (size_t k = 0; k <= j; ++k)
            a(j, k) -= f * e[k] + g * a(i, k);
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (size_t k = 0; k < i; ++k) g += a(i, k) * a(k, j);
        for (size_t k = 0; k < i; ++k) a(k, j) -= g * a(k, i);
      }
    }
    d[i] = a(i, i);
    a(i, i) = 1.0;
    for (size_t j = 0; j < i; ++j) a(j, i) = a(i, j) = 0.0;
  }
}

// Implicit-shift QL on a tridiagonal matrix with eigenvector accumulation.
// Returns false if any eigenvalue needs more than 50 iterations.
bool Tqli(Vector& d, Vector& e, Matrix& z) {
  const size_t n = d.size();
  if (n == 0) return true;
  for (size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  for (size_t l = 0; l < n; ++l) {
    int iter = 0;
    size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-300 || std::abs(e[m]) <= 2.3e-16 * dd) break;
      }
      if (m != l) {
        if (++iter == 50) return false;
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = Hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + (g >= 0.0 ? std::abs(r) : -std::abs(r)));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (size_t ii = m; ii > l; --ii) {
          const size_t i = ii - 1;
          double f = s * e[i];
          const double b = c * e[i];
          r = Hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (size_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (r == 0.0 && m > l + 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

}  // namespace

SymmetricEigen EigenSymmetric(const Matrix& a) {
  QPP_CHECK_MSG(a.rows() == a.cols(), "EigenSymmetric needs a square matrix");
  const size_t n = a.rows();
  SymmetricEigen out;
  if (n == 0) {
    out.converged = true;
    return out;
  }
  // Symmetrize to absorb round-off asymmetry from upstream products.
  // Elementwise, so the row-parallel form is bit-identical to the serial
  // loop. The Householder/QL iterations themselves stay sequential (each
  // rotation feeds the next); the O(n^2) pre/post passes are what
  // parallelize safely here — the O(n^3) products that *build* the input
  // matrix are parallel in Matrix::Multiply and Cholesky::SolveLowerMatrix.
  Matrix s(n, n);
  par::ParallelFor(
      0, n, 32,
      [&](size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i)
          for (size_t j = 0; j < n; ++j) s(i, j) = 0.5 * (a(i, j) + a(j, i));
      },
      "eigen_symmetrize");

  Vector d, e;
  Tred2(s, d, e);
  const bool ok = Tqli(d, e, s);

  // Sort ascending, permuting eigenvector columns to match.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](size_t x, size_t y) { return d[x] < d[y]; });
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (size_t c = 0; c < n; ++c) out.values[c] = d[idx[c]];
  par::ParallelFor(
      0, n, 32,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r)
          for (size_t c = 0; c < n; ++c) out.vectors(r, c) = s(r, idx[c]);
      },
      "eigen_permute");
  out.converged = ok;
  return out;
}

TopEigen TopKEigenSymmetric(const Matrix& a, size_t k) {
  const SymmetricEigen full = EigenSymmetric(a);
  const size_t n = full.values.size();
  const size_t kk = std::min(k, n);
  TopEigen out;
  out.values.resize(kk);
  out.vectors = Matrix(n, kk);
  for (size_t c = 0; c < kk; ++c) {
    const size_t src = n - 1 - c;  // ascending -> take from the top
    out.values[c] = full.values[src];
    for (size_t r = 0; r < n; ++r) out.vectors(r, c) = full.vectors(r, src);
  }
  return out;
}

}  // namespace qpp::linalg
