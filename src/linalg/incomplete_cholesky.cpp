#include "linalg/incomplete_cholesky.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qpp::linalg {

IncompleteCholeskyResult IncompleteCholesky(size_t n, const KernelFn& kernel,
                                            size_t max_rank, double tol) {
  QPP_CHECK(max_rank >= 1);
  IncompleteCholeskyResult out;
  if (n == 0) return out;

  const size_t m_cap = std::min(max_rank, n);
  // Column-major storage of G while building (each step appends a column).
  std::vector<Vector> cols;
  cols.reserve(m_cap);

  Vector d(n);  // residual diagonal
  for (size_t i = 0; i < n; ++i) d[i] = kernel(i, i);

  std::vector<size_t> pivots;
  pivots.reserve(m_cap);

  while (pivots.size() < m_cap) {
    // Select the pivot with the largest residual diagonal.
    size_t p = 0;
    double best = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (d[i] > best) {
        best = d[i];
        p = i;
      }
    }
    if (best <= tol) break;

    const double lpp = std::sqrt(best);
    std::vector<bool> pivoted(n, false);
    for (size_t prev : pivots) pivoted[prev] = true;
    Vector col(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      if (i == p) {
        col[i] = lpp;
        continue;
      }
      if (pivoted[i]) continue;  // residual is exactly zero there
      double s = kernel(i, p);
      for (const Vector& prev : cols) s -= prev[i] * prev[p];
      col[i] = s / lpp;
    }
    for (size_t i = 0; i < n; ++i) {
      d[i] -= col[i] * col[i];
      if (d[i] < 0.0) d[i] = 0.0;  // clamp round-off
    }
    d[p] = 0.0;
    cols.push_back(std::move(col));
    pivots.push_back(p);
  }

  const size_t m = cols.size();
  out.g = Matrix(n, m);
  for (size_t c = 0; c < m; ++c)
    for (size_t r = 0; r < n; ++r) out.g(r, c) = cols[c][r];
  out.pivots = std::move(pivots);
  out.residual = *std::max_element(d.begin(), d.end());
  return out;
}

Matrix PivotFactor(const IncompleteCholeskyResult& icd) {
  const size_t m = icd.pivots.size();
  Matrix l(m, m);
  for (size_t r = 0; r < m; ++r)
    for (size_t c = 0; c < m; ++c) l(r, c) = icd.g(icd.pivots[r], c);
  return l;
}

}  // namespace qpp::linalg
