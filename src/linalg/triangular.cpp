#include "linalg/triangular.h"

#include <algorithm>

#include "par/simd_lanes.h"

namespace qpp::linalg {

namespace {

/// Pivots per tile. Purely a bandwidth knob: the trailing update reads
/// each remaining RHS row once per tile instead of once per pivot, so a
/// larger tile divides RHS traffic further while the tile's own G rows
/// (kSolveTile × b doubles) stay cache-resident. Tile width never touches
/// any element's arithmetic chain, so unlike the reduce grains in
/// parallel_for.h it is NOT part of a result's identity — but it is fixed
/// anyway, so perf numbers are comparable across hosts.
constexpr size_t kSolveTile = 32;

/// One solve over both factor layouts: element L(i, j) lives at
/// l[i*ldr + j*ldc] (row-major: ldr = m, ldc = 1; transposed: ldr = 1,
/// ldc = m). The factor values are splatted scalars in every kernel, so
/// the layout changes load addresses only, never values.
void SolveImpl(const double* l, size_t ldr, size_t ldc, size_t m, double* s,
               size_t b, size_t stride, bool use_simd) {
  for (size_t j0 = 0; j0 < m; j0 += kSolveTile) {
    const size_t j1 = std::min(m, j0 + kSolveTile);
    // Diagonal tile: classic per-pivot forward substitution restricted to
    // the tile's own rows — divide the pivot row, then subtract it from
    // the rows below it inside the tile, ascending pivot order.
    for (size_t j = j0; j < j1; ++j) {
      double* gj = s + j * stride;
      const double diag = l[j * ldr + j * ldc];
      if (use_simd) {
        simd::DivRowBy(gj, diag, b);
      } else {
        for (size_t q = 0; q < b; ++q) gj[q] = gj[q] / diag;
      }
      for (size_t i = j + 1; i < j1; ++i) {
        const double lij = l[i * ldr + j * ldc];
        double* si = s + i * stride;
        if (use_simd) {
          simd::AxpyNegRow(si, lij, gj, b);
        } else {
          for (size_t q = 0; q < b; ++q) si[q] -= lij * gj[q];
        }
      }
    }
    // Trailing update: every row below the tile absorbs the tile's pivots
    // as running subtractions in ascending pivot order — one pass over the
    // remaining RHS per tile.
    const size_t nb = j1 - j0;
    const double* g0 = s + j0 * stride;
    for (size_t i = j1; i < m; ++i) {
      const double* li = l + i * ldr + j0 * ldc;
      double* si = s + i * stride;
      if (use_simd) {
        simd::SolveUpdateRow(si, li, ldc, g0, stride, nb, b);
      } else {
        for (size_t q = 0; q < b; ++q) {
          double v = si[q];
          for (size_t j = 0; j < nb; ++j) {
            v -= li[j * ldc] * g0[j * stride + q];
          }
          si[q] = v;
        }
      }
    }
  }
}

}  // namespace

void ForwardSubstBlocked(const double* l, size_t m, double* s, size_t b,
                         size_t stride, bool use_simd) {
  if (m == 0 || b == 0) return;
  SolveImpl(l, m, 1, m, s, b, stride, use_simd);
}

void ForwardSubstBlockedT(const double* lt, size_t m, double* s, size_t b,
                          size_t stride, bool use_simd) {
  if (m == 0 || b == 0) return;
  SolveImpl(lt, 1, m, m, s, b, stride, use_simd);
}

}  // namespace qpp::linalg
