// Dense row-major matrix and vector types used by the hand-rolled ML stack.
//
// The library deliberately avoids external BLAS/LAPACK: the reproduction
// bands for this paper call for hand-rolled kernel methods, and the problem
// sizes (N ~ 1000 training queries, feature dims ~ 30) are comfortably within
// reach of straightforward scalar code.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qpp::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer-style data; all rows must agree in size.
  static Matrix FromRows(const std::vector<Vector>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Raw contiguous storage (row-major).
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Reassigns shape and refills, retaining allocated capacity
  /// (vector::assign never shrinks capacity): the zero-allocation batch
  /// prediction path reuses one Matrix across calls, so after the first
  /// steady-state-shaped batch this touches no heap.
  void Reshape(size_t rows, size_t cols, double fill = 0.0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  /// Returns row r as a Vector copy.
  Vector Row(size_t r) const;
  /// Returns column c as a Vector copy.
  Vector Col(size_t c) const;
  /// Overwrites row r.
  void SetRow(size_t r, const Vector& v);

  Matrix Transpose() const;

  /// this * other. Dimension-checked. Cache-blocked and parallelized over
  /// row blocks on the qpp::par pool for large products; bit-identical to
  /// reference::Multiply at every thread count (each output element
  /// accumulates over k in ascending order in both kernels).
  Matrix Multiply(const Matrix& other) const;
  /// this^T * other without materializing the transpose. Parallel over
  /// output-row blocks; bit-identical to reference::TransposeMultiply.
  Matrix TransposeMultiply(const Matrix& other) const;
  /// this * other^T without materializing the transpose. Parallel over
  /// row blocks; bit-identical to reference::MultiplyTranspose.
  Matrix MultiplyTranspose(const Matrix& other) const;
  /// this * v for a vector v.
  Vector MultiplyVec(const Vector& v) const;

  Matrix Add(const Matrix& other) const;
  Matrix Subtract(const Matrix& other) const;
  Matrix Scale(double s) const;

  /// Adds `v` to every diagonal entry (ridge/jitter). Requires square.
  void AddToDiagonal(double v);

  /// Max absolute entry; 0 for empty.
  double MaxAbs() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Human-readable dump for debugging/tests.
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

/// Reference single-threaded product kernels — the pre-par implementations,
/// kept verbatim so tests can pin the blocked/parallel member kernels
/// against them bit for bit (tests/linalg_test.cpp, tests/par_test.cpp).
/// Not for production call sites.
namespace reference {
Matrix Multiply(const Matrix& a, const Matrix& b);
Matrix TransposeMultiply(const Matrix& a, const Matrix& b);
Matrix MultiplyTranspose(const Matrix& a, const Matrix& b);
}  // namespace reference

/// Euclidean dot product. Sizes must match.
double Dot(const Vector& a, const Vector& b);

/// Squared Euclidean distance between two vectors of equal size.
double SquaredDistance(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm(const Vector& a);

/// Cosine distance: 1 - cos(a, b). Returns 1 if either vector is zero.
double CosineDistance(const Vector& a, const Vector& b);

/// a + b elementwise.
Vector AddVec(const Vector& a, const Vector& b);

/// a scaled by s.
Vector ScaleVec(const Vector& a, double s);

}  // namespace qpp::linalg
