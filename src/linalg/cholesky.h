// Cholesky factorization and triangular solves for symmetric positive
// definite systems. Used by linear regression (normal equations), CCA
// whitening, and the KCCA generalized-eigenproblem reduction.
#pragma once

#include "linalg/matrix.h"

namespace qpp::linalg {

/// Lower-triangular Cholesky factor of a symmetric positive definite matrix.
class Cholesky {
 public:
  /// Factorizes `a` (must be square and symmetric). If the matrix is not
  /// numerically positive definite, a diagonal jitter is escalated (up to
  /// `max_jitter` relative to the mean diagonal) before giving up.
  /// `ok()` reports success.
  explicit Cholesky(const Matrix& a, double max_jitter = 1e-6);

  bool ok() const { return ok_; }
  /// Jitter actually applied to the diagonal (0 when the input was SPD).
  double jitter() const { return jitter_; }

  /// The lower-triangular factor L with A + jitter*I = L L^T.
  const Matrix& L() const { return l_; }

  /// Solves A x = b. Requires ok().
  Vector Solve(const Vector& b) const;

  /// Solves A X = B columnwise. Requires ok().
  Matrix Solve(const Matrix& b) const;

  /// Solves L y = b (forward substitution).
  Vector SolveLower(const Vector& b) const;

  /// Solves L^T x = b (backward substitution).
  Vector SolveLowerTranspose(const Vector& b) const;

  /// Computes L^{-1} B, i.e. forward-substitution applied to each column.
  Matrix SolveLowerMatrix(const Matrix& b) const;

  /// log-determinant of A (2 * sum log diag(L)). Requires ok().
  double LogDet() const;

 private:
  bool Factorize(const Matrix& a, double jitter);

  Matrix l_;
  bool ok_ = false;
  double jitter_ = 0.0;
};

}  // namespace qpp::linalg
