// qpp_tool — command-line front end for the library.
//
//   qpp_tool pools   [--candidates N] [--seed S]
//       generate a workload, run it on the simulated 4-node system, print
//       the Fig. 2 pool table.
//   qpp_tool train   --out MODEL [--candidates N] [--seed S]
//       train a predictor on a generated workload and write the model file.
//   qpp_tool plan    --sql "SELECT ..." [--dot] [--out PLAN]
//       print (or save) the optimizer plan for a query.
//   qpp_tool predict --model MODEL (--sql "SELECT ..." | --plan PLAN)
//       predict all six metrics for a query before running it.
//   qpp_tool explain --model MODEL --sql "SELECT ..."
//       predict AND simulate, printing predicted vs actual side by side.
//
// All commands run against the TPC-DS SF-1 catalog on the Neoview-4
// configuration; this is a demonstration surface, not a kitchen sink.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "catalog/tpcds.h"
#include "common/str_util.h"
#include "core/experiment.h"
#include "core/model_io.h"
#include "engine/simulator.h"
#include "ml/feature_vector.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_serde.h"

using namespace qpp;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const { return options.count(name) > 0; }
  std::string get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "";
    }
  }
  return args;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  qpp_tool pools   [--candidates N] [--seed S]\n"
               "  qpp_tool train   --out MODEL [--candidates N] [--seed S]\n"
               "  qpp_tool plan    --sql SQL [--dot] [--out PLAN]\n"
               "  qpp_tool predict --model MODEL (--sql SQL | --plan PLAN)\n"
               "  qpp_tool explain --model MODEL --sql SQL\n");
  return 2;
}

core::ExperimentData BuildData(const Args& args) {
  core::ExperimentOptions opt;
  opt.num_candidates =
      static_cast<size_t>(std::stoul(args.get("candidates", "3000")));
  opt.seed = std::stoull(args.get("seed", "42"));
  return core::BuildTpcdsExperiment(opt);
}

void PrintPrediction(const core::Prediction& p) {
  const auto names = engine::QueryMetrics::MetricNames();
  const auto v = p.metrics.ToVector();
  for (size_t m = 0; m < names.size(); ++m) {
    if (m == 0) {
      std::printf("  %-18s %s\n", names[m].c_str(),
                  FormatDuration(v[m]).c_str());
    } else {
      std::printf("  %-18s %.0f\n", names[m].c_str(), v[m]);
    }
  }
  std::printf("  %-18s %.2f%s\n", "confidence", p.confidence,
              p.anomalous ? "  (ANOMALOUS: far from all training queries)"
                          : "");
  std::printf("  %-18s %s\n", "category",
              workload::QueryTypeName(p.predicted_type));
}

int CmdPools(const Args& args) {
  const core::ExperimentData data = BuildData(args);
  std::printf("%s", data.pools.ToTable().c_str());
  return 0;
}

int CmdTrain(const Args& args) {
  const std::string out = args.get("out");
  if (out.empty()) return Usage();
  const core::ExperimentData data = BuildData(args);
  core::Predictor pred;
  pred.Train(core::MakeAllExamples(data.pools));
  const Status s = core::SaveModelFile(pred, out);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("trained on %zu queries; model written to %s\n",
              pred.num_training_examples(), out.c_str());
  return 0;
}

int CmdPlan(const Args& args) {
  const std::string sql = args.get("sql");
  if (sql.empty()) return Usage();
  const catalog::Catalog cat = catalog::MakeTpcdsCatalog(1.0);
  const optimizer::Optimizer opt(&cat, {});
  const auto plan = opt.Plan(sql);
  if (!plan.ok()) {
    std::fprintf(stderr, "error: %s\n", plan.status().message().c_str());
    return 1;
  }
  if (args.flag("dot")) {
    std::printf("%s", plan.value().ToDot().c_str());
  } else {
    std::printf("%s", plan.value().ToString().c_str());
    std::printf("optimizer cost: %.1f units\n", plan.value().optimizer_cost);
  }
  const std::string out = args.get("out");
  if (!out.empty()) {
    const Status s = optimizer::SavePlanFile(plan.value(), out);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return 1;
    }
    std::printf("plan written to %s\n", out.c_str());
  }
  return 0;
}

Result<optimizer::PhysicalPlan> ResolvePlan(const Args& args) {
  const std::string plan_path = args.get("plan");
  if (!plan_path.empty()) return optimizer::LoadPlanFile(plan_path);
  const std::string sql = args.get("sql");
  if (sql.empty()) return Status::Error("need --sql or --plan");
  const catalog::Catalog cat = catalog::MakeTpcdsCatalog(1.0);
  const optimizer::Optimizer opt(&cat, {});
  return opt.Plan(sql);
}

int CmdPredict(const Args& args) {
  const std::string model_path = args.get("model");
  if (model_path.empty()) return Usage();
  auto model = core::LoadModelFile(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().message().c_str());
    return 1;
  }
  auto plan = ResolvePlan(args);
  if (!plan.ok()) {
    std::fprintf(stderr, "error: %s\n", plan.status().message().c_str());
    return 1;
  }
  const core::Prediction p =
      model.value().Predict(ml::PlanFeatureVector(plan.value()));
  std::printf("prediction (before execution):\n");
  PrintPrediction(p);
  return 0;
}

int CmdExplain(const Args& args) {
  const std::string model_path = args.get("model");
  const std::string sql = args.get("sql");
  if (model_path.empty() || sql.empty()) return Usage();
  auto model = core::LoadModelFile(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().message().c_str());
    return 1;
  }
  const catalog::Catalog cat = catalog::MakeTpcdsCatalog(1.0);
  const optimizer::Optimizer opt(&cat, {});
  const auto plan = opt.Plan(sql);
  if (!plan.ok()) {
    std::fprintf(stderr, "error: %s\n", plan.status().message().c_str());
    return 1;
  }
  std::printf("plan:\n%s\n", plan.value().ToString().c_str());
  const core::Prediction p =
      model.value().Predict(ml::PlanFeatureVector(plan.value()));
  std::printf("prediction:\n");
  PrintPrediction(p);
  const engine::ExecutionSimulator sim(&cat,
                                       engine::SystemConfig::Neoview4());
  const engine::QueryMetrics actual = sim.Execute(plan.value());
  std::printf("simulated actual:\n  %s\n", actual.ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  try {
    if (args.command == "pools") return CmdPools(args);
    if (args.command == "train") return CmdTrain(args);
    if (args.command == "plan") return CmdPlan(args);
    if (args.command == "predict") return CmdPredict(args);
    if (args.command == "explain") return CmdExplain(args);
  } catch (const CheckFailure& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
